//! End-to-end checks of the paper's headline numbers, spanning every
//! crate in the workspace.

use moat::analysis::{FeintingModel, RatchetModel};
use moat::attacks::{JailbreakAttacker, PostponementAttacker, RandomizedJailbreak};
use moat::core::{MoatConfig, MoatEngine};
use moat::dram::{DramConfig, DramTiming, MitigationEngine, Nanos};
use moat::sim::{hammer_attacker, SecurityConfig, SecuritySim};
use moat::trackers::{PanopticonConfig, PanopticonEngine};

/// §3.2: Jailbreak inflicts exactly 1152 activations (9× the queueing
/// threshold of 128) on deterministic Panopticon, without one ALERT.
#[test]
fn jailbreak_breaks_deterministic_panopticon_at_1152() {
    let mut sim = SecuritySim::new(
        SecurityConfig::paper_default(),
        Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
    );
    let report = sim.run(&mut JailbreakAttacker::new(20_000), Nanos::from_millis(2));
    assert_eq!(report.max_pressure, 1152);
    assert_eq!(report.alerts, 0);
}

/// §3.3 / Fig. 5: the randomized variant reaches ≥1100 within 2^20
/// iterations.
#[test]
fn randomized_jailbreak_defeats_counter_randomization() {
    let mut rj = RandomizedJailbreak::new(128, 42);
    let series = rj.running_max(1 << 20);
    assert!(*series.last().unwrap() >= 1100);
}

/// §4/§6: MOAT bounds any single-row hammer near ATH, and the tolerated
/// threshold (Appendix A) is 99 at ATH 64.
#[test]
fn moat_headline_trh_99() {
    assert_eq!(RatchetModel::default().safe_trh(64, 1), 99);
    assert_eq!(RatchetModel::default().safe_trh(128, 1), 161);

    let mut sim = SecuritySim::new(
        SecurityConfig::paper_default(),
        Box::new(MoatEngine::new(MoatConfig::paper_default())),
    );
    let report = sim.run(&mut hammer_attacker(31_000), Nanos::from_millis(4));
    assert!(report.max_pressure <= 99, "got {}", report.max_pressure);
    assert!(report.alerts > 0);
}

/// §6.5: 7 bytes of SRAM per bank for the default MOAT.
#[test]
fn moat_needs_seven_bytes_per_bank() {
    let e = MoatEngine::new(MoatConfig::paper_default());
    assert_eq!(e.sram_bytes_per_bank(), 7);
    assert_eq!(moat::analysis::moat_budget(1).bytes_per_chip, 224);
}

/// Table 2: the feinting bound at the default rate is ~2195 — transparent
/// schemes cannot reach sub-200 thresholds.
#[test]
fn feinting_bound_at_default_rate() {
    let b = FeintingModel::default().bound(4);
    assert!((2170..=2220).contains(&b.trh_bound), "{}", b.trh_bound);
}

/// Appendix B / Fig. 16: refresh postponement inflates the drain-variant's
/// exposure to ≈328 (2.6×).
#[test]
fn postponement_reaches_2_6x_exposure() {
    let mut cfg = SecurityConfig::paper_default();
    cfg.dram = DramConfig::builder().max_postponed_refs(2).build();
    let mut sim = SecuritySim::new(
        cfg,
        Box::new(PanopticonEngine::new(PanopticonConfig::drain_variant())),
    );
    let mut attacker = PostponementAttacker::new(20_000, 128);
    let report = sim.run(&mut attacker, Nanos::from_millis(1));
    assert!(
        (300..=355).contains(&report.max_pressure),
        "{}",
        report.max_pressure
    );
}

/// §2.2/§2.6 derived timing facts the whole analysis rests on.
#[test]
fn timing_derivations() {
    let t = DramTiming::ddr5_prac();
    assert_eq!(t.acts_per_trefi(), 67);
    assert_eq!(t.t_alert(1), Nanos::new(530));
    assert_eq!(t.min_acts_between_alerts(1), 4);
    assert_eq!(t.min_acts_between_alerts(4), 7);
}
