//! Validates the event-granularity randomized-Jailbreak model (used for
//! the Fig. 5 curve) against the full event simulation: a successful
//! iteration — all decoys starting "heavy-weight" — is replayed in the
//! simulator with preset counters and must inflict what the model
//! predicts.

use moat::attacks::{JailbreakAttacker, RandomizedJailbreak};
use moat::dram::{ActCount, Nanos, RowId};
use moat::sim::{SecurityConfig, SecuritySim};
use moat::trackers::{randomize_counters, PanopticonConfig, PanopticonEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully successful iteration (all 8 decoys heavy, attack row heavy):
/// the model predicts `to_enqueue + 8 × 128` activations. Replaying it in
/// the simulator with preset counters must land in the same range.
#[test]
fn successful_iteration_matches_model_in_full_sim() {
    let mut sim = SecuritySim::new(
        SecurityConfig::paper_default(),
        Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
    );
    // 8 rows — 7 decoys plus the attack row (the paper's phase-1 pool of
    // 8 minus the one entry naturally mitigated during priming) — all
    // starting 32 activations short of a 128-multiple crossing.
    let rows: Vec<u32> = (0..8).map(|i| 20_000 + 6 * i).collect();
    for &r in &rows {
        sim.unit_mut()
            .bank_mut()
            .set_counter(RowId::new(r), ActCount::new(224));
    }
    // 32 priming activations per row (the §3.3 pattern), then paced
    // hammering of the youngest entry.
    let mut attacker = JailbreakAttacker::with_rows(rows, 32, 32);
    let report = sim.run(&mut attacker, Nanos::from_millis(2));

    // Model: 32 to enqueue + (7 ahead + self) × 128 = 1056; the paper
    // quotes ~1145 because enqueueing can take up to 128 activations for
    // less-heavy initial counters.
    assert!(
        (950..=1160).contains(&report.max_pressure),
        "full-sim successful iteration inflicted {}",
        report.max_pressure
    );
    assert_eq!(report.alerts, 0, "the pattern avoids queue overflow");
}

/// A failed iteration (no heavy decoys: counters just past a crossing)
/// achieves only a fraction — confirming the model's success/failure
/// dichotomy.
#[test]
fn failed_iteration_achieves_little() {
    let mut sim = SecuritySim::new(
        SecurityConfig::paper_default(),
        Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
    );
    let rows: Vec<u32> = (0..8).map(|i| 20_000 + 6 * i).collect();
    for &r in &rows {
        // 2 activations past a crossing: 126 more needed — the 32 priming
        // activations cannot enqueue the decoys.
        sim.unit_mut()
            .bank_mut()
            .set_counter(RowId::new(r), ActCount::new(130));
    }
    let mut attacker = JailbreakAttacker::with_rows(rows, 32, 32);
    let report = sim.run(&mut attacker, Nanos::from_millis(2));
    assert!(
        report.max_pressure < 600,
        "failed iteration should stay low, got {}",
        report.max_pressure
    );
}

/// The model's heavy-decoy probability matches the randomized
/// initialization helper: about a quarter of rows start within 32
/// activations of a crossing.
#[test]
fn heavy_probability_matches_randomized_init() {
    let cfg = moat::dram::DramConfig::builder()
        .rows_per_bank(8192)
        .build();
    let mut bank = moat::dram::Bank::new(&cfg);
    let mut rng = StdRng::seed_from_u64(7);
    randomize_counters(&mut bank, &mut rng);
    let heavy = (0..8192u32)
        .filter(|&r| {
            let c = bank.counter(RowId::new(r)).get();
            128 - (c % 128) <= 32
        })
        .count();
    let frac = heavy as f64 / 8192.0;
    assert!((0.22..0.28).contains(&frac), "heavy fraction {frac}");

    // And the model's long-run success cadence is ~2^-16.
    let mut model = RandomizedJailbreak::new(128, 99);
    let successes = (0..(1u32 << 18))
        .filter(|_| model.iteration().heavy_decoys == 8)
        .count();
    assert!(
        (1..=12).contains(&successes),
        "expected ~4 successes in 2^18 iterations, got {successes}"
    );
}
