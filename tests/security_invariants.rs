//! Cross-crate security invariants: MOAT must hold its bound under every
//! attack in the arsenal, and the baselines must fail exactly where the
//! paper says they fail.

use moat::attacks::{FeintingAttacker, JailbreakAttacker, RatchetAttacker, StraddleAttacker};
use moat::core::{MoatConfig, MoatEngine, ResetPolicy};
use moat::dram::{AboLevel, Nanos};
use moat::sim::{
    hammer_attacker, round_robin_attacker, Attacker, SecurityConfig, SecuritySim, SlotBudget,
};

fn moat_sim(cfg: MoatConfig) -> SecuritySim {
    SecuritySim::new(
        SecurityConfig::paper_default(),
        Box::new(MoatEngine::new(cfg)),
    )
}

/// The tolerated threshold from Appendix A, with one count of slack for
/// timing-edge effects.
fn tolerated(ath: u32, level: u8) -> u32 {
    moat::analysis::RatchetModel::default().safe_trh(ath, level) + 1
}

#[test]
fn moat_holds_under_jailbreak() {
    let mut sim = moat_sim(MoatConfig::paper_default());
    let r = sim.run(&mut JailbreakAttacker::new(20_000), Nanos::from_millis(4));
    assert!(r.max_pressure <= tolerated(64, 1), "{}", r.max_pressure);
}

#[test]
fn moat_holds_under_ratchet_at_scale() {
    let mut sim = moat_sim(MoatConfig::paper_default());
    let mut attacker = RatchetAttacker::new(64, 2048);
    let r = sim.run(&mut attacker, Nanos::from_millis(20));
    assert!(r.max_pressure <= tolerated(64, 1), "{}", r.max_pressure);
    assert!(
        r.max_pressure > 64,
        "ratchet should exceed ATH: {}",
        r.max_pressure
    );
}

#[test]
fn moat_holds_under_feinting() {
    let mut sim = moat_sim(MoatConfig::paper_default());
    let mut attacker = FeintingAttacker::new(1024, 30_000);
    let r = sim.run(&mut attacker, Nanos::from_millis(8));
    assert!(r.max_pressure <= tolerated(64, 1), "{}", r.max_pressure);
}

#[test]
fn moat_holds_under_straddle_with_safe_reset() {
    let mut cfg = SecurityConfig::paper_default();
    cfg.budget = SlotBudget::disabled();
    let mut sim = SecuritySim::new(cfg, Box::new(MoatEngine::new(MoatConfig::paper_default())));
    let mut attacker = StraddleAttacker::new(2055, 64);
    let r = sim.run(&mut attacker, Nanos::from_millis(2));
    assert!(r.max_pressure <= tolerated(64, 1), "{}", r.max_pressure);
}

#[test]
fn moat_breaks_under_unsafe_reset() {
    // The ablation: removing the §4.3 shadow counters breaks the bound.
    let mut cfg = SecurityConfig::paper_default();
    cfg.budget = SlotBudget::disabled();
    let mut sim = SecuritySim::new(
        cfg,
        Box::new(MoatEngine::new(
            MoatConfig::paper_default().reset_policy(ResetPolicy::Unsafe),
        )),
    );
    let mut attacker = StraddleAttacker::new(2055, 64);
    let r = sim.run(&mut attacker, Nanos::from_millis(2));
    assert!(
        r.max_pressure > tolerated(64, 1),
        "unsafe reset should break the bound, got {}",
        r.max_pressure
    );
}

#[test]
fn moat_holds_at_higher_abo_levels() {
    for (level, abo) in [(2u8, AboLevel::L2), (4, AboLevel::L4)] {
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = abo;
        let mut sim = SecuritySim::new(
            cfg,
            Box::new(MoatEngine::new(MoatConfig::with_ath(64).level(abo))),
        );
        let mut attacker = RatchetAttacker::new(64, 512);
        let r = sim.run(&mut attacker, Nanos::from_millis(10));
        assert!(
            r.max_pressure <= tolerated(64, level),
            "level {level}: {}",
            r.max_pressure
        );
    }
}

#[test]
fn moat_holds_for_multi_row_round_robin() {
    let mut sim = moat_sim(MoatConfig::paper_default());
    let rows: Vec<u32> = (0..32).map(|i| 25_000 + 6 * i).collect();
    let r = sim.run(&mut round_robin_attacker(rows), Nanos::from_millis(6));
    assert!(r.max_pressure <= tolerated(64, 1), "{}", r.max_pressure);
}

#[test]
fn moat_ath128_holds_at_its_own_bound() {
    let mut sim = moat_sim(MoatConfig::with_ath(128));
    let r = sim.run(&mut hammer_attacker(31_000), Nanos::from_millis(4));
    assert!(r.max_pressure <= tolerated(128, 1), "{}", r.max_pressure);
}

/// An adversarial mix: alternate hammering, idling, and bursts to shake
/// out state-machine edge cases.
#[test]
fn moat_holds_under_erratic_attacker() {
    struct Erratic {
        step: u64,
    }
    impl Attacker for Erratic {
        fn step(&mut self, _v: &moat::sim::DefenseView<'_>) -> moat::sim::AttackStep {
            self.step += 1;
            match self.step % 97 {
                0..=60 => moat::sim::AttackStep::Act(moat::dram::RowId::new(
                    30_000 + ((self.step / 1000) % 5) as u32 * 6,
                )),
                61..=70 => moat::sim::AttackStep::Idle,
                _ => moat::sim::AttackStep::Act(moat::dram::RowId::new(
                    40_000 + (self.step % 13) as u32 * 6,
                )),
            }
        }
    }
    let mut sim = moat_sim(MoatConfig::paper_default());
    let r = sim.run(&mut Erratic { step: 0 }, Nanos::from_millis(6));
    assert!(r.max_pressure <= tolerated(64, 1), "{}", r.max_pressure);
}
