//! # moat — a reproduction of *MOAT: Securely Mitigating Rowhammer with
//! Per-Row Activation Counters* (ASPLOS 2025)
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dram`] | `moat-dram` | DDR5/PRAC/ABO substrate: timings, banks, refresh, ALERT protocol, security ledger |
//! | [`core`] | `moat-core` | the MOAT engine: CTA/CMA, ETH/ATH, safe counter reset, MOAT-L |
//! | [`trackers`] | `moat-trackers` | baselines: Panopticon (both variants), ideal SRAM tracker, Misra–Gries |
//! | [`sim`] | `moat-sim` | the security and performance simulators |
//! | [`attacks`] | `moat-attacks` | Jailbreak, Ratchet, Feinting, TSA, straddle, postponement, kernels |
//! | [`workloads`] | `moat-workloads` | Table-4-calibrated SPEC/GAP synthetic streams |
//! | [`trace`] | `moat-trace` | mmap-backed binary trace store (format v2) and content-addressed cache |
//! | [`analysis`] | `moat-analysis` | Appendix-A Ratchet model, feinting bound, throughput models, SRAM budgets |
//!
//! ## Quick taste
//!
//! ```
//! use moat::core::{MoatConfig, MoatEngine};
//! use moat::dram::Nanos;
//! use moat::sim::{hammer_attacker, SecurityConfig, SecuritySim};
//!
//! let mut sim = SecuritySim::new(
//!     SecurityConfig::paper_default(),
//!     Box::new(MoatEngine::new(MoatConfig::paper_default())),
//! );
//! let report = sim.run(&mut hammer_attacker(31_337), Nanos::from_millis(1));
//! assert!(report.max_pressure <= 99); // the paper's tolerated threshold
//! ```
//!
//! See `examples/` for runnable scenarios and `cargo bench --bench
//! experiments` for the full table/figure reproduction harness.

#![warn(missing_docs)]

pub use moat_analysis as analysis;
pub use moat_attacks as attacks;
pub use moat_core as core;
pub use moat_dram as dram;
pub use moat_sim as sim;
pub use moat_trace as trace;
pub use moat_trackers as trackers;
pub use moat_workloads as workloads;
