//! # moat-guard — counter-integrity guard for the MOAT reproduction
//!
//! The fault layer (`moat-faults`) measures how injected tracker-state
//! corruption breaks the engines'
//! [`min_acts_to_alert`](moat_dram::MitigationEngine::min_acts_to_alert)
//! horizon; this crate closes the detect→recover loop, the way real PRAC
//! deployments protect counter reads with ECC and scrubbing:
//!
//! * [`RecoveryPlan`] — the policy: scrub cadence and whether detection
//!   triggers the conservative fallback. Armable from the
//!   [`MOAT_RECOVERY`](RecoveryPlan::ENV_VAR) environment variable.
//! * [`EngineGuard`] — the [`GuardHook`] implementation the security
//!   simulator threads through its loops. At every event-horizon
//!   boundary (immediately *after* the fault hook's injection point) it
//!   runs the engine's parity/ECC
//!   [`integrity_check`](moat_dram::MitigationEngine::integrity_check);
//!   repaired state (Panopticon tags, lost ALERT latches) is restored
//!   exactly, while detect-only corruption (MOAT counts — a parity byte
//!   cannot reconstruct the value) marks the row untrusted. With the
//!   fallback enabled, every untrusted row is force-mitigated on the
//!   spot — victims refreshed, counter reset to a trusted zero — so the
//!   horizon promise computed at that same boundary is sound again. On
//!   the plan's cadence, a **scrub** pass resyncs every tracked count
//!   against the authoritative in-array counters and closes the episode.
//! * [`RecoveryStats`] — the recovery telemetry: detections, repairs,
//!   fallback mitigations, scrubs, and time-to-resync.
//!
//! Determinism: the guard draws no randomness at all — its behaviour is
//! a pure function of the observed engine state and the plan — so a
//! guarded run replays bit-identically, and a disarmed guard
//! ([`NoGuard`](moat_sim::NoGuard)) constant-folds to the unguarded
//! loops (pinned by proptest in `tests/recovery_equivalence.rs`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use moat_dram::{MitigationEngine, Nanos};
use moat_sim::{BankUnit, GuardHook};

/// A recovery policy: how often to scrub, and whether detection triggers
/// the conservative fallback.
///
/// The plan is pure data: two guarded simulations under equal plans (and
/// equal inputs) produce bit-identical trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// Scrub cadence in nanoseconds of simulated time: every
    /// `scrub_interval_ns` the tracker is resynced against the
    /// authoritative in-array counters. `0` disables scrubbing (the
    /// guard still detects and, if enabled, falls back).
    pub scrub_interval_ns: u64,
    /// Whether a row whose tracked count is untrusted is force-mitigated
    /// at the detecting boundary (victims refreshed, counter reset to a
    /// trusted zero) instead of waiting for the next scrub.
    pub fallback: bool,
}

impl RecoveryPlan {
    /// The environment variable [`from_env`](Self::from_env) reads.
    pub const ENV_VAR: &'static str = "MOAT_RECOVERY";

    /// Detect-only: no scrub, no fallback. Corruption is counted but
    /// never repaired beyond what the engine's own ECC shadow restores.
    pub fn detect_only() -> Self {
        RecoveryPlan {
            scrub_interval_ns: 0,
            fallback: false,
        }
    }

    /// The full recovery policy the headline measurement uses: a 500 µs
    /// scrub cadence plus the on-detection conservative fallback.
    pub fn full() -> Self {
        RecoveryPlan {
            scrub_interval_ns: 500_000,
            fallback: true,
        }
    }

    /// A scrub-only policy at `interval_ns` cadence (no fallback).
    pub fn scrub_every(interval_ns: u64) -> Self {
        RecoveryPlan {
            scrub_interval_ns: interval_ns,
            fallback: false,
        }
    }

    /// Parses a plan from a `key=value` list, e.g.
    /// `scrub=500000,fallback=on`. Unspecified fields default to
    /// [`detect_only`](Self::detect_only); underscores and dashes in
    /// keys are interchangeable.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending token.
    pub fn parse(spec: &str) -> Result<RecoveryPlan, String> {
        let mut plan = RecoveryPlan::detect_only();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("recovery spec token `{token}` is not key=value"))?;
            let key = key.trim().replace('-', "_");
            let value = value.trim();
            match key.as_str() {
                "scrub" => {
                    plan.scrub_interval_ns = value
                        .parse()
                        .map_err(|e| format!("scrub interval `{value}`: {e}"))?;
                }
                "fallback" => {
                    plan.fallback = match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(format!("fallback `{value}` must be `on` or `off`")),
                    };
                }
                _ => return Err(format!("unknown recovery spec key `{key}`")),
            }
        }
        Ok(plan)
    }

    /// The plan armed via the [`MOAT_RECOVERY`](Self::ENV_VAR)
    /// environment variable: `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors on a malformed value.
    pub fn from_env() -> Result<Option<RecoveryPlan>, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(spec) if spec.trim().is_empty() => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{} is set but not valid Unicode", Self::ENV_VAR))
            }
        }
    }
}

impl fmt::Display for RecoveryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scrub={},fallback={}",
            self.scrub_interval_ns,
            if self.fallback { "on" } else { "off" }
        )
    }
}

/// What an [`EngineGuard`] actually did to a simulation — the recovery
/// telemetry the `repro recover` sweep renders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Boundary integrity checks performed.
    pub checks: u64,
    /// Checks that found at least one mismatch.
    pub detections: u64,
    /// Total mismatched slots/latches across all checks.
    pub detected: u64,
    /// Mismatches restored exactly from the engine's shadow (ECC-repair:
    /// Panopticon tags, lost ALERT latches).
    pub repaired: u64,
    /// Conservative fallback mitigations issued for untrusted rows.
    pub fallback_mitigations: u64,
    /// Scrub passes performed.
    pub scrubs: u64,
    /// Tracker slots a scrub corrected against the in-array counters.
    pub scrub_corrections: u64,
    /// Closed corruption episodes (first detection → full resync).
    pub resync_episodes: u64,
    /// Summed time-to-resync over closed episodes, in simulated ns.
    pub resync_ns_total: u64,
    /// An episode still open at the end of the run: corruption was
    /// detected after the last scrub (or scrubbing is disabled) and its
    /// resync never happened. Residual risk the table must surface.
    pub open_since: Option<Nanos>,
}

impl RecoveryStats {
    /// Mean time-to-resync over closed episodes, in simulated ns
    /// (`None` when no episode ever closed).
    pub fn mean_resync_ns(&self) -> Option<u64> {
        (self.resync_episodes > 0).then(|| self.resync_ns_total / self.resync_episodes)
    }

    /// Records these stats as counters (and one histogram observation per
    /// closed resync episode's mean) under `prefix` in a telemetry
    /// [`MetricsRegistry`]. Purely additive, so registries recorded from
    /// different shards merge deterministically regardless of order.
    pub fn record_metrics(&self, prefix: &str, reg: &mut moat_telemetry::MetricsRegistry) {
        reg.add(&format!("{prefix}.checks"), self.checks);
        reg.add(&format!("{prefix}.detections"), self.detections);
        reg.add(&format!("{prefix}.detected"), self.detected);
        reg.add(&format!("{prefix}.repaired"), self.repaired);
        reg.add(
            &format!("{prefix}.fallback_mitigations"),
            self.fallback_mitigations,
        );
        reg.add(&format!("{prefix}.scrubs"), self.scrubs);
        reg.add(
            &format!("{prefix}.scrub_corrections"),
            self.scrub_corrections,
        );
        reg.add(&format!("{prefix}.resync_episodes"), self.resync_episodes);
        if let Some(mean) = self.mean_resync_ns() {
            reg.observe(&format!("{prefix}.resync_ns"), mean);
        }
        if self.open_since.is_some() {
            reg.add(&format!("{prefix}.open_episodes"), 1);
        }
    }
}

/// The [`GuardHook`] implementation: boundary integrity checks, the
/// conservative fallback, and cadenced scrubbing, per a [`RecoveryPlan`].
///
/// The engine must be armed (see
/// [`MitigationEngine::guard_arm`]) **before** the run starts;
/// [`EngineGuard::arm`] does it through the unit. Arming mid-run would
/// baseline already-injected corruption into the shadow.
#[derive(Debug, Clone)]
pub struct EngineGuard {
    plan: RecoveryPlan,
    /// Next scrub deadline; anchored at the first observed boundary.
    next_scrub: Option<Nanos>,
    /// Untrusted (detect-only) corruption is outstanding: only a scrub
    /// closes the episode.
    dirty: bool,
    stats: RecoveryStats,
}

impl EngineGuard {
    /// Creates a guard executing `plan`.
    pub fn new(plan: RecoveryPlan) -> Self {
        EngineGuard {
            plan,
            next_scrub: None,
            dirty: false,
            stats: RecoveryStats::default(),
        }
    }

    /// The plan this guard executes.
    pub fn plan(&self) -> &RecoveryPlan {
        &self.plan
    }

    /// What has been detected and repaired so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Arms the engine's integrity shadow. Call once, before the run —
    /// the shadow baselines the current (trusted) state.
    pub fn arm<E: MitigationEngine>(&self, unit: &mut BankUnit<E>) -> bool {
        unit.engine_mut().guard_arm()
    }
}

impl GuardHook for EngineGuard {
    const ARMED: bool = true;

    fn at_boundary<E: MitigationEngine>(&mut self, now: Nanos, unit: &mut BankUnit<E>) {
        self.stats.checks += 1;
        let report = unit.integrity_check();
        if report.corrupt() {
            self.stats.detections += 1;
            self.stats.detected += u64::from(report.detected);
            self.stats.repaired += u64::from(report.repaired);
            if self.stats.open_since.is_none() {
                self.stats.open_since = Some(now);
            }
            if !report.untrusted.is_empty() {
                if self.plan.fallback {
                    // Conservative fallback: an untrusted count becomes a
                    // trusted zero via a full forced mitigation, so the
                    // promise computed at this same boundary is sound.
                    for &row in &report.untrusted {
                        unit.force_mitigate(row);
                        self.stats.fallback_mitigations += 1;
                    }
                }
                // Trust is only restored by the next scrub, even when the
                // fallback already neutralized the hazard.
                self.dirty = true;
            }
            if !self.dirty {
                // Everything this check found was restored exactly from
                // the shadow (ECC-repair): the episode closes here.
                if let Some(t0) = self.stats.open_since.take() {
                    self.stats.resync_episodes += 1;
                    self.stats.resync_ns_total += now.saturating_sub(t0).as_u64();
                }
            }
        }
        if self.plan.scrub_interval_ns > 0 {
            let interval = Nanos::new(self.plan.scrub_interval_ns);
            let due = *self.next_scrub.get_or_insert(now + interval);
            if now >= due {
                self.stats.scrubs += 1;
                self.stats.scrub_corrections += u64::from(unit.scrub_resync());
                if let Some(t0) = self.stats.open_since.take() {
                    self.stats.resync_episodes += 1;
                    self.stats.resync_ns_total += now.saturating_sub(t0).as_u64();
                }
                self.dirty = false;
                self.next_scrub = Some(now + interval);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::{DramConfig, EngineFault, RowId};
    use moat_sim::SlotBudget;

    fn unit() -> BankUnit<MoatEngine> {
        let cfg = DramConfig::builder().rows_per_bank(1024).build();
        BankUnit::new(
            &cfg,
            MoatEngine::new(MoatConfig::paper_default()),
            SlotBudget::paper_default(),
        )
    }

    fn hammer(unit: &mut BankUnit<MoatEngine>, row: u32, times: u32, now: &mut Nanos) {
        for _ in 0..times {
            unit.activate(RowId::new(row), *now).unwrap();
            *now += unit.config().timing.t_rc;
        }
    }

    // -- RecoveryPlan parsing: one test per malformed form, matching the
    // -- per-form discipline of the MOAT_FAULTS tests.

    #[test]
    fn plan_rejects_token_without_equals() {
        assert!(RecoveryPlan::parse("scrub").is_err());
    }

    #[test]
    fn plan_rejects_non_numeric_scrub() {
        assert!(RecoveryPlan::parse("scrub=soon").is_err());
        assert!(RecoveryPlan::parse("scrub=-1").is_err());
        assert!(RecoveryPlan::parse("scrub=1e3").is_err(), "ns are integral");
    }

    #[test]
    fn plan_rejects_bad_fallback_value() {
        assert!(RecoveryPlan::parse("fallback=yes").is_err());
        assert!(RecoveryPlan::parse("fallback=1").is_err());
    }

    #[test]
    fn plan_rejects_unknown_key() {
        assert!(RecoveryPlan::parse("cadence=5").is_err());
    }

    #[test]
    fn plan_parses_round_trip() {
        let plan = RecoveryPlan::parse("scrub=500000, fallback=on").unwrap();
        assert_eq!(plan, RecoveryPlan::full());
        let again = RecoveryPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(again, plan);
        assert_eq!(
            RecoveryPlan::parse("").unwrap(),
            RecoveryPlan::detect_only(),
            "empty spec is detect-only"
        );
    }

    #[test]
    fn from_env_surfaces_malformed_values_as_errors() {
        // One serial test owns the env var: parallel sub-tests would
        // race on the process-global environment.
        let check = |value: &str, expect_err: bool| {
            std::env::set_var(RecoveryPlan::ENV_VAR, value);
            let result = RecoveryPlan::from_env();
            std::env::remove_var(RecoveryPlan::ENV_VAR);
            assert_eq!(
                result.is_err(),
                expect_err,
                "MOAT_RECOVERY={value:?} -> {result:?}"
            );
        };
        check("scrub", true); // missing =
        check("scrub=soon", true); // non-numeric interval
        check("fallback=yes", true); // bad fallback form
        check("cadence=5", true); // unknown key
        check("", false); // empty means unarmed, not an error
        check("   ", false);
        check("scrub=1000,fallback=off", false);
        assert_eq!(RecoveryPlan::from_env(), Ok(None), "unset means unarmed");

        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStringExt;
            let bogus = std::ffi::OsString::from_vec(vec![0x66, 0xFF, 0x67]);
            std::env::set_var(RecoveryPlan::ENV_VAR, &bogus);
            let result = RecoveryPlan::from_env();
            std::env::remove_var(RecoveryPlan::ENV_VAR);
            assert!(
                result.is_err(),
                "a non-Unicode value must error, not silently disarm: {result:?}"
            );
        }
    }

    // -- EngineGuard behaviour against a real MOAT bank unit.

    #[test]
    fn fallback_neutralizes_an_untrusted_row_at_the_boundary() {
        let mut u = unit();
        let mut guard = EngineGuard::new(RecoveryPlan {
            scrub_interval_ns: 0,
            fallback: true,
        });
        assert!(guard.arm(&mut u));
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 60, &mut now);
        // Corrupt the tracked count low — the dangerous direction.
        u.engine_mut()
            .apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 5 });
        guard.at_boundary(now, &mut u);
        let stats = guard.stats();
        assert_eq!(stats.detections, 1);
        assert_eq!(stats.fallback_mitigations, 1);
        // The forced mitigation reset the in-array counter to a trusted 0.
        assert_eq!(u.bank().counter(RowId::new(10)).get(), 0);
        assert!(stats.open_since.is_some(), "trust waits for a scrub");
    }

    #[test]
    fn scrub_fires_on_cadence_and_closes_the_episode() {
        let mut u = unit();
        let mut guard = EngineGuard::new(RecoveryPlan::scrub_every(1_000));
        guard.arm(&mut u);
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 60, &mut now);
        u.engine_mut()
            .apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 5 });
        guard.at_boundary(now, &mut u); // detects; anchors the cadence
        assert_eq!(guard.stats().scrubs, 0);
        guard.at_boundary(now + Nanos::new(500), &mut u); // not due yet
        assert_eq!(guard.stats().scrubs, 0);
        guard.at_boundary(now + Nanos::new(1_000), &mut u); // due
        let stats = guard.stats();
        assert_eq!(stats.scrubs, 1);
        assert_eq!(stats.scrub_corrections, 1, "count resynced from truth");
        assert_eq!(stats.resync_episodes, 1);
        assert_eq!(stats.resync_ns_total, 1_000, "detection -> scrub");
        assert!(stats.open_since.is_none());
        // The tracker is back to the authoritative count.
        assert_eq!(u.engine().tracker()[0].count, 60);
    }

    #[test]
    fn ecc_repaired_corruption_closes_immediately() {
        let mut u = unit();
        let mut guard = EngineGuard::new(RecoveryPlan::detect_only());
        guard.arm(&mut u);
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 70, &mut now);
        assert!(u.alert_pending());
        u.engine_mut().apply_fault(&EngineFault::LoseAlert);
        guard.at_boundary(now, &mut u);
        let stats = guard.stats();
        assert_eq!(stats.repaired, 1);
        assert_eq!(stats.resync_episodes, 1, "fully repaired in place");
        assert_eq!(stats.resync_ns_total, 0);
        assert!(stats.open_since.is_none());
        assert!(u.alert_pending(), "latch restored");
    }

    #[test]
    fn clean_boundaries_cost_nothing_but_a_check() {
        let mut u = unit();
        let mut guard = EngineGuard::new(RecoveryPlan::detect_only());
        guard.arm(&mut u);
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 40, &mut now);
        for i in 0..10u64 {
            guard.at_boundary(now + Nanos::new(i), &mut u);
        }
        let stats = guard.stats();
        assert_eq!(stats.checks, 10);
        assert_eq!(stats.detections, 0);
        assert_eq!(stats.scrubs, 0);
        assert_eq!(stats.mean_resync_ns(), None);
    }
}
