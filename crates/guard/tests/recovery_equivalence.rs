//! Recovery equivalence pins (PR 8 satellite):
//!
//! 1. A **disarmed** guard ([`NoGuard`]) is bit-identical to the
//!    unguarded fault entry points across per-step / batched /
//!    semi-scripted × both engines — the guard hook constant-folds.
//! 2. An **armed detect-only** guard (no scrub, no fallback) is
//!    invisible on a clean run: only the engine's shadow state changes,
//!    never the simulated trajectory. (A *scrubbing* guard is allowed
//!    to differ on clean runs — a scrub lowers legitimately-conservative
//!    tracked counts to the in-array truth — so it is deliberately not
//!    pinned here.)
//! 3. Under a transient SEU burst, a fully guarded MOAT run (scrub +
//!    fallback) converges to the clean run's soundness verdict: zero
//!    unsound horizons, zero escaped ACTs, same tolerated-threshold
//!    verdict on [`SecurityReport::max_pressure`].

use moat_attacks::FeintingAttacker;
use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{MitigationEngine, Nanos};
use moat_faults::{FaultInjector, FaultPlan};
use moat_guard::{EngineGuard, RecoveryPlan};
use moat_sim::{
    hammer_attacker, round_robin_attacker, NoFaults, NoGuard, Scripted, SecurityConfig, SecuritySim,
};
use moat_trackers::{PanopticonConfig, PanopticonEngine};
use proptest::prelude::*;

fn boxed_engine(idx: usize) -> Box<dyn MitigationEngine> {
    match idx {
        0 => Box::new(MoatEngine::new(MoatConfig::paper_default())),
        _ => Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
    }
}

fn rows_per_bank() -> u32 {
    SecurityConfig::paper_default().dram.rows_per_bank
}

/// MOAT's tolerated Rowhammer threshold: a run is sound iff no victim
/// absorbed more pressure than this (Fig. 5's bound).
const TOLERATED: u32 = 99;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pin 1: `run_*_with_faults` and `run_*_guarded(.., NoGuard)` are
    /// the same computation, even with a live fault stream.
    #[test]
    fn disarmed_guard_is_bit_identical_to_unguarded(
        seed in 0u64..u64::MAX,
        rows in prop::collection::vec(0u32..256, 1..24),
        engine_idx in 0usize..2,
    ) {
        let duration = Nanos::from_millis(1);
        let config = SecurityConfig::paper_default();
        let plan = FaultPlan::seu(seed, 1e-3);

        // Batched scripted mode.
        let mut a = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut inj_a = FaultInjector::new(plan, rows_per_bank());
        let r_a = a.run_batched_with_faults(
            &mut round_robin_attacker(rows.clone()),
            duration,
            &mut inj_a,
        );
        let mut b = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut inj_b = FaultInjector::new(plan, rows_per_bank());
        let r_b = b.run_batched_guarded(
            &mut round_robin_attacker(rows.clone()),
            duration,
            &mut inj_b,
            &mut NoGuard,
        );
        prop_assert_eq!(r_a, r_b, "batched mode diverged");
        prop_assert_eq!(inj_a.stats(), inj_b.stats());

        // Per-step mode.
        let mut a = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut inj_a = FaultInjector::new(plan, rows_per_bank());
        let r_a = a.run_with_faults(
            &mut Scripted::new(round_robin_attacker(rows.clone())),
            duration,
            &mut inj_a,
        );
        let mut b = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut inj_b = FaultInjector::new(plan, rows_per_bank());
        let r_b = b.run_guarded(
            &mut Scripted::new(round_robin_attacker(rows.clone())),
            duration,
            &mut inj_b,
            &mut NoGuard,
        );
        prop_assert_eq!(r_a, r_b, "per-step mode diverged");
        prop_assert_eq!(inj_a.stats(), inj_b.stats());

        // Semi-scripted mode.
        let mut a = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut inj_a = FaultInjector::new(plan, rows_per_bank());
        let r_a = a.run_semi_scripted_with_faults(
            &mut FeintingAttacker::new(4, rows[0]),
            duration,
            &mut inj_a,
        );
        let mut b = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut inj_b = FaultInjector::new(plan, rows_per_bank());
        let r_b = b.run_semi_scripted_guarded(
            &mut FeintingAttacker::new(4, rows[0]),
            duration,
            &mut inj_b,
            &mut NoGuard,
        );
        prop_assert_eq!(r_a, r_b, "semi-scripted mode diverged");
        prop_assert_eq!(inj_a.stats(), inj_b.stats());
    }

    /// Pin 2: an armed detect-only guard observes a clean run without
    /// perturbing it — detection is pure, and nothing is ever detected
    /// when nothing was injected.
    #[test]
    fn armed_detect_only_guard_is_invisible_on_clean_runs(
        rows in prop::collection::vec(0u32..256, 1..24),
        engine_idx in 0usize..2,
    ) {
        let duration = Nanos::from_millis(1);
        let config = SecurityConfig::paper_default();

        // Batched scripted mode.
        let mut clean = SecuritySim::new(config, boxed_engine(engine_idx));
        let r_clean = clean.run_batched(&mut round_robin_attacker(rows.clone()), duration);
        let mut armed = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut guard = EngineGuard::new(RecoveryPlan::detect_only());
        prop_assert!(guard.arm(armed.unit_mut()));
        let r_armed = armed.run_batched_guarded(
            &mut round_robin_attacker(rows.clone()),
            duration,
            &mut NoFaults,
            &mut guard,
        );
        prop_assert_eq!(r_clean, r_armed, "batched mode diverged");
        prop_assert_eq!(guard.stats().detections, 0);
        prop_assert!(guard.stats().checks > 0, "the guard must have run");

        // Per-step mode.
        let mut clean = SecuritySim::new(config, boxed_engine(engine_idx));
        let r_clean = clean.run(&mut Scripted::new(round_robin_attacker(rows.clone())), duration);
        let mut armed = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut guard = EngineGuard::new(RecoveryPlan::detect_only());
        prop_assert!(guard.arm(armed.unit_mut()));
        let r_armed = armed.run_guarded(
            &mut Scripted::new(round_robin_attacker(rows.clone())),
            duration,
            &mut NoFaults,
            &mut guard,
        );
        prop_assert_eq!(r_clean, r_armed, "per-step mode diverged");
        prop_assert_eq!(guard.stats().detections, 0);

        // Semi-scripted mode.
        let mut clean = SecuritySim::new(config, boxed_engine(engine_idx));
        let r_clean = clean.run_semi_scripted(&mut FeintingAttacker::new(4, rows[0]), duration);
        let mut armed = SecuritySim::new(config, boxed_engine(engine_idx));
        let mut guard = EngineGuard::new(RecoveryPlan::detect_only());
        prop_assert!(guard.arm(armed.unit_mut()));
        let r_armed = armed.run_semi_scripted_guarded(
            &mut FeintingAttacker::new(4, rows[0]),
            duration,
            &mut NoFaults,
            &mut guard,
        );
        prop_assert_eq!(r_clean, r_armed, "semi-scripted mode diverged");
        prop_assert_eq!(guard.stats().detections, 0);
    }

    /// Pin 3: under a transient SEU burst, fully guarded MOAT converges
    /// to the clean run's soundness verdict — zero unsound horizons,
    /// zero escaped ACTs — while the identical unguarded fault stream is
    /// free to break the horizon.
    #[test]
    fn guarded_moat_recovers_clean_soundness_under_seu_burst(
        seed in 0u64..u64::MAX,
        rate_idx in 0usize..3,
        scrub_idx in 0usize..2,
    ) {
        let duration = Nanos::from_millis(2);
        let config = SecurityConfig::paper_default();
        let rate = [1e-4, 1e-3, 1e-2][rate_idx];
        let scrub = [50_000u64, 500_000][scrub_idx];
        let plan = FaultPlan::seu(seed, rate);
        let moat = || {
            Box::new(MoatEngine::new(MoatConfig::paper_default())) as Box<dyn MitigationEngine>
        };

        let mut clean = SecuritySim::new(config, moat());
        let r_clean = clean.run_batched(&mut hammer_attacker(5), duration);

        let mut unguarded = SecuritySim::new(config, moat());
        let mut inj_u = FaultInjector::new(plan, rows_per_bank());
        let _ = unguarded.run_batched_with_faults(&mut hammer_attacker(5), duration, &mut inj_u);

        let mut guarded = SecuritySim::new(config, moat());
        let mut inj_g = FaultInjector::new(plan, rows_per_bank());
        let mut guard = EngineGuard::new(RecoveryPlan {
            scrub_interval_ns: scrub,
            fallback: true,
        });
        prop_assert!(guard.arm(guarded.unit_mut()));
        let r_guarded =
            guarded.run_batched_guarded(&mut hammer_attacker(5), duration, &mut inj_g, &mut guard);

        let g = inj_g.stats();
        prop_assert_eq!(g.unsound_horizons, 0, "guard must close every horizon");
        prop_assert_eq!(g.escaped_acts, 0);
        prop_assert!(
            g.unsound_horizons <= inj_u.stats().unsound_horizons,
            "recovery can only improve on the unguarded stream"
        );
        prop_assert_eq!(
            r_guarded.max_pressure <= TOLERATED,
            r_clean.max_pressure <= TOLERATED,
            "soundness verdict must match the clean run"
        );
        // The same stream was offered to both runs: same boundary count,
        // so any divergence in injected flips is the guard's mitigations
        // shifting boundary timing, never a different fault model.
        if g.seu_flips > 0 && guard.stats().detections == 0 {
            // Every flip that landed in live tracker state is caught at
            // the very next boundary; a flip can only go undetected if
            // it targeted a slot beyond the tracker's current length.
            prop_assert_eq!(guard.stats().fallback_mitigations, 0);
        }
        // After the final scrub the tracker is trusted again: no open
        // corruption episode may outlive the run by more than one
        // scrub interval.
        if let Some(open) = guard.stats().open_since {
            prop_assert!(
                r_guarded.elapsed.saturating_sub(open).as_u64() <= scrub,
                "an open episode must be younger than one scrub interval"
            );
        }
    }
}
