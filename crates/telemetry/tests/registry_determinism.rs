//! The metrics registry's determinism contract, pinned by proptest:
//! the rendered artifact is a pure function of the *set* of recorded
//! observations — never of the shard order they arrived in, the number
//! of worker-thread registries they were sharded across, or where a
//! resume split the run in two.

use moat_telemetry::MetricsRegistry;
use proptest::prelude::*;

/// One recorded observation: `(metric index, kind, value index)`. A
/// small name pool forces collisions so merges genuinely combine
/// metrics, and the value pool pins the histogram edge cases (zero,
/// bucket boundaries, `u64::MAX`).
type Op = (u8, u8, u8);

const NAMES: [&str; 5] = [
    "fleet.acts",
    "fleet.alerts",
    "shard.pressure",
    "cell.attempts",
    "episode.rfms",
];

const VALUES: [u64; 7] = [0, 1, 2, 1023, 1024, u64::MAX - 1, u64::MAX];

fn apply(reg: &mut MetricsRegistry, &(name, kind, value): &Op) {
    let name = NAMES[name as usize % NAMES.len()];
    let value = VALUES[value as usize % VALUES.len()];
    match kind % 3 {
        0 => reg.add(&format!("{name}.count"), value),
        1 => reg.gauge_max(&format!("{name}.max"), value),
        _ => reg.observe(&format!("{name}.hist"), value),
    }
}

/// Records `ops` into one registry sequentially: the reference artifact.
fn sequential(ops: &[Op]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    for op in ops {
        apply(&mut reg, op);
    }
    reg
}

/// Shards `ops` round-robin across `shards` registries (a stand-in for
/// per-worker-thread or per-resume-segment registries), then merges the
/// shards back in the order given by `merge_keys`.
fn sharded(ops: &[Op], shards: usize, merge_keys: &[u64]) -> MetricsRegistry {
    let mut parts: Vec<MetricsRegistry> = (0..shards).map(|_| MetricsRegistry::new()).collect();
    for (i, op) in ops.iter().enumerate() {
        apply(&mut parts[i % shards], op);
    }
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&i| merge_keys.get(i).copied().unwrap_or(i as u64));
    let mut merged = MetricsRegistry::new();
    for i in order {
        merged.merge(&parts[i]);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharding across N worker registries and merging in any
    /// permutation renders byte-identically to the sequential run —
    /// including the histogram edge values 0 and `u64::MAX`.
    #[test]
    fn renders_are_bit_identical_across_sharding_and_merge_order(
        ops in prop::collection::vec((0u8..8, 0u8..3, 0u8..7), 1..64),
        shards in 1usize..6,
        merge_keys in prop::collection::vec(0u64..u64::MAX, 6),
        split in 0usize..64,
    ) {
        let reference = sequential(&ops);
        let merged = sharded(&ops, shards, &merge_keys);
        prop_assert_eq!(reference.render(), merged.render());
        prop_assert_eq!(reference.render_json(), merged.render_json());

        // A resume split: the first `split` ops were replayed from a
        // checkpoint into one registry, the rest computed live into
        // another. Counters and histograms are order-insensitive sums
        // and gauges merge by max, so the seam must be invisible.
        let mut replayed = ops.clone();
        let live = replayed.split_off(split.min(replayed.len()));
        let mut resumed = sequential(&replayed);
        resumed.merge(&sequential(&live));
        prop_assert_eq!(reference.render(), resumed.render());
    }
}
