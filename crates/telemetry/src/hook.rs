//! The tracing seam: [`TelemetryHook`], its disarmed unit type
//! [`NoTelemetry`], and the phase/event vocabulary.
//!
//! Mirrors the `FaultHook`/`GuardHook` compile-time switch discipline
//! from `moat-sim`: the simulators are generic over `T: TelemetryHook`
//! and guard every call with `if T::ARMED { ... }`. With
//! [`NoTelemetry`] the branches constant-fold away, so the disarmed
//! loops compile to exactly the uninstrumented code. Hook ordering at a
//! boundary is fault → guard → telemetry: telemetry observes the
//! settled, post-repair state and must never mutate the simulation.

use moat_dram::Nanos;

/// Where simulated time goes inside a simulator loop. The vocabulary is
/// shared by `SecuritySim` and `PerfSim` so per-cell profiles compare
/// across both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPhase {
    /// Activations flowing through the mitigation engine (the tracker
    /// update itself — MOAT's per-row counters, Panopticon's queue).
    EngineUpdate,
    /// ALERT episode churn: RFM drains and their tRFC-class stalls.
    EpisodeChurn,
    /// Pulling and decoding the request stream (chunk refills).
    StreamDecode,
    /// Row-hint prefetch issued ahead of the chunk.
    Prefetch,
    /// Periodic refresh (REF) windows.
    Refresh,
    /// Simulated time with no work attributed (attacker idles, slack).
    Idle,
}

impl SimPhase {
    /// Number of phases (array-profile width).
    pub const COUNT: usize = 6;

    /// Every phase, in fixed render order.
    pub const ALL: [SimPhase; SimPhase::COUNT] = [
        SimPhase::EngineUpdate,
        SimPhase::EpisodeChurn,
        SimPhase::StreamDecode,
        SimPhase::Prefetch,
        SimPhase::Refresh,
        SimPhase::Idle,
    ];

    /// Stable index into a per-phase array.
    pub fn index(self) -> usize {
        match self {
            SimPhase::EngineUpdate => 0,
            SimPhase::EpisodeChurn => 1,
            SimPhase::StreamDecode => 2,
            SimPhase::Prefetch => 3,
            SimPhase::Refresh => 4,
            SimPhase::Idle => 5,
        }
    }

    /// Render name (also the metrics taxonomy token).
    pub fn name(self) -> &'static str {
        match self {
            SimPhase::EngineUpdate => "engine-update",
            SimPhase::EpisodeChurn => "episode-churn",
            SimPhase::StreamDecode => "stream-decode",
            SimPhase::Prefetch => "prefetch",
            SimPhase::Refresh => "refresh",
            SimPhase::Idle => "idle",
        }
    }
}

/// A point event at a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A bank engine asserted ALERT.
    Alert,
    /// An ALERT episode (RFM drain) completed; payload = RFMs issued.
    Episode {
        /// RFM mitigations the episode performed.
        rfms: u64,
    },
    /// A periodic refresh was performed.
    Ref,
}

impl SimEvent {
    /// Render name (also the metrics taxonomy token).
    pub fn name(self) -> &'static str {
        match self {
            SimEvent::Alert => "alert",
            SimEvent::Episode { .. } => "episode",
            SimEvent::Ref => "ref",
        }
    }
}

/// The observation seam the simulators thread through their loops.
///
/// All default method bodies are empty so an armed hook implements only
/// what it needs; [`NoTelemetry`] relies on `ARMED = false` to erase
/// the call sites entirely. Implementations observe — they must not
/// mutate simulation state, and they must derive everything they record
/// from the arguments (sim time, ACT counts), never from wall-clock.
pub trait TelemetryHook {
    /// Whether the simulator should call this hook at all. Call sites
    /// guard with `if T::ARMED`, so a `false` here constant-folds the
    /// instrumentation away.
    const ARMED: bool;

    /// An event-horizon boundary was reached (one iteration of a
    /// batched loop; one settled step of the per-step reference).
    fn on_boundary(&mut self, _now: Nanos) {}

    /// A point event fired at simulated instant `now`.
    fn on_event(&mut self, _now: Nanos, _event: SimEvent) {}

    /// Simulated time `[start, end)` was spent in `phase`, covering
    /// `units` units of work (ACTs for engine phases, RFMs for episode
    /// churn, requests for stream decode).
    fn on_phase(&mut self, _phase: SimPhase, _start: Nanos, _end: Nanos, _units: u64) {}
}

/// The disarmed hook: never called, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl TelemetryHook for NoTelemetry {
    const ARMED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_match_all_order() {
        for (i, phase) in SimPhase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
    }

    #[test]
    fn no_telemetry_is_disarmed() {
        const { assert!(!NoTelemetry::ARMED) };
        // The defaults must be callable (the armed paths share them).
        let mut t = NoTelemetry;
        t.on_boundary(Nanos::new(0));
        t.on_event(Nanos::new(0), SimEvent::Alert);
        t.on_phase(SimPhase::Idle, Nanos::new(0), Nanos::new(1), 0);
    }
}
