//! The `MOAT_TELEMETRY` configuration: how much to record and how to
//! render it. Same `key=value` grammar, eager validation, and
//! `Display`-round-trips-through-`parse` contract as `MOAT_FAULTS`.

use std::fmt;

/// How much the armed tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// Telemetry disarmed: the hooks are never invoked.
    #[default]
    Off,
    /// Aggregates only: the per-phase profile and the metric counters,
    /// but no individual event/span log (bounded memory regardless of
    /// simulated duration).
    Spans,
    /// Aggregates plus the bounded event/span log needed for a
    /// chrome://tracing timeline.
    Full,
}

impl TelemetryLevel {
    /// The grammar token for this level.
    pub fn name(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Spans => "spans",
            TelemetryLevel::Full => "full",
        }
    }
}

/// How a telemetry artifact is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetrySink {
    /// Deterministic human-readable text (the default).
    #[default]
    Text,
    /// Deterministic JSON (sorted keys, integer values).
    Json,
    /// chrome://tracing trace-event JSON (load via `about:tracing` or
    /// Perfetto; timestamps are virtual nanoseconds, not wall-clock).
    Chrome,
}

impl TelemetrySink {
    /// The grammar token for this sink.
    pub fn name(self) -> &'static str {
        match self {
            TelemetrySink::Text => "text",
            TelemetrySink::Json => "json",
            TelemetrySink::Chrome => "chrome",
        }
    }
}

/// The parsed `MOAT_TELEMETRY` value.
///
/// Pure data, like `FaultPlan`: two runs armed with equal configs (and
/// equal simulation inputs) produce bit-identical telemetry artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Recording level.
    pub level: TelemetryLevel,
    /// Render sink.
    pub sink: TelemetrySink,
}

impl TelemetryConfig {
    /// The environment variable [`from_env`](Self::from_env) reads.
    pub const ENV_VAR: &'static str = "MOAT_TELEMETRY";

    /// The disarmed config: `level=off,sink=text`.
    pub fn off() -> Self {
        TelemetryConfig::default()
    }

    /// The fully armed text config: `level=full,sink=text` — what a
    /// bare `--telemetry` flag arms when the env var is unset.
    pub fn full() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Full,
            sink: TelemetrySink::Text,
        }
    }

    /// Whether any recording happens at all.
    pub fn armed(&self) -> bool {
        self.level != TelemetryLevel::Off
    }

    /// Parses a config from a `key=value` list, e.g.
    /// `level=full,sink=json`. Unspecified fields default to
    /// `level=off,sink=text`; underscores and dashes in keys are
    /// interchangeable.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending token.
    pub fn parse(spec: &str) -> Result<TelemetryConfig, String> {
        let mut config = TelemetryConfig::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("telemetry spec token `{token}` is not key=value"))?;
            let key = key.trim().replace('-', "_");
            let value = value.trim();
            match key.as_str() {
                "level" => {
                    config.level = match value {
                        "off" => TelemetryLevel::Off,
                        "spans" => TelemetryLevel::Spans,
                        "full" => TelemetryLevel::Full,
                        other => {
                            return Err(format!("telemetry level `{other}` is not off|spans|full"))
                        }
                    };
                }
                "sink" => {
                    config.sink = match value {
                        "text" => TelemetrySink::Text,
                        "json" => TelemetrySink::Json,
                        "chrome" => TelemetrySink::Chrome,
                        other => {
                            return Err(format!("telemetry sink `{other}` is not text|json|chrome"))
                        }
                    };
                }
                _ => return Err(format!("unknown telemetry spec key `{key}`")),
            }
        }
        Ok(config)
    }

    /// The config armed via the [`MOAT_TELEMETRY`](Self::ENV_VAR)
    /// environment variable: `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors on a malformed value; a
    /// non-Unicode value surfaces instead of silently disarming.
    pub fn from_env() -> Result<Option<TelemetryConfig>, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(spec) if spec.trim().is_empty() => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{} is set but not valid Unicode", Self::ENV_VAR))
            }
        }
    }
}

impl fmt::Display for TelemetryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "level={},sink={}", self.level.name(), self.sink.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        for level in [
            TelemetryLevel::Off,
            TelemetryLevel::Spans,
            TelemetryLevel::Full,
        ] {
            for sink in [
                TelemetrySink::Text,
                TelemetrySink::Json,
                TelemetrySink::Chrome,
            ] {
                let spec = format!("level={},sink={}", level.name(), sink.name());
                let config = TelemetryConfig::parse(&spec).unwrap();
                assert_eq!(config.level, level);
                assert_eq!(config.sink, sink);
                assert_eq!(config.to_string(), spec, "Display round-trips");
            }
        }
    }

    #[test]
    fn parse_defaults_tolerates_whitespace_and_dashes() {
        assert_eq!(TelemetryConfig::parse("").unwrap(), TelemetryConfig::off());
        assert_eq!(
            TelemetryConfig::parse(" level = full , sink = chrome ,, ").unwrap(),
            TelemetryConfig {
                level: TelemetryLevel::Full,
                sink: TelemetrySink::Chrome,
            }
        );
        // Dashes and underscores in keys are interchangeable (no
        // multi-word keys yet, but the normalization is part of the
        // shared grammar).
        assert!(TelemetryConfig::parse("level=full").unwrap().armed());
    }

    #[test]
    fn parse_rejects_each_malformed_form() {
        for bad in [
            "level",           // not key=value
            "level=verbose",   // unknown level
            "sink=flamegraph", // unknown sink
            "depth=3",         // unknown key
            "level=off,sink",  // trailing non-key=value token
            "level=Full",      // grammar is lowercase
        ] {
            assert!(
                TelemetryConfig::parse(bad).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn from_env_surfaces_each_malformed_form_and_tolerates_absence() {
        // Malformed values only — a valid value set here could race
        // another test reading the variable in parallel into arming.
        let var = TelemetryConfig::ENV_VAR;
        let check = |value: &str, expect_err: bool| {
            std::env::set_var(var, value);
            let result = TelemetryConfig::from_env();
            std::env::remove_var(var);
            assert_eq!(result.is_err(), expect_err, "{var}={value:?} -> {result:?}");
        };
        check("level", true); // not key=value
        check("level=verbose", true); // unknown level
        check("sink=flamegraph", true); // unknown sink
        check("depth=3", true); // unknown key
        check("", false); // empty means off, not an error
        check("  ", false);
        assert_eq!(
            TelemetryConfig::from_env(),
            Ok(None),
            "unset means disarmed"
        );

        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStringExt;
            let bogus = std::ffi::OsString::from_vec(vec![0x66, 0xFF, 0x67]);
            std::env::set_var(var, &bogus);
            let result = TelemetryConfig::from_env();
            std::env::remove_var(var);
            assert!(result.is_err(), "non-Unicode must error: {result:?}");
        }
    }

    #[test]
    fn off_is_disarmed_full_is_armed() {
        assert!(!TelemetryConfig::off().armed());
        assert!(TelemetryConfig::full().armed());
        assert_eq!(TelemetryConfig::full().to_string(), "level=full,sink=text");
    }
}
