//! # moat-telemetry — deterministic observability for the MOAT reproduction
//!
//! MOAT's own design argument is that the authoritative signal must be
//! cheap, always consistent, and derived from the thing itself (per-row
//! activation counters, not a sampled proxy). This crate applies the
//! same discipline to the simulators: every span, event, and metric is
//! keyed to **simulation time and ACT counts, never wall-clock**, so an
//! armed run renders bit-identically across machines, thread counts,
//! shard orders, and checkpoint-resume splits — the telemetry artifact
//! is diffable exactly like the fault-sweep table and `FleetReport`.
//!
//! Three pillars:
//!
//! * [`TelemetryHook`] — the tracing seam. It rides the same
//!   event-horizon boundaries as the fault and guard hooks
//!   (`FaultHook`/`GuardHook` in `moat-sim`), in hook order
//!   fault → guard → telemetry: faults inject, the guard
//!   detects/repairs, and only then does telemetry observe the settled
//!   state. [`NoTelemetry`] is the disarmed unit type; its `ARMED =
//!   false` constant folds every instrumentation branch away, so the
//!   disarmed simulators stay bit-identical to (and as fast as) the
//!   uninstrumented build.
//! * [`MetricsRegistry`] — counters, gauges, and fixed-log2-bucket
//!   histograms ([`Log2Histogram`]) with commutative, associative
//!   merges. Renders (text and JSON) are sorted by metric name, so the
//!   merge of any permutation of shard registries renders identically.
//! * [`Tracer`] — the armed [`TelemetryHook`]: accumulates a per-phase
//!   "where does the simulated time go" [`PhaseProfile`] plus a bounded
//!   event/span log, exportable as deterministic text or as
//!   chrome://tracing trace-event JSON ([`Tracer::render_chrome`]).
//!
//! Configuration follows the repo's env-var grammar
//! (`MOAT_TELEMETRY=level=off|spans|full,sink=text|json|chrome`, see
//! [`TelemetryConfig`]) and is eagerly validated by `repro` with exit
//! code 2, like `MOAT_FAULTS` and its siblings. The [`log`] module is
//! the leveled replacement for scattered `eprintln!` degradation
//! warnings (`MOAT_LOG=error|warn|info`), silent by default so tests
//! stay quiet.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod hook;
pub mod log;
mod metrics;
mod tracer;

pub use config::{TelemetryConfig, TelemetryLevel, TelemetrySink};
pub use hook::{NoTelemetry, SimEvent, SimPhase, TelemetryHook};
pub use log::LogLevel;
pub use metrics::{log2_bucket, Log2Histogram, MetricsRegistry, LOG2_BUCKETS};
pub use tracer::{PhaseProfile, Tracer, MAX_RECORDED};
