//! Leveled degradation logging: the structured replacement for the
//! scattered `eprintln!` warnings.
//!
//! The level is process-global and **silent until initialized** — a
//! plain `cargo test` run never prints degradation chatter. Binaries
//! that want the warnings (the `repro` CLI) call
//! [`init_from_env`] once at startup, which arms the level from
//! [`MOAT_LOG`](LogLevel::ENV_VAR) (defaulting to `warn` when unset).
//! Messages go to stderr so they never contaminate the deterministic
//! stdout artifacts CI diffs.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// A log severity, ordered `Error < Warn < Info` by verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable degradations only.
    Error = 1,
    /// Recoverable degradations (fallbacks, skipped gates) — the
    /// default for the CLI.
    Warn = 2,
    /// Progress notes (live regeneration, checkpoint replays).
    Info = 3,
}

impl LogLevel {
    /// The environment variable [`from_env`](Self::from_env) reads.
    pub const ENV_VAR: &'static str = "MOAT_LOG";

    /// The grammar token for this level.
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
        }
    }

    /// Parses a single level token (`error|warn|info`).
    ///
    /// # Errors
    ///
    /// Returns a description of the offending token.
    pub fn parse(spec: &str) -> Result<LogLevel, String> {
        match spec.trim() {
            "error" => Ok(LogLevel::Error),
            "warn" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            other => Err(format!("log level `{other}` is not error|warn|info")),
        }
    }

    /// The level set via the [`MOAT_LOG`](Self::ENV_VAR) environment
    /// variable: `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors on a malformed value; a
    /// non-Unicode value surfaces instead of silently defaulting.
    pub fn from_env() -> Result<Option<LogLevel>, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(spec) if spec.trim().is_empty() => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{} is set but not valid Unicode", Self::ENV_VAR))
            }
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// 0 = uninitialized (silent); otherwise a `LogLevel` discriminant.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global level. `None` silences logging again (used
/// by tests that probe the gate itself).
pub fn set_level(level: Option<LogLevel>) {
    LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current process-global level; `None` while uninitialized.
pub fn level() -> Option<LogLevel> {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Some(LogLevel::Error),
        2 => Some(LogLevel::Warn),
        3 => Some(LogLevel::Info),
        _ => None,
    }
}

/// Arms the global level from [`MOAT_LOG`](LogLevel::ENV_VAR),
/// defaulting to [`LogLevel::Warn`] when the variable is unset or
/// empty. Called once by the `repro` CLI after eager validation.
///
/// # Errors
///
/// Propagates the malformed-value error so the caller can exit 2.
pub fn init_from_env() -> Result<(), String> {
    set_level(Some(LogLevel::from_env()?.unwrap_or(LogLevel::Warn)));
    Ok(())
}

fn emit(severity: LogLevel, target: &str, message: fmt::Arguments<'_>) {
    if level().is_some_and(|armed| severity <= armed) {
        eprintln!("{severity}: [{target}] {message}");
    }
}

/// Logs an unrecoverable degradation (shown at every armed level).
pub fn error(target: &str, message: fmt::Arguments<'_>) {
    emit(LogLevel::Error, target, message);
}

/// Logs a recoverable degradation (shown at `warn` and `info`).
pub fn warn(target: &str, message: fmt::Arguments<'_>) {
    emit(LogLevel::Warn, target, message);
}

/// Logs a progress note (shown only at `info`).
pub fn info(target: &str, message: fmt::Arguments<'_>) {
    emit(LogLevel::Info, target, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_grammar_and_rejects_the_rest() {
        assert_eq!(LogLevel::parse("error").unwrap(), LogLevel::Error);
        assert_eq!(LogLevel::parse(" warn ").unwrap(), LogLevel::Warn);
        assert_eq!(LogLevel::parse("info").unwrap(), LogLevel::Info);
        for bad in ["", "debug", "WARN", "warn,info", "2"] {
            assert!(LogLevel::parse(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn from_env_surfaces_each_malformed_form_and_tolerates_absence() {
        // Malformed values only — a valid value set here could race a
        // parallel test of the gate itself into a different level.
        let check = |value: &str, expect_err: bool| {
            std::env::set_var(LogLevel::ENV_VAR, value);
            let result = LogLevel::from_env();
            std::env::remove_var(LogLevel::ENV_VAR);
            assert_eq!(
                result.is_err(),
                expect_err,
                "{}={value:?} -> {result:?}",
                LogLevel::ENV_VAR
            );
        };
        check("debug", true); // unknown level
        check("WARN", true); // grammar is lowercase
        check("warn,info", true); // one level, not a list
        check("2", true); // names, not numbers
        check("", false); // empty means default, not an error
        assert_eq!(LogLevel::from_env(), Ok(None), "unset means default");

        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStringExt;
            let bogus = std::ffi::OsString::from_vec(vec![0x77, 0xFE]);
            std::env::set_var(LogLevel::ENV_VAR, &bogus);
            let result = LogLevel::from_env();
            std::env::remove_var(LogLevel::ENV_VAR);
            assert!(result.is_err(), "non-Unicode must error: {result:?}");
        }
    }

    #[test]
    fn verbosity_ordering_gates_correctly() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
    }

    #[test]
    fn display_round_trips_through_parse() {
        for l in [LogLevel::Error, LogLevel::Warn, LogLevel::Info] {
            assert_eq!(LogLevel::parse(&l.to_string()).unwrap(), l);
        }
    }
}
