//! The metrics registry: counters, gauges, and fixed-log2-bucket
//! histograms over `u64` values.
//!
//! Everything is integer arithmetic and every merge is commutative and
//! associative (counters and histogram buckets add, gauges take the
//! max), so merging per-shard registries in **any** order — shard
//! permutations, different thread counts, checkpoint-resume splits —
//! produces the same registry, and the sorted renders are bit-identical.
//! This is the same discipline `FleetReport` already follows.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of histogram buckets: bucket 0 holds exactly the value 0;
/// bucket `k >= 1` holds `[2^(k-1), 2^k)`; bucket 64 therefore holds
/// `[2^63, u64::MAX]`.
pub const LOG2_BUCKETS: usize = 65;

/// The fixed bucket index for a value (see [`LOG2_BUCKETS`]).
pub fn log2_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// A fixed-bucket log2 histogram of `u64` observations.
///
/// The bucket layout never depends on the data, so two histograms can
/// always be merged bucket-wise — the property the registry's
/// permutation invariance rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    count: u64,
    sum: u64,
    buckets: [u64; LOG2_BUCKETS],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            count: 0,
            sum: 0,
            buckets: [0; LOG2_BUCKETS],
        }
    }

    /// Records one observation. The sum saturates rather than wrapping
    /// so `u64::MAX` observations stay well-defined.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[log2_bucket(value)] += 1;
    }

    /// Bucket-wise merge (commutative, associative).
    pub fn merge(&mut self, other: &Log2Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The fixed bucket array.
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.buckets
    }

    /// Compact deterministic render of the non-empty buckets, e.g.
    /// `count=3 sum=12 b0:1 b3:2`.
    pub fn render(&self) -> String {
        let mut out = format!("count={} sum={}", self.count, self.sum);
        for (k, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let _ = write!(out, " b{k}:{n}");
            }
        }
        out
    }
}

/// One named metric in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Metric {
    /// Monotone count; merges by addition.
    Counter(u64),
    /// High-water mark; merges by max (the only gauge semantics that
    /// stay deterministic under reordering).
    Gauge(u64),
    /// Distribution; merges bucket-wise (boxed: the bucket array
    /// dwarfs the scalar variants).
    Histogram(Box<Log2Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "hist",
        }
    }
}

/// A sorted registry of named metrics with order-independent merging.
///
/// Names are dot-separated taxonomies (`fleet.shards.quarantined`,
/// `sweep.faults.retries`); the renders sort by name, so any merge
/// order produces byte-identical output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero). The
    /// sum saturates rather than wrapping, like histogram sums, so the
    /// render stays order-independent even at the `u64` ceiling.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-counter metric — a metric
    /// name maps to exactly one kind, by construction.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v = v.saturating_add(delta),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Raises the gauge `name` to at least `value` (creating it).
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-gauge metric.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Gauge(0))
        {
            Metric::Gauge(v) => *v = (*v).max(value),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Records `value` into the histogram `name` (creating it).
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-histogram metric.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.record(value),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Merges `other` into `self`. Commutative and associative: any
    /// merge tree over the same multiset of registries yields the same
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the same name holds different kinds in the two
    /// registries.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match metric {
                Metric::Counter(v) => self.add(name, *v),
                Metric::Gauge(v) => self.gauge_max(name, *v),
                Metric::Histogram(h) => match self
                    .metrics
                    .entry(name.clone())
                    .or_insert_with(|| Metric::Histogram(Box::default()))
                {
                    Metric::Histogram(mine) => mine.merge(h),
                    other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
                },
            }
        }
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The counter `name`, or 0 when absent (or a different kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge `name`, or 0 when absent (or a different kind).
    pub fn gauge(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram `name`, when present with that kind.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Deterministic text render, one sorted line per metric:
    ///
    /// ```text
    /// metrics (2)
    ///   counter fleet.shards = 16
    ///   hist    sweep.attempts count=3 sum=4 b1:2 b2:1
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("metrics ({})\n", self.metrics.len());
        for (name, metric) in &self.metrics {
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "  counter {name} = {v}");
                }
                Metric::Gauge(v) => {
                    let _ = writeln!(out, "  gauge   {name} = {v}");
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(out, "  hist    {name} {}", h.render());
                }
            }
        }
        out
    }

    /// Deterministic JSON render: one object sorted by metric name,
    /// integer values only.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            match metric {
                Metric::Counter(v) => {
                    let _ = write!(out, "{{\"kind\":\"counter\",\"value\":{v}}}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(out, "{{\"kind\":\"gauge\",\"value\":{v}}}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":{{",
                        h.count(),
                        h.sum()
                    );
                    let mut first = true;
                    for (k, &n) in h.buckets().iter().enumerate() {
                        if n > 0 {
                            if !first {
                                out.push(',');
                            }
                            first = false;
                            let _ = write!(out, "\"{k}\":{n}");
                        }
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_edges() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket((1 << 10) - 1), 10);
        assert_eq!(log2_bucket(1 << 10), 11);
        assert_eq!(log2_bucket(u64::MAX), 64);
        assert_eq!(log2_bucket(1 << 63), 64);
        assert_eq!(log2_bucket((1 << 63) - 1), 63);
    }

    #[test]
    fn histogram_records_and_saturates() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum saturates, never wraps");
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[64], 2);
        assert_eq!(h.render(), format!("count=3 sum={} b0:1 b64:2", u64::MAX));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.add("a.count", 2);
        reg.add("a.count", 3);
        reg.gauge_max("a.peak", 7);
        reg.gauge_max("a.peak", 4);
        reg.observe("a.dist", 5);
        assert_eq!(reg.counter("a.count"), 5);
        assert_eq!(reg.gauge("a.peak"), 7);
        assert_eq!(reg.histogram("a.dist").unwrap().count(), 1);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1);
        a.gauge_max("g", 9);
        a.observe("h", 3);
        let mut b = MetricsRegistry::new();
        b.add("c", 2);
        b.gauge_max("g", 4);
        b.observe("h", 100);
        b.observe("h2", 0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.render(), ba.render());
        assert_eq!(ab.render_json(), ba.render_json());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_collisions_panic() {
        let mut reg = MetricsRegistry::new();
        reg.observe("x", 1);
        reg.add("x", 1);
    }

    #[test]
    fn renders_are_sorted_and_stable() {
        let mut reg = MetricsRegistry::new();
        reg.add("z.last", 1);
        reg.add("a.first", 2);
        let text = reg.render();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        assert_eq!(
            reg.render_json(),
            "{\"a.first\":{\"kind\":\"counter\",\"value\":2},\
             \"z.last\":{\"kind\":\"counter\",\"value\":1}}"
        );
    }
}
