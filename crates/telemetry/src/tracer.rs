//! The armed [`TelemetryHook`]: per-phase profiling, a metrics
//! registry, and a bounded span/event log with chrome://tracing export.

use std::fmt::Write as _;

use moat_dram::Nanos;

use crate::config::{TelemetryLevel, TelemetrySink};
use crate::hook::{SimEvent, SimPhase, TelemetryHook};
use crate::metrics::MetricsRegistry;

/// Upper bound on recorded spans and on recorded events (each) at
/// [`TelemetryLevel::Full`]. Overflow is **not silent**: the render
/// reports how many were dropped, and aggregates (profile, metrics)
/// keep counting past the cap.
pub const MAX_RECORDED: usize = 1 << 16;

/// "Where does the simulated time go": per-phase work units and
/// virtual nanoseconds. Pure integers; merges add.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    units: [u64; SimPhase::COUNT],
    ns: [u64; SimPhase::COUNT],
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    /// Attributes `units` of work and `ns` virtual nanoseconds to
    /// `phase`.
    pub fn add(&mut self, phase: SimPhase, units: u64, ns: u64) {
        self.units[phase.index()] += units;
        self.ns[phase.index()] = self.ns[phase.index()].saturating_add(ns);
    }

    /// Element-wise merge.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..SimPhase::COUNT {
            self.units[i] += other.units[i];
            self.ns[i] = self.ns[i].saturating_add(other.ns[i]);
        }
    }

    /// Work units attributed to `phase`.
    pub fn units(&self, phase: SimPhase) -> u64 {
        self.units[phase.index()]
    }

    /// Virtual nanoseconds attributed to `phase`.
    pub fn ns(&self, phase: SimPhase) -> u64 {
        self.ns[phase.index()]
    }

    /// Total attributed virtual nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// `phase`'s share of the total in permille (integer arithmetic, so
    /// the render is deterministic; 0 when nothing is attributed).
    pub fn permille(&self, phase: SimPhase) -> u64 {
        let total = self.total_ns();
        if total == 0 {
            0
        } else {
            // u128 intermediate: ns * 1000 can overflow u64.
            ((u128::from(self.ns(phase)) * 1000) / u128::from(total)) as u64
        }
    }

    /// Whether anything was attributed.
    pub fn is_empty(&self) -> bool {
        self.units.iter().all(|&u| u == 0) && self.ns.iter().all(|&n| n == 0)
    }

    /// Deterministic text render, one line per phase in fixed order:
    ///
    /// ```text
    /// phase profile (total 4000000 ns)
    ///   engine-update  62.5%  units 12345  ns 2500000
    ///   ...
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!("phase profile (total {} ns)\n", self.total_ns());
        for phase in SimPhase::ALL {
            let pm = self.permille(phase);
            let _ = writeln!(
                out,
                "  {:<14} {:>3}.{}%  units {:>10}  ns {:>12}",
                phase.name(),
                pm / 10,
                pm % 10,
                self.units(phase),
                self.ns(phase),
            );
        }
        out
    }

    /// Deterministic JSON render: `{"engine-update":{"units":..,"ns":..},...}`
    /// in fixed phase order.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, phase) in SimPhase::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"units\":{},\"ns\":{}}}",
                phase.name(),
                self.units(*phase),
                self.ns(*phase),
            );
        }
        out.push('}');
        out
    }
}

/// The armed hook: accumulates a [`PhaseProfile`] and a
/// [`MetricsRegistry`] at every level, plus bounded span/event logs at
/// [`TelemetryLevel::Full`] for the chrome://tracing timeline.
///
/// Everything recorded derives from hook arguments (sim time, ACT
/// counts), so two runs with equal inputs produce bit-identical
/// renders on any machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tracer {
    level: TelemetryLevel,
    boundaries: u64,
    profile: PhaseProfile,
    metrics: MetricsRegistry,
    spans: Vec<(SimPhase, Nanos, Nanos, u64)>,
    events: Vec<(Nanos, SimEvent)>,
    dropped: u64,
}

impl Tracer {
    /// A tracer recording at `level` ([`TelemetryLevel::Off`] records
    /// nothing but still satisfies `ARMED`; prefer `NoTelemetry` for a
    /// truly free run).
    pub fn new(level: TelemetryLevel) -> Self {
        Tracer {
            level,
            boundaries: 0,
            profile: PhaseProfile::new(),
            metrics: MetricsRegistry::new(),
            spans: Vec::new(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// A fully armed tracer (`level=full`).
    pub fn full() -> Self {
        Tracer::new(TelemetryLevel::Full)
    }

    /// The recording level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Event-horizon boundaries observed.
    pub fn boundaries(&self) -> u64 {
        self.boundaries
    }

    /// The accumulated per-phase profile.
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// The accumulated metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics (for callers folding in derived
    /// registries, e.g. sweep-cell stats).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// Spans and events dropped past [`MAX_RECORDED`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders via `sink`: [`TelemetrySink::Text`] → [`render_text`]
    /// (profile + metrics + log summary), [`TelemetrySink::Json`] →
    /// [`render_json`], [`TelemetrySink::Chrome`] → [`render_chrome`].
    ///
    /// [`render_text`]: Self::render_text
    /// [`render_json`]: Self::render_json
    /// [`render_chrome`]: Self::render_chrome
    pub fn render(&self, sink: TelemetrySink) -> String {
        match sink {
            TelemetrySink::Text => self.render_text(),
            TelemetrySink::Json => self.render_json(),
            TelemetrySink::Chrome => self.render_chrome(),
        }
    }

    /// Deterministic text render: boundary/record counts, the phase
    /// profile, and the sorted metrics.
    pub fn render_text(&self) -> String {
        let mut out = String::from("telemetry\n");
        let _ = writeln!(out, "  level      {}", self.level.name());
        let _ = writeln!(out, "  boundaries {}", self.boundaries);
        let _ = writeln!(
            out,
            "  recorded   {} spans, {} events, {} dropped",
            self.spans.len(),
            self.events.len(),
            self.dropped,
        );
        for line in self.profile.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
        for line in self.metrics.render().lines() {
            let _ = writeln!(out, "  {line}");
        }
        out
    }

    /// Deterministic JSON render of the aggregates (no span/event log —
    /// use [`render_chrome`](Self::render_chrome) for the timeline).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"level\":\"{}\",\"boundaries\":{},\"spans\":{},\"events\":{},\"dropped\":{},\
             \"profile\":{},\"metrics\":{}}}",
            self.level.name(),
            self.boundaries,
            self.spans.len(),
            self.events.len(),
            self.dropped,
            self.profile.render_json(),
            self.metrics.render_json(),
        )
    }

    /// chrome://tracing trace-event JSON. Timestamps are **virtual
    /// nanoseconds** of simulated time (the trace viewer's unit is
    /// nominally microseconds; the shape of the timeline is what
    /// matters, and keeping raw integers keeps the artifact
    /// bit-deterministic). Spans render as complete (`"X"`) events,
    /// point events as instants (`"i"`).
    pub fn render_chrome(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("\n  ");
        };
        for (phase, start, end, units) in &self.spans {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":0,\"args\":{{\"units\":{}}}}}",
                phase.name(),
                start.as_u64(),
                end.as_u64().saturating_sub(start.as_u64()),
                units,
            );
        }
        for (at, event) in &self.events {
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\
                 \"pid\":0,\"tid\":0,\"s\":\"t\"}}",
                event.name(),
                at.as_u64(),
            );
        }
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"telemetry\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"boundaries\":{},\"dropped\":{}}}}}",
            self.boundaries, self.dropped,
        );
        out.push_str("\n]\n");
        out
    }
}

impl TelemetryHook for Tracer {
    const ARMED: bool = true;

    fn on_boundary(&mut self, _now: Nanos) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.boundaries += 1;
    }

    fn on_event(&mut self, now: Nanos, event: SimEvent) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        self.metrics.add(&format!("events.{}", event.name()), 1);
        if let SimEvent::Episode { rfms } = event {
            self.metrics.observe("episode.rfms", rfms);
        }
        if self.level == TelemetryLevel::Full {
            if self.events.len() < MAX_RECORDED {
                self.events.push((now, event));
            } else {
                self.dropped += 1;
            }
        }
    }

    fn on_phase(&mut self, phase: SimPhase, start: Nanos, end: Nanos, units: u64) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        let ns = end.as_u64().saturating_sub(start.as_u64());
        if units == 0 && ns == 0 {
            return;
        }
        self.profile.add(phase, units, ns);
        if self.level == TelemetryLevel::Full {
            if self.spans.len() < MAX_RECORDED {
                self.spans.push((phase, start, end, units));
            } else {
                self.dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_attribution_and_permille() {
        let mut p = PhaseProfile::new();
        p.add(SimPhase::EngineUpdate, 10, 750);
        p.add(SimPhase::Idle, 0, 250);
        assert_eq!(p.total_ns(), 1000);
        assert_eq!(p.permille(SimPhase::EngineUpdate), 750);
        assert_eq!(p.permille(SimPhase::Idle), 250);
        assert_eq!(p.permille(SimPhase::Refresh), 0);
        let mut q = p;
        q.merge(&p);
        assert_eq!(q.units(SimPhase::EngineUpdate), 20);
        assert_eq!(
            q.permille(SimPhase::EngineUpdate),
            750,
            "shares survive merge"
        );
    }

    #[test]
    fn tracer_records_by_level() {
        let mut spans_only = Tracer::new(TelemetryLevel::Spans);
        let mut full = Tracer::full();
        for t in [&mut spans_only, &mut full] {
            t.on_boundary(Nanos::new(1));
            t.on_event(Nanos::new(2), SimEvent::Alert);
            t.on_event(Nanos::new(3), SimEvent::Episode { rfms: 4 });
            t.on_phase(SimPhase::EpisodeChurn, Nanos::new(3), Nanos::new(9), 4);
        }
        assert_eq!(spans_only.boundaries(), 1);
        assert_eq!(spans_only.metrics().counter("events.alert"), 1);
        assert_eq!(spans_only.events.len(), 0, "spans level keeps no log");
        assert_eq!(full.events.len(), 2);
        assert_eq!(full.spans.len(), 1);
        assert_eq!(full.profile().ns(SimPhase::EpisodeChurn), 6);
        assert_eq!(full.metrics().histogram("episode.rfms").unwrap().sum(), 4);
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let mut t = Tracer::full();
        for i in 0..(MAX_RECORDED as u64 + 5) {
            t.on_event(Nanos::new(i), SimEvent::Ref);
        }
        assert_eq!(t.events.len(), MAX_RECORDED);
        assert_eq!(t.dropped(), 5);
        assert!(t.render_text().contains("5 dropped"));
    }

    #[test]
    fn renders_are_deterministic_and_well_formed() {
        let mut t = Tracer::full();
        t.on_boundary(Nanos::new(0));
        t.on_phase(SimPhase::EngineUpdate, Nanos::new(0), Nanos::new(100), 7);
        t.on_event(Nanos::new(50), SimEvent::Alert);
        assert_eq!(t.render_text(), t.clone().render_text());
        let chrome = t.render_chrome();
        assert!(chrome.starts_with('[') && chrome.trim_end().ends_with(']'));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert_eq!(
            chrome.matches('{').count(),
            chrome.matches('}').count(),
            "balanced braces"
        );
        let json = t.render_json();
        assert!(json.contains("\"profile\":{"));
        assert!(json.contains("\"metrics\":{"));
    }
}
