//! One shard's serving run: tenant multiplexing onto a per-shard
//! `PerfSim`/`SecuritySim` pair.
//!
//! A shard is one rank's bank set. Its tenants are the fleet-wide tenant
//! ids striped across shards (`tenant % shards == shard.index`); each
//! tenant is a [`WorkloadStream`] drawn from the paper's profile table,
//! seeded per-tenant so the fleet's traffic is reproducible down to the
//! request. The shard multiplexes its tenants round-robin in small
//! bursts — the memory-controller view of many users sharing a rank —
//! and runs the merged stream through a perf sim (ALERTs on vs. off for
//! slowdown) and a security sim with the shard's derived engine-level
//! fault plan.
//!
//! `run_shard` is a *pure function* of (config, shard index, fault):
//! no clocks, no global state. That is what lets the supervisor retry
//! it, run it on any worker thread, or replay it from a checkpoint and
//! still merge bit-identical fleet reports.

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{BankId, MitigationEngine};
use moat_faults::FaultInjector;
use moat_guard::EngineGuard;
use moat_sim::{
    hammer_attacker, PerfConfig, PerfSim, Request, RequestStream, SecurityConfig, SecuritySim,
};
use moat_trackers::registry;
use moat_workloads::{GeneratorConfig, WorkloadStream, PROFILES};

use crate::faults::{shard_seed, ShardFault};
use crate::supervisor::FleetConfig;
use crate::topology::ShardId;

/// Requests taken from one tenant per multiplexer turn — small enough
/// that tenants genuinely interleave within a tREFI, large enough to
/// mimic a scheduler's burst locality.
const MUX_BURST: usize = 32;

/// What one shard measured. Everything here is deterministic simulation
/// output — no wall-clock times — so reports can be diffed bit-for-bit
/// across runs, thread counts, and checkpoint replays.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// The shard's flat fleet index.
    pub shard_index: u32,
    /// Tenants assigned to this shard (including poisoned ones).
    pub tenants: u32,
    /// Global ids of tenant streams that panicked during
    /// materialization and were dropped from the mux.
    pub poisoned: Vec<u32>,
    /// Requests executed by the perf sim.
    pub perf_acts: u64,
    /// ALERTs asserted during the perf run.
    pub alerts: u64,
    /// ALERTs per tREFI (the Fig. 11b metric, per shard).
    pub alerts_per_trefi: f64,
    /// Slowdown of the ALERT-enabled run vs. the ALERT-free baseline.
    pub slowdown: f64,
    /// Attacker activations executed by the security sim.
    pub security_acts: u64,
    /// ALERTs asserted during the security run.
    pub security_alerts: u64,
    /// Highest hammer pressure observed on the shard's victim rows.
    pub max_pressure: u32,
    /// Mitigation horizons the injected engine faults proved unsound.
    pub unsound_horizons: u64,
    /// Activations that escaped mitigation due to injected faults.
    pub escaped_acts: u64,
    /// Tracker-state corruptions the integrity guard detected (0 when
    /// no recovery policy is armed).
    pub integrity_detected: u64,
    /// Corruptions the guard restored exactly from its shadow.
    pub integrity_repaired: u64,
    /// Conservative fallback mitigations issued for untrusted rows.
    pub fallback_mitigations: u64,
    /// Scrub passes resyncing the tracker against in-array counters.
    pub scrubs: u64,
    /// Whether the fault plan marked this shard slow (recorded from the
    /// *plan decision*, not measured time, to keep reports deterministic).
    pub slow_injected: bool,
}

impl ShardReport {
    /// Serializes to a single-line `key=value` record for the
    /// checkpoint store. Floats are stored as `f64::to_bits` hex so a
    /// replayed shard merges bit-identically with a live one.
    pub fn to_record(&self) -> String {
        let poisoned = self
            .poisoned
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join("+");
        format!(
            "shard={} tenants={} poisoned={} perf_acts={} alerts={} \
             alerts_per_trefi={:016x} slowdown={:016x} security_acts={} \
             security_alerts={} max_pressure={} unsound={} escaped={} \
             idet={} irep={} ifb={} iscr={} slow={}",
            self.shard_index,
            self.tenants,
            poisoned,
            self.perf_acts,
            self.alerts,
            self.alerts_per_trefi.to_bits(),
            self.slowdown.to_bits(),
            self.security_acts,
            self.security_alerts,
            self.max_pressure,
            self.unsound_horizons,
            self.escaped_acts,
            self.integrity_detected,
            self.integrity_repaired,
            self.fallback_mitigations,
            self.scrubs,
            self.slow_injected,
        )
    }

    /// Parses a [`to_record`](Self::to_record) line. `None` on any
    /// mismatch — the caller falls back to re-running the shard live.
    pub fn parse(record: &str) -> Option<ShardReport> {
        let mut fields = std::collections::HashMap::new();
        for token in record.split_whitespace() {
            let (k, v) = token.split_once('=')?;
            fields.insert(k, v);
        }
        let int = |k: &str| fields.get(k)?.parse::<u64>().ok();
        let bits = |k: &str| {
            u64::from_str_radix(fields.get(k)?, 16)
                .map(f64::from_bits)
                .ok()
        };
        let poisoned = match *fields.get("poisoned")? {
            "" => Vec::new(),
            list => list
                .split('+')
                .map(|t| t.parse::<u32>().ok())
                .collect::<Option<Vec<u32>>>()?,
        };
        Some(ShardReport {
            shard_index: int("shard")? as u32,
            tenants: int("tenants")? as u32,
            poisoned,
            perf_acts: int("perf_acts")?,
            alerts: int("alerts")?,
            alerts_per_trefi: bits("alerts_per_trefi")?,
            slowdown: bits("slowdown")?,
            security_acts: int("security_acts")?,
            security_alerts: int("security_alerts")?,
            max_pressure: int("max_pressure")? as u32,
            unsound_horizons: int("unsound")?,
            escaped_acts: int("escaped")?,
            integrity_detected: int("idet")?,
            integrity_repaired: int("irep")?,
            fallback_mitigations: int("ifb")?,
            scrubs: int("iscr")?,
            slow_injected: fields.get("slow")?.parse::<bool>().ok()?,
        })
    }
}

/// The global tenant ids striped onto `shard` (`id % shards == index`).
pub fn shard_tenants(config: &FleetConfig, shard: ShardId) -> Vec<u32> {
    let shards = config.topology.shards();
    (shard.index..config.tenants)
        .step_by(shards as usize)
        .collect()
}

/// Deterministic per-tenant stream seed.
fn tenant_seed(fleet_seed: u64, tenant: u32) -> u64 {
    shard_seed(fleet_seed ^ 0x007E_4A47, tenant)
}

/// Materializes tenant `tenant`'s request quota. Panics if the fleet
/// fault plan poisoned this stream — the caller catches it per-tenant.
fn materialize_tenant(config: &FleetConfig, tenant: u32, poisoned: bool) -> Vec<Request> {
    assert!(
        !poisoned,
        "poisoned tenant stream {tenant}: generator state corrupt"
    );
    let seed = tenant_seed(config.seed, tenant);
    let profile = &PROFILES[(seed % PROFILES.len() as u64) as usize];
    let dram = SecurityConfig::paper_default().dram;
    let mut stream = WorkloadStream::new(
        profile,
        &dram,
        GeneratorConfig {
            banks: config.topology.banks_per_rank,
            windows: 1,
            seed,
        },
    );
    let quota = config.acts_per_tenant as usize;
    let mut out = Vec::with_capacity(quota);
    let mut chunk = Vec::with_capacity(quota.clamp(64, 1024));
    while out.len() < quota {
        if stream.next_chunk(&mut chunk) == 0 {
            break;
        }
        let take = chunk.len().min(quota - out.len());
        out.extend_from_slice(&chunk[..take]);
    }
    out
}

/// Round-robin multiplex of per-tenant request vectors in
/// [`MUX_BURST`]-sized turns, remapping banks by tenant position so
/// co-located tenants spread across the rank's banks.
fn multiplex(tenant_requests: &[Vec<Request>], banks: u16) -> Vec<Request> {
    let total: usize = tenant_requests.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut cursors = vec![0usize; tenant_requests.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (pos, (reqs, cursor)) in tenant_requests.iter().zip(cursors.iter_mut()).enumerate() {
            let burst = MUX_BURST.min(reqs.len() - *cursor);
            for r in &reqs[*cursor..*cursor + burst] {
                merged.push(Request {
                    gap: r.gap,
                    bank: BankId::new((r.bank.index() + pos as u16) % banks),
                    row: r.row,
                });
            }
            *cursor += burst;
            remaining -= burst;
        }
    }
    merged
}

/// Runs one shard to completion and returns its report.
///
/// Panics (deliberately) when the fault plan crashes this attempt; the
/// supervisor's `catch_unwind` turns that into a retry. A poisoned
/// tenant, by contrast, is caught *here* at tenant granularity: the
/// tenant is dropped, recorded in [`ShardReport::poisoned`], and the
/// shard completes degraded — a bad user stream must not take out the
/// rank serving its neighbours.
pub fn run_shard(
    config: &FleetConfig,
    shard: ShardId,
    fault: &ShardFault,
    attempt: u32,
) -> ShardReport {
    assert!(
        fault.crash_attempts < attempt,
        "injected shard worker crash ({shard}, attempt {attempt})"
    );

    let tenants = shard_tenants(config, shard);
    let poison_local = fault
        .poison_draw
        .filter(|_| !tenants.is_empty())
        .map(|draw| (draw % tenants.len() as u64) as usize);

    let mut poisoned = Vec::new();
    let mut tenant_requests = Vec::with_capacity(tenants.len());
    for (pos, &tenant) in tenants.iter().enumerate() {
        let is_poisoned = poison_local == Some(pos);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            materialize_tenant(config, tenant, is_poisoned)
        })) {
            Ok(requests) => tenant_requests.push(requests),
            Err(_) => poisoned.push(tenant),
        }
    }

    let banks = config.topology.banks_per_rank;
    let merged = multiplex(&tenant_requests, banks);

    // Engine dispatch: the default `"moat"` mix stays on the concrete
    // monomorphized path (the per-ACT hooks inline into the sim loops);
    // every other registry name runs the boxed dynamic-dispatch form.
    // Both forms produce bit-identical reports for the same engine.
    match config.engine_of(shard.index) {
        "moat" => measure_shard(config, shard, fault, &tenants, poisoned, &merged, || {
            MoatEngine::new(MoatConfig::paper_default())
        }),
        name => {
            let spec = registry::spec(name).unwrap_or_else(|| {
                panic!("unknown fleet engine {name:?} (validate names eagerly)")
            });
            measure_shard(config, shard, fault, &tenants, poisoned, &merged, || {
                spec.build()
            })
        }
    }
}

/// The measurement half of [`run_shard`], generic over the mitigation
/// engine: the multiplexed perf pair (ALERTs on vs. off) and the
/// security run under the shard's derived fault plan.
fn measure_shard<E, F>(
    config: &FleetConfig,
    shard: ShardId,
    fault: &ShardFault,
    tenants: &[u32],
    poisoned: Vec<u32>,
    merged: &[Request],
    engine: F,
) -> ShardReport
where
    E: MitigationEngine,
    F: Fn() -> E,
{
    let banks = config.topology.banks_per_rank;
    // Perf: the same multiplexed stream with ALERTs honoured and
    // ignored; the ratio is the shard's tenant-visible slowdown.
    let (perf, slowdown) = if merged.is_empty() {
        (None, 0.0)
    } else {
        let run = |alerts: bool| {
            let cfg = PerfConfig::paper_default().banks(banks).alerts(alerts);
            let mut sim = PerfSim::new(cfg, &engine);
            sim.run(merged.iter().copied())
        };
        let enabled = run(true);
        let baseline = run(false);
        let slowdown = enabled.slowdown_vs(&baseline);
        (Some(enabled), slowdown)
    };

    // Security: a hammer adversary on this rank under the shard's
    // derived engine-level fault plan, with the counter-integrity guard
    // armed when the config carries a recovery policy.
    let mut injector = FaultInjector::new(
        config.faults.engine_plan(shard.index),
        SecurityConfig::paper_default().dram.rows_per_bank,
    );
    let mut security_sim = SecuritySim::new(SecurityConfig::paper_default(), engine());
    let mut attacker = hammer_attacker(5 + shard.index % 32);
    let (security, recovery) = match config.recovery {
        None => (
            security_sim.run_batched_with_faults(
                &mut attacker,
                config.security_window,
                &mut injector,
            ),
            None,
        ),
        Some(plan) => {
            let mut guard = EngineGuard::new(plan);
            guard.arm(security_sim.unit_mut());
            let report = security_sim.run_batched_guarded(
                &mut attacker,
                config.security_window,
                &mut injector,
                &mut guard,
            );
            (report, Some(guard.stats()))
        }
    };
    let fault_stats = injector.stats();

    ShardReport {
        shard_index: shard.index,
        tenants: tenants.len() as u32,
        poisoned,
        perf_acts: perf.as_ref().map_or(0, |p| p.total_acts),
        alerts: perf.as_ref().map_or(0, |p| p.alerts),
        alerts_per_trefi: perf.as_ref().map_or(0.0, |p| p.alerts_per_trefi),
        slowdown,
        security_acts: security.total_acts,
        security_alerts: security.alerts,
        max_pressure: security.max_pressure,
        unsound_horizons: fault_stats.unsound_horizons,
        escaped_acts: fault_stats.escaped_acts,
        integrity_detected: recovery.map_or(0, |r| r.detected),
        integrity_repaired: recovery.map_or(0, |r| r.repaired),
        fallback_mitigations: recovery.map_or(0, |r| r.fallback_mitigations),
        scrubs: recovery.map_or(0, |r| r.scrubs),
        slow_injected: fault.slow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::FleetConfig;
    use crate::topology::FleetTopology;

    fn tiny_config() -> FleetConfig {
        FleetConfig::new(FleetTopology::with_shards(4), 16, 64, 0xF1EE7)
    }

    #[test]
    fn tenants_stripe_across_shards_without_overlap() {
        let config = tiny_config();
        let mut seen = Vec::new();
        for shard in config.topology.iter() {
            seen.extend(shard_tenants(&config, shard));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn run_shard_is_deterministic() {
        let config = tiny_config();
        let shard = config.topology.shard(1);
        let a = run_shard(&config, shard, &ShardFault::none(), 1);
        let b = run_shard(&config, shard, &ShardFault::none(), 1);
        assert_eq!(a, b);
        assert!(a.perf_acts > 0, "tenants must generate traffic");
        assert!(a.security_acts > 0);
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let config = tiny_config();
        let shard = config.topology.shard(2);
        let report = run_shard(&config, shard, &ShardFault::none(), 1);
        let parsed = ShardReport::parse(&report.to_record()).expect("record parses");
        assert_eq!(parsed, report);

        let mut with_poison = report.clone();
        with_poison.poisoned = vec![2, 6];
        let parsed = ShardReport::parse(&with_poison.to_record()).unwrap();
        assert_eq!(parsed, with_poison);

        assert_eq!(ShardReport::parse("gibberish"), None);
        assert_eq!(
            ShardReport::parse("shard=1 tenants=2"),
            None,
            "missing fields"
        );
    }

    #[test]
    fn crash_fault_panics_until_attempt_exceeds_depth() {
        let config = tiny_config();
        let shard = config.topology.shard(0);
        let fault = ShardFault {
            crash_attempts: 2,
            ..ShardFault::none()
        };
        for attempt in [1, 2] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_shard(&config, shard, &fault, attempt)
            }));
            assert!(result.is_err(), "attempt {attempt} must crash");
        }
        let ok = run_shard(&config, shard, &fault, 3);
        assert_eq!(ok, run_shard(&config, shard, &ShardFault::none(), 1));
    }

    #[test]
    fn recovery_policy_closes_unsound_horizons_in_shard() {
        use crate::faults::FleetFaultPlan;
        use moat_faults::FaultPlan;
        use moat_guard::RecoveryPlan;

        let mut config = tiny_config();
        config.faults = FleetFaultPlan {
            base: FaultPlan::seu(0xF1EE7, 1e-2),
            ..FleetFaultPlan::none(0xF1EE7)
        };
        let shard = config.topology.shard(1);
        let unguarded = run_shard(&config, shard, &ShardFault::none(), 1);
        assert_eq!(unguarded.integrity_detected, 0, "no guard, no telemetry");

        let guarded_config = config.with_recovery(RecoveryPlan::full());
        let guarded = run_shard(&guarded_config, shard, &ShardFault::none(), 1);
        assert!(
            guarded.integrity_detected > 0,
            "SEU at 1e-2 must corrupt tracker state the guard sees"
        );
        assert_eq!(
            guarded.unsound_horizons, 0,
            "the full recovery policy closes every horizon"
        );
        assert_eq!(guarded.escaped_acts, 0);
        assert!(guarded.unsound_horizons <= unguarded.unsound_horizons);

        // The extended record (integrity fields included) round-trips.
        let parsed = ShardReport::parse(&guarded.to_record()).expect("record parses");
        assert_eq!(parsed, guarded);
        // Legacy records without the integrity keys are rejected, which
        // makes the supervisor fall back to a live re-run.
        let legacy = guarded
            .to_record()
            .split_whitespace()
            .filter(|t| !t.starts_with("idet") && !t.starts_with("irep"))
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(ShardReport::parse(&legacy), None);
    }

    #[test]
    fn heterogeneous_engine_mix_stripes_and_stays_deterministic() {
        let config = tiny_config().with_engines(&["moat", "panopticon", "comet"]);
        assert_eq!(config.engine_of(0), "moat");
        assert_eq!(config.engine_of(1), "panopticon");
        assert_eq!(config.engine_of(2), "comet");
        assert_eq!(config.engine_of(3), "moat");

        // A registry-dispatched (boxed) shard is as deterministic as the
        // monomorphized MOAT path.
        let shard = config.topology.shard(2);
        let a = run_shard(&config, shard, &ShardFault::none(), 1);
        let b = run_shard(&config, shard, &ShardFault::none(), 1);
        assert_eq!(a, b);
        assert!(a.perf_acts > 0);
        assert!(a.security_acts > 0);
    }

    #[test]
    fn poisoned_tenant_is_dropped_not_fatal() {
        let config = tiny_config();
        let shard = config.topology.shard(3);
        let clean = run_shard(&config, shard, &ShardFault::none(), 1);
        let fault = ShardFault {
            poison_draw: Some(1),
            ..ShardFault::none()
        };
        let degraded = run_shard(&config, shard, &fault, 1);
        assert_eq!(degraded.poisoned.len(), 1);
        assert!(
            degraded.perf_acts < clean.perf_acts,
            "dropped tenant's traffic is gone"
        );
        assert_eq!(degraded.tenants, clean.tenants, "assignment unchanged");
    }
}
