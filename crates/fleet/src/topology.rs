//! The fleet's physical shape: channels × DIMMs × ranks.
//!
//! MOAT is evaluated per sub-channel, but a production deployment serves
//! a datacenter node with several memory channels, each with multiple
//! DIMMs, each DIMM with multiple ranks. One **shard** is one rank's
//! bank set — the natural unit of isolation, because a rank has its own
//! per-row counters, its own ALERT wiring, and (in this harness) its own
//! `PerfSim`/`SecuritySim` pair that can crash or stall without touching
//! its neighbours.

use std::fmt;

/// A multi-channel × multi-DIMM × multi-rank fleet topology.
///
/// The shard count is the product of the three levels; shard indices
/// enumerate ranks in channel-major order (`channel`, then `dimm`, then
/// `rank`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetTopology {
    /// Memory channels on the node.
    pub channels: u32,
    /// DIMMs per channel.
    pub dimms_per_channel: u32,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u32,
    /// Banks in each rank's sub-channel (the per-shard sim width).
    pub banks_per_rank: u16,
}

impl FleetTopology {
    /// Total shards (= ranks) in the fleet.
    pub fn shards(&self) -> u32 {
        self.channels * self.dimms_per_channel * self.ranks_per_dimm
    }

    /// Builds a topology with exactly `n` shards by factoring `n` into
    /// levels: dual-rank DIMMs when `n` is even, two DIMMs per channel
    /// when divisible by four, the remainder as channels. 64 shards
    /// become 16 channels × 2 DIMMs × 2 ranks; odd counts degenerate to
    /// `n` single-rank channels.
    pub fn with_shards(n: u32) -> Self {
        let n = n.max(1);
        let ranks_per_dimm = if n.is_multiple_of(2) { 2 } else { 1 };
        let dimms_per_channel = if n.is_multiple_of(4) { 2 } else { 1 };
        let channels = n / (ranks_per_dimm * dimms_per_channel);
        FleetTopology {
            channels,
            dimms_per_channel,
            ranks_per_dimm,
            banks_per_rank: 8,
        }
    }

    /// Sets the per-rank bank count.
    #[must_use]
    pub fn banks(mut self, banks_per_rank: u16) -> Self {
        self.banks_per_rank = banks_per_rank;
        self
    }

    /// The shard at fleet-wide index `index` (`0..shards()`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= shards()`.
    pub fn shard(&self, index: u32) -> ShardId {
        assert!(index < self.shards(), "shard index {index} out of range");
        let ranks_per_channel = self.dimms_per_channel * self.ranks_per_dimm;
        ShardId {
            index,
            channel: index / ranks_per_channel,
            dimm: (index % ranks_per_channel) / self.ranks_per_dimm,
            rank: index % self.ranks_per_dimm,
        }
    }

    /// Iterates every shard in index order.
    pub fn iter(&self) -> impl Iterator<Item = ShardId> + '_ {
        (0..self.shards()).map(|i| self.shard(i))
    }
}

/// One shard's position in the fleet: its flat index plus the
/// channel/DIMM/rank coordinates it decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardId {
    /// Flat fleet-wide index (channel-major).
    pub index: u32,
    /// Channel coordinate.
    pub channel: u32,
    /// DIMM coordinate within the channel.
    pub dimm: u32,
    /// Rank coordinate within the DIMM.
    pub rank: u32,
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{:02}.d{}.r{}", self.channel, self.dimm, self.rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_shards_factors_and_round_trips() {
        for n in [1, 2, 3, 4, 7, 8, 64, 100, 1000] {
            let t = FleetTopology::with_shards(n);
            assert_eq!(t.shards(), n, "factorization must preserve count for {n}");
        }
        let t = FleetTopology::with_shards(64);
        assert_eq!(
            (t.channels, t.dimms_per_channel, t.ranks_per_dimm),
            (16, 2, 2)
        );
    }

    #[test]
    fn shard_coordinates_enumerate_channel_major() {
        let t = FleetTopology::with_shards(8); // 2ch × 2d × 2r
        assert_eq!(
            (t.channels, t.dimms_per_channel, t.ranks_per_dimm),
            (2, 2, 2)
        );
        let ids: Vec<ShardId> = t.iter().collect();
        assert_eq!(ids.len(), 8);
        assert_eq!((ids[0].channel, ids[0].dimm, ids[0].rank), (0, 0, 0));
        assert_eq!((ids[1].channel, ids[1].dimm, ids[1].rank), (0, 0, 1));
        assert_eq!((ids[2].channel, ids[2].dimm, ids[2].rank), (0, 1, 0));
        assert_eq!((ids[7].channel, ids[7].dimm, ids[7].rank), (1, 1, 1));
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index, i as u32);
        }
        assert_eq!(ids[2].to_string(), "ch00.d1.r0");
    }
}
