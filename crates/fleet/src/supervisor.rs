//! The self-healing shard supervisor.
//!
//! Every shard attempt runs on its own worker thread under
//! `catch_unwind`, watched by a deadline: the supervisor waits
//! [`FleetConfig::deadline`] for the attempt's result and treats
//! silence as a failure exactly like a panic. Failures retry under the
//! shared deterministic [`RetryPolicy`]; a shard that exhausts its
//! attempts is **quarantined** — its coverage is marked degraded in the
//! merged report and an incident is logged, but its siblings and the
//! run itself complete. The state machine per shard:
//!
//! ```text
//! running ──ok──────────────────────────▶ completed
//!    │ panic/timeout
//!    ▼
//! retrying ──ok──▶ recovered (incident: retry-recovered)
//!    │ attempts exhausted
//!    ▼
//! quarantined (incident: quarantined-crash | quarantined-stall)
//! ```
//!
//! Determinism: fates are drawn per shard from the seeded
//! [`FleetFaultPlan`](crate::FleetFaultPlan) and shard results are pure
//! functions of `(config, shard)`, so the merged report is bit-identical
//! for any submission order, thread count, or resume-from-checkpoint
//! split — the chaos tests pin exactly that.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moat_dram::Nanos;
use moat_guard::RecoveryPlan;

use crate::faults::FleetFaultPlan;
use crate::report::{FleetReport, FleetStats};
use crate::retry::RetryPolicy;
use crate::shard::{run_shard, ShardReport};
use crate::topology::{FleetTopology, ShardId};

/// Configuration of a fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Physical shape: channels × DIMMs × ranks.
    pub topology: FleetTopology,
    /// Fleet-wide tenant count, striped across shards.
    pub tenants: u32,
    /// Request quota each tenant contributes to its shard's mux.
    pub acts_per_tenant: u32,
    /// Master seed for tenant streams and fault draws.
    pub seed: u64,
    /// Watchdog deadline per shard attempt.
    pub deadline: Duration,
    /// Injected latency for a slow-marked shard.
    pub slow_latency: Duration,
    /// Virtual duration of each shard's security-sim adversary run.
    pub security_window: Nanos,
    /// Max-pressure level above which a shard logs a blast-radius
    /// incident (clean MOAT keeps hammer pressure below 99).
    pub blast_threshold: u32,
    /// Retry policy for failed shard attempts.
    pub retry: RetryPolicy,
    /// Fleet- and engine-level fault injection.
    pub faults: FleetFaultPlan,
    /// Per-shard recovery policy: when set, every shard's security sim
    /// runs with an armed counter-integrity guard executing this plan,
    /// so transient tracker corruption is detected and recovered
    /// in-shard instead of surfacing as lost coverage.
    pub recovery: Option<RecoveryPlan>,
    /// Mitigation-engine mix, as `moat_trackers::registry` names. Shard
    /// `i` runs `engines[i % engines.len()]` — one name gives a
    /// homogeneous fleet, several stripe a heterogeneous one across the
    /// shards. `"moat"` keeps the monomorphized fast path; every other
    /// name is built through the registry (callers validate names
    /// eagerly; an unknown name panics inside the shard worker and
    /// quarantines that shard).
    pub engines: &'static [&'static str],
}

impl FleetConfig {
    /// A config with supervisor defaults: 2 s watchdog, 25 ms slow
    /// latency, 1 ms security window, blast threshold 256, the fleet
    /// retry policy, and no fault injection.
    pub fn new(topology: FleetTopology, tenants: u32, acts_per_tenant: u32, seed: u64) -> Self {
        FleetConfig {
            topology,
            tenants,
            acts_per_tenant,
            seed,
            deadline: Duration::from_secs(2),
            slow_latency: Duration::from_millis(25),
            security_window: Nanos::from_millis(1),
            blast_threshold: 256,
            retry: RetryPolicy::fleet_default(),
            faults: FleetFaultPlan::none(seed),
            recovery: None,
            engines: &["moat"],
        }
    }

    /// Replaces the fault plan (keeping its seed independent of the
    /// stream seed).
    #[must_use]
    pub fn with_faults(mut self, faults: FleetFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Arms the per-shard counter-integrity guard with `recovery`.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPlan) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Sets the engine mix striped across shards (registry names; see
    /// [`FleetConfig::engines`]).
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    #[must_use]
    pub fn with_engines(mut self, engines: &'static [&'static str]) -> Self {
        assert!(!engines.is_empty(), "engine mix must not be empty");
        self.engines = engines;
        self
    }

    /// The engine name shard `index` runs.
    pub fn engine_of(&self, index: u32) -> &'static str {
        self.engines[index as usize % self.engines.len()]
    }
}

/// Terminal state of one shard after supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardState {
    /// First attempt succeeded.
    Completed,
    /// A retry succeeded after `attempts - 1` failures.
    Recovered {
        /// Total attempts made (≥ 2).
        attempts: u32,
    },
    /// All attempts failed; the shard's coverage is lost for this run.
    Quarantined {
        /// Why the final attempt failed.
        reason: QuarantineReason,
        /// Total attempts made.
        attempts: u32,
    },
}

/// Why a shard was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The worker panicked on every attempt.
    Crash,
    /// The watchdog deadline fired on the final attempt.
    Timeout,
}

/// One shard's supervision outcome: its state plus the report when any
/// attempt completed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Which shard.
    pub shard: ShardId,
    /// Terminal supervision state.
    pub state: ShardState,
    /// The completed report (`None` iff quarantined).
    pub report: Option<ShardReport>,
    /// The final attempt's failure message for quarantined shards.
    pub error: Option<String>,
    /// Whether the report was replayed from a checkpoint instead of
    /// computed live.
    pub replayed: bool,
}

/// A store of completed shard records for checkpoint/resume. Only
/// successful shards are recorded — a quarantined shard re-runs on
/// resume, because the interruption may have *been* the failure.
pub trait ShardStore: Sync {
    /// The recorded line for `shard`, if any.
    fn lookup(&self, shard: u32) -> Option<String>;
    /// Durably records `record` for `shard`.
    fn record(&self, shard: u32, record: &str);
}

/// What one attempt produced, as seen by the watchdog.
enum Attempt {
    Done(Box<ShardReport>),
    Panicked(String),
    TimedOut,
}

/// The fleet supervisor: runs every shard under watchdog + retry +
/// quarantine and merges the surviving reports.
#[derive(Debug, Clone, Copy)]
pub struct FleetSupervisor {
    config: FleetConfig,
}

impl FleetSupervisor {
    /// Creates a supervisor for `config`.
    pub fn new(config: FleetConfig) -> Self {
        FleetSupervisor { config }
    }

    /// The supervised configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the whole fleet with the ambient worker count and natural
    /// shard order.
    pub fn run(&self, store: Option<&dyn ShardStore>) -> (FleetReport, FleetStats) {
        let order: Vec<u32> = (0..self.config.topology.shards()).collect();
        self.run_with(&order, rayon::current_num_threads(), store)
    }

    /// Runs the fleet with an explicit submission `order` and worker
    /// `threads`. The merged report is bit-identical for every order
    /// permutation and thread count — outcomes are re-sorted by shard
    /// index before merging.
    pub fn run_with(
        &self,
        order: &[u32],
        threads: usize,
        store: Option<&dyn ShardStore>,
    ) -> (FleetReport, FleetStats) {
        let started = Instant::now();
        let config = self.config;
        let mut outcomes = rayon::queue::chunked_map(
            order.to_vec(),
            |index| supervise_shard(&config, index, store),
            threads.max(1),
        );
        outcomes.sort_by_key(|o| o.shard.index);
        if let Some(store) = store {
            for outcome in &outcomes {
                if let (Some(report), false) = (&outcome.report, outcome.replayed) {
                    store.record(outcome.shard.index, &report.to_record());
                }
            }
        }
        let simulated_acts: u64 = outcomes
            .iter()
            .filter_map(|o| o.report.as_ref())
            .map(|r| r.perf_acts + r.security_acts)
            .sum();
        let report = FleetReport::merge(&config, &outcomes);
        let stats = FleetStats {
            wall_seconds: started.elapsed().as_secs_f64(),
            simulated_acts,
            threads,
        };
        (report, stats)
    }
}

/// Supervises one shard: checkpoint replay, then the watchdog + retry
/// loop, then classification into a [`ShardOutcome`].
fn supervise_shard(
    config: &FleetConfig,
    index: u32,
    store: Option<&dyn ShardStore>,
) -> ShardOutcome {
    let shard = config.topology.shard(index);

    if let Some(record) = store.and_then(|s| s.lookup(index)) {
        // A corrupt record falls through to a live re-run.
        if let Some(report) = ShardReport::parse(&record).filter(|r| r.shard_index == index) {
            return ShardOutcome {
                shard,
                state: ShardState::Completed,
                report: Some(report),
                error: None,
                replayed: true,
            };
        }
    }

    let fault = config.faults.shard_fault(index, config.retry.max_attempts);
    let max_attempts = config.retry.max_attempts.max(1);
    let mut last_error = String::new();

    for attempt in 1..=max_attempts {
        if let Some(backoff) = config.retry.backoff_before(attempt) {
            std::thread::sleep(backoff);
        }
        match run_attempt(config, shard, attempt) {
            Attempt::Done(report) => {
                let state = if attempt == 1 {
                    ShardState::Completed
                } else {
                    ShardState::Recovered { attempts: attempt }
                };
                return ShardOutcome {
                    shard,
                    state,
                    report: Some(*report),
                    error: None,
                    replayed: false,
                };
            }
            Attempt::Panicked(message) => last_error = message,
            Attempt::TimedOut => {
                last_error = format!("watchdog deadline {:?} exceeded", config.deadline);
            }
        }
        let _ = attempt;
    }

    let reason = if fault.stall || last_error.starts_with("watchdog deadline") {
        QuarantineReason::Timeout
    } else {
        QuarantineReason::Crash
    };
    ShardOutcome {
        shard,
        state: ShardState::Quarantined {
            reason,
            attempts: max_attempts,
        },
        report: None,
        error: Some(last_error),
        replayed: false,
    }
}

/// One watched attempt: the shard body runs on a dedicated thread; the
/// supervisor waits at most [`FleetConfig::deadline`] for its verdict.
/// A timed-out worker is cancelled via a shared flag and detached — a
/// genuinely wedged worker cannot block its supervisor.
fn run_attempt(config: &FleetConfig, shard: ShardId, attempt: u32) -> Attempt {
    let fault = config
        .faults
        .shard_fault(shard.index, config.retry.max_attempts);
    let cancel = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let worker_cancel = Arc::clone(&cancel);
    let config = *config;

    let handle = std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if fault.stall {
                // A stalled shard never answers; it only notices
                // cancellation. The watchdog is what ends this attempt.
                while !worker_cancel.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                panic!("stalled shard cancelled by watchdog");
            }
            if fault.slow {
                std::thread::sleep(config.slow_latency);
            }
            run_shard(&config, shard, &fault, attempt)
        }));
        let _ = tx.send(result.map_err(panic_message));
    });

    match rx.recv_timeout(config.deadline) {
        Ok(Ok(report)) => {
            let _ = handle.join();
            Attempt::Done(Box::new(report))
        }
        Ok(Err(message)) => {
            let _ = handle.join();
            Attempt::Panicked(message)
        }
        Err(_) => {
            cancel.store(true, Ordering::Relaxed);
            // Deliberately do not join: the worker may be wedged beyond
            // the cancellation point. It exits on its own or at process
            // end; the attempt is already charged as failed.
            Attempt::TimedOut
        }
    }
}

/// Renders a panic payload into the incident message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FleetTopology;
    use std::sync::Mutex;

    fn tiny_config() -> FleetConfig {
        let mut c = FleetConfig::new(FleetTopology::with_shards(4), 8, 48, 0xBEEF);
        c.retry = RetryPolicy {
            base_backoff: Duration::from_millis(0),
            ..RetryPolicy::fleet_default()
        };
        c
    }

    #[test]
    fn clean_fleet_completes_every_shard() {
        let (report, stats) = FleetSupervisor::new(tiny_config()).run_with(&[0, 1, 2, 3], 2, None);
        assert_eq!(report.completed, 4);
        assert_eq!(report.quarantined, 0);
        assert!(!report.degraded());
        assert!(stats.simulated_acts > 0);
    }

    #[test]
    fn report_is_identical_across_order_and_threads() {
        let sup = FleetSupervisor::new(tiny_config());
        let (a, _) = sup.run_with(&[0, 1, 2, 3], 1, None);
        let (b, _) = sup.run_with(&[3, 1, 0, 2], 4, None);
        assert_eq!(a.render(), b.render());
    }

    #[derive(Default)]
    struct MemStore(Mutex<std::collections::HashMap<u32, String>>);

    impl ShardStore for MemStore {
        fn lookup(&self, shard: u32) -> Option<String> {
            self.0.lock().unwrap().get(&shard).cloned()
        }
        fn record(&self, shard: u32, record: &str) {
            self.0.lock().unwrap().insert(shard, record.to_string());
        }
    }

    #[test]
    fn resume_replays_recorded_shards_bit_identically() {
        let sup = FleetSupervisor::new(tiny_config());
        let store = MemStore::default();
        // Seed the store with two shards' records, as if a prior run
        // was interrupted after completing them.
        let (full, _) = sup.run_with(&[0, 1, 2, 3], 2, Some(&store));
        assert_eq!(store.0.lock().unwrap().len(), 4);
        let partial = MemStore::default();
        for shard in [1u32, 2] {
            let record = store.lookup(shard).unwrap();
            partial.record(shard, &record);
        }
        let (resumed, _) = sup.run_with(&[0, 1, 2, 3], 2, Some(&partial));
        assert_eq!(resumed.render(), full.render());
        assert_eq!(partial.0.lock().unwrap().len(), 4, "live shards recorded");
    }

    #[test]
    fn corrupt_checkpoint_record_falls_back_to_live_run() {
        let sup = FleetSupervisor::new(tiny_config());
        let clean = MemStore::default();
        let (expected, _) = sup.run_with(&[0, 1, 2, 3], 2, Some(&clean));
        let corrupt = MemStore::default();
        corrupt.record(0, "not a record");
        let (report, _) = sup.run_with(&[0, 1, 2, 3], 2, Some(&corrupt));
        assert_eq!(report.render(), expected.render());
    }
}
