//! Fleet-scale sharded serving for the MOAT reproduction.
//!
//! The paper evaluates MOAT per sub-channel; this crate models the
//! deployment the ROADMAP aims at — a datacenter node whose memory is a
//! multi-channel × multi-DIMM × multi-rank **fleet**, serving thousands
//! of tenant request streams, where individual shards stall, panic, or
//! run slow and the fleet must keep answering with a trustworthy
//! partial report.
//!
//! The pieces:
//!
//! - [`FleetTopology`] / [`ShardId`]: the physical shape; one shard is
//!   one rank's bank set with its own `PerfSim`/`SecuritySim` pair.
//! - [`shard::run_shard`]: a pure function of (config, shard) that
//!   multiplexes the shard's tenants (striped [`WorkloadStream`]
//!   profiles) onto its sims.
//! - [`FleetSupervisor`]: the self-healing layer — per-attempt worker
//!   threads under `catch_unwind`, a watchdog deadline, bounded retry
//!   with deterministic exponential backoff ([`RetryPolicy`]), and
//!   quarantine on repeated failure.
//! - [`FleetFaultPlan`]: seeded fleet-level fault injection (crash,
//!   stall, slow, poisoned tenant) layered over the engine-level
//!   [`FaultPlan`](moat_faults::FaultPlan), so supervisor behavior is
//!   bit-reproducible.
//! - [`FleetReport`]: the deterministic merge — ALERT rates, slowdown
//!   percentiles, blast-radius incidents, and a structured incident
//!   log that marks degraded coverage instead of failing the run.
//!
//! Determinism contract: for a fixed config, the merged
//! [`FleetReport::render`] artifact is byte-identical across shard
//! submission orders, worker thread counts, and checkpoint resumes.
//! Wall-clock throughput is reported separately ([`FleetStats`]) so the
//! artifact never embeds machine speed.
//!
//! [`WorkloadStream`]: moat_workloads::WorkloadStream

pub mod faults;
pub mod report;
pub mod retry;
pub mod shard;
pub mod supervisor;
pub mod topology;

pub use faults::{FleetFaultPlan, ShardFault};
pub use report::{FleetReport, FleetStats, Incident};
pub use retry::RetryPolicy;
pub use shard::{run_shard, ShardReport};
pub use supervisor::{
    FleetConfig, FleetSupervisor, QuarantineReason, ShardOutcome, ShardState, ShardStore,
};
pub use topology::{FleetTopology, ShardId};
