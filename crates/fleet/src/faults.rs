//! Fleet-level fault injection, riding the existing seeded [`FaultPlan`].
//!
//! The per-engine chaos layer ([`moat_faults`]) perturbs a *simulation*
//! (flipped counters, dropped RFMs). A fleet adds a second failure
//! domain — the serving infrastructure itself: a shard's worker can
//! crash, stall past its deadline, run slow, or receive a tenant stream
//! that poisons it. [`FleetFaultPlan`] extends the base plan with rates
//! for those four kinds. Every decision is drawn from a [`SplitMix64`]
//! seeded by `base.seed ^ fnv(shard index)`, so a pinned spec makes the
//! supervisor's retries, quarantines and incident log bit-reproducible —
//! the same discipline the engine-level chaos sweeps already follow.
//!
//! Spec grammar (environment variable [`FleetFaultPlan::ENV_VAR`]):
//! fleet keys `crash`, `stall`, `slow`, `poison` (rates in `[0, 1]`)
//! plus any token the base [`FaultPlan`] grammar accepts, e.g.
//! `seed=7,crash=0.05,stall=0.01,seu=1e-6`.

use moat_faults::{FaultPlan, SplitMix64};
use std::fmt;

/// Hashes a shard index into a seed perturbation (FNV-1a, the same
/// derivation the sweep harness uses for per-cell fault seeds).
pub fn shard_seed(base: u64, shard_index: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ base;
    for byte in shard_index.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A seeded plan of fleet-level failures layered over an engine-level
/// [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFaultPlan {
    /// Engine-level chaos applied inside each shard's security sim, and
    /// the seed all fleet-level draws derive from.
    pub base: FaultPlan,
    /// Probability a shard's worker panics on an attempt.
    pub crash_rate: f64,
    /// Probability a shard stalls until its watchdog deadline fires.
    pub stall_rate: f64,
    /// Probability a shard completes but over its latency budget.
    pub slow_rate: f64,
    /// Probability one of a shard's tenant streams is poisoned (panics
    /// during materialization).
    pub poison_rate: f64,
}

impl FleetFaultPlan {
    /// The environment variable carrying the fleet fault spec.
    pub const ENV_VAR: &'static str = "MOAT_FLEET_FAULTS";

    /// A plan that injects nothing (all rates zero).
    pub fn none(seed: u64) -> Self {
        FleetFaultPlan {
            base: FaultPlan::none(seed),
            crash_rate: 0.0,
            stall_rate: 0.0,
            slow_rate: 0.0,
            poison_rate: 0.0,
        }
    }

    /// Parses a spec: fleet keys (`crash`, `stall`, `slow`, `poison`)
    /// are consumed here, every other token is delegated to
    /// [`FaultPlan::parse`] so the engine-level grammar (seed, seu,
    /// drop-rfm, lose-alert, stuck) keeps working verbatim.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending token.
    pub fn parse(spec: &str) -> Result<FleetFaultPlan, String> {
        let mut plan = FleetFaultPlan::none(0);
        let mut base_tokens: Vec<&str> = Vec::new();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let Some((key, value)) = token.split_once('=') else {
                return Err(format!("fleet fault token `{token}` is not key=value"));
            };
            let key = key.trim().replace('-', "_");
            match key.as_str() {
                "crash" | "stall" | "slow" | "poison" => {
                    let rate: f64 = value
                        .trim()
                        .parse()
                        .map_err(|e| format!("fleet fault rate `{token}`: {e}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fleet fault rate `{token}` outside [0, 1]"));
                    }
                    match key.as_str() {
                        "crash" => plan.crash_rate = rate,
                        "stall" => plan.stall_rate = rate,
                        "slow" => plan.slow_rate = rate,
                        _ => plan.poison_rate = rate,
                    }
                }
                _ => base_tokens.push(token),
            }
        }
        plan.base = FaultPlan::parse(&base_tokens.join(","))?;
        Ok(plan)
    }

    /// The plan armed via [`ENV_VAR`](Self::ENV_VAR): `None` when unset
    /// or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors, and rejects a value
    /// that is not valid Unicode instead of silently ignoring it.
    pub fn from_env() -> Result<Option<FleetFaultPlan>, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            Ok(_) => Ok(None),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{} is set but not valid Unicode", Self::ENV_VAR))
            }
        }
    }

    /// Whether any fleet-level rate is non-zero.
    pub fn fleet_armed(&self) -> bool {
        self.crash_rate > 0.0
            || self.stall_rate > 0.0
            || self.slow_rate > 0.0
            || self.poison_rate > 0.0
    }

    /// Draws shard `shard_index`'s fate. Deterministic: the same plan
    /// and index always produce the same [`ShardFault`], independent of
    /// which worker thread evaluates it or in what order.
    ///
    /// `max_attempts` bounds the crash depth: a crashing shard panics on
    /// attempts `1..=crash_attempts` where `crash_attempts` is uniform
    /// in `1..=max_attempts + 1`, so some crashing shards recover on a
    /// retry and some exhaust the policy and quarantine.
    pub fn shard_fault(&self, shard_index: u32, max_attempts: u32) -> ShardFault {
        let mut rng = SplitMix64::new(shard_seed(self.base.seed, shard_index));
        let crash_attempts = if rng.chance(self.crash_rate) {
            1 + rng.below(u64::from(max_attempts) + 1) as u32
        } else {
            0
        };
        let stall = rng.chance(self.stall_rate);
        let slow = rng.chance(self.slow_rate);
        let poison_draw = if rng.chance(self.poison_rate) {
            Some(rng.next_u64())
        } else {
            None
        };
        ShardFault {
            crash_attempts,
            stall,
            slow,
            poison_draw,
        }
    }

    /// The engine-level plan for shard `shard_index`'s security sim:
    /// the base rates under a per-shard derived seed, so sibling shards
    /// see independent (but each reproducible) chaos streams.
    pub fn engine_plan(&self, shard_index: u32) -> FaultPlan {
        FaultPlan {
            seed: shard_seed(self.base.seed, shard_index),
            ..self.base
        }
    }
}

impl fmt::Display for FleetFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{},crash={},stall={},slow={},poison={}",
            self.base, self.crash_rate, self.stall_rate, self.slow_rate, self.poison_rate
        )
    }
}

/// One shard's drawn fate for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFault {
    /// Panic on attempts `1..=crash_attempts` (0 = never crash).
    pub crash_attempts: u32,
    /// Stall until the watchdog deadline on every attempt.
    pub stall: bool,
    /// Complete, but sleep the configured slow latency first.
    pub slow: bool,
    /// Raw draw selecting which local tenant stream is poisoned
    /// (`draw % tenant_count` at materialization time).
    pub poison_draw: Option<u64>,
}

impl ShardFault {
    /// A benign fate (no injection).
    pub fn none() -> Self {
        ShardFault {
            crash_attempts: 0,
            stall: false,
            slow: false,
            poison_draw: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_routes_fleet_and_base_keys() {
        let p =
            FleetFaultPlan::parse("seed=7,crash=0.5,stall=0.25,seu=0.001,slow=1,poison=0").unwrap();
        assert_eq!(p.base.seed, 7);
        assert_eq!(p.crash_rate, 0.5);
        assert_eq!(p.stall_rate, 0.25);
        assert_eq!(p.slow_rate, 1.0);
        assert_eq!(p.poison_rate, 0.0);
        assert_eq!(p.base.seu_rate, 0.001);
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        assert!(FleetFaultPlan::parse("crash").is_err(), "missing =");
        assert!(FleetFaultPlan::parse("crash=x").is_err(), "non-numeric");
        assert!(FleetFaultPlan::parse("crash=1.5").is_err(), "rate > 1");
        assert!(FleetFaultPlan::parse("crash=-0.1").is_err(), "rate < 0");
        assert!(FleetFaultPlan::parse("scribble=1").is_err(), "unknown key");
        assert!(FleetFaultPlan::parse("seed=zz").is_err(), "bad base token");
    }

    #[test]
    fn display_round_trips_through_parse() {
        let p = FleetFaultPlan::parse(
            "seed=42,crash=0.125,stall=0.5,slow=0.25,poison=0.0625,seu=0.001",
        )
        .unwrap();
        assert_eq!(FleetFaultPlan::parse(&p.to_string()).unwrap(), p);
    }

    #[test]
    fn shard_fault_is_deterministic_and_seed_sensitive() {
        let p = FleetFaultPlan::parse("seed=9,crash=0.5,stall=0.5,slow=0.5,poison=0.5").unwrap();
        for shard in 0..32 {
            assert_eq!(p.shard_fault(shard, 3), p.shard_fault(shard, 3));
        }
        // At 50% rates across 32 shards, different shards must draw
        // different fates (probability of uniformity is ~2^-120).
        let fates: Vec<ShardFault> = (0..32).map(|s| p.shard_fault(s, 3)).collect();
        assert!(fates.iter().any(|f| *f != fates[0]));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let p = FleetFaultPlan::none(123);
        assert!(!p.fleet_armed());
        for shard in 0..64 {
            assert_eq!(p.shard_fault(shard, 3), ShardFault::none());
        }
    }

    #[test]
    fn crash_depth_spans_recoverable_and_fatal() {
        let p = FleetFaultPlan::parse("seed=5,crash=1").unwrap();
        let max_attempts = 3;
        let depths: Vec<u32> = (0..64)
            .map(|s| p.shard_fault(s, max_attempts).crash_attempts)
            .collect();
        assert!(depths.iter().all(|&d| (1..=max_attempts + 1).contains(&d)));
        assert!(
            depths.iter().any(|&d| d < max_attempts),
            "some shards must recover via retry"
        );
        assert!(
            depths.iter().any(|&d| d >= max_attempts),
            "some shards must exhaust the policy and quarantine"
        );
    }
}
