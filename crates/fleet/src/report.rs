//! The merged fleet report and its structured incident log.
//!
//! Merging is the determinism choke point: outcomes arrive from worker
//! threads in arbitrary completion order, so [`FleetReport::merge`]
//! consumes them **sorted by shard index** and derives every field —
//! aggregates, percentiles, incidents — by that single canonical order.
//! [`FleetReport::render`] is the diffable artifact: it contains
//! simulation results only, never wall-clock measurements, so two runs
//! of the same seed diff clean byte-for-byte regardless of machine
//! load. Wall-clock throughput lives in the separate [`FleetStats`],
//! which the CLI prints to stderr.
//!
//! Incident taxonomy (one line per incident, shard-ordered):
//!
//! | kind                | meaning                                             |
//! |---------------------|-----------------------------------------------------|
//! | `slow-shard`        | shard completed but over its latency budget         |
//! | `retry-recovered`   | shard failed, then a retry attempt succeeded        |
//! | `quarantined-crash` | every attempt panicked; coverage lost               |
//! | `quarantined-stall` | watchdog deadline fired on the final attempt        |
//! | `poisoned-tenant`   | a tenant stream panicked and was dropped from the mux |
//! | `blast-radius`      | shard's max pressure breached the blast threshold   |
//! | `scrub-resync`      | guard detected tracker corruption and recovered it (no horizon broke) |
//! | `integrity-degraded`| corruption broke mitigation horizons despite the armed guard |

use std::fmt;
use std::fmt::Write as _;

use moat_telemetry::{MetricsRegistry, TelemetrySink};

use crate::supervisor::{FleetConfig, QuarantineReason, ShardOutcome, ShardState};

/// One structured incident in the fleet's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Taxonomy kind (see module docs).
    pub kind: &'static str,
    /// Shard index the incident is attributed to.
    pub shard_index: u32,
    /// Shard coordinates, pre-rendered (`ch03.d1.r0`).
    pub shard: String,
    /// Deterministic human-readable detail.
    pub detail: String,
}

impl Incident {
    /// Builds the integrity incident for a shard (or sweep cell) whose
    /// guard saw corruption: `scrub-resync` when every mitigation
    /// horizon held, `integrity-degraded` when some broke anyway. This
    /// is the single source of both the taxonomy decision and the
    /// detail strings — [`FleetReport::merge`] and the recovery sweep
    /// both call it, so the two surfaces can never drift.
    pub fn integrity(
        shard_index: u32,
        shard: String,
        detected: u64,
        repaired: u64,
        fallback_mitigations: u64,
        scrubs: u64,
        unsound_horizons: u64,
    ) -> Incident {
        if unsound_horizons == 0 {
            Incident {
                kind: "scrub-resync",
                shard_index,
                shard,
                detail: format!(
                    "{detected} corruptions recovered ({repaired} repaired, \
                     {fallback_mitigations} fallback mitigations, {scrubs} scrubs)",
                ),
            }
        } else {
            Incident {
                kind: "integrity-degraded",
                shard_index,
                shard,
                detail: format!(
                    "{unsound_horizons} unsound horizons despite {detected} detections"
                ),
            }
        }
    }

    /// Renders the incident with a caller-chosen noun for the indexed
    /// unit — `"shard"` in fleet reports, `"cell"` in sweep tables.
    /// [`Display`](fmt::Display) is the `"shard"` spelling.
    pub fn render_as(&self, noun: &str) -> String {
        format!(
            "[{}] {} {} ({}): {}",
            self.kind, noun, self.shard_index, self.shard, self.detail
        )
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_as("shard"))
    }
}

/// The merged, deterministic result of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Shards in the topology.
    pub shards: u32,
    /// Fleet-wide tenants configured.
    pub tenants: u32,
    /// Master seed.
    pub seed: u64,
    /// Topology summary, pre-rendered (`16ch x 2d x 2r x 8 banks`).
    pub topology: String,
    /// The engine mix striped across shards, pre-rendered
    /// (`moat` or `moat+panopticon+comet`).
    pub engines: String,
    /// Shards whose first attempt succeeded.
    pub completed: u32,
    /// Shards that succeeded only after retry.
    pub recovered: u32,
    /// Shards quarantined (no report).
    pub quarantined: u32,
    /// Shard reports replayed from a checkpoint.
    pub replayed: u32,
    /// Tenants dropped as poisoned, fleet-wide.
    pub poisoned_tenants: u32,
    /// Requests executed across all surviving shards' perf sims.
    pub perf_acts: u64,
    /// ALERTs across surviving perf sims.
    pub alerts: u64,
    /// Mean ALERTs per tREFI across surviving shards.
    pub alerts_per_trefi: f64,
    /// Attacker activations across surviving security sims.
    pub security_acts: u64,
    /// ALERTs across surviving security sims.
    pub security_alerts: u64,
    /// Highest hammer pressure on any surviving shard.
    pub max_pressure: u32,
    /// Injected-fault unsound horizons, summed.
    pub unsound_horizons: u64,
    /// Activations escaping mitigation under injected faults, summed.
    pub escaped_acts: u64,
    /// Tracker corruptions the integrity guard detected, summed.
    pub integrity_detected: u64,
    /// Corruptions restored exactly from the guard's shadow, summed.
    pub integrity_repaired: u64,
    /// Conservative fallback mitigations issued, summed.
    pub fallback_mitigations: u64,
    /// Scrub passes performed across shards, summed.
    pub scrubs: u64,
    /// Slowdown percentiles over surviving shards: (p50, p90, p99, max).
    pub slowdown: (f64, f64, f64, f64),
    /// Structured incident log, shard-ordered.
    pub incidents: Vec<Incident>,
}

impl FleetReport {
    /// Merges shard outcomes (already sorted by shard index) into the
    /// fleet report.
    pub fn merge(config: &FleetConfig, outcomes: &[ShardOutcome]) -> FleetReport {
        debug_assert!(outcomes
            .windows(2)
            .all(|w| w[0].shard.index < w[1].shard.index));
        let t = config.topology;
        let mut report = FleetReport {
            shards: t.shards(),
            tenants: config.tenants,
            seed: config.seed,
            topology: format!(
                "{}ch x {}d x {}r x {} banks",
                t.channels, t.dimms_per_channel, t.ranks_per_dimm, t.banks_per_rank
            ),
            engines: config.engines.join("+"),
            completed: 0,
            recovered: 0,
            quarantined: 0,
            replayed: 0,
            poisoned_tenants: 0,
            perf_acts: 0,
            alerts: 0,
            alerts_per_trefi: 0.0,
            security_acts: 0,
            security_alerts: 0,
            max_pressure: 0,
            unsound_horizons: 0,
            escaped_acts: 0,
            integrity_detected: 0,
            integrity_repaired: 0,
            fallback_mitigations: 0,
            scrubs: 0,
            slowdown: (0.0, 0.0, 0.0, 0.0),
            incidents: Vec::new(),
        };

        let mut slowdowns: Vec<f64> = Vec::new();
        let mut trefi_sum = 0.0;
        for outcome in outcomes {
            let shard = outcome.shard;
            match &outcome.state {
                ShardState::Completed => report.completed += 1,
                ShardState::Recovered { attempts } => {
                    report.recovered += 1;
                    report.incidents.push(Incident {
                        kind: "retry-recovered",
                        shard_index: shard.index,
                        shard: shard.to_string(),
                        detail: format!("succeeded on attempt {attempts}"),
                    });
                }
                ShardState::Quarantined { reason, attempts } => {
                    report.quarantined += 1;
                    let (kind, what) = match reason {
                        QuarantineReason::Crash => ("quarantined-crash", "worker panicked"),
                        QuarantineReason::Timeout => ("quarantined-stall", "watchdog deadline"),
                    };
                    report.incidents.push(Incident {
                        kind,
                        shard_index: shard.index,
                        shard: shard.to_string(),
                        detail: format!("{what} on all {attempts} attempts"),
                    });
                }
            }
            if outcome.replayed {
                report.replayed += 1;
            }
            let Some(r) = &outcome.report else { continue };
            report.perf_acts += r.perf_acts;
            report.alerts += r.alerts;
            trefi_sum += r.alerts_per_trefi;
            report.security_acts += r.security_acts;
            report.security_alerts += r.security_alerts;
            report.max_pressure = report.max_pressure.max(r.max_pressure);
            report.unsound_horizons += r.unsound_horizons;
            report.escaped_acts += r.escaped_acts;
            report.integrity_detected += r.integrity_detected;
            report.integrity_repaired += r.integrity_repaired;
            report.fallback_mitigations += r.fallback_mitigations;
            report.scrubs += r.scrubs;
            slowdowns.push(r.slowdown);
            for &tenant in &r.poisoned {
                report.poisoned_tenants += 1;
                report.incidents.push(Incident {
                    kind: "poisoned-tenant",
                    shard_index: shard.index,
                    shard: shard.to_string(),
                    detail: format!("tenant {tenant} dropped from mux"),
                });
            }
            if r.slow_injected {
                report.incidents.push(Incident {
                    kind: "slow-shard",
                    shard_index: shard.index,
                    shard: shard.to_string(),
                    detail: "completed over latency budget".to_string(),
                });
            }
            if r.max_pressure > config.blast_threshold {
                report.incidents.push(Incident {
                    kind: "blast-radius",
                    shard_index: shard.index,
                    shard: shard.to_string(),
                    detail: format!(
                        "max pressure {} breached threshold {}",
                        r.max_pressure, config.blast_threshold
                    ),
                });
            }
            // Recovery incidents fire only under an armed guard: a
            // shard whose corruption was fully absorbed reports
            // recovered coverage (`scrub-resync`) instead of silently
            // carrying untrusted state; residual broken horizons under
            // the guard are the real integrity losses.
            if config.recovery.is_some() && r.integrity_detected > 0 {
                report.incidents.push(Incident::integrity(
                    shard.index,
                    shard.to_string(),
                    r.integrity_detected,
                    r.integrity_repaired,
                    r.fallback_mitigations,
                    r.scrubs,
                    r.unsound_horizons,
                ));
            }
        }

        let survivors = slowdowns.len();
        if survivors > 0 {
            slowdowns.sort_by(f64::total_cmp);
            let pct = |p: f64| {
                // Nearest-rank percentile over the sorted survivors.
                let rank = ((p / 100.0) * survivors as f64).ceil() as usize;
                slowdowns[rank.clamp(1, survivors) - 1]
            };
            report.slowdown = (pct(50.0), pct(90.0), pct(99.0), slowdowns[survivors - 1]);
            report.alerts_per_trefi = trefi_sum / survivors as f64;
        }
        report
    }

    /// Derives the fleet's telemetry [`MetricsRegistry`] from the
    /// merged report. Because the report itself is merged in canonical
    /// shard order, the registry — and therefore its render — is
    /// bit-identical across shard permutations, worker thread counts,
    /// and checkpoint-resume splits. Only integer simulation results go
    /// in; the float-valued fields (slowdown percentiles, alerts/tREFI)
    /// stay in the report render where their formatting is pinned.
    pub fn telemetry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.gauge_max("fleet.shards", u64::from(self.shards));
        reg.gauge_max("fleet.tenants", u64::from(self.tenants));
        reg.add("fleet.shards.completed", u64::from(self.completed));
        reg.add("fleet.shards.recovered", u64::from(self.recovered));
        reg.add("fleet.shards.quarantined", u64::from(self.quarantined));
        // `replayed` is deliberately absent, for the same reason it is
        // absent from `render`: it is provenance, not a simulation
        // result, and the telemetry artifact must stay bit-identical
        // across resume splits.
        reg.add("fleet.tenants.poisoned", u64::from(self.poisoned_tenants));
        reg.add("fleet.perf.acts", self.perf_acts);
        reg.add("fleet.perf.alerts", self.alerts);
        reg.add("fleet.security.acts", self.security_acts);
        reg.add("fleet.security.alerts", self.security_alerts);
        reg.gauge_max("fleet.security.max_pressure", u64::from(self.max_pressure));
        reg.add("fleet.faults.unsound_horizons", self.unsound_horizons);
        reg.add("fleet.faults.escaped_acts", self.escaped_acts);
        reg.add("fleet.integrity.detected", self.integrity_detected);
        reg.add("fleet.integrity.repaired", self.integrity_repaired);
        reg.add(
            "fleet.integrity.fallback_mitigations",
            self.fallback_mitigations,
        );
        reg.add("fleet.integrity.scrubs", self.scrubs);
        for i in &self.incidents {
            reg.add(&format!("fleet.incidents.{}", i.kind), 1);
        }
        reg
    }

    /// Renders [`telemetry`](Self::telemetry) for the requested sink,
    /// newline-terminated. The chrome sink carries no spans at fleet
    /// scope, so it degrades to the JSON metrics object.
    pub fn render_telemetry(&self, sink: TelemetrySink) -> String {
        let reg = self.telemetry();
        match sink {
            TelemetrySink::Text => reg.render(),
            TelemetrySink::Json | TelemetrySink::Chrome => {
                let mut s = reg.render_json();
                s.push('\n');
                s
            }
        }
    }

    /// Fraction of shards whose results made it into the merge.
    pub fn coverage(&self) -> f64 {
        if self.shards == 0 {
            return 1.0;
        }
        f64::from(self.completed + self.recovered) / f64::from(self.shards)
    }

    /// Whether any shard's coverage was lost.
    pub fn degraded(&self) -> bool {
        self.quarantined > 0
    }

    /// Renders the deterministic report artifact: simulation results
    /// and the incident log, never wall-clock data. CI diffs this
    /// byte-for-byte between same-seed runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fleet report");
        let _ = writeln!(out, "  topology            {}", self.topology);
        let _ = writeln!(out, "  engines             {}", self.engines);
        let _ = writeln!(out, "  shards              {}", self.shards);
        let _ = writeln!(out, "  tenants             {}", self.tenants);
        let _ = writeln!(out, "  seed                {:#x}", self.seed);
        let _ = writeln!(
            out,
            "  coverage            {:.2}% ({} completed, {} recovered, {} quarantined){}",
            self.coverage() * 100.0,
            self.completed,
            self.recovered,
            self.quarantined,
            if self.degraded() { "  [DEGRADED]" } else { "" },
        );
        // `replayed` is deliberately absent: it is provenance (how the
        // numbers were obtained), not a simulation result, and a resumed
        // run must render byte-identically to an uninterrupted one.
        let _ = writeln!(out, "  perf acts           {}", self.perf_acts);
        let _ = writeln!(out, "  alerts              {}", self.alerts);
        let _ = writeln!(out, "  alerts/tREFI        {:.6}", self.alerts_per_trefi);
        let (p50, p90, p99, max) = self.slowdown;
        let _ = writeln!(
            out,
            "  slowdown            p50 {:.4}%  p90 {:.4}%  p99 {:.4}%  max {:.4}%",
            p50 * 100.0,
            p90 * 100.0,
            p99 * 100.0,
            max * 100.0,
        );
        let _ = writeln!(out, "  security acts       {}", self.security_acts);
        let _ = writeln!(out, "  security alerts     {}", self.security_alerts);
        let _ = writeln!(out, "  max pressure        {}", self.max_pressure);
        if self.unsound_horizons > 0 || self.escaped_acts > 0 {
            let _ = writeln!(
                out,
                "  injected faults     {} unsound horizons, {} escaped acts",
                self.unsound_horizons, self.escaped_acts,
            );
        }
        if self.integrity_detected > 0 || self.scrubs > 0 {
            let _ = writeln!(
                out,
                "  integrity           {} detected, {} repaired, {} fallback mitigations, {} scrubs",
                self.integrity_detected,
                self.integrity_repaired,
                self.fallback_mitigations,
                self.scrubs,
            );
        }
        if self.incidents.is_empty() {
            let _ = writeln!(out, "  incidents           none");
        } else {
            let _ = writeln!(out, "  incidents           {}", self.incidents.len());
            for i in &self.incidents {
                let _ = writeln!(out, "    {i}");
            }
        }
        out
    }
}

/// Wall-clock throughput of a fleet run — kept apart from
/// [`FleetReport`] so the diffable artifact stays machine-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// Simulated activations (perf + security) across surviving shards.
    pub simulated_acts: u64,
    /// Worker threads used.
    pub threads: usize,
}

impl FleetStats {
    /// Simulated activations per wall-clock second — the gated
    /// `fleet_acts_per_sec` metric.
    pub fn acts_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.simulated_acts as f64 / self.wall_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardReport;
    use crate::supervisor::{FleetConfig, ShardOutcome, ShardState};
    use crate::topology::FleetTopology;

    fn outcome(index: u32, state: ShardState, report: Option<ShardReport>) -> ShardOutcome {
        let topology = FleetTopology::with_shards(8);
        ShardOutcome {
            shard: topology.shard(index),
            state,
            report,
            error: None,
            replayed: false,
        }
    }

    fn shard_report(index: u32, slowdown: f64) -> ShardReport {
        ShardReport {
            shard_index: index,
            tenants: 2,
            poisoned: Vec::new(),
            perf_acts: 100,
            alerts: 3,
            alerts_per_trefi: 0.5,
            slowdown,
            security_acts: 50,
            security_alerts: 1,
            max_pressure: 90,
            unsound_horizons: 0,
            escaped_acts: 0,
            integrity_detected: 0,
            integrity_repaired: 0,
            fallback_mitigations: 0,
            scrubs: 0,
            slow_injected: false,
        }
    }

    #[test]
    fn merge_marks_degraded_coverage_and_orders_incidents() {
        let config = FleetConfig::new(FleetTopology::with_shards(8), 16, 32, 1);
        let outcomes: Vec<ShardOutcome> = (0..8)
            .map(|i| {
                if i == 3 {
                    outcome(
                        i,
                        ShardState::Quarantined {
                            reason: QuarantineReason::Crash,
                            attempts: 3,
                        },
                        None,
                    )
                } else {
                    outcome(
                        i,
                        ShardState::Completed,
                        Some(shard_report(i, 0.01 * f64::from(i))),
                    )
                }
            })
            .collect();
        let report = FleetReport::merge(&config, &outcomes);
        assert!(report.degraded());
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.completed, 7);
        assert_eq!(report.perf_acts, 700);
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].kind, "quarantined-crash");
        assert!(report.render().contains("[DEGRADED]"));
        assert!(report.render().contains("quarantined-crash"));
        assert!((report.coverage() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles_use_nearest_rank_over_survivors() {
        let config = FleetConfig::new(FleetTopology::with_shards(4), 8, 32, 1);
        let outcomes: Vec<ShardOutcome> = (0..4)
            .map(|i| {
                outcome(
                    i,
                    ShardState::Completed,
                    Some(shard_report(i, f64::from(i) / 100.0)),
                )
            })
            .collect();
        let report = FleetReport::merge(&config, &outcomes);
        let (p50, p90, p99, max) = report.slowdown;
        assert_eq!(p50, 0.01);
        assert_eq!(p90, 0.03);
        assert_eq!(p99, 0.03);
        assert_eq!(max, 0.03);
    }

    #[test]
    fn blast_and_poison_incidents_are_recorded() {
        let config = FleetConfig::new(FleetTopology::with_shards(2), 4, 32, 1);
        let mut hot = shard_report(0, 0.0);
        hot.max_pressure = 400;
        let mut poisoned = shard_report(1, 0.0);
        poisoned.poisoned = vec![3];
        let outcomes = vec![
            outcome(0, ShardState::Completed, Some(hot)),
            outcome(1, ShardState::Recovered { attempts: 2 }, Some(poisoned)),
        ];
        let report = FleetReport::merge(&config, &outcomes);
        let kinds: Vec<&str> = report.incidents.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec!["blast-radius", "retry-recovered", "poisoned-tenant"]
        );
        assert_eq!(report.poisoned_tenants, 1);
        assert_eq!(report.max_pressure, 400);
        assert!(!report.degraded(), "recovered shards keep full coverage");
    }

    #[test]
    fn recovery_incidents_distinguish_recovered_from_degraded() {
        let config = FleetConfig::new(FleetTopology::with_shards(2), 4, 32, 1)
            .with_recovery(moat_guard::RecoveryPlan::full());
        let mut recovered = shard_report(0, 0.0);
        recovered.integrity_detected = 5;
        recovered.integrity_repaired = 2;
        recovered.fallback_mitigations = 3;
        recovered.scrubs = 7;
        let mut degraded = shard_report(1, 0.0);
        degraded.integrity_detected = 4;
        degraded.unsound_horizons = 2;
        let outcomes = vec![
            outcome(0, ShardState::Completed, Some(recovered.clone())),
            outcome(1, ShardState::Completed, Some(degraded)),
        ];
        let report = FleetReport::merge(&config, &outcomes);
        let kinds: Vec<&str> = report.incidents.iter().map(|i| i.kind).collect();
        assert_eq!(kinds, vec!["scrub-resync", "integrity-degraded"]);
        assert_eq!(report.integrity_detected, 9);
        assert_eq!(report.fallback_mitigations, 3);
        assert!(report.render().contains("integrity"));
        assert!(
            !report.degraded(),
            "counter corruption is recovered coverage, not quarantine"
        );

        // The same outcomes under an unguarded config stay silent: the
        // recovery incidents only narrate an armed guard.
        let unguarded = FleetConfig::new(FleetTopology::with_shards(2), 4, 32, 1);
        let report = FleetReport::merge(&unguarded, &outcomes);
        assert!(report
            .incidents
            .iter()
            .all(|i| i.kind != "scrub-resync" && i.kind != "integrity-degraded"));
    }

    #[test]
    fn acts_per_sec_guards_zero_wall_time() {
        let stats = FleetStats {
            wall_seconds: 0.0,
            simulated_acts: 10,
            threads: 1,
        };
        assert_eq!(stats.acts_per_sec(), 0.0);
    }
}
