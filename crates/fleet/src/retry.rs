//! Deterministic retry policies shared by the sweep harness and the
//! fleet supervisor.
//!
//! Both layers face the same problem — a unit of work (a sweep cell, a
//! shard attempt) that crashed or timed out and deserves another chance
//! before it is written off — and both need the *same* answer for every
//! run, because their outputs are diffed bit-for-bit across runs. A
//! [`RetryPolicy`] is therefore pure data: a bounded attempt count and an
//! exponential backoff schedule with **no jitter**. Two runs with equal
//! policies make identical retry decisions and sleep identical durations;
//! only the wall clock differs.

use std::time::Duration;

/// A bounded-attempts, deterministic-exponential-backoff retry policy.
///
/// Attempt `1` is the initial try; attempts `2..=max_attempts` are
/// retries, each preceded by a backoff of
/// `base_backoff * multiplier^(attempt - 2)`, capped at `max_backoff`.
/// There is deliberately no jitter: retry schedules must be identical
/// across runs so that retried work stays bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Factor applied to the backoff for each further retry.
    pub multiplier: u32,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// The sweep harness's policy: one retry after 50 ms, doubling (the
    /// historical fixed 50 ms backoff, now expressed as the first rung
    /// of an exponential schedule).
    pub const fn sweep_default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(50),
            multiplier: 2,
            max_backoff: Duration::from_secs(1),
        }
    }

    /// The fleet supervisor's policy: two retries with a fast 10 ms
    /// first backoff quadrupling per retry (10 ms, 40 ms) — shards are
    /// small and a stalled one should quarantine quickly.
    pub const fn fleet_default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            multiplier: 4,
            max_backoff: Duration::from_millis(500),
        }
    }

    /// A policy with `max_attempts` attempts and the default exponential
    /// shape (`base` backoff doubling per retry, capped at 1 s).
    pub const fn with_attempts(max_attempts: u32, base: Duration) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: base,
            multiplier: 2,
            max_backoff: Duration::from_secs(1),
        }
    }

    /// The backoff to sleep before `attempt` (1-based): `None` for the
    /// initial attempt, the capped exponential rung for each retry.
    pub fn backoff_before(&self, attempt: u32) -> Option<Duration> {
        if attempt <= 1 {
            return None;
        }
        let rung = attempt - 2; // first retry sleeps the base backoff
        let factor = u64::from(self.multiplier).saturating_pow(rung);
        let backoff = self
            .base_backoff
            .saturating_mul(u32::try_from(factor).unwrap_or(u32::MAX));
        Some(backoff.min(self.max_backoff))
    }

    /// Runs `attempt_fn` up to [`max_attempts`](Self::max_attempts)
    /// times, sleeping the deterministic backoff before each retry.
    /// Returns the first `Ok` together with the attempt number that
    /// produced it, or the last `Err` with the total attempts made.
    pub fn run<R, E>(
        &self,
        mut attempt_fn: impl FnMut(u32) -> Result<R, E>,
    ) -> (Result<R, E>, u32) {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            if let Some(backoff) = self.backoff_before(attempt) {
                std::thread::sleep(backoff);
            }
            match attempt_fn(attempt) {
                Ok(r) => return (Ok(r), attempt),
                Err(e) if attempt >= attempts => return (Err(e), attempt),
                Err(_) => attempt += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            multiplier: 4,
            max_backoff: Duration::from_millis(100),
        };
        assert_eq!(p.backoff_before(1), None, "first attempt never sleeps");
        assert_eq!(p.backoff_before(2), Some(Duration::from_millis(10)));
        assert_eq!(p.backoff_before(3), Some(Duration::from_millis(40)));
        assert_eq!(
            p.backoff_before(4),
            Some(Duration::from_millis(100)),
            "capped"
        );
        assert_eq!(p.backoff_before(5), Some(Duration::from_millis(100)));
    }

    #[test]
    fn sweep_default_keeps_the_historical_first_backoff() {
        let p = RetryPolicy::sweep_default();
        assert_eq!(p.max_attempts, 2);
        assert_eq!(p.backoff_before(2), Some(Duration::from_millis(50)));
    }

    #[test]
    fn run_retries_until_success_or_exhaustion() {
        let quick = RetryPolicy {
            base_backoff: Duration::from_millis(0),
            ..RetryPolicy::with_attempts(3, Duration::from_millis(0))
        };
        let (ok, attempts) = quick.run(|a| if a < 3 { Err("boom") } else { Ok(a) });
        assert_eq!(ok, Ok(3));
        assert_eq!(attempts, 3);

        let (err, attempts) = quick.run(|_| Err::<(), _>("always"));
        assert_eq!(err, Err("always"));
        assert_eq!(attempts, 3);

        let mut calls = 0;
        let once = RetryPolicy::with_attempts(1, Duration::from_millis(0));
        let (_, attempts) = once.run(|_| {
            calls += 1;
            Err::<(), _>(())
        });
        assert_eq!((calls, attempts), (1, 1), "max_attempts 1 means no retry");
    }

    #[test]
    fn huge_rungs_saturate_instead_of_overflowing() {
        let p = RetryPolicy {
            max_attempts: 80,
            base_backoff: Duration::from_millis(1),
            multiplier: 1000,
            max_backoff: Duration::from_millis(7),
        };
        assert_eq!(p.backoff_before(70), Some(Duration::from_millis(7)));
    }

    #[test]
    fn extreme_attempt_counts_pin_to_the_cap() {
        // The pathological corner: every quantity at its maximum. The
        // exponent saturates in u64, the factor clamps to u32::MAX, the
        // Duration multiply saturates, and the cap still wins — no
        // shift/mul overflow panic at any rung.
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_secs(u64::MAX),
            multiplier: u32::MAX,
            max_backoff: Duration::from_millis(250),
        };
        for attempt in [2, 3, 64, 65, 66, 1 << 20, u32::MAX - 1, u32::MAX] {
            assert_eq!(
                p.backoff_before(attempt),
                Some(Duration::from_millis(250)),
                "attempt {attempt} must clamp to max_backoff"
            );
        }
        // A zero multiplier degenerates cleanly: first retry sleeps the
        // base, later rungs collapse to zero rather than panicking.
        let zero = RetryPolicy {
            multiplier: 0,
            base_backoff: Duration::from_millis(5),
            ..p
        };
        assert_eq!(zero.backoff_before(2), Some(Duration::from_millis(5)));
        assert_eq!(zero.backoff_before(u32::MAX), Some(Duration::ZERO));
    }
}
