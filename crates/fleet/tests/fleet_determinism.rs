//! The fleet's determinism contract, pinned.
//!
//! 1. The merged report is byte-identical for *any* shard submission
//!    order and worker thread count (proptest over random permutations).
//! 2. Chaos: a pinned crash plan produces the *same* degraded report on
//!    every run — quarantine is a deterministic outcome, not a race.
//! 3. Resume: replaying recorded shards from a store merges
//!    byte-identically with computing them live.
//! 4. Telemetry: the metrics registry derived from the merged report
//!    (and its text/JSON renders) inherits the same bit-identity across
//!    shard order, thread count, and resume splits.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use moat_fleet::{
    FleetConfig, FleetFaultPlan, FleetSupervisor, FleetTopology, RetryPolicy, ShardStore,
};
use moat_telemetry::TelemetrySink;
use proptest::prelude::*;

/// A small fleet that still exercises multi-level topology and several
/// tenants per shard.
fn small_config(seed: u64) -> FleetConfig {
    let mut config = FleetConfig::new(FleetTopology::with_shards(8), 24, 48, seed);
    config.retry = RetryPolicy {
        base_backoff: Duration::from_millis(0),
        ..RetryPolicy::fleet_default()
    };
    config
}

/// Sorts shard indices by random keys — a permutation driven entirely
/// by proptest's input, so shrinking stays meaningful.
fn permutation(keys: &[u64], shards: u32) -> Vec<u32> {
    let mut order: Vec<u32> = (0..shards).collect();
    order.sort_by_key(|&i| keys.get(i as usize).copied().unwrap_or(u64::from(i)));
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn merged_report_is_bit_identical_across_order_and_threads(
        keys in prop::collection::vec(0u64..u64::MAX, 8),
        threads in 1usize..5,
        seed in 1u64..1_000_000,
    ) {
        let config = small_config(seed);
        let sup = FleetSupervisor::new(config);
        let natural: Vec<u32> = (0..8).collect();
        let (reference, _) = sup.run_with(&natural, 1, None);
        let order = permutation(&keys, 8);
        let (shuffled, _) = sup.run_with(&order, threads, None);
        prop_assert_eq!(reference.render(), shuffled.render());
        prop_assert_eq!(
            reference.render_telemetry(TelemetrySink::Text),
            shuffled.render_telemetry(TelemetrySink::Text)
        );
        prop_assert_eq!(
            reference.render_telemetry(TelemetrySink::Json),
            shuffled.render_telemetry(TelemetrySink::Json)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn degraded_report_is_bit_identical_across_order_and_threads(
        keys in prop::collection::vec(0u64..u64::MAX, 8),
        threads in 1usize..4,
    ) {
        // A pinned fault spec: half the shards crash with varying depth,
        // so the run mixes completed, recovered, and quarantined shards.
        let faults = FleetFaultPlan::parse("seed=1312,crash=0.5,slow=0.25,poison=0.25").unwrap();
        let config = small_config(0xD15EA5E).with_faults(faults);
        let sup = FleetSupervisor::new(config);
        let natural: Vec<u32> = (0..8).collect();
        let (reference, _) = sup.run_with(&natural, 1, None);
        let order = permutation(&keys, 8);
        let (shuffled, _) = sup.run_with(&order, threads, None);
        prop_assert_eq!(reference.render(), shuffled.render());
        prop_assert_eq!(
            reference.render_telemetry(TelemetrySink::Json),
            shuffled.render_telemetry(TelemetrySink::Json)
        );
    }
}

#[test]
fn crashed_shard_quarantines_deterministically_and_degrades_the_run() {
    // crash=1 makes every shard crash with a depth drawn in
    // 1..=max_attempts+1: with 8 shards some depths exceed the retry
    // budget, so the run must contain quarantined shards — and complete.
    let faults = FleetFaultPlan::parse("seed=97,crash=1").unwrap();
    let config = small_config(0xC0FFEE).with_faults(faults);
    let sup = FleetSupervisor::new(config);

    let (first, _) = sup.run_with(&(0..8).collect::<Vec<u32>>(), 2, None);
    let (second, _) = sup.run_with(&(0..8).collect::<Vec<u32>>(), 3, None);

    assert_eq!(
        first.render(),
        second.render(),
        "a degraded run must be reproducible"
    );
    assert!(
        first.degraded(),
        "crash=1 must quarantine at least one shard"
    );
    assert!(first.quarantined > 0);
    assert!(
        first.completed + first.recovered > 0,
        "siblings of quarantined shards still complete"
    );
    assert!(first.coverage() < 1.0);
    let rendered = first.render();
    assert!(rendered.contains("[DEGRADED]"));
    assert!(
        rendered.contains("quarantined-crash"),
        "the incident log must name the quarantine:\n{rendered}"
    );
    assert!(
        first.recovered > 0,
        "some crash depths are shallow enough for retry to recover"
    );
    assert!(rendered.contains("retry-recovered"));
}

#[derive(Default)]
struct MemStore(Mutex<HashMap<u32, String>>);

impl ShardStore for MemStore {
    fn lookup(&self, shard: u32) -> Option<String> {
        self.0.lock().unwrap().get(&shard).cloned()
    }
    fn record(&self, shard: u32, record: &str) {
        self.0.lock().unwrap().insert(shard, record.to_string());
    }
}

#[test]
fn interrupted_run_resumes_to_the_same_report() {
    let faults = FleetFaultPlan::parse("seed=7,crash=0.4,poison=0.3").unwrap();
    let config = small_config(0xAB1E).with_faults(faults);
    let sup = FleetSupervisor::new(config);

    let complete_store = MemStore::default();
    let (uninterrupted, _) = sup.run_with(&(0..8).collect::<Vec<u32>>(), 2, Some(&complete_store));

    // Simulate an interruption: only the first half of the recorded
    // shards survived to the checkpoint.
    let partial = MemStore::default();
    for (shard, record) in complete_store.0.lock().unwrap().iter() {
        if *shard < 4 {
            partial.record(*shard, record);
        }
    }
    let (resumed, _) = sup.run_with(&(0..8).collect::<Vec<u32>>(), 2, Some(&partial));
    assert_eq!(
        uninterrupted.render(),
        resumed.render(),
        "resume must be invisible in the merged artifact"
    );
    for sink in [
        TelemetrySink::Text,
        TelemetrySink::Json,
        TelemetrySink::Chrome,
    ] {
        assert_eq!(
            uninterrupted.render_telemetry(sink),
            resumed.render_telemetry(sink),
            "resume must be invisible in the telemetry render ({sink:?})"
        );
    }
}
