//! Analytical throughput models for ALERT-based performance attacks (§7).
//!
//! Time is measured in tRC units (52 ns — one bank activation slot).
//! During an ALERT episode the attacker fits `3 + L` activations into
//! `tALERT + L·tRC` of wall-clock time, so throughput collapses to ~0.36×
//! under continuous ALERTs (level 1) — the §7.1 bound — while a single
//! hammered row costs only ~10% (one ALERT per 65 activations, §7.2).

use moat_dram::DramTiming;

/// Throughput models in activations-per-tRC-unit.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    timing: DramTiming,
}

impl ThroughputModel {
    /// Builds the model for the given timing.
    pub fn new(timing: DramTiming) -> Self {
        ThroughputModel { timing }
    }

    /// tALERT in tRC units for `level` (§7.1: ~10.2 units at level 1).
    pub fn alert_units(&self, level: u8) -> f64 {
        self.timing.t_alert(level).as_u64() as f64 / self.timing.t_rc.as_u64() as f64
    }

    /// Relative throughput under continuous ALERTs (§7.1: 4 ACTs per
    /// ~11.2 units ≈ 0.36× for level 1).
    pub fn continuous_alert_throughput(&self, level: u8) -> f64 {
        let acts = self.timing.min_acts_between_alerts(level) as f64;
        let units = self.alert_units(level) + f64::from(level);
        acts / units
    }

    /// Maximum slowdown under continuous ALERTs (Appendix D: 2.8× at L1,
    /// 3.8× at L2, 4.9× at L4).
    pub fn max_continuous_slowdown(&self, level: u8) -> f64 {
        1.0 / self.continuous_alert_throughput(level)
    }

    /// Relative throughput of the single-row kernel (§7.2): one ALERT per
    /// `ath + 1` activations — 69 ACTs in 76 units ≈ 0.9× at ATH 64.
    pub fn single_row_throughput(&self, ath: u32, level: u8) -> f64 {
        let acts_per_episode =
            f64::from(ath + 1) + self.timing.min_acts_between_alerts(level) as f64;
        let units = f64::from(ath + 1) + self.alert_units(level) + f64::from(level);
        acts_per_episode / units
    }

    /// Throughput when a fraction `alert_time_fraction` of wall-clock time
    /// is spent inside ALERT episodes (§7.1: 10% in ALERTs → 0.936×).
    pub fn mixed_throughput(&self, alert_time_fraction: f64, level: u8) -> f64 {
        assert!(
            (0.0..=1.0).contains(&alert_time_fraction),
            "fraction in [0,1]"
        );
        (1.0 - alert_time_fraction) + alert_time_fraction * self.continuous_alert_throughput(level)
    }

    /// §7.4: benign workloads see ~100× more activations per ALERT than
    /// attacks, so their slowdown is ~100× smaller. Returns estimated
    /// slowdown given the benign activation fraction.
    pub fn benign_slowdown(&self, ath: u32, benign_act_fraction: f64, level: u8) -> f64 {
        let attack_acts_per_alert = f64::from(ath + 1);
        let acts_per_alert = attack_acts_per_alert / (1.0 - benign_act_fraction).max(1e-12);
        let alert_overhead_units = self.alert_units(level) - 3.0; // stalled portion
        alert_overhead_units / acts_per_alert
    }
}

impl Default for ThroughputModel {
    fn default() -> Self {
        Self::new(DramTiming::ddr5_prac())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThroughputModel {
        ThroughputModel::default()
    }

    #[test]
    fn continuous_alert_is_0_36x_at_level1() {
        // §7.1: "4 ACTs per 11 units ... reduces from 1 to 4/11 (0.36x)".
        let t = model().continuous_alert_throughput(1);
        assert!((0.33..0.40).contains(&t), "{t}");
    }

    #[test]
    fn max_slowdowns_match_appendix_d() {
        // Appendix D: up to 2.8× (L1), 3.8× (L2), 4.9× (L4).
        let m = model();
        assert!((2.6..3.0).contains(&m.max_continuous_slowdown(1)));
        assert!((3.6..4.1).contains(&m.max_continuous_slowdown(2)));
        assert!((4.6..5.2).contains(&m.max_continuous_slowdown(4)));
    }

    #[test]
    fn single_row_kernel_loses_about_ten_percent() {
        // §7.2: 69 ACTs in 76 units = 0.9×.
        let t = model().single_row_throughput(64, 1);
        assert!((0.88..0.93).contains(&t), "{t}");
    }

    #[test]
    fn mixed_model_matches_paper_example() {
        // §7.1: 10% of time in ALERTs → 0.936×.
        let t = model().mixed_throughput(0.10, 1);
        assert!((t - 0.936).abs() < 0.005, "{t}");
    }

    #[test]
    fn benign_slowdown_is_two_orders_below_attack() {
        // §7.4: 99.6% benign activations → ~100× smaller slowdown.
        let m = model();
        let attack = m.benign_slowdown(64, 0.0, 1);
        let benign = m.benign_slowdown(64, 0.996, 1);
        assert!(attack / benign > 100.0 && attack / benign < 500.0);
        assert!(benign < 0.002, "benign slowdown {benign}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn mixed_rejects_bad_fraction() {
        let _ = model().mixed_throughput(1.5, 1);
    }
}
