//! Activation-energy overhead model (§6.5).
//!
//! Mitigating an aggressor row costs extra activations (victim refreshes
//! plus the counter-reset write). The paper reports that MOAT at ATH 64
//! increases total activations by 2.3% and, since activation energy is
//! typically under 20% of total DRAM energy, total energy by < 0.5%.

/// Energy-overhead accounting for a mitigation design.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// Fraction of total DRAM energy attributable to activations
    /// (paper: "typically less than 20%", citing REGA \[27\]).
    pub activation_energy_fraction: f64,
}

impl EnergyModel {
    /// The paper's assumption: activations are 20% of DRAM energy.
    pub const fn paper_default() -> Self {
        EnergyModel {
            activation_energy_fraction: 0.20,
        }
    }

    /// Relative increase in total activations from mitigation:
    /// `mitigations × ops / baseline activations`.
    pub fn activation_overhead(
        &self,
        mitigations_per_trefw_per_bank: f64,
        ops_per_mitigation: u32,
        baseline_acts_per_trefw_per_bank: f64,
    ) -> f64 {
        assert!(
            baseline_acts_per_trefw_per_bank > 0.0,
            "baseline activations must be positive"
        );
        mitigations_per_trefw_per_bank * f64::from(ops_per_mitigation)
            / baseline_acts_per_trefw_per_bank
    }

    /// Relative increase in total DRAM energy implied by an activation
    /// overhead.
    pub fn energy_overhead(&self, activation_overhead: f64) -> f64 {
        activation_overhead * self.activation_energy_fraction
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_recovered() {
        // §6.5: MOAT (ATH 64) increases activations by 2.3%; with
        // activations at ≤20% of DRAM energy, total energy rises < 0.5%.
        let m = EnergyModel::paper_default();
        // 835 mitigations+ALERTs per tREFW per bank (Table 5, ETH 32) at
        // 5 ops each over a typical ~180k baseline activations.
        let act_overhead = m.activation_overhead(835.0, 5, 181_500.0);
        assert!((0.020..0.026).contains(&act_overhead), "{act_overhead}");
        let energy = m.energy_overhead(act_overhead);
        assert!(energy < 0.005, "energy overhead {energy}");
    }

    #[test]
    fn overhead_scales_linearly() {
        let m = EnergyModel::paper_default();
        let a = m.activation_overhead(100.0, 5, 10_000.0);
        let b = m.activation_overhead(200.0, 5, 10_000.0);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline activations")]
    fn zero_baseline_rejected() {
        let _ = EnergyModel::paper_default().activation_overhead(1.0, 5, 0.0);
    }
}
