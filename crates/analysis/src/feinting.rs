//! The feinting bound for transparent per-row-counter schemes (§2.5,
//! Table 2).
//!
//! A purely transparent scheme mitigates one aggressor per `k` tREFI. The
//! attacker maintains a pool of equal-count rows so each mitigation wastes
//! one row's worth of investment; with `A = 67·k` activations per
//! mitigation period and `P` periods in the attack window, the surviving
//! row reaches `A · H(P)` activations (`H` = harmonic number) — the reason
//! transparent schemes bottom out near T_RH ≈ 2200 at the paper's default
//! rate, and why MOAT needs the reactive ALERT path.

use moat_dram::DramTiming;

/// The feinting-bound model.
#[derive(Debug, Clone, Copy)]
pub struct FeintingModel {
    timing: DramTiming,
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeintingBound {
    /// Mitigation rate: one aggressor per this many tREFI.
    pub trefi_per_aggressor: u32,
    /// Activations per mitigation period (`A`).
    pub acts_per_period: u64,
    /// Mitigation periods in the attack window (`P`).
    pub periods: u64,
    /// The feinting-based tolerated threshold (`A · H(P)`).
    pub trh_bound: u32,
}

impl FeintingModel {
    /// Builds the model for the given timing.
    pub fn new(timing: DramTiming) -> Self {
        FeintingModel { timing }
    }

    /// The bound for a mitigation rate of one aggressor per `k` tREFI.
    pub fn bound(&self, k: u32) -> FeintingBound {
        let acts_per_trefi = self.timing.acts_per_trefi();
        let a = acts_per_trefi * u64::from(k);
        // Budgeting periods over the full tREFW reproduces Table 2 within
        // a fraction of a percent.
        let window_trefi = self.timing.refs_per_trefw();
        let p = window_trefi / u64::from(k);
        let h: f64 = harmonic(p);
        FeintingBound {
            trefi_per_aggressor: k,
            acts_per_period: a,
            periods: p,
            trh_bound: (a as f64 * h).round() as u32,
        }
    }

    /// Table 2: the bound for rates 1..=5 tREFI per aggressor.
    pub fn table2(&self) -> Vec<FeintingBound> {
        (1..=5).map(|k| self.bound(k)).collect()
    }
}

impl Default for FeintingModel {
    fn default() -> Self {
        Self::new(DramTiming::ddr5_prac())
    }
}

/// The harmonic number `H(n) = Σ 1/i`, computed exactly for small `n` and
/// via the asymptotic expansion for large `n`.
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 10_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        let nf = n as f64;
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_exact_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - 25.0 / 12.0).abs() < 1e-12);
        assert_eq!(harmonic(0), 0.0);
    }

    #[test]
    fn harmonic_asymptotic_continuity() {
        // The exact and asymptotic branches agree at the boundary.
        let exact: f64 = (1..=10_000u64).map(|i| 1.0 / i as f64).sum();
        let asym = 10_001f64.ln() + 0.577_215_664_901_532_9 + 1.0 / 20_002.0;
        assert!((exact + 1.0 / 10_001.0 - asym).abs() < 1e-6);
    }

    #[test]
    fn table2_bounds_match_paper_within_one_percent() {
        // Table 2: 638 / 1188 / 1702 / 2195 / 2669.
        let model = FeintingModel::default();
        let expected = [638u32, 1188, 1702, 2195, 2669];
        for (bound, &paper) in model.table2().iter().zip(&expected) {
            let err = (f64::from(bound.trh_bound) - f64::from(paper)).abs() / f64::from(paper);
            assert!(
                err < 0.01,
                "k={}: model {} vs paper {paper} ({:.2}% off)",
                bound.trefi_per_aggressor,
                bound.trh_bound,
                err * 100.0
            );
        }
    }

    #[test]
    fn default_rate_cannot_tolerate_sub_200() {
        // §2.5: "a purely transparent scheme cannot tolerate a low TRH
        // (sub 200)". Even the fastest rate is far above 200.
        let model = FeintingModel::default();
        assert!(model.bound(1).trh_bound > 600);
    }

    #[test]
    fn bound_grows_with_slower_mitigation() {
        let model = FeintingModel::default();
        let t = model.table2();
        assert!(t.windows(2).all(|w| w[0].trh_bound < w[1].trh_bound));
    }
}
