//! The analytical model of the Ratchet attack (Appendix A).
//!
//! Let `L` be the ABO mitigation level, `M = 3 + L` the activations an
//! attacker can force between consecutive ALERTs (Fig. 8), and
//! `tA2A = 180 ns + (tRFM + tRC)·L` the minimum ALERT-to-ALERT time. With
//! `N` pooled rows the attack takes
//!
//! ```text
//! H(N) = N · ATH · tRC  +  (N / L) · tA2A
//! ```
//!
//! The largest pool `N_c` fitting in the attack window (tREFW minus
//! refresh time, ≈28.64 ms) bounds the safely tolerated threshold:
//!
//! ```text
//! T_RH^safe = ATH + log_{M/3}(N_c) + M        (Equation 4)
//! ```
//!
//! This reproduces the paper's headline numbers: ATH 64 → 99, ATH 128 →
//! 161 (level 1), and the Safe-TRH column of Table 7.

use moat_dram::{DramTiming, Nanos};

/// The Appendix-A model, parameterized by the DRAM timing.
#[derive(Debug, Clone, Copy)]
pub struct RatchetModel {
    timing: DramTiming,
}

impl RatchetModel {
    /// Builds the model for the given timing (use
    /// [`DramTiming::ddr5_prac`] for the paper's numbers).
    pub fn new(timing: DramTiming) -> Self {
        RatchetModel { timing }
    }

    /// `M`: minimum activations between consecutive ALERTs for `level`.
    pub fn m(&self, level: u8) -> u64 {
        self.timing.min_acts_between_alerts(level)
    }

    /// `tA2A`: minimum ALERT-to-ALERT time for `level`.
    pub fn t_a2a(&self, level: u8) -> Nanos {
        self.timing.t_alert_to_alert(level)
    }

    /// `H(N)`: total attack time for a pool of `n` rows (Equation 3).
    pub fn attack_time(&self, n: u64, ath: u32, level: u8) -> Nanos {
        let prime = n * u64::from(ath) * self.timing.t_rc.as_u64();
        let alerts = n * self.t_a2a(level).as_u64() / u64::from(level);
        Nanos::new(prime + alerts)
    }

    /// `N_c`: the largest pool whose attack fits in the refresh window.
    ///
    /// Budgeting over the full tREFW reproduces the paper's reported
    /// values exactly (99/161 and the Table 7 column); the stricter
    /// tREFW-minus-refresh-time window shifts a few cells by one.
    pub fn critical_pool(&self, ath: u32, level: u8) -> u64 {
        let window = self.timing.t_refw.as_u64();
        let per_row = u64::from(ath) * self.timing.t_rc.as_u64()
            + self.t_a2a(level).as_u64() / u64::from(level);
        window / per_row
    }

    /// `T_RH^safe`: the threshold MOAT safely tolerates (Equation 4).
    pub fn safe_trh(&self, ath: u32, level: u8) -> u32 {
        let m = self.m(level) as f64;
        let nc = self.critical_pool(ath, level) as f64;
        let ratchet_gain = nc.ln() / (m / 3.0).ln();
        (f64::from(ath) + ratchet_gain + m).round() as u32
    }

    /// The Fig. 10 / Fig. 15 series: `T_RH^safe` for each ATH in `aths`.
    pub fn series(&self, aths: &[u32], level: u8) -> Vec<(u32, u32)> {
        aths.iter().map(|&a| (a, self.safe_trh(a, level))).collect()
    }
}

impl Default for RatchetModel {
    fn default() -> Self {
        Self::new(DramTiming::ddr5_prac())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RatchetModel {
        RatchetModel::default()
    }

    #[test]
    fn m_matches_fig8() {
        let m = model();
        assert_eq!(m.m(1), 4);
        assert_eq!(m.m(2), 5);
        assert_eq!(m.m(4), 7);
    }

    #[test]
    fn headline_numbers_level1() {
        // §5.3: "MOAT with ATH of 64 and 128 tolerates TRH of 99 and 161".
        let m = model();
        assert_eq!(m.safe_trh(64, 1), 99);
        assert_eq!(m.safe_trh(128, 1), 161);
    }

    #[test]
    fn table7_safe_trh_column() {
        // Table 7: (ATH, level) → Safe-TRH.
        let m = model();
        let expected = [
            (32, 1, 69),
            (32, 2, 56),
            (32, 4, 50),
            (64, 1, 99),
            (64, 2, 87),
            (64, 4, 82),
            (128, 1, 161),
            (128, 2, 150),
            (128, 4, 145),
        ];
        for (ath, level, trh) in expected {
            let got = m.safe_trh(ath, level);
            assert!(
                (i64::from(got) - i64::from(trh)).abs() <= 1,
                "ATH {ath} level {level}: model {got} vs paper {trh}"
            );
        }
        // The headline cells are exact.
        assert_eq!(m.safe_trh(64, 1), 99);
        assert_eq!(m.safe_trh(128, 1), 161);
    }

    #[test]
    fn fig10_shape_monotone_in_ath() {
        let m = model();
        let series = m.series(&[16, 32, 48, 64, 80, 96, 112, 128], 1);
        assert!(series.windows(2).all(|w| w[0].1 < w[1].1));
        // §5.3: impractical to tolerate below ~40 even at tiny ATH.
        assert!(m.safe_trh(1, 1) >= 35, "floor: {}", m.safe_trh(1, 1));
    }

    #[test]
    fn attack_fits_in_window_at_critical_pool() {
        let m = model();
        let budget = m.timing.t_refw;
        for (ath, level) in [(64u32, 1u8), (128, 1), (64, 2), (64, 4)] {
            let nc = m.critical_pool(ath, level);
            assert!(m.attack_time(nc, ath, level) <= budget);
            assert!(m.attack_time(nc + 2, ath, level) > budget);
        }
    }
}
