//! SRAM storage accounting (§6.5, Appendix D, Fig. 1a).

/// Storage cost of a mitigation design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageBudget {
    /// Design name.
    pub design: &'static str,
    /// SRAM bytes per bank.
    pub bytes_per_bank: usize,
    /// SRAM bytes per chip (32 banks).
    pub bytes_per_chip: usize,
}

/// MOAT's budget for a given ABO level (§6.5, Appendix D): `L` tracker
/// entries of 3 bytes, a 2-byte CMA, and two 1-byte shadow counters.
pub fn moat_budget(level: u8) -> StorageBudget {
    let per_bank = usize::from(level) * 3 + 2 + 2;
    StorageBudget {
        design: match level {
            1 => "MOAT-L1",
            2 => "MOAT-L2",
            4 => "MOAT-L4",
            _ => "MOAT-Lx",
        },
        bytes_per_bank: per_bank,
        bytes_per_chip: per_bank * 32,
    }
}

/// Panopticon's queue budget: 8 entries × 2-byte row address (counters
/// live in the DRAM array).
pub fn panopticon_budget() -> StorageBudget {
    StorageBudget {
        design: "Panopticon",
        bytes_per_bank: 16,
        bytes_per_chip: 16 * 32,
    }
}

/// The idealized per-row SRAM tracker: 2 bytes per row (Fig. 1a's
/// impractical "SRAM-optimal" corner).
pub fn ideal_sram_budget(rows_per_bank: u32) -> StorageBudget {
    let per_bank = rows_per_bank as usize * 2;
    StorageBudget {
        design: "Ideal-SRAM",
        bytes_per_bank: per_bank,
        bytes_per_chip: per_bank * 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moat_budgets_match_paper() {
        // §6.5 / Appendix D: 7/10/16 bytes per bank; 224/320/512 per chip.
        assert_eq!(moat_budget(1).bytes_per_bank, 7);
        assert_eq!(moat_budget(2).bytes_per_bank, 10);
        assert_eq!(moat_budget(4).bytes_per_bank, 16);
        assert_eq!(moat_budget(1).bytes_per_chip, 224);
        assert_eq!(moat_budget(2).bytes_per_chip, 320);
        assert_eq!(moat_budget(4).bytes_per_chip, 512);
    }

    #[test]
    fn ideal_tracker_is_five_orders_heavier() {
        let ideal = ideal_sram_budget(65_536);
        assert_eq!(ideal.bytes_per_bank, 128 * 1024);
        assert!(ideal.bytes_per_bank / moat_budget(1).bytes_per_bank > 18_000);
    }

    #[test]
    fn panopticon_is_low_but_broken() {
        assert_eq!(panopticon_budget().bytes_per_bank, 16);
    }
}
