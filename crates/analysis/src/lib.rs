//! # moat-analysis — the paper's analytical models
//!
//! Closed-form models that the simulation results are checked against:
//!
//! * [`RatchetModel`] — Appendix A: the threshold MOAT safely tolerates
//!   under delayed ALERTs (Equation 4; ATH 64 → T_RH 99, Figs. 10/15,
//!   Table 7's Safe-TRH column).
//! * [`FeintingModel`] — §2.5 / Table 2: the harmonic feinting bound on
//!   purely transparent per-row-counter schemes.
//! * [`ThroughputModel`] — §7: ALERT throughput arithmetic (0.36× under
//!   continuous ALERTs, ~10% single-row kernel loss, benign-workload
//!   scaling).
//! * [`moat_budget`] and friends — §6.5: SRAM storage accounting
//!   (7 bytes per bank for MOAT-L1).
//! * [`EnergyModel`] — §6.5: activation and energy overhead (2.3% extra
//!   activations → <0.5% DRAM energy at ATH 64).
//!
//! ```
//! use moat_analysis::RatchetModel;
//!
//! let model = RatchetModel::default();
//! assert_eq!(model.safe_trh(64, 1), 99); // the paper's headline number
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod feinting;
mod ratchet;
mod storage;
mod throughput;

pub use energy::EnergyModel;
pub use feinting::{harmonic, FeintingBound, FeintingModel};
pub use ratchet::RatchetModel;
pub use storage::{ideal_sram_budget, moat_budget, panopticon_budget, StorageBudget};
pub use throughput::ThroughputModel;
