//! Synthetic activation-stream generator calibrated to Table 4.
//!
//! The generator reproduces, per bank per tREFW, the row-activation
//! histogram the paper reports (rows with ≥32/≥64/≥128 activations) and an
//! overall activation rate derived from ACT-PKI under the paper's 8-core
//! 4 GHz rate-mode configuration. Each hot row's activations are emitted
//! as a *burst* over a random sub-window, which reproduces the temporal
//! clustering that makes proactive mitigation occasionally fall behind and
//! trigger ALERTs (§6.3).
//!
//! What the paper took from real SPEC/GAP traces, we synthesize — the
//! histogram plus the rate are precisely the statistics MOAT's behaviour
//! depends on (see DESIGN.md, substitution table).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use moat_dram::{BankId, DramConfig, Nanos, RowId};
use moat_sim::{Request, RequestStream, DEFAULT_CHUNK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profiles::WorkloadProfile;

/// Version of the stream-generation algorithm. Folded into every trace
/// cache key (see [`crate::trace_key`]): recorded traces are replayed as
/// stand-ins for fresh generation, so **bump this whenever a change to
/// this module alters the emitted sequence** — otherwise warm caches
/// (developer checkouts, the persisted CI cache) would silently replay
/// the pre-change streams.
pub const GENERATOR_VERSION: u32 = 1;

/// Aggregate instruction rate of the paper's 8-core 4 GHz system at an
/// assumed IPC of 1 (instructions per second).
const INSTR_PER_SEC: f64 = 8.0 * 4.0e9;

/// Total banks in the paper's system (32 banks × 2 sub-channels).
const TOTAL_BANKS: f64 = 64.0;

/// Fraction of peak bank throughput the generator will not exceed.
const MAX_BANK_UTILIZATION: f64 = 0.75;

/// Configuration of the synthetic stream.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Banks to generate traffic for (the sub-channel under simulation).
    pub banks: u16,
    /// Number of tREFW windows to cover.
    pub windows: u32,
    /// RNG seed (streams are fully reproducible).
    pub seed: u64,
}

impl GeneratorConfig {
    /// A scaled-down default: 8 banks, one refresh window.
    pub fn scaled() -> Self {
        GeneratorConfig {
            banks: 8,
            windows: 1,
            seed: 0xA0A7,
        }
    }

    /// Paper-scale: 32 banks, two refresh windows.
    pub fn paper_scale() -> Self {
        GeneratorConfig {
            banks: 32,
            windows: 2,
            seed: 0xA0A7,
        }
    }
}

/// One scheduled burst of activations to a single row.
#[derive(Debug, Clone, Copy)]
struct Campaign {
    bank: u16,
    row: u32,
    remaining: u32,
    /// Nanoseconds between consecutive activations of this campaign.
    interval: u64,
}

/// The merged, time-ordered activation stream for one workload.
///
/// # Examples
///
/// ```
/// use moat_dram::DramConfig;
/// use moat_sim::RequestStream;
/// use moat_workloads::{GeneratorConfig, WorkloadProfile, WorkloadStream};
///
/// let profile = WorkloadProfile::by_name("xalancbmk").unwrap();
/// let mut cfg = GeneratorConfig::scaled();
/// cfg.banks = 2;
/// let mut stream =
///     WorkloadStream::new(profile, &DramConfig::paper_baseline(), cfg);
/// let first = stream.next_request().expect("non-empty stream");
/// assert!(first.bank.index() < 2);
/// ```
#[derive(Debug)]
pub struct WorkloadStream {
    /// (next activation time, sequence breaker, campaign index).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    campaigns: Vec<Campaign>,
    last_time: u64,
    total_emitted: u64,
}

impl WorkloadStream {
    /// Builds the stream for `profile` over the given DRAM organization.
    pub fn new(profile: &WorkloadProfile, dram: &DramConfig, config: GeneratorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(profile.name));
        let trefw_ns = dram.timing.t_refw.as_u64();
        let budget = Self::acts_per_bank_per_window(profile, dram);

        let mut campaigns = Vec::new();
        let mut heap = BinaryHeap::new();
        for window in 0..config.windows {
            let window_start = u64::from(window) * trefw_ns;
            for bank in 0..config.banks {
                Self::plan_bank_window(
                    profile,
                    dram,
                    budget,
                    bank,
                    window_start,
                    trefw_ns,
                    &mut rng,
                    &mut campaigns,
                    &mut heap,
                );
            }
        }
        WorkloadStream {
            heap,
            campaigns,
            last_time: 0,
            total_emitted: 0,
        }
    }

    /// The activation budget per bank per tREFW: the ACT-PKI-derived rate,
    /// floored by what the hot-row histogram itself requires and capped at
    /// a sane bank utilization.
    pub fn acts_per_bank_per_window(profile: &WorkloadProfile, dram: &DramConfig) -> u64 {
        let trefw_s = dram.timing.t_refw.as_u64() as f64 / 1e9;
        let pki_rate = INSTR_PER_SEC * profile.act_pki / 1000.0 / TOTAL_BANKS;
        let capacity = 1e9 / dram.timing.t_rc.as_u64() as f64 * MAX_BANK_UTILIZATION;
        let from_pki = pki_rate.min(capacity) * trefw_s;
        // The histogram is a hard floor: a workload whose hot rows imply
        // more activations than IPC=1 would produce simply runs at a
        // higher IPC in the paper's OOO cores.
        let floor = profile.min_hot_acts() as f64 * 1.18;
        from_pki.max(floor) as u64
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_bank_window(
        profile: &WorkloadProfile,
        dram: &DramConfig,
        budget: u64,
        bank: u16,
        window_start: u64,
        trefw_ns: u64,
        rng: &mut StdRng,
        campaigns: &mut Vec<Campaign>,
        heap: &mut BinaryHeap<Reverse<(u64, u32)>>,
    ) {
        let rows = dram.rows_per_bank;
        let mut spent: u64 = 0;
        // Rows are sampled without replacement within a bank-window:
        // duplicate campaigns would silently push rows across the
        // 32/64/128 bucket lines and distort the Table 4 histogram.
        let mut used = std::collections::HashSet::new();
        let mut sample_row = move |rng: &mut StdRng| loop {
            let r = rng.random_range(0..rows);
            if used.insert(r) {
                return r;
            }
        };

        // Hot rows: (bucket count, min acts, max extra).
        let buckets = [
            (profile.bucket128(), 128u32, 192u32),
            (profile.bucket64(), 64, 63),
            (profile.bucket32(), 32, 31),
        ];
        for &(count, base, extra_max) in &buckets {
            for _ in 0..count {
                let extra = if extra_max > 0 {
                    // Skew extras low so low-PKI workloads stay in budget.
                    let r: f64 = rng.random();
                    (f64::from(extra_max) * r * r) as u32
                } else {
                    0
                };
                let acts = base + extra;
                spent += u64::from(acts);
                // Hot rows burst over 10–50% of the window.
                let frac = rng.random_range(0.10..0.50);
                let duration = (trefw_ns as f64 * frac) as u64;
                let start =
                    window_start + rng.random_range(0..trefw_ns.saturating_sub(duration).max(1));
                Self::push_campaign(
                    campaigns,
                    heap,
                    Campaign {
                        bank,
                        row: sample_row(rng),
                        remaining: acts,
                        interval: (duration / u64::from(acts)).max(52),
                    },
                    start,
                );
            }
        }

        // Cold background: spend the remaining budget on rows below the
        // 32-activation line, spread across the whole window.
        while spent < budget {
            let acts = rng
                .random_range(1..=31u32)
                .min((budget - spent) as u32)
                .max(1);
            spent += u64::from(acts);
            let start = window_start + rng.random_range(0..trefw_ns);
            Self::push_campaign(
                campaigns,
                heap,
                Campaign {
                    bank,
                    row: sample_row(rng),
                    remaining: acts,
                    interval: trefw_ns / u64::from(acts) / 4,
                },
                start,
            );
        }
    }

    fn push_campaign(
        campaigns: &mut Vec<Campaign>,
        heap: &mut BinaryHeap<Reverse<(u64, u32)>>,
        campaign: Campaign,
        start: u64,
    ) {
        let idx = campaigns.len() as u32;
        campaigns.push(campaign);
        heap.push(Reverse((start, idx)));
    }

    /// Total requests emitted so far.
    pub fn emitted(&self) -> u64 {
        self.total_emitted
    }
}

impl RequestStream for WorkloadStream {
    fn next_request(&mut self) -> Option<Request> {
        let Reverse((t, idx)) = self.heap.pop()?;
        let c = &mut self.campaigns[idx as usize];
        let request = Request {
            gap: Nanos::new(t.saturating_sub(self.last_time)),
            bank: BankId::new(c.bank),
            row: RowId::new(c.row),
        };
        self.last_time = t;
        self.total_emitted += 1;
        c.remaining -= 1;
        if c.remaining > 0 {
            let interval = c.interval;
            self.heap.push(Reverse((t + interval, idx)));
        }
        Some(request)
    }

    /// Batched generation: one merged pass over the campaign heap per
    /// chunk, with the arrival clock and emission counter held in locals
    /// instead of being written back through `&mut self` per request.
    /// Yields exactly the sequence repeated
    /// [`next_request`](RequestStream::next_request) calls would (pinned
    /// by the `chunk_equivalence` proptest).
    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> usize {
        buf.clear();
        if buf.capacity() == 0 {
            buf.reserve(DEFAULT_CHUNK);
        }
        let cap = buf.capacity();
        let mut last_time = self.last_time;
        while buf.len() < cap {
            let Some(Reverse((t, idx))) = self.heap.pop() else {
                break;
            };
            let c = &mut self.campaigns[idx as usize];
            buf.push(Request {
                gap: Nanos::new(t.saturating_sub(last_time)),
                bank: BankId::new(c.bank),
                row: RowId::new(c.row),
            });
            last_time = t;
            c.remaining -= 1;
            if c.remaining > 0 {
                self.heap.push(Reverse((t + c.interval, idx)));
            }
        }
        self.last_time = last_time;
        self.total_emitted += buf.len() as u64;
        buf.len()
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

/// Measures the per-bank-per-window activation histogram of a stream —
/// used to verify the generator against Table 4.
#[derive(Debug, Default)]
pub struct HistogramCheck {
    /// Rows with ≥32 activations, averaged per bank per window.
    pub act32: f64,
    /// Rows with ≥64 activations.
    pub act64: f64,
    /// Rows with ≥128 activations.
    pub act128: f64,
    /// Total activations per bank per window.
    pub acts_per_bank: f64,
}

impl HistogramCheck {
    /// Drains `stream` and tabulates per-bank-per-window row activation
    /// counts.
    pub fn measure<S: RequestStream>(
        mut stream: S,
        dram: &DramConfig,
        banks: u16,
        windows: u32,
    ) -> Self {
        use std::collections::HashMap;
        let trefw = dram.timing.t_refw.as_u64();
        let mut counts: HashMap<(u32, u16, u32), u32> = HashMap::new();
        let mut now = 0u64;
        let mut total = 0u64;
        while let Some(r) = stream.next_request() {
            now += r.gap.as_u64();
            let window = (now / trefw) as u32;
            *counts
                .entry((window, r.bank.index(), r.row.index()))
                .or_default() += 1;
            total += 1;
        }
        let cells = f64::from(windows) * f64::from(banks);
        let mut h = HistogramCheck {
            acts_per_bank: total as f64 / cells,
            ..Default::default()
        };
        for &c in counts.values() {
            if c >= 32 {
                h.act32 += 1.0;
            }
            if c >= 64 {
                h.act64 += 1.0;
            }
            if c >= 128 {
                h.act128 += 1.0;
            }
        }
        h.act32 /= cells;
        h.act64 /= cells;
        h.act128 /= cells;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::DramConfig;

    fn check(name: &str) -> (HistogramCheck, &'static WorkloadProfile) {
        let profile = WorkloadProfile::by_name(name).unwrap();
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig {
            banks: 2,
            windows: 1,
            seed: 7,
        };
        let stream = WorkloadStream::new(profile, &dram, cfg);
        (HistogramCheck::measure(stream, &dram, 2, 1), profile)
    }

    #[test]
    fn histogram_matches_profile_for_roms() {
        let (h, p) = check("roms");
        assert!(
            (h.act32 - f64::from(p.act32)).abs() / f64::from(p.act32) < 0.10,
            "act32 {} vs {}",
            h.act32,
            p.act32
        );
        assert!(
            (h.act64 - f64::from(p.act64)).abs() / f64::from(p.act64) < 0.10,
            "act64 {} vs {}",
            h.act64,
            p.act64
        );
        assert!(
            (h.act128 - f64::from(p.act128)).abs() / f64::from(p.act128) < 0.12,
            "act128 {} vs {}",
            h.act128,
            p.act128
        );
    }

    #[test]
    fn histogram_matches_profile_for_light_workload() {
        let (h, p) = check("x264");
        assert!((h.act32 - f64::from(p.act32)).abs() < 40.0, "{}", h.act32);
        assert!((h.act64 - f64::from(p.act64)).abs() < 20.0, "{}", h.act64);
        assert!(h.act128 < 5.0, "x264 has no 128+ rows, got {}", h.act128);
    }

    #[test]
    fn stream_is_time_ordered_and_reproducible() {
        let profile = WorkloadProfile::by_name("gcc").unwrap();
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig {
            banks: 1,
            windows: 1,
            seed: 3,
        };
        let collect = || {
            let mut s = WorkloadStream::new(profile, &dram, cfg);
            let mut v = Vec::new();
            while let Some(r) = s.next_request() {
                v.push((r.gap.as_u64(), r.bank.index(), r.row.index()));
            }
            v
        };
        let a = collect();
        let b = collect();
        assert_eq!(a, b, "same seed must reproduce the same stream");
        assert!(a.len() > 10_000);
    }

    #[test]
    fn budget_respects_histogram_floor() {
        let dram = DramConfig::paper_baseline();
        for p in &crate::profiles::PROFILES {
            let budget = WorkloadStream::acts_per_bank_per_window(p, &dram);
            assert!(
                budget >= p.min_hot_acts(),
                "{}: budget {budget} below histogram floor {}",
                p.name,
                p.min_hot_acts()
            );
            // And below the bank's physical capacity.
            assert!(budget < 32_000_000 / 52);
        }
    }
}
