//! Workload profiles: Table 4 of the paper.
//!
//! For each SPEC-2017 and GAP workload the paper reports the activation
//! intensity (ACT-PKI: activations per thousand instructions) and the
//! number of rows per bank per tREFW receiving at least 32/64/128
//! activations. These are exactly the statistics that determine MOAT's
//! mitigation and ALERT behaviour, so the synthetic generator is
//! calibrated to them.

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2017 (the 15 benchmarks with ≥ 0.5 ACT-PKI).
    Spec2017,
    /// GAP graph-analytics suite.
    Gap,
}

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name as printed in the paper's figures.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Activations per kilo-instruction.
    pub act_pki: f64,
    /// Rows per bank per tREFW with ≥ 32 activations.
    pub act32: u32,
    /// Rows per bank per tREFW with ≥ 64 activations.
    pub act64: u32,
    /// Rows per bank per tREFW with ≥ 128 activations.
    pub act128: u32,
}

/// Table 4, verbatim.
pub const PROFILES: [WorkloadProfile; 21] = [
    WorkloadProfile {
        name: "bwaves",
        suite: Suite::Spec2017,
        act_pki: 29.3,
        act32: 1871,
        act64: 199,
        act128: 4,
    },
    WorkloadProfile {
        name: "fotonik3d",
        suite: Suite::Spec2017,
        act_pki: 25.0,
        act32: 2175,
        act64: 113,
        act128: 11,
    },
    WorkloadProfile {
        name: "lbm",
        suite: Suite::Spec2017,
        act_pki: 20.9,
        act32: 3145,
        act64: 1325,
        act128: 13,
    },
    WorkloadProfile {
        name: "mcf",
        suite: Suite::Spec2017,
        act_pki: 19.8,
        act32: 1772,
        act64: 380,
        act128: 113,
    },
    WorkloadProfile {
        name: "omnetpp",
        suite: Suite::Spec2017,
        act_pki: 11.1,
        act32: 1224,
        act64: 142,
        act128: 41,
    },
    WorkloadProfile {
        name: "roms",
        suite: Suite::Spec2017,
        act_pki: 9.6,
        act32: 2302,
        act64: 995,
        act128: 431,
    },
    WorkloadProfile {
        name: "parest",
        suite: Suite::Spec2017,
        act_pki: 8.9,
        act32: 2259,
        act64: 1014,
        act128: 406,
    },
    WorkloadProfile {
        name: "xz",
        suite: Suite::Spec2017,
        act_pki: 8.8,
        act32: 3409,
        act64: 1255,
        act128: 384,
    },
    WorkloadProfile {
        name: "cactuBSSN",
        suite: Suite::Spec2017,
        act_pki: 3.6,
        act32: 4187,
        act64: 1180,
        act128: 466,
    },
    WorkloadProfile {
        name: "cam4",
        suite: Suite::Spec2017,
        act_pki: 3.0,
        act32: 821,
        act64: 89,
        act128: 3,
    },
    WorkloadProfile {
        name: "blender",
        suite: Suite::Spec2017,
        act_pki: 1.1,
        act32: 1016,
        act64: 358,
        act128: 91,
    },
    WorkloadProfile {
        name: "xalancbmk",
        suite: Suite::Spec2017,
        act_pki: 0.9,
        act32: 585,
        act64: 163,
        act128: 36,
    },
    WorkloadProfile {
        name: "wrf",
        suite: Suite::Spec2017,
        act_pki: 0.8,
        act32: 567,
        act64: 90,
        act128: 0,
    },
    WorkloadProfile {
        name: "x264",
        suite: Suite::Spec2017,
        act_pki: 0.6,
        act32: 310,
        act64: 59,
        act128: 0,
    },
    WorkloadProfile {
        name: "gcc",
        suite: Suite::Spec2017,
        act_pki: 0.6,
        act32: 424,
        act64: 107,
        act128: 19,
    },
    WorkloadProfile {
        name: "cc",
        suite: Suite::Gap,
        act_pki: 71.5,
        act32: 1357,
        act64: 215,
        act128: 18,
    },
    WorkloadProfile {
        name: "pr",
        suite: Suite::Gap,
        act_pki: 29.1,
        act32: 1489,
        act64: 349,
        act128: 52,
    },
    WorkloadProfile {
        name: "bfs",
        suite: Suite::Gap,
        act_pki: 22.8,
        act32: 529,
        act64: 64,
        act128: 16,
    },
    WorkloadProfile {
        name: "tc",
        suite: Suite::Gap,
        act_pki: 18.2,
        act32: 81,
        act64: 0,
        act128: 0,
    },
    WorkloadProfile {
        name: "bc",
        suite: Suite::Gap,
        act_pki: 9.0,
        act32: 289,
        act64: 43,
        act128: 9,
    },
    WorkloadProfile {
        name: "sssp",
        suite: Suite::Gap,
        act_pki: 7.0,
        act32: 1817,
        act64: 620,
        act128: 127,
    },
];

impl WorkloadProfile {
    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<&'static WorkloadProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }

    /// Rows in the `[32, 64)` activation bucket.
    pub fn bucket32(&self) -> u32 {
        self.act32 - self.act64
    }

    /// Rows in the `[64, 128)` activation bucket.
    pub fn bucket64(&self) -> u32 {
        self.act64 - self.act128
    }

    /// Rows in the `128+` activation bucket.
    pub fn bucket128(&self) -> u32 {
        self.act128
    }

    /// Minimum activations per bank per tREFW implied by the hot-row
    /// histogram alone.
    pub fn min_hot_acts(&self) -> u64 {
        u64::from(self.bucket32()) * 32
            + u64::from(self.bucket64()) * 64
            + u64::from(self.bucket128()) * 128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_one_workloads() {
        assert_eq!(PROFILES.len(), 21);
        assert_eq!(
            PROFILES
                .iter()
                .filter(|p| p.suite == Suite::Spec2017)
                .count(),
            15
        );
        assert_eq!(PROFILES.iter().filter(|p| p.suite == Suite::Gap).count(), 6);
    }

    #[test]
    fn histogram_is_cumulative() {
        for p in &PROFILES {
            assert!(p.act32 >= p.act64, "{}", p.name);
            assert!(p.act64 >= p.act128, "{}", p.name);
        }
    }

    #[test]
    fn averages_match_table4() {
        // Table 4's "Average" row: ACT-PKI 14.4, ACT-32+ 1506, ACT-64+
        // 417, ACT-128+ 106 (rounded).
        let n = PROFILES.len() as f64;
        let pki: f64 = PROFILES.iter().map(|p| p.act_pki).sum::<f64>() / n;
        let a32: f64 = PROFILES.iter().map(|p| f64::from(p.act32)).sum::<f64>() / n;
        let a64: f64 = PROFILES.iter().map(|p| f64::from(p.act64)).sum::<f64>() / n;
        let a128: f64 = PROFILES.iter().map(|p| f64::from(p.act128)).sum::<f64>() / n;
        assert!((pki - 14.4).abs() < 0.3, "pki {pki}");
        assert!((a32 - 1506.0).abs() < 15.0, "a32 {a32}");
        assert!((a64 - 417.0).abs() < 10.0, "a64 {a64}");
        assert!((a128 - 106.0).abs() < 5.0, "a128 {a128}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(WorkloadProfile::by_name("roms").is_some());
        assert!(WorkloadProfile::by_name("nonesuch").is_none());
        let roms = WorkloadProfile::by_name("roms").unwrap();
        assert_eq!(roms.bucket128(), 431);
        assert_eq!(roms.bucket64(), 995 - 431);
        assert_eq!(roms.bucket32(), 2302 - 995);
    }
}
