//! # moat-workloads — Table-4-calibrated synthetic workloads
//!
//! The paper evaluates MOAT on SPEC-2017 and GAP traces. Real traces are
//! not redistributable, so this crate synthesizes activation streams that
//! reproduce the statistics MOAT's behaviour actually depends on — the
//! per-bank-per-tREFW row-activation histogram and activation rate that
//! the paper reports for every workload in Table 4 (see DESIGN.md's
//! substitution table).
//!
//! ```
//! use moat_workloads::{WorkloadProfile, PROFILES};
//!
//! let roms = WorkloadProfile::by_name("roms").unwrap();
//! assert_eq!(roms.act128, 431); // hottest SPEC workload by 128+ rows
//! assert_eq!(PROFILES.len(), 21);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod profiles;
mod trace;

pub use generator::{GeneratorConfig, HistogramCheck, WorkloadStream, GENERATOR_VERSION};
pub use profiles::{Suite, WorkloadProfile, PROFILES};
pub use trace::{binary_to_text, read_trace, text_to_binary, trace_key, write_trace};
