//! Trace import/export: persist activation streams so experiments can be
//! replayed outside the generator (or real traces plugged in, should the
//! user have them).
//!
//! Two sibling formats, losslessly interconvertible:
//!
//! * **v1 (text)** — one request per line, `gap_ns bank row`, with `#`
//!   comments ([`write_trace`] / [`read_trace`]). Human-editable; the
//!   import/export interchange form.
//! * **v2 (binary)** — the fixed-width mmap-backed store of
//!   [`moat_trace`]: 48-byte header, 16-byte records
//!   ([`text_to_binary`] / [`binary_to_text`]). The replay form every
//!   sweep runs from.
//!
//! [`trace_key`] derives the content address a generated workload stream
//! caches under — the fingerprint covers the profile, the full
//! [`DramConfig`], and the [`GeneratorConfig`] (banks, windows, seed), so
//! any input change misses the cache instead of replaying a stale stream.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use moat_dram::{BankId, DramConfig, Nanos, RowId};
use moat_sim::{Request, RequestStream};
use moat_trace::{Fingerprint, TraceFile, TraceHeader, TraceKey, TraceWriter};

use crate::generator::GeneratorConfig;
use crate::profiles::WorkloadProfile;

/// Writes a request stream to `writer` in the text trace format.
///
/// A mutable reference works as the writer (`&mut f`), per the usual
/// `W: Write` convention.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use moat_dram::{BankId, Nanos, RowId};
/// use moat_sim::Request;
/// use moat_workloads::{read_trace, write_trace};
///
/// let reqs = vec![Request { gap: Nanos::new(52), bank: BankId::new(1), row: RowId::new(7) }];
/// let mut buf = Vec::new();
/// write_trace(&mut buf, reqs.iter().copied())?;
/// let back: Vec<_> = read_trace(&buf[..])?.collect::<Result<_, _>>()?;
/// assert_eq!(back, reqs);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write, S: RequestStream>(writer: W, mut stream: S) -> io::Result<u64> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# moat activation trace v1: gap_ns bank row")?;
    let mut n = 0u64;
    while let Some(r) = stream.next_request() {
        writeln!(w, "{} {} {}", r.gap.as_u64(), r.bank.index(), r.row.index())?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Reads a text trace back as an iterator of requests.
///
/// # Errors
///
/// Returns an error immediately if the reader fails; malformed lines
/// surface as item-level errors.
pub fn read_trace<R: Read>(reader: R) -> io::Result<impl Iterator<Item = io::Result<Request>>> {
    let lines = BufReader::new(reader).lines();
    Ok(lines.filter_map(|line| match line {
        Err(e) => Some(Err(e)),
        Ok(l) => {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                return None;
            }
            Some(parse_line(l))
        }
    }))
}

fn parse_line(l: &str) -> io::Result<Request> {
    let mut parts = l.split_whitespace();
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {l}"));
    let gap: u64 = parts
        .next()
        .ok_or_else(|| bad("gap"))?
        .parse()
        .map_err(|_| bad("gap"))?;
    let bank: u16 = parts
        .next()
        .ok_or_else(|| bad("bank"))?
        .parse()
        .map_err(|_| bad("bank"))?;
    let row: u32 = parts
        .next()
        .ok_or_else(|| bad("row"))?
        .parse()
        .map_err(|_| bad("row"))?;
    if parts.next().is_some() {
        return Err(bad("trailing fields"));
    }
    Ok(Request {
        gap: Nanos::new(gap),
        bank: BankId::new(bank),
        row: RowId::new(row),
    })
}

/// The content address a generated workload stream caches under: the
/// fingerprint covers the generator algorithm version
/// ([`crate::GENERATOR_VERSION`] — bumped when the emission logic
/// changes, so stale recordings can never replay as the new sequence),
/// the profile name, every [`DramConfig`] field (via its `Debug` form —
/// any organization or timing change invalidates the entry), and the
/// full [`GeneratorConfig`], which together determine the stream
/// bit-for-bit. The stream's length is a function of these inputs and
/// is additionally pinned by the trace header's record count.
pub fn trace_key(
    profile: &WorkloadProfile,
    dram: &DramConfig,
    config: GeneratorConfig,
) -> TraceKey {
    let mut fp = Fingerprint::new();
    fp.write_u64(u64::from(crate::GENERATOR_VERSION))
        .write_str(profile.name)
        .write_str(&format!("{dram:?}"))
        .write_u64(u64::from(config.banks))
        .write_u64(u64::from(config.windows))
        .write_u64(config.seed);
    TraceKey::new(profile.name, fp.finish())
}

/// Converts a v1 text trace into a sealed v2 binary trace at `path`,
/// carrying `fingerprint` into the header (use `0` for traces imported
/// from an external source). Returns the sealed header.
///
/// # Errors
///
/// Propagates read errors, malformed-line errors, and write errors; the
/// partial output file is removed on error.
pub fn text_to_binary<R: Read>(
    reader: R,
    path: &Path,
    fingerprint: u64,
) -> io::Result<TraceHeader> {
    let result = (|| {
        let mut writer = TraceWriter::create(path, fingerprint)?;
        for request in read_trace(reader)? {
            writer.push(request?)?;
        }
        writer.finish()
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(path);
    }
    result
}

/// Writes a v2 binary trace back out as v1 text. Returns the request
/// count (always `trace.len()`).
///
/// # Errors
///
/// Propagates write errors.
pub fn binary_to_text<W: Write>(trace: &TraceFile, writer: W) -> io::Result<u64> {
    write_trace(writer, trace.replay())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneratorConfig, WorkloadProfile, WorkloadStream};
    use moat_dram::DramConfig;

    #[test]
    fn roundtrip_generated_stream() {
        let profile = WorkloadProfile::by_name("x264").unwrap();
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig {
            banks: 1,
            windows: 1,
            seed: 9,
        };
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, WorkloadStream::new(profile, &dram, cfg)).unwrap();
        assert!(n > 1000);
        let back: Vec<Request> = read_trace(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back.len() as u64, n);

        let mut orig = WorkloadStream::new(profile, &dram, cfg);
        for r in &back {
            assert_eq!(Some(*r), orig.next_request());
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n52 0 7\n# mid\n0 1 9\n";
        let reqs: Vec<Request> = read_trace(text.as_bytes())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].bank, BankId::new(1));
    }

    #[test]
    fn malformed_lines_error() {
        for bad in ["52 0", "x 0 1", "1 2 3 4"] {
            let res: Result<Vec<Request>, _> = read_trace(bad.as_bytes()).unwrap().collect();
            assert!(res.is_err(), "{bad} should fail");
        }
    }

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "moat-wl-trace-{}-{name}.mtrace",
            std::process::id()
        ))
    }

    #[test]
    fn text_and_binary_interconvert_losslessly() {
        let profile = WorkloadProfile::by_name("x264").unwrap();
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig {
            banks: 1,
            windows: 1,
            seed: 11,
        };
        let mut text = Vec::new();
        let n = write_trace(&mut text, WorkloadStream::new(profile, &dram, cfg)).unwrap();

        // text → binary → text reproduces the stream exactly.
        let path = temp("convert");
        let header = text_to_binary(&text[..], &path, 0xF00D).unwrap();
        assert_eq!(header.count, n);
        assert_eq!(header.fingerprint, 0xF00D);
        let trace = TraceFile::open(&path).unwrap();
        let mut replay = trace.replay();
        let mut orig = WorkloadStream::new(profile, &dram, cfg);
        while let Some(expect) = orig.next_request() {
            assert_eq!(replay.next_request(), Some(expect));
        }
        assert_eq!(replay.next_request(), None);

        let mut text_again = Vec::new();
        assert_eq!(binary_to_text(&trace, &mut text_again).unwrap(), n);
        let a: Vec<Request> = read_trace(&text[..]).unwrap().map(|r| r.unwrap()).collect();
        let b: Vec<Request> = read_trace(&text_again[..])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(a, b);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_text_conversion_cleans_up() {
        let path = temp("badconvert");
        assert!(text_to_binary("1 2\n".as_bytes(), &path, 0).is_err());
        assert!(!path.exists(), "partial binary removed on error");
    }

    #[test]
    fn trace_key_separates_every_input() {
        let dram = DramConfig::paper_baseline();
        let base = GeneratorConfig {
            banks: 2,
            windows: 1,
            seed: 7,
        };
        let p = WorkloadProfile::by_name("gcc").unwrap();
        let key = trace_key(p, &dram, base);
        assert_eq!(key.label, "gcc");
        assert_eq!(key, trace_key(p, &dram, base), "deterministic");

        let other_profile = trace_key(WorkloadProfile::by_name("roms").unwrap(), &dram, base);
        let other_seed = trace_key(p, &dram, GeneratorConfig { seed: 8, ..base });
        let other_banks = trace_key(p, &dram, GeneratorConfig { banks: 4, ..base });
        let other_windows = trace_key(p, &dram, GeneratorConfig { windows: 2, ..base });
        let other_dram = trace_key(p, &DramConfig::builder().rows_per_bank(4096).build(), base);
        let fps: Vec<u64> = [
            &key,
            &other_profile,
            &other_seed,
            &other_banks,
            &other_windows,
            &other_dram,
        ]
        .iter()
        .map(|k| k.fingerprint)
        .collect();
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "inputs {i} and {j} collide");
            }
        }
    }
}
