//! Trace import/export: persist activation streams to a plain-text format
//! so experiments can be replayed outside the generator (or real traces
//! plugged in, should the user have them).
//!
//! Format: one request per line, `gap_ns bank row`, with `#` comments.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::{Request, RequestStream};

/// Writes a request stream to `writer` in the text trace format.
///
/// A mutable reference works as the writer (`&mut f`), per the usual
/// `W: Write` convention.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use moat_dram::{BankId, Nanos, RowId};
/// use moat_sim::Request;
/// use moat_workloads::{read_trace, write_trace};
///
/// let reqs = vec![Request { gap: Nanos::new(52), bank: BankId::new(1), row: RowId::new(7) }];
/// let mut buf = Vec::new();
/// write_trace(&mut buf, reqs.iter().copied())?;
/// let back: Vec<_> = read_trace(&buf[..])?.collect::<Result<_, _>>()?;
/// assert_eq!(back, reqs);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write, S: RequestStream>(writer: W, mut stream: S) -> io::Result<u64> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# moat activation trace v1: gap_ns bank row")?;
    let mut n = 0u64;
    while let Some(r) = stream.next_request() {
        writeln!(w, "{} {} {}", r.gap.as_u64(), r.bank.index(), r.row.index())?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Reads a text trace back as an iterator of requests.
///
/// # Errors
///
/// Returns an error immediately if the reader fails; malformed lines
/// surface as item-level errors.
pub fn read_trace<R: Read>(reader: R) -> io::Result<impl Iterator<Item = io::Result<Request>>> {
    let lines = BufReader::new(reader).lines();
    Ok(lines.filter_map(|line| match line {
        Err(e) => Some(Err(e)),
        Ok(l) => {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                return None;
            }
            Some(parse_line(l))
        }
    }))
}

fn parse_line(l: &str) -> io::Result<Request> {
    let mut parts = l.split_whitespace();
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}: {l}"));
    let gap: u64 = parts
        .next()
        .ok_or_else(|| bad("gap"))?
        .parse()
        .map_err(|_| bad("gap"))?;
    let bank: u16 = parts
        .next()
        .ok_or_else(|| bad("bank"))?
        .parse()
        .map_err(|_| bad("bank"))?;
    let row: u32 = parts
        .next()
        .ok_or_else(|| bad("row"))?
        .parse()
        .map_err(|_| bad("row"))?;
    if parts.next().is_some() {
        return Err(bad("trailing fields"));
    }
    Ok(Request {
        gap: Nanos::new(gap),
        bank: BankId::new(bank),
        row: RowId::new(row),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneratorConfig, WorkloadProfile, WorkloadStream};
    use moat_dram::DramConfig;

    #[test]
    fn roundtrip_generated_stream() {
        let profile = WorkloadProfile::by_name("x264").unwrap();
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig {
            banks: 1,
            windows: 1,
            seed: 9,
        };
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, WorkloadStream::new(profile, &dram, cfg)).unwrap();
        assert!(n > 1000);
        let back: Vec<Request> = read_trace(&buf[..])
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back.len() as u64, n);

        let mut orig = WorkloadStream::new(profile, &dram, cfg);
        for r in &back {
            assert_eq!(Some(*r), orig.next_request());
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n52 0 7\n# mid\n0 1 9\n";
        let reqs: Vec<Request> = read_trace(text.as_bytes())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].bank, BankId::new(1));
    }

    #[test]
    fn malformed_lines_error() {
        for bad in ["52 0", "x 0 1", "1 2 3 4"] {
            let res: Result<Vec<Request>, _> = read_trace(bad.as_bytes()).unwrap().collect();
            assert!(res.is_err(), "{bad} should fail");
        }
    }
}
