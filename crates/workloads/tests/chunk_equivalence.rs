//! The batched generator front-end is an optimization, not a semantic
//! change: `WorkloadStream::next_chunk` must emit exactly the request
//! sequence repeated `next_request` calls produce, for any chunk
//! capacity.

use moat_dram::DramConfig;
use moat_sim::{Request, RequestStream};
use moat_workloads::{GeneratorConfig, WorkloadStream, PROFILES};
use proptest::prelude::*;

fn drain_per_request(mut s: WorkloadStream) -> (Vec<Request>, u64) {
    let mut out = Vec::new();
    while let Some(r) = s.next_request() {
        out.push(r);
    }
    (out, s.emitted())
}

fn drain_batched(mut s: WorkloadStream, cap: usize) -> (Vec<Request>, u64) {
    let mut out = Vec::new();
    let mut buf = Vec::with_capacity(cap);
    while s.next_chunk(&mut buf) > 0 {
        out.extend_from_slice(&buf);
    }
    (out, s.emitted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For random profiles, seeds, bank counts, and chunk capacities the
    /// batched stream yields the exact same `Request` sequence (and
    /// emission count) as the per-request pull loop.
    #[test]
    fn batched_stream_equals_per_request(
        profile_idx in 0usize..PROFILES.len(),
        seed in 0u64..1_000,
        banks in 1u16..3,
        cap in 1usize..300,
    ) {
        let profile = &PROFILES[profile_idx];
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig { banks, windows: 1, seed };
        let (reference, ref_emitted) =
            drain_per_request(WorkloadStream::new(profile, &dram, cfg));
        let (batched, batched_emitted) =
            drain_batched(WorkloadStream::new(profile, &dram, cfg), cap);
        prop_assert_eq!(ref_emitted, batched_emitted);
        prop_assert!(!reference.is_empty());
        prop_assert_eq!(reference, batched);
    }

    /// Mixing the two pull styles mid-stream also cannot change the
    /// sequence: a chunk picks up exactly where single pulls left off.
    #[test]
    fn interleaved_pulls_preserve_the_sequence(
        profile_idx in 0usize..PROFILES.len(),
        singles in 1usize..50,
        cap in 1usize..100,
    ) {
        let profile = &PROFILES[profile_idx];
        let dram = DramConfig::paper_baseline();
        let cfg = GeneratorConfig { banks: 1, windows: 1, seed: 11 };
        let (reference, _) = drain_per_request(WorkloadStream::new(profile, &dram, cfg));

        let mut mixed = Vec::new();
        let mut s = WorkloadStream::new(profile, &dram, cfg);
        for _ in 0..singles {
            if let Some(r) = s.next_request() {
                mixed.push(r);
            }
        }
        let mut buf = Vec::with_capacity(cap);
        prop_assert!(s.next_chunk(&mut buf) > 0);
        mixed.extend_from_slice(&buf);
        prop_assert_eq!(&reference[..mixed.len()], &mixed[..]);
    }
}
