//! Semi-scripted ≡ per-step equivalence for the adaptive attackers.
//!
//! The per-step [`Attacker`](moat_sim::Attacker) impls of Jailbreak,
//! Ratchet, Postponement, and Feinting are the bit-identical reference;
//! these proptests pin `SecuritySim::run_semi_scripted` over the
//! semi-scripted forms against `SecuritySim::run` over the per-step
//! forms across randomized attack parameters, defense shapes, and ABO
//! levels — in the style of the `batched_matches_per_step` suite of the
//! scripted batched path.

use moat_attacks::{FeintingAttacker, JailbreakAttacker, PostponementAttacker, RatchetAttacker};
use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{AboLevel, DramConfig, MitigationEngine, Nanos};
use moat_sim::{SecurityConfig, SecurityReport, SecuritySim, SlotBudget};
use moat_trackers::{IdealSramTracker, PanopticonConfig, PanopticonEngine};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Jailbreak over random decoy counts × Panopticon queue depths ×
    /// queueing thresholds × pacing rates × ABO levels × both queue
    /// variants. Small queues and thresholds make overflow ALERTs (and
    /// drain-variant REF ALERTs) land inside and at the edges of
    /// published runs.
    #[test]
    fn jailbreak_semi_matches_per_step(
        decoys in 1usize..9,
        base in 1_000u32..50_000,
        spacing in 4u32..9,
        entries in 1usize..9,
        threshold in 8u32..160,
        acts_per_trefi in 1u32..48,
        level_idx in 0usize..3,
        drain_coin in 0u8..2,
        millis in 1u64..4,
    ) {
        let rows: Vec<u32> = (0..=decoys as u32).map(|i| base + spacing * i).collect();
        let pano = PanopticonConfig {
            queue_entries: entries,
            queue_threshold: threshold,
            drain_on_ref: drain_coin == 1,
        };
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = AboLevel::ALL[level_idx];
        let mk_attacker =
            || JailbreakAttacker::with_rows(rows.clone(), threshold, acts_per_trefi);

        let mut per_step = SecuritySim::new(cfg, PanopticonEngine::new(pano));
        let expect = per_step.run(&mut mk_attacker(), Nanos::from_millis(millis));
        let mut semi = SecuritySim::new(cfg, PanopticonEngine::new(pano));
        let got = semi.run_semi_scripted(&mut mk_attacker(), Nanos::from_millis(millis));
        prop_assert_eq!(got, expect);
    }

    /// Ratchet over random ATH × pool sizes × ABO levels × budgets
    /// against MOAT — the ledger/episode-keyed phases (priming repairs,
    /// pool growth behind the refresh pointer, min-count ratcheting)
    /// must vectorize without drift.
    #[test]
    fn ratchet_semi_matches_per_step(
        ath_idx in 0usize..3,
        pool in 4usize..96,
        level_idx in 0usize..3,
        budget_kind in 0u8..2,
        millis in 2u64..6,
    ) {
        let ath = [32u32, 64, 96][ath_idx];
        let level = AboLevel::ALL[level_idx];
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = level;
        cfg.budget = if budget_kind == 0 {
            SlotBudget::paper_default()
        } else {
            SlotBudget::per_aggressor(5, 2)
        };
        let engine = || {
            Box::new(MoatEngine::new(MoatConfig::with_ath(ath).level(level)))
                as Box<dyn MitigationEngine>
        };

        let mut per_step = SecuritySim::new(cfg, engine());
        let expect = per_step.run(&mut RatchetAttacker::new(ath, pool), Nanos::from_millis(millis));
        let mut semi = SecuritySim::new(cfg, engine());
        let got = semi
            .run_semi_scripted(&mut RatchetAttacker::new(ath, pool), Nanos::from_millis(millis));
        prop_assert_eq!(got, expect);
    }

    /// Postponement over random postponement budgets × thresholds against
    /// the drain-on-REF Panopticon — PostponeRef slots, batched align
    /// idles, and the enqueued-exposure hammer grants all on one
    /// trajectory.
    #[test]
    fn postponement_semi_matches_per_step(
        budget in 0u32..4,
        threshold in 32u32..200,
        row in 10_000u32..50_000,
        level_idx in 0usize..3,
        micros in 300u64..1500,
    ) {
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = AboLevel::ALL[level_idx];
        cfg.dram = DramConfig::builder().max_postponed_refs(budget).build();
        let engine = || PanopticonEngine::new(PanopticonConfig::drain_variant());

        let mut per_step = SecuritySim::new(cfg, engine());
        let expect = per_step.run(
            &mut PostponementAttacker::new(row, threshold),
            Nanos::from_micros(micros),
        );
        let mut semi = SecuritySim::new(cfg, engine());
        let got = semi.run_semi_scripted(
            &mut PostponementAttacker::new(row, threshold),
            Nanos::from_micros(micros),
        );
        prop_assert_eq!(got, expect);
    }

    /// Feinting over random pool sizes × mitigation rates with ALERTs
    /// disabled (the Table 2 configuration): the min-count heap
    /// vectorizes over full tREFI-sized grants.
    #[test]
    fn feinting_semi_matches_per_step(
        pool in 4usize..192,
        rate in 1u32..6,
        base in 20_000u32..50_000,
        millis in 1u64..5,
    ) {
        let mut cfg = SecurityConfig::paper_default();
        cfg.alerts_enabled = false;
        cfg.budget = SlotBudget::per_aggressor(5, rate);
        let engine = || Box::new(IdealSramTracker::new(65536)) as Box<dyn MitigationEngine>;

        let mut per_step = SecuritySim::new(cfg, engine());
        let expect = per_step.run(
            &mut FeintingAttacker::new(pool, base),
            Nanos::from_millis(millis),
        );
        let mut semi = SecuritySim::new(cfg, engine());
        let got = semi.run_semi_scripted(
            &mut FeintingAttacker::new(pool, base),
            Nanos::from_millis(millis),
        );
        prop_assert_eq!(got, expect);
    }
}

/// Runs `mk_sim`/`mk_attacker` in two chunks split at `split`, semi
/// against per-step, and returns the (identical) final report.
fn chunked_pair<E, A, F, G>(
    mk_sim: &F,
    mk_attacker: &G,
    split: Nanos,
    total: Nanos,
) -> SecurityReport
where
    E: MitigationEngine,
    A: moat_sim::Attacker + moat_sim::SemiScriptedAttacker,
    F: Fn() -> SecuritySim<E>,
    G: Fn() -> A,
{
    let mut per_step = mk_sim();
    let mut a = mk_attacker();
    per_step.run(&mut a, split);
    let expect = per_step.run(&mut a, total - split);

    let mut semi = mk_sim();
    let mut b = mk_attacker();
    semi.run_semi_scripted(&mut b, split);
    let got = semi.run_semi_scripted(&mut b, total - split);
    assert_eq!(got, expect, "split at {split}");
    expect
}

/// A run boundary landing on every edge of the ALERT episode state
/// machine — inside the activity window, at the stall point, inside each
/// RFM, and between RFMs — must resume through the per-RFM drain path
/// bit-identically, at every ABO level. A hammer against a low-ATH MOAT
/// asserts an episode every ~16 ACTs (≈ 830 ns), so a split grid walking
/// tRC/2 steps across an 8 µs stretch crosses every phase edge of many
/// episodes, for every level.
#[test]
fn semi_run_boundary_on_every_rfm_phase_edge() {
    for level in AboLevel::ALL {
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = level;
        let mk_sim = move || {
            SecuritySim::new(
                cfg,
                Box::new(MoatEngine::new(MoatConfig::with_ath(16).level(level)))
                    as Box<dyn MitigationEngine>,
            )
        };
        let mk_attacker = || moat_sim::hammer_attacker(20_000);

        // Sanity: the window we slice through must be dense in episodes.
        let probe = mk_sim().run_semi_scripted(&mut mk_attacker(), Nanos::from_micros(10));
        assert!(probe.alerts > 2, "{level}: probe alerts {}", probe.alerts);

        let total = Nanos::from_micros(60);
        let mut split = Nanos::from_micros(2);
        while split < Nanos::from_micros(10) {
            chunked_pair(&mk_sim, &mk_attacker, split, total);
            split += Nanos::new(26); // tRC/2: hits on- and off-edge points
        }
    }
}

/// The same boundary slicing driven by an *adaptive* semi-script: an
/// oversubscribed Jailbreak whose fill phase overflows a 4-entry queue in
/// a burst around 9–11 µs. The grid slices straight through that burst.
#[test]
fn jailbreak_semi_run_boundary_slicing_matches_per_step() {
    for level in [AboLevel::L1, AboLevel::L4] {
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = level;
        let rows: Vec<u32> = (0..24u32).map(|i| 20_000 + 6 * i).collect();
        let pano = PanopticonConfig {
            queue_entries: 4,
            queue_threshold: 8,
            drain_on_ref: false,
        };
        let mk_sim = || SecuritySim::new(cfg, PanopticonEngine::new(pano));
        let mk_attacker = || JailbreakAttacker::with_rows(rows.clone(), 8, 4);

        // Sanity: the slicing window must contain the overflow burst.
        let probe = mk_sim().run_semi_scripted(&mut mk_attacker(), Nanos::from_micros(14));
        assert!(probe.alerts > 2, "{level}: probe alerts {}", probe.alerts);

        let total = Nanos::from_micros(60);
        let mut split = Nanos::from_micros(8);
        while split < Nanos::from_micros(13) {
            chunked_pair(&mk_sim, &mk_attacker, split, total);
            split += Nanos::new(26);
        }
    }
}

/// Same phase-edge slicing for the MOAT-driven Ratchet run, whose
/// ratcheting phase lives entirely in the episode machinery (one ALERT
/// per handful of ACTs).
#[test]
fn ratchet_run_boundary_slicing_matches_per_step() {
    for level in [AboLevel::L1, AboLevel::L4] {
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = level;
        let engine = move || {
            Box::new(MoatEngine::new(MoatConfig::with_ath(32).level(level)))
                as Box<dyn MitigationEngine>
        };
        let mk_sim = || SecuritySim::new(cfg, engine());
        let mk_attacker = || RatchetAttacker::new(32, 24);

        let total = Nanos::from_millis(3);
        // The pool primes in the first ~1.5 ms; slice through the
        // episode-dense ratcheting stretch at sub-tRC resolution.
        let mut split = Nanos::from_micros(1_700);
        while split < Nanos::from_micros(1_703) {
            let report = chunked_pair(&mk_sim, &mk_attacker, split, total);
            assert!(report.alerts > 0, "{level}: slicing must cross episodes");
            split += Nanos::new(13);
        }
    }
}

/// The engine-aware self-models must degrade conservatively when their
/// downcast misses: Jailbreak probes the engine for Panopticon's queue
/// and Ratchet for MOAT's ledger, and against any other engine they
/// fall back to conservative grant caps. Against every engine in the
/// registry zoo, both attackers must complete without panicking, make
/// progress, and stay bit-identical between the semi-scripted and
/// per-step paths — i.e. the fallback never silently assumes the
/// MOAT/Panopticon internals it couldn't find.
#[test]
fn engine_aware_attackers_degrade_conservatively_across_the_zoo() {
    let cfg = SecurityConfig::paper_default();
    let horizon = Nanos::from_millis(1);
    for spec in moat_trackers::registry::ENGINES {
        let mk_sim = || SecuritySim::new(cfg, spec.build());

        let expect = mk_sim().run(&mut JailbreakAttacker::new(20_000), horizon);
        let got = mk_sim().run_semi_scripted(&mut JailbreakAttacker::new(20_000), horizon);
        assert_eq!(got, expect, "{}: jailbreak semi ≡ per-step", spec.name);
        assert!(
            got.total_acts > 0,
            "{}: jailbreak must make progress",
            spec.name
        );

        let expect = mk_sim().run(&mut RatchetAttacker::new(64, 32), horizon);
        let got = mk_sim().run_semi_scripted(&mut RatchetAttacker::new(64, 32), horizon);
        assert_eq!(got, expect, "{}: ratchet semi ≡ per-step", spec.name);
        assert!(
            got.total_acts > 0,
            "{}: ratchet must make progress",
            spec.name
        );
    }
}

/// Fig. 5 anchor: the deterministic Jailbreak result (1152 ACTs on the
/// attack row, no ALERTs) is reproduced bit-identically by the
/// semi-scripted path.
#[test]
fn jailbreak_semi_reproduces_fig5_anchor() {
    let mk_sim = || {
        SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
        )
    };
    let expect = mk_sim().run(&mut JailbreakAttacker::new(20_000), Nanos::from_millis(2));
    let got =
        mk_sim().run_semi_scripted(&mut JailbreakAttacker::new(20_000), Nanos::from_millis(2));
    assert_eq!(got, expect);
    assert!(got.max_pressure >= 1100, "got {}", got.max_pressure);
    assert_eq!(got.alerts, 0, "Jailbreak never overflows the queue");
}

/// Fig. 16 anchor: the postponement exposure (~328 ACTs at budget 2)
/// through the semi-scripted path.
#[test]
fn postponement_semi_reproduces_fig16_anchor() {
    let mut cfg = SecurityConfig::paper_default();
    cfg.dram = DramConfig::builder().max_postponed_refs(2).build();
    let mk_sim = || {
        SecuritySim::new(
            cfg,
            Box::new(PanopticonEngine::new(PanopticonConfig::drain_variant())),
        )
    };
    let expect = mk_sim().run(
        &mut PostponementAttacker::new(20_000, 128),
        Nanos::from_millis(1),
    );
    let got = mk_sim().run_semi_scripted(
        &mut PostponementAttacker::new(20_000, 128),
        Nanos::from_millis(1),
    );
    assert_eq!(got, expect);
    assert!(
        (300..=355).contains(&got.max_pressure),
        "got {}",
        got.max_pressure
    );
}

/// An ALERT asserted exactly at a published run boundary: Panopticon's
/// horizon (queue threshold distance) grants runs that end on precisely
/// the overflow ACT, so the fill phase of an oversubscribed Jailbreak
/// asserts at run boundaries over and over. Also pins that the episode
/// accounting (alerts, RFMs, drops at the stall point) survives the
/// boundary.
#[test]
fn alert_at_published_run_boundary_is_exact() {
    let rows: Vec<u32> = (0..48u32).map(|i| 30_000 + 6 * i).collect();
    let pano = PanopticonConfig {
        queue_entries: 2,
        queue_threshold: 4,
        drain_on_ref: false,
    };
    let mut cfg = SecurityConfig::paper_default();
    cfg.abo_level = AboLevel::L2;
    let mk_sim = || SecuritySim::new(cfg, PanopticonEngine::new(pano));
    let mk_attacker = || JailbreakAttacker::with_rows(rows.clone(), 4, 8);

    let expect = mk_sim().run(&mut mk_attacker(), Nanos::from_millis(1));
    let got = mk_sim().run_semi_scripted(&mut mk_attacker(), Nanos::from_millis(1));
    assert_eq!(got, expect);
    assert!(got.alerts > 5, "boundary ALERTs must fire: {}", got.alerts);
    // L2 issues two RFMs per episode; the attacker's Stop may cut the
    // final episode before its RFM phase drains (in both modes alike).
    assert!(
        got.rfms >= (got.alerts - 1) * 2,
        "rfms {} vs alerts {}",
        got.rfms,
        got.alerts
    );
}
