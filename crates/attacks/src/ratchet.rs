//! The Ratchet attack (§5): exploiting the activations JEDEC permits
//! between consecutive ALERTs to push rows beyond ATH.
//!
//! The attack has two parts:
//!
//! 1. **Priming** — bring a pool of `N` rows to exactly ATH activations
//!    each. Pool rows are drawn from refresh groups *behind* the refresh
//!    pointer, so the sweep cannot reset them again for almost a full
//!    tREFW; rows stolen by MOAT's proactive mitigation are re-primed.
//! 2. **Ratcheting** — trigger an ALERT on one row; the `3 + L`
//!    activations the ABO protocol permits around each ALERT (Fig. 8) are
//!    spread over the rows with the lowest counts, lifting the whole pool.
//!    As RFMs mitigate rows one per ALERT, the pool shrinks and the
//!    remaining activations concentrate — the last surviving row ends up
//!    `log_{M/3}(N) + M` activations above ATH (Appendix A).
//!
//! The per-step attacker is engine-agnostic: it only reads PRAC
//! counters, the refresh pointer, and the in-flight mitigation — all
//! information the threat model grants (§2.1). The semi-scripted form
//! additionally reads MOAT's shadow counters (same threat model) to
//! publish alert-edge-exact runs; against any other engine it falls
//! back to the grant's engine-guaranteed tier.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use std::borrow::Cow;

use moat_core::MoatEngine;
use moat_dram::RowId;
use moat_sim::{AttackStep, Attacker, DefenseView, RunGrant, SemiRun, SemiScriptedAttacker};

use crate::grant::GrantLog;

/// Phases of the Ratchet attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Priming,
    Ratcheting,
    Done,
}

/// The Ratchet attacker.
///
/// # Examples
///
/// ```
/// use moat_attacks::RatchetAttacker;
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::Nanos;
/// use moat_sim::{SecurityConfig, SecuritySim};
///
/// let mut sim = SecuritySim::new(
///     SecurityConfig::paper_default(),
///     Box::new(MoatEngine::new(MoatConfig::paper_default())),
/// );
/// let mut ratchet = RatchetAttacker::new(64, 256);
/// let report = sim.run(&mut ratchet, Nanos::from_millis(8));
/// // The pool lets the attacker exceed ATH by a ratcheted margin, yet
/// // stay at or below the Appendix-A bound for this pool size (~89).
/// assert!(report.max_pressure > 64);
/// assert!(report.max_pressure <= 99);
/// ```
#[derive(Debug)]
pub struct RatchetAttacker {
    ath: u32,
    pool_target: usize,
    spacing: u32,
    phase: Phase,
    /// Rows already added to the pool (primed at least once).
    pool: Vec<RowId>,
    pool_set: HashSet<RowId>,
    /// Index of the pool row currently being primed/repaired.
    priming_idx: usize,
    /// Next candidate row index for pool growth.
    next_candidate: u32,
    /// Min-count heap for the ratcheting phase: (count, row).
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Rows the attacker observed being mitigated (for repair).
    last_inflight: Option<RowId>,
    repair: Vec<RowId>,
    /// Per-grant published-activation model for the semi-scripted form.
    grant: GrantLog<RowId>,
}

impl RatchetAttacker {
    /// Creates a Ratchet attack against ALERT threshold `ath` with a pool
    /// of `pool_size` rows (spaced six apart so blast radii are disjoint).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is zero.
    pub fn new(ath: u32, pool_size: usize) -> Self {
        assert!(pool_size > 0, "pool must be non-empty");
        RatchetAttacker {
            ath,
            pool_target: pool_size,
            spacing: 6,
            phase: Phase::Priming,
            pool: Vec::with_capacity(pool_size),
            pool_set: HashSet::with_capacity(pool_size),
            priming_idx: 0,
            next_candidate: 0,
            heap: BinaryHeap::new(),
            last_inflight: None,
            repair: Vec::new(),
            grant: GrantLog::default(),
        }
    }

    /// Rows currently in the pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the attack reached the ratcheting phase.
    pub fn is_ratcheting(&self) -> bool {
        self.phase == Phase::Ratcheting
    }

    /// The row for candidate index `i`: spaced, skipping the lowest group.
    fn candidate_row(&self, i: u32) -> u32 {
        8 + i * self.spacing
    }

    /// Tracks proactive mitigations so stolen pool rows get re-primed.
    fn watch_mitigations(&mut self, view: &DefenseView<'_>) {
        let inflight = view.unit.inflight_row();
        if let Some(prev) = self.last_inflight {
            if inflight != Some(prev) && self.pool_set.contains(&prev) {
                self.repair.push(prev);
            }
        }
        self.last_inflight = inflight;
    }
}

impl Attacker for RatchetAttacker {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        match self.phase {
            Phase::Priming => {
                self.watch_mitigations(view);

                // Repair rows whose counters were reset by proactive
                // mitigation while we primed the rest.
                while let Some(&row) = self.repair.last() {
                    if view.unit.bank().counter(row).get() < self.ath {
                        return AttackStep::Act(row);
                    }
                    self.repair.pop();
                }

                // Continue priming the current pool row to exactly ATH.
                while self.priming_idx < self.pool.len() {
                    let row = self.pool[self.priming_idx];
                    if view.unit.bank().counter(row).get() < self.ath {
                        return AttackStep::Act(row);
                    }
                    self.priming_idx += 1;
                }

                // Grow the pool with the next candidate behind the
                // refresh pointer.
                if self.pool.len() < self.pool_target {
                    let cand = self.candidate_row(self.next_candidate);
                    if cand >= view.unit.config().rows_per_bank {
                        // Ran out of rows; ratchet with what we have.
                        self.begin_ratchet();
                        return self.step(view);
                    }
                    let group = cand / view.unit.config().rows_per_refresh_group;
                    if u64::from(group) < view.unit.refresh().refs_done() {
                        self.next_candidate += 1;
                        let row = RowId::new(cand);
                        self.pool.push(row);
                        self.pool_set.insert(row);
                        return AttackStep::Act(row);
                    }
                    // Pointer has not reached the candidate's group yet.
                    return AttackStep::Idle;
                }

                self.begin_ratchet();
                self.step(view)
            }
            Phase::Ratcheting => {
                // Spread activations over the live rows with the lowest
                // counts; rows mitigated by RFMs (counter reset) drop out.
                while let Some(&Reverse((count, row))) = self.heap.peek() {
                    let actual = view.unit.bank().counter(RowId::new(row)).get();
                    if actual < count.min(self.ath) {
                        // Mitigated (reset by RFM or sweep): out of the pool.
                        self.heap.pop();
                        continue;
                    }
                    self.heap.pop();
                    self.heap.push(Reverse((actual + 1, row)));
                    return AttackStep::Act(RowId::new(row));
                }
                self.phase = Phase::Done;
                AttackStep::Stop
            }
            Phase::Done => AttackStep::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!(
            "ratchet(ath={}, pool={})",
            self.ath, self.pool_target
        ))
    }
}

/// The semi-scripted form: each phase publishes a whole run keyed off the
/// snapshot's ledger/counter state, modeling its own counter increments
/// through a [`GrantLog`] so the repair → prime → grow cascade and the
/// min-count ratcheting heap vectorize without drifting from the
/// per-step reference. Mitigations, counter resets, and refresh-pointer
/// movement only happen at REF/RFM events — grant boundaries — so one
/// `watch_mitigations` observation per grant sees exactly the value
/// sequence the per-step attacker sees.
///
/// Against a [`MoatEngine`] the publish is engine-aware: MOAT's ALERT
/// flag flips exactly when an activation's *effective* count (the §4.3
/// shadow's if one is active, the in-array counter's otherwise) exceeds
/// the engine's ATH, so the attacker extends runs past the conservative
/// `alert_safe` tier — which collapses to one slot as soon as any pool
/// row stands at ATH — and ends them precisely at a tripping ACT.
/// Against any other engine it stays within the engine-guaranteed tier.
impl SemiScriptedAttacker for RatchetAttacker {
    fn publish(
        &mut self,
        view: &DefenseView<'_>,
        buf: &mut Vec<RowId>,
        grant: RunGrant,
    ) -> SemiRun {
        let moat = view.engine().as_any().downcast_ref::<MoatEngine>();
        let max = if moat.is_some() {
            grant.max
        } else {
            grant.alert_safe
        };
        // The exact MOAT flip condition for the next act on `row`, given
        // the acts already published for it in this grant.
        let trips = |log: &GrantLog<RowId>, row: RowId, counter: u32| -> bool {
            moat.is_some_and(|m| {
                let effective = m.shadow_count(row).unwrap_or(counter) + log.count(row) + 1;
                effective > m.config().ath
            })
        };
        match self.phase {
            Phase::Priming => {
                self.watch_mitigations(view);
                self.grant.clear();
                let bank = view.unit.bank();
                while buf.len() < max {
                    // Repair rows reset by proactive mitigation first.
                    if let Some(&row) = self.repair.last() {
                        let counter = bank.counter(row).get();
                        if counter + self.grant.count(row) < self.ath {
                            let ends = trips(&self.grant, row, counter);
                            buf.push(row);
                            self.grant.bump(row);
                            if ends {
                                return SemiRun::Acts(buf.len());
                            }
                            continue;
                        }
                        self.repair.pop();
                        continue;
                    }

                    // Continue priming the current pool row to exactly ATH.
                    if self.priming_idx < self.pool.len() {
                        let row = self.pool[self.priming_idx];
                        let counter = bank.counter(row).get();
                        if counter + self.grant.count(row) < self.ath {
                            let ends = trips(&self.grant, row, counter);
                            buf.push(row);
                            self.grant.bump(row);
                            if ends {
                                return SemiRun::Acts(buf.len());
                            }
                            continue;
                        }
                        self.priming_idx += 1;
                        continue;
                    }

                    // Grow the pool with the next candidate behind the
                    // refresh pointer.
                    if self.pool.len() < self.pool_target {
                        let cand = self.candidate_row(self.next_candidate);
                        if cand >= view.unit.config().rows_per_bank {
                            // Ran out of rows; flush, then ratchet.
                            break;
                        }
                        let group = cand / view.unit.config().rows_per_refresh_group;
                        if u64::from(group) < view.unit.refresh().refs_done() {
                            self.next_candidate += 1;
                            let row = RowId::new(cand);
                            self.pool.push(row);
                            self.pool_set.insert(row);
                            let ends = trips(&self.grant, row, bank.counter(row).get());
                            buf.push(row);
                            self.grant.bump(row);
                            if ends {
                                return SemiRun::Acts(buf.len());
                            }
                            continue;
                        }
                        // Pointer has not reached the candidate's group
                        // yet: flush any queued acts, then idle — the
                        // pointer only moves at the next REF, which ends
                        // the grant anyway.
                        if buf.is_empty() {
                            return SemiRun::Idle(u64::MAX);
                        }
                        break;
                    }

                    // Pool complete: flush, then ratchet.
                    break;
                }
                if !buf.is_empty() {
                    return SemiRun::Acts(buf.len());
                }
                self.begin_ratchet();
                self.publish(view, buf, grant)
            }
            Phase::Ratcheting => {
                self.grant.clear();
                let bank = view.unit.bank();
                while buf.len() < max {
                    let Some(&Reverse((count, row))) = self.heap.peek() else {
                        break;
                    };
                    let id = RowId::new(row);
                    let counter = bank.counter(id).get();
                    let actual = counter + self.grant.count(id);
                    if actual < count.min(self.ath) {
                        // Mitigated (reset by RFM or sweep): out of the pool.
                        self.heap.pop();
                        continue;
                    }
                    self.heap.pop();
                    self.heap.push(Reverse((actual + 1, row)));
                    let ends = trips(&self.grant, id, counter);
                    buf.push(id);
                    self.grant.bump(id);
                    if ends {
                        return SemiRun::Acts(buf.len());
                    }
                }
                if buf.is_empty() {
                    self.phase = Phase::Done;
                    return SemiRun::Stop;
                }
                SemiRun::Acts(buf.len())
            }
            Phase::Done => SemiRun::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Attacker::name(self)
    }
}

impl RatchetAttacker {
    fn begin_ratchet(&mut self) {
        self.heap = self
            .pool
            .iter()
            .map(|r| Reverse((self.ath, r.index())))
            .collect();
        self.phase = Phase::Ratcheting;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::Nanos;
    use moat_sim::{SecurityConfig, SecuritySim};

    fn run_ratchet(ath: u32, pool: usize, millis: u64) -> moat_sim::SecurityReport {
        let mut sim = SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::with_ath(ath))),
        );
        let mut attacker = RatchetAttacker::new(ath, pool);
        sim.run(&mut attacker, Nanos::from_millis(millis))
    }

    #[test]
    fn ratchet_exceeds_ath() {
        let report = run_ratchet(64, 128, 6);
        assert!(
            report.max_pressure > 64,
            "ratchet must beat ATH, got {}",
            report.max_pressure
        );
        assert!(report.alerts > 50, "alerts: {}", report.alerts);
    }

    #[test]
    fn ratchet_respects_appendix_a_bound() {
        // Appendix A: ATH + log_{4/3}(N) + 4 for level 1.
        for pool in [32usize, 128] {
            let report = run_ratchet(64, pool, 8);
            let bound = 64.0 + (pool as f64).ln() / (4.0f64 / 3.0).ln() + 4.0;
            assert!(
                f64::from(report.max_pressure) <= bound + 2.0,
                "pool {pool}: pressure {} exceeds model bound {bound:.1}",
                report.max_pressure
            );
        }
    }

    #[test]
    fn larger_pools_ratchet_higher() {
        let small = run_ratchet(64, 16, 4);
        let large = run_ratchet(64, 256, 8);
        assert!(
            large.max_pressure >= small.max_pressure,
            "small {} vs large {}",
            small.max_pressure,
            large.max_pressure
        );
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn zero_pool_rejected() {
        let _ = RatchetAttacker::new(64, 0);
    }
}
