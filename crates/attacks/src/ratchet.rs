//! The Ratchet attack (§5): exploiting the activations JEDEC permits
//! between consecutive ALERTs to push rows beyond ATH.
//!
//! The attack has two parts:
//!
//! 1. **Priming** — bring a pool of `N` rows to exactly ATH activations
//!    each. Pool rows are drawn from refresh groups *behind* the refresh
//!    pointer, so the sweep cannot reset them again for almost a full
//!    tREFW; rows stolen by MOAT's proactive mitigation are re-primed.
//! 2. **Ratcheting** — trigger an ALERT on one row; the `3 + L`
//!    activations the ABO protocol permits around each ALERT (Fig. 8) are
//!    spread over the rows with the lowest counts, lifting the whole pool.
//!    As RFMs mitigate rows one per ALERT, the pool shrinks and the
//!    remaining activations concentrate — the last surviving row ends up
//!    `log_{M/3}(N) + M` activations above ATH (Appendix A).
//!
//! The attacker is engine-agnostic: it only reads PRAC counters, the
//! refresh pointer, and the in-flight mitigation — all information the
//! threat model grants (§2.1).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use std::borrow::Cow;

use moat_dram::RowId;
use moat_sim::{AttackStep, Attacker, DefenseView};

/// Phases of the Ratchet attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Priming,
    Ratcheting,
    Done,
}

/// The Ratchet attacker.
///
/// # Examples
///
/// ```
/// use moat_attacks::RatchetAttacker;
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::Nanos;
/// use moat_sim::{SecurityConfig, SecuritySim};
///
/// let mut sim = SecuritySim::new(
///     SecurityConfig::paper_default(),
///     Box::new(MoatEngine::new(MoatConfig::paper_default())),
/// );
/// let mut ratchet = RatchetAttacker::new(64, 256);
/// let report = sim.run(&mut ratchet, Nanos::from_millis(8));
/// // The pool lets the attacker exceed ATH by a ratcheted margin, yet
/// // stay at or below the Appendix-A bound for this pool size (~89).
/// assert!(report.max_pressure > 64);
/// assert!(report.max_pressure <= 99);
/// ```
#[derive(Debug)]
pub struct RatchetAttacker {
    ath: u32,
    pool_target: usize,
    spacing: u32,
    phase: Phase,
    /// Rows already added to the pool (primed at least once).
    pool: Vec<RowId>,
    pool_set: HashSet<RowId>,
    /// Index of the pool row currently being primed/repaired.
    priming_idx: usize,
    /// Next candidate row index for pool growth.
    next_candidate: u32,
    /// Min-count heap for the ratcheting phase: (count, row).
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Rows the attacker observed being mitigated (for repair).
    last_inflight: Option<RowId>,
    repair: Vec<RowId>,
}

impl RatchetAttacker {
    /// Creates a Ratchet attack against ALERT threshold `ath` with a pool
    /// of `pool_size` rows (spaced six apart so blast radii are disjoint).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is zero.
    pub fn new(ath: u32, pool_size: usize) -> Self {
        assert!(pool_size > 0, "pool must be non-empty");
        RatchetAttacker {
            ath,
            pool_target: pool_size,
            spacing: 6,
            phase: Phase::Priming,
            pool: Vec::with_capacity(pool_size),
            pool_set: HashSet::with_capacity(pool_size),
            priming_idx: 0,
            next_candidate: 0,
            heap: BinaryHeap::new(),
            last_inflight: None,
            repair: Vec::new(),
        }
    }

    /// Rows currently in the pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the attack reached the ratcheting phase.
    pub fn is_ratcheting(&self) -> bool {
        self.phase == Phase::Ratcheting
    }

    /// The row for candidate index `i`: spaced, skipping the lowest group.
    fn candidate_row(&self, i: u32) -> u32 {
        8 + i * self.spacing
    }

    /// Tracks proactive mitigations so stolen pool rows get re-primed.
    fn watch_mitigations(&mut self, view: &DefenseView<'_>) {
        let inflight = view.unit.inflight_row();
        if let Some(prev) = self.last_inflight {
            if inflight != Some(prev) && self.pool_set.contains(&prev) {
                self.repair.push(prev);
            }
        }
        self.last_inflight = inflight;
    }
}

impl Attacker for RatchetAttacker {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        match self.phase {
            Phase::Priming => {
                self.watch_mitigations(view);

                // Repair rows whose counters were reset by proactive
                // mitigation while we primed the rest.
                while let Some(&row) = self.repair.last() {
                    if view.unit.bank().counter(row).get() < self.ath {
                        return AttackStep::Act(row);
                    }
                    self.repair.pop();
                }

                // Continue priming the current pool row to exactly ATH.
                while self.priming_idx < self.pool.len() {
                    let row = self.pool[self.priming_idx];
                    if view.unit.bank().counter(row).get() < self.ath {
                        return AttackStep::Act(row);
                    }
                    self.priming_idx += 1;
                }

                // Grow the pool with the next candidate behind the
                // refresh pointer.
                if self.pool.len() < self.pool_target {
                    let cand = self.candidate_row(self.next_candidate);
                    if cand >= view.unit.config().rows_per_bank {
                        // Ran out of rows; ratchet with what we have.
                        self.begin_ratchet();
                        return self.step(view);
                    }
                    let group = cand / view.unit.config().rows_per_refresh_group;
                    if u64::from(group) < view.unit.refresh().refs_done() {
                        self.next_candidate += 1;
                        let row = RowId::new(cand);
                        self.pool.push(row);
                        self.pool_set.insert(row);
                        return AttackStep::Act(row);
                    }
                    // Pointer has not reached the candidate's group yet.
                    return AttackStep::Idle;
                }

                self.begin_ratchet();
                self.step(view)
            }
            Phase::Ratcheting => {
                // Spread activations over the live rows with the lowest
                // counts; rows mitigated by RFMs (counter reset) drop out.
                while let Some(&Reverse((count, row))) = self.heap.peek() {
                    let actual = view.unit.bank().counter(RowId::new(row)).get();
                    if actual < count.min(self.ath) {
                        // Mitigated (reset by RFM or sweep): out of the pool.
                        self.heap.pop();
                        continue;
                    }
                    self.heap.pop();
                    self.heap.push(Reverse((actual + 1, row)));
                    return AttackStep::Act(RowId::new(row));
                }
                self.phase = Phase::Done;
                AttackStep::Stop
            }
            Phase::Done => AttackStep::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!(
            "ratchet(ath={}, pool={})",
            self.ath, self.pool_target
        ))
    }
}

impl RatchetAttacker {
    fn begin_ratchet(&mut self) {
        self.heap = self
            .pool
            .iter()
            .map(|r| Reverse((self.ath, r.index())))
            .collect();
        self.phase = Phase::Ratcheting;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::Nanos;
    use moat_sim::{SecurityConfig, SecuritySim};

    fn run_ratchet(ath: u32, pool: usize, millis: u64) -> moat_sim::SecurityReport {
        let mut sim = SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::with_ath(ath))),
        );
        let mut attacker = RatchetAttacker::new(ath, pool);
        sim.run(&mut attacker, Nanos::from_millis(millis))
    }

    #[test]
    fn ratchet_exceeds_ath() {
        let report = run_ratchet(64, 128, 6);
        assert!(
            report.max_pressure > 64,
            "ratchet must beat ATH, got {}",
            report.max_pressure
        );
        assert!(report.alerts > 50, "alerts: {}", report.alerts);
    }

    #[test]
    fn ratchet_respects_appendix_a_bound() {
        // Appendix A: ATH + log_{4/3}(N) + 4 for level 1.
        for pool in [32usize, 128] {
            let report = run_ratchet(64, pool, 8);
            let bound = 64.0 + (pool as f64).ln() / (4.0f64 / 3.0).ln() + 4.0;
            assert!(
                f64::from(report.max_pressure) <= bound + 2.0,
                "pool {pool}: pressure {} exceeds model bound {bound:.1}",
                report.max_pressure
            );
        }
    }

    #[test]
    fn larger_pools_ratchet_higher() {
        let small = run_ratchet(64, 16, 4);
        let large = run_ratchet(64, 256, 8);
        assert!(
            large.max_pressure >= small.max_pressure,
            "small {} vs large {}",
            small.max_pressure,
            large.max_pressure
        );
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn zero_pool_rejected() {
        let _ = RatchetAttacker::new(64, 0);
    }
}
