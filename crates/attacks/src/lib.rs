//! # moat-attacks — the paper's attack patterns
//!
//! Adaptive attackers (for the security simulator) and request-stream
//! builders (for the performance simulator) reproducing every attack in
//! the paper:
//!
//! * [`JailbreakAttacker`] / [`RandomizedJailbreak`] — breaking
//!   deterministic and randomized Panopticon (§3, Fig. 5).
//! * [`RatchetAttacker`] — exploiting inter-ALERT activations against
//!   MOAT (§5, Figs. 9–10, 15).
//! * [`FeintingAttacker`] — the bound on transparent per-row-counter
//!   schemes (§2.5, Table 2).
//! * [`PostponementAttacker`] — refresh postponement versus the
//!   drain-on-REF Panopticon variant (Appendix B, Fig. 16).
//! * [`StraddleAttacker`] — the reset-straddling pattern of Fig. 7(a)
//!   that unsafe counter reset is vulnerable to.
//! * [`BlacksmithAttacker`] — decoy-thrashing of low-cost SRAM trackers
//!   (the TRRespass/Blacksmith family that motivates PRAC, §1).
//! * [`single_row_kernel`] / [`multi_row_kernel`] /
//!   [`synchronized_multibank`] — performance-attack kernels (Fig. 13).
//! * [`tsa_stream`] — the Torrent-of-Staggered-ALERT attack (§7.3,
//!   Fig. 12).
//!
//! ```
//! use moat_attacks::JailbreakAttacker;
//! use moat_dram::Nanos;
//! use moat_sim::{SecurityConfig, SecuritySim};
//! use moat_trackers::{PanopticonConfig, PanopticonEngine};
//!
//! let mut sim = SecuritySim::new(
//!     SecurityConfig::paper_default(),
//!     Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
//! );
//! let report = sim.run(&mut JailbreakAttacker::new(20_000), Nanos::from_millis(2));
//! assert!(report.max_pressure >= 1100); // 9× the design threshold of 128
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blacksmith;
mod feinting;
mod grant;
mod jailbreak;
mod kernels;
mod postponement;
mod ratchet;
mod straddle;
mod tsa;

pub use blacksmith::BlacksmithAttacker;
pub use feinting::FeintingAttacker;
pub use jailbreak::{JailbreakAttacker, RandomizedIteration, RandomizedJailbreak};
pub use kernels::{
    multi_row_kernel, multi_row_stream, single_row_kernel, single_row_stream,
    sync_multibank_stream, synchronized_multibank, KernelStream,
};
pub use postponement::PostponementAttacker;
pub use ratchet::RatchetAttacker;
pub use straddle::StraddleAttacker;
pub use tsa::tsa_stream;
