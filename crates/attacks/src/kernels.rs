//! Basic performance-attack kernels (§7.2, Fig. 13) as request streams for
//! the performance simulator.
//!
//! Each kernel exists in two forms: a *streaming* form
//! ([`single_row_stream`], [`multi_row_stream`], [`sync_multibank_stream`])
//! that implements [`RequestStream`] with an O(1)-state chunked fill —
//! the pattern is regenerated into the simulator's reusable batch buffer
//! instead of being materialized up front — and a `Vec`-returning form
//! kept for call sites that want to inspect or splice the pattern. Both
//! forms emit identical sequences.

use std::borrow::Cow;

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::{Request, RequestStream, ScriptedAttacker, DEFAULT_CHUNK};

/// Streaming attack kernel: a repeating (bank, row) pattern emitted
/// gap-free for a fixed number of requests.
///
/// The pattern state is three words, so cloning and restarting the
/// stream is free — and `next_chunk` fills the batch buffer in one pass
/// with the pattern dispatch hoisted out of the per-request path.
#[derive(Debug, Clone)]
pub struct KernelStream {
    /// The repeating pattern, pre-resolved to typed ids.
    pattern: Vec<(BankId, RowId)>,
    /// Position within the pattern.
    pos: usize,
    /// Requests still to emit.
    remaining: u64,
}

impl KernelStream {
    fn new(pattern: Vec<(BankId, RowId)>, total: u64) -> Self {
        assert!(!pattern.is_empty(), "need a non-empty pattern");
        KernelStream {
            pattern,
            pos: 0,
            remaining: total,
        }
    }

    /// Requests still to be emitted.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Materializes the rest of the stream (the `Vec`-kernel forms).
    pub fn into_vec(mut self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.remaining as usize);
        let mut chunk = Vec::with_capacity(DEFAULT_CHUNK);
        while self.next_chunk(&mut chunk) > 0 {
            out.extend_from_slice(&chunk);
        }
        out
    }
}

impl RequestStream for KernelStream {
    fn next_request(&mut self) -> Option<Request> {
        if self.remaining == 0 {
            return None;
        }
        let (bank, row) = self.pattern[self.pos];
        self.pos += 1;
        if self.pos == self.pattern.len() {
            self.pos = 0;
        }
        self.remaining -= 1;
        Some(Request {
            gap: Nanos::ZERO,
            bank,
            row,
        })
    }

    /// Chunked fill: one bounds check and one pattern-length wrap per
    /// request, no per-request dispatch.
    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> usize {
        buf.clear();
        if buf.capacity() == 0 {
            buf.reserve(DEFAULT_CHUNK);
        }
        let n = (buf.capacity() as u64).min(self.remaining) as usize;
        let pattern = &self.pattern;
        let mut pos = self.pos;
        for _ in 0..n {
            let (bank, row) = pattern[pos];
            pos += 1;
            if pos == pattern.len() {
                pos = 0;
            }
            buf.push(Request {
                gap: Nanos::ZERO,
                bank,
                row,
            });
        }
        self.pos = pos;
        self.remaining -= n as u64;
        n
    }
}

/// A kernel is also a script for the batched security simulator
/// ([`SecuritySim::run_batched`](moat_sim::SecuritySim::run_batched)):
/// the pattern's rows are handed out run-by-run. The security simulator
/// models a single bank, so the pattern's bank ids are ignored here — a
/// multi-bank kernel collapses onto the one bank under attack.
impl ScriptedAttacker for KernelStream {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        let n = (max as u64).min(self.remaining) as usize;
        let pattern = &self.pattern;
        let mut pos = self.pos;
        for _ in 0..n {
            let (_bank, row) = pattern[pos];
            pos += 1;
            if pos == pattern.len() {
                pos = 0;
            }
            buf.push(row);
        }
        self.pos = pos;
        self.remaining -= n as u64;
        n
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("kernel")
    }
}

/// Streaming form of [`single_row_kernel`]: `(A)^n` on one bank.
pub fn single_row_stream(n: u32, bank: u16, row: u32) -> KernelStream {
    KernelStream::new(vec![(BankId::new(bank), RowId::new(row))], u64::from(n))
}

/// Streaming form of [`multi_row_kernel`]: `n` full `(ABCDE...)` cycles
/// on one bank.
pub fn multi_row_stream(n: u32, bank: u16, rows: &[u32]) -> KernelStream {
    assert!(!rows.is_empty(), "need at least one row");
    let pattern = rows
        .iter()
        .map(|&r| (BankId::new(bank), RowId::new(r)))
        .collect();
    KernelStream::new(pattern, u64::from(n) * rows.len() as u64)
}

/// Streaming form of [`synchronized_multibank`]: `n` rounds of every bank
/// hammering the row set in lockstep.
pub fn sync_multibank_stream(n: u32, banks: u16, rows: &[u32]) -> KernelStream {
    assert!(banks > 0 && !rows.is_empty(), "need banks and rows");
    let mut pattern = Vec::with_capacity(rows.len() * banks as usize);
    for &row in rows {
        for b in 0..banks {
            pattern.push((BankId::new(b), RowId::new(row)));
        }
    }
    let total = u64::from(n) * pattern.len() as u64;
    KernelStream::new(pattern, total)
}

/// Fig. 13(a): continuously activate a single row of a single bank,
/// `(A)^n`. With ATH = 64, every ~65th activation triggers an ALERT,
/// costing ~10% throughput.
pub fn single_row_kernel(n: u32, bank: u16, row: u32) -> Vec<Request> {
    single_row_stream(n, bank, row).into_vec()
}

/// Fig. 13(b): cycle over `rows` of one bank, `(ABCDE...)^n` — `n` full
/// cycles. Each row alerts independently; throughput loss matches the
/// single-row case.
pub fn multi_row_kernel(n: u32, bank: u16, rows: &[u32]) -> Vec<Request> {
    multi_row_stream(n, bank, rows).into_vec()
}

/// §7.2: the synchronized multi-bank pattern — every bank hammers its own
/// row set simultaneously (interleaved round-robin across banks). Each
/// ALERT mitigates one row from *each* bank, so the loss stays at the
/// single-bank level (~10%).
pub fn synchronized_multibank(n: u32, banks: u16, rows: &[u32]) -> Vec<Request> {
    sync_multibank_stream(n, banks, rows).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::{AboLevel, DramConfig, MitigationEngine};
    use moat_sim::{PerfConfig, PerfSim, SlotBudget};

    fn cfg(banks: u16, alerts: bool) -> PerfConfig {
        PerfConfig {
            dram: DramConfig::builder().rows_per_bank(65536).build(),
            banks,
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: alerts,
        }
    }

    fn moat() -> Box<dyn MitigationEngine> {
        Box::new(MoatEngine::new(MoatConfig::paper_default()))
    }

    fn loss(stream: &[Request], banks: u16) -> f64 {
        let with = PerfSim::new(cfg(banks, true), moat).run(stream.iter().copied());
        let base = PerfSim::new(cfg(banks, false), moat).run(stream.iter().copied());
        with.slowdown_vs(&base)
    }

    #[test]
    fn streaming_and_vec_kernels_emit_identical_sequences() {
        use moat_sim::RequestStream;
        let rows = [10u32, 20, 30];
        let cases: [(KernelStream, Vec<Request>); 3] = [
            (single_row_stream(100, 1, 7), single_row_kernel(100, 1, 7)),
            (
                multi_row_stream(40, 0, &rows),
                multi_row_kernel(40, 0, &rows),
            ),
            (
                sync_multibank_stream(10, 3, &rows),
                synchronized_multibank(10, 3, &rows),
            ),
        ];
        for (mut stream, vec_form) in cases {
            assert_eq!(stream.remaining() as usize, vec_form.len());
            // Drain via single pulls and odd-sized chunks interleaved.
            let mut got = Vec::new();
            let mut buf = Vec::with_capacity(17);
            loop {
                if let Some(r) = stream.next_request() {
                    got.push(r);
                }
                let n = stream.next_chunk(&mut buf);
                got.extend_from_slice(&buf);
                if n == 0 && stream.remaining() == 0 {
                    break;
                }
            }
            assert_eq!(got, vec_form);
        }
    }

    #[test]
    fn kernel_scripts_run_batched_like_per_step() {
        // A kernel driven through the batched security fast path is
        // bit-identical to the same kernel stepped per-slot through the
        // adaptive reference — the multi-row Fig. 13(b) shape, which
        // exercises REF straddles, ALERT episodes, and script exhaustion.
        use moat_dram::Nanos;
        use moat_sim::{Scripted, SecurityConfig, SecuritySim};
        let mk = || {
            SecuritySim::new(
                SecurityConfig::paper_default(),
                MoatEngine::new(MoatConfig::paper_default()),
            )
        };
        let rows = [30_000u32, 30_006, 30_012];
        let script = || multi_row_stream(4_000, 0, &rows);
        let expect = mk().run(&mut Scripted::new(script()), Nanos::from_millis(2));
        let got = mk().run_batched(&mut script(), Nanos::from_millis(2));
        assert_eq!(got, expect);
        assert!(expect.alerts > 0, "must exercise episodes");
    }

    #[test]
    fn single_row_kernel_loses_about_ten_percent() {
        // Fig. 13(a): 69 ACTs per 76 units ≈ 10% loss.
        let stream = single_row_kernel(20_000, 0, 30_000);
        let l = loss(&stream, 1);
        assert!((0.05..0.20).contains(&l), "loss {l}");
    }

    #[test]
    fn multi_row_kernel_matches_single_row() {
        let single = loss(&single_row_kernel(20_000, 0, 30_000), 1);
        let multi = loss(
            &multi_row_kernel(4_000, 0, &[30_000, 30_006, 30_012, 30_018, 30_024]),
            1,
        );
        assert!(
            (multi - single).abs() < 0.06,
            "single {single} vs multi {multi}"
        );
    }

    #[test]
    fn synchronized_multibank_is_no_worse_than_single_bank() {
        // §7.2: each ALERT mitigates one row per bank, so synchronized
        // multi-bank attacks gain nothing.
        let single = loss(&single_row_kernel(8_000, 0, 30_000), 1);
        let multi = loss(
            &synchronized_multibank(1_600, 4, &[30_000, 30_006, 30_012, 30_018, 30_024]),
            4,
        );
        assert!(
            multi <= single + 0.08,
            "synchronized {multi} should not exceed single-bank {single} by much"
        );
    }
}
