//! Basic performance-attack kernels (§7.2, Fig. 13) as request streams for
//! the performance simulator.

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::Request;

/// Fig. 13(a): continuously activate a single row of a single bank,
/// `(A)^n`. With ATH = 64, every ~65th activation triggers an ALERT,
/// costing ~10% throughput.
pub fn single_row_kernel(n: u32, bank: u16, row: u32) -> Vec<Request> {
    (0..n)
        .map(|_| Request {
            gap: Nanos::ZERO,
            bank: BankId::new(bank),
            row: RowId::new(row),
        })
        .collect()
}

/// Fig. 13(b): cycle over `rows` of one bank, `(ABCDE...)^n` — `n` full
/// cycles. Each row alerts independently; throughput loss matches the
/// single-row case.
pub fn multi_row_kernel(n: u32, bank: u16, rows: &[u32]) -> Vec<Request> {
    assert!(!rows.is_empty(), "need at least one row");
    (0..n)
        .flat_map(|_| rows.iter().copied())
        .map(|r| Request {
            gap: Nanos::ZERO,
            bank: BankId::new(bank),
            row: RowId::new(r),
        })
        .collect()
}

/// §7.2: the synchronized multi-bank pattern — every bank hammers its own
/// row set simultaneously (interleaved round-robin across banks). Each
/// ALERT mitigates one row from *each* bank, so the loss stays at the
/// single-bank level (~10%).
pub fn synchronized_multibank(n: u32, banks: u16, rows: &[u32]) -> Vec<Request> {
    assert!(banks > 0 && !rows.is_empty(), "need banks and rows");
    let mut out = Vec::with_capacity(n as usize * banks as usize * rows.len());
    for _ in 0..n {
        for &row in rows {
            for b in 0..banks {
                out.push(Request {
                    gap: Nanos::ZERO,
                    bank: BankId::new(b),
                    row: RowId::new(row),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::{AboLevel, DramConfig, MitigationEngine};
    use moat_sim::{PerfConfig, PerfSim, SlotBudget};

    fn cfg(banks: u16, alerts: bool) -> PerfConfig {
        PerfConfig {
            dram: DramConfig::builder().rows_per_bank(65536).build(),
            banks,
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: alerts,
        }
    }

    fn moat() -> Box<dyn MitigationEngine> {
        Box::new(MoatEngine::new(MoatConfig::paper_default()))
    }

    fn loss(stream: &[Request], banks: u16) -> f64 {
        let with = PerfSim::new(cfg(banks, true), moat).run(stream.iter().copied());
        let base = PerfSim::new(cfg(banks, false), moat).run(stream.iter().copied());
        with.slowdown_vs(&base)
    }

    #[test]
    fn single_row_kernel_loses_about_ten_percent() {
        // Fig. 13(a): 69 ACTs per 76 units ≈ 10% loss.
        let stream = single_row_kernel(20_000, 0, 30_000);
        let l = loss(&stream, 1);
        assert!((0.05..0.20).contains(&l), "loss {l}");
    }

    #[test]
    fn multi_row_kernel_matches_single_row() {
        let single = loss(&single_row_kernel(20_000, 0, 30_000), 1);
        let multi = loss(
            &multi_row_kernel(4_000, 0, &[30_000, 30_006, 30_012, 30_018, 30_024]),
            1,
        );
        assert!(
            (multi - single).abs() < 0.06,
            "single {single} vs multi {multi}"
        );
    }

    #[test]
    fn synchronized_multibank_is_no_worse_than_single_bank() {
        // §7.2: each ALERT mitigates one row per bank, so synchronized
        // multi-bank attacks gain nothing.
        let single = loss(&single_row_kernel(8_000, 0, 30_000), 1);
        let multi = loss(
            &synchronized_multibank(1_600, 4, &[30_000, 30_006, 30_012, 30_018, 30_024]),
            4,
        );
        assert!(
            multi <= single + 0.08,
            "synchronized {multi} should not exceed single-bank {single} by much"
        );
    }
}
