//! The refresh-postponement attack on Panopticon's Drain-All-Entries-on-REF
//! variant (Appendix B, Fig. 16).
//!
//! The drain variant empties the queue at every REF, so the exposure of an
//! enqueued row is normally bounded by one tREFI (~67 activations). But
//! DDR5 lets the controller postpone REFs — and the threat model lets the
//! attacker choose that policy. The attack:
//!
//! 1. Hammer row A until its counter sits one activation short of the next
//!    queueing threshold crossing, letting REFs proceed normally.
//! 2. Right after a REF, push A across the crossing — A enters the queue
//!    with the longest possible time to the next REF.
//! 3. Postpone the next two REFs: A now sits in the queue for 3 tREFI,
//!    absorbing up to ~201 further activations before the REF batch drains
//!    it — 128 + 200 ≈ 328 total, 2.6× the queueing threshold.

use std::borrow::Cow;

use moat_dram::RowId;
use moat_sim::{AttackStep, Attacker, DefenseView, RunGrant, SemiRun, SemiScriptedAttacker};
use moat_trackers::PanopticonEngine;

use crate::grant::push_panopticon_capped_single;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Hammer to one-below-crossing, then wait for a REF boundary.
    Align,
    /// A is enqueued: postpone REFs and keep hammering.
    Exploit,
    Done,
}

/// The postponement attacker against the drain-on-REF design.
///
/// # Examples
///
/// ```
/// use moat_attacks::PostponementAttacker;
/// use moat_dram::{DramConfig, Nanos};
/// use moat_sim::{SecurityConfig, SecuritySim};
/// use moat_trackers::{PanopticonConfig, PanopticonEngine};
///
/// let mut cfg = SecurityConfig::paper_default();
/// cfg.dram = DramConfig::builder().max_postponed_refs(2).build();
/// let mut sim = SecuritySim::new(
///     cfg,
///     Box::new(PanopticonEngine::new(PanopticonConfig::drain_variant())),
/// );
/// let mut attacker = PostponementAttacker::new(20_000, 128);
/// let report = sim.run(&mut attacker, Nanos::from_millis(1));
/// // Fig. 16: ≈328 activations (2.6× the queueing threshold of 128).
/// assert!(report.max_pressure >= 300, "got {}", report.max_pressure);
/// ```
#[derive(Debug)]
pub struct PostponementAttacker {
    row: RowId,
    threshold: u32,
    phase: Phase,
}

impl PostponementAttacker {
    /// Attacks `row` against a design with the given queueing `threshold`.
    pub fn new(row: u32, threshold: u32) -> Self {
        PostponementAttacker {
            row: RowId::new(row),
            threshold,
            phase: Phase::Align,
        }
    }

    fn enqueued(&self, view: &DefenseView<'_>) -> bool {
        view.engine()
            .as_any()
            .downcast_ref::<PanopticonEngine>()
            .is_some_and(|p| p.queue().contains(&self.row))
    }
}

impl Attacker for PostponementAttacker {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        match self.phase {
            Phase::Align => {
                let counter = view.unit.bank().counter(self.row).get();
                let to_crossing = self.threshold - (counter % self.threshold);
                if to_crossing > 1 {
                    return AttackStep::Act(self.row);
                }
                // One act short of the crossing: wait for the REF boundary
                // (maximize queue residency), then cross.
                let t_refi = view.unit.config().timing.t_refi;
                let since_ref = view.now % t_refi;
                if since_ref < view.unit.config().timing.t_rfc + view.unit.config().timing.t_rc * 2
                {
                    // A REF just happened: cross now.
                    self.phase = Phase::Exploit;
                    return AttackStep::Act(self.row);
                }
                AttackStep::Idle
            }
            Phase::Exploit => {
                if !self.enqueued(view)
                    && !view
                        .unit
                        .bank()
                        .counter(self.row)
                        .get()
                        .is_multiple_of(self.threshold)
                {
                    // Drained: the exposure window ended.
                    self.phase = Phase::Done;
                    return AttackStep::Stop;
                }
                // Postpone while the budget allows, hammer otherwise.
                let owed = view.unit.refresh().owed();
                if owed < view.unit.config().max_postponed_refs {
                    return AttackStep::PostponeRef;
                }
                AttackStep::Act(self.row)
            }
            Phase::Done => AttackStep::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("postponement(t={})", self.threshold))
    }
}

/// The semi-scripted form: the align phase publishes the whole
/// hammer-to-one-below-crossing run and batches the wait for the REF
/// boundary as one idle stretch; the exploit phase publishes
/// postponements one slot at a time (each changes the REF schedule the
/// next decision reads) and hammers in whole grants while the attack row
/// sits in the queue — queue drains only happen at REF/RFM events, so
/// the drained check is constant across a grant. Hammer runs are
/// engine-aware via [`push_panopticon_capped_single`]: they model the
/// attack row's crossings of the *engine's* queueing threshold (which
/// may differ from the attacker's parameter) in closed form and end
/// exactly at any ACT that could overflow the queue.
impl SemiScriptedAttacker for PostponementAttacker {
    fn publish(
        &mut self,
        view: &DefenseView<'_>,
        buf: &mut Vec<RowId>,
        grant: RunGrant,
    ) -> SemiRun {
        match self.phase {
            Phase::Align => {
                let counter = view.unit.bank().counter(self.row).get();
                let to_crossing = self.threshold - (counter % self.threshold);
                if to_crossing > 1 {
                    let want = ((to_crossing - 1) as usize).min(grant.max);
                    let n =
                        push_panopticon_capped_single(view, buf, want, grant.alert_safe, self.row);
                    return SemiRun::Acts(n);
                }
                // One act short of the crossing: wait for the REF boundary
                // (maximize queue residency), then cross.
                let timing = view.unit.config().timing;
                let since_ref = view.now % timing.t_refi;
                if since_ref < timing.t_rfc + timing.t_rc * 2 {
                    self.phase = Phase::Exploit;
                    buf.push(self.row);
                    return SemiRun::Acts(1);
                }
                let slots = (timing.t_refi - since_ref)
                    .as_u64()
                    .div_ceil(timing.t_rc.as_u64())
                    .max(1);
                SemiRun::Idle(slots)
            }
            Phase::Exploit => {
                let enqueued = self.enqueued(view);
                if !enqueued
                    && !view
                        .unit
                        .bank()
                        .counter(self.row)
                        .get()
                        .is_multiple_of(self.threshold)
                {
                    // Drained: the exposure window ended.
                    self.phase = Phase::Done;
                    return SemiRun::Stop;
                }
                // Postpone while the budget allows, hammer otherwise.
                let owed = view.unit.refresh().owed();
                if owed < view.unit.config().max_postponed_refs {
                    return SemiRun::PostponeRef;
                }
                // Enqueued: own crossings can only add younger copies, so
                // the drained check stays false for the whole grant. Not
                // enqueued (counter exactly at a multiple): one act
                // decides the next publish.
                let want = if enqueued { grant.max } else { 1 };
                let n = push_panopticon_capped_single(view, buf, want, grant.alert_safe, self.row);
                SemiRun::Acts(n)
            }
            Phase::Done => SemiRun::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Attacker::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::{DramConfig, Nanos};
    use moat_sim::{SecurityConfig, SecuritySim};
    use moat_trackers::PanopticonConfig;

    fn run(postpone_budget: u32) -> u32 {
        let mut cfg = SecurityConfig::paper_default();
        cfg.dram = DramConfig::builder()
            .max_postponed_refs(postpone_budget)
            .build();
        let mut sim = SecuritySim::new(
            cfg,
            Box::new(PanopticonEngine::new(PanopticonConfig::drain_variant())),
        );
        let mut attacker = PostponementAttacker::new(20_000, 128);
        sim.run(&mut attacker, Nanos::from_millis(1)).max_pressure
    }

    #[test]
    fn postponement_inflates_exposure_to_328() {
        // Fig. 16: 128 + ~200 activations before the REF batch drains A.
        let pressure = run(2);
        assert!(
            (300..=355).contains(&pressure),
            "expected ≈328, got {pressure}"
        );
    }

    #[test]
    fn without_postponement_drain_variant_holds_near_threshold() {
        let pressure = run(0);
        assert!(
            pressure <= 128 + 70,
            "no-postponement exposure {pressure} should stay ≤ threshold + 1 tREFI"
        );
    }

    #[test]
    fn more_postponement_is_worse() {
        assert!(run(2) > run(0));
    }
}
