//! The reset-straddling attack of Fig. 7(a): defeat unsafe
//! counter-reset-on-refresh by splitting the hammering across the reset.
//!
//! The attacker hammers a row to exactly ATH (no ALERT), idles until the
//! refresh sweep resets the row's counter, then hammers again. With an
//! unsafe reset the counter forgets the first half, so the victims absorb
//! ~2×ATH activations before any ALERT — "such an unsafe reset-on-refresh
//! design can double the tolerable T_RH" (§4.3). MOAT's SRAM shadow
//! counters close the gap: the post-reset activations continue from the
//! preserved count and the ALERT fires on schedule.
//!
//! Run with the proactive-mitigation budget disabled
//! ([`SlotBudget::disabled`](moat_sim::SlotBudget::disabled)) to isolate
//! the reset-policy effect.

use std::borrow::Cow;

use moat_dram::RowId;
use moat_sim::{AttackStep, Attacker, DefenseView};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prime,
    WaitForReset,
    Restrike { left: u32 },
    Done,
}

/// The straddling attacker.
///
/// # Examples
///
/// ```
/// use moat_attacks::StraddleAttacker;
/// use moat_core::{MoatConfig, MoatEngine, ResetPolicy};
/// use moat_dram::Nanos;
/// use moat_sim::{SecurityConfig, SecuritySim, SlotBudget};
///
/// let mut cfg = SecurityConfig::paper_default();
/// cfg.budget = SlotBudget::disabled();
/// let mut sim = SecuritySim::new(
///     cfg,
///     Box::new(MoatEngine::new(
///         MoatConfig::paper_default().reset_policy(ResetPolicy::Unsafe),
///     )),
/// );
/// // Row 2055 is the trailing row of group 256, refreshed at ~1 ms.
/// let mut straddle = StraddleAttacker::new(2055, 64);
/// let report = sim.run(&mut straddle, Nanos::from_millis(2));
/// assert!(report.max_pressure >= 2 * 64, "got {}", report.max_pressure);
/// ```
#[derive(Debug)]
pub struct StraddleAttacker {
    row: RowId,
    ath: u32,
    phase: Phase,
    primed: bool,
}

impl StraddleAttacker {
    /// Straddles the reset of `row` against ALERT threshold `ath`.
    pub fn new(row: u32, ath: u32) -> Self {
        StraddleAttacker {
            row: RowId::new(row),
            ath,
            phase: Phase::Prime,
            primed: false,
        }
    }
}

impl Attacker for StraddleAttacker {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        let counter = view.unit.bank().counter(self.row).get();
        match self.phase {
            Phase::Prime => {
                if counter < self.ath {
                    AttackStep::Act(self.row)
                } else {
                    self.primed = true;
                    self.phase = Phase::WaitForReset;
                    AttackStep::Idle
                }
            }
            Phase::WaitForReset => {
                if counter == 0 {
                    self.phase = Phase::Restrike { left: self.ath + 4 };
                    self.step(view)
                } else {
                    AttackStep::Idle
                }
            }
            Phase::Restrike { left } => {
                if left == 0 {
                    self.phase = Phase::Done;
                    return AttackStep::Stop;
                }
                self.phase = Phase::Restrike { left: left - 1 };
                AttackStep::Act(self.row)
            }
            Phase::Done => AttackStep::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("straddle(ath={})", self.ath))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine, ResetPolicy};
    use moat_dram::Nanos;
    use moat_sim::{SecurityConfig, SecuritySim, SlotBudget};

    fn straddle(policy: ResetPolicy) -> u32 {
        let mut cfg = SecurityConfig::paper_default();
        cfg.budget = SlotBudget::disabled();
        let mut sim = SecuritySim::new(
            cfg,
            Box::new(MoatEngine::new(
                MoatConfig::paper_default().reset_policy(policy),
            )),
        );
        let mut attacker = StraddleAttacker::new(2055, 64);
        sim.run(&mut attacker, Nanos::from_millis(2)).max_pressure
    }

    #[test]
    fn unsafe_reset_doubles_exposure() {
        // Fig. 7(a): T before + T after the reset → 2T ≈ 128+.
        let p = straddle(ResetPolicy::Unsafe);
        assert!((125..=135).contains(&p), "unsafe exposure {p}");
    }

    #[test]
    fn safe_reset_caps_exposure_near_ath() {
        // §4.3: the shadow counter carries the count across the reset, so
        // the ALERT fires right after the restrike begins.
        let p = straddle(ResetPolicy::Safe);
        assert!(p <= 64 + 6, "safe exposure {p}");
    }

    #[test]
    fn free_running_counters_also_resist_straddling() {
        // Panopticon-style free-running counters never reset, so the
        // straddle gains nothing either (the attacker waits forever for a
        // reset that only mitigation provides).
        let p = straddle(ResetPolicy::None);
        assert!(p <= 64 + 6, "free-running exposure {p}");
    }
}
