//! A Blacksmith-style tracker-thrashing attack (§1, §2.4).
//!
//! Low-cost SRAM trackers (TRR, DSAC, Graphene-with-few-entries) hold only
//! a handful of entries, so an attacker can interleave *decoy* rows between
//! aggressor activations to evict the aggressors from the tracker before
//! they are ever selected for mitigation — the pattern family of
//! TRRespass and Blacksmith that broke deployed DDR4 mitigations. Against
//! PRAC-based designs the same pattern achieves nothing: the counter lives
//! with the row, not in a contested SRAM table.
//!
//! The decoy schedule is randomized (frequency-domain style) so simple
//! pattern-matching defenses cannot lock onto it.

use std::borrow::Cow;

use moat_dram::RowId;
use moat_sim::{AttackStep, Attacker, DefenseView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The thrashing attacker: hammer `aggressors` while cycling enough decoys
/// to keep a small tracker's table churning.
///
/// # Examples
///
/// ```
/// use moat_attacks::BlacksmithAttacker;
/// use moat_dram::Nanos;
/// use moat_sim::{SecurityConfig, SecuritySim};
/// use moat_trackers::MisraGriesTracker;
///
/// let mut cfg = SecurityConfig::paper_default();
/// cfg.alerts_enabled = false; // SRAM trackers have no ALERT path
/// let mut sim = SecuritySim::new(cfg, Box::new(MisraGriesTracker::new(4, 16)));
/// let mut attack = BlacksmithAttacker::new(2, 12, 0xB5);
/// let report = sim.run(&mut attack, Nanos::from_millis(2));
/// // The 4-entry tracker loses the aggressors in the decoy churn:
/// assert!(report.max_epoch > 1000);
/// ```
#[derive(Debug)]
pub struct BlacksmithAttacker {
    aggressors: Vec<RowId>,
    decoys: Vec<RowId>,
    rng: StdRng,
    /// Emitted schedule position.
    step: u64,
    /// Decoys to emit before the next aggressor activation.
    decoys_pending: u32,
    next_decoy: usize,
    next_aggressor: usize,
}

impl BlacksmithAttacker {
    /// Creates the attack with `aggressors` aggressor rows and `decoys`
    /// decoy rows (disjoint blast radii; decoys must outnumber the
    /// victim tracker's entries to thrash it).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(aggressors: u32, decoys: u32, seed: u64) -> Self {
        assert!(aggressors > 0 && decoys > 0, "need aggressors and decoys");
        BlacksmithAttacker {
            aggressors: (0..aggressors)
                .map(|i| RowId::new(30_000 + 6 * i))
                .collect(),
            decoys: (0..decoys).map(|i| RowId::new(40_000 + 6 * i)).collect(),
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            decoys_pending: 0,
            next_decoy: 0,
            next_aggressor: 0,
        }
    }

    /// The aggressor rows (for asserting on their epochs in experiments).
    pub fn aggressors(&self) -> &[RowId] {
        &self.aggressors
    }
}

impl Attacker for BlacksmithAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        self.step += 1;
        if self.decoys_pending > 0 {
            self.decoys_pending -= 1;
            let row = self.decoys[self.next_decoy];
            self.next_decoy = (self.next_decoy + 1) % self.decoys.len();
            return AttackStep::Act(row);
        }
        // Randomized burst length between aggressor touches
        // (frequency-domain jitter à la Blacksmith).
        self.decoys_pending = self.rng.random_range(4..=8);
        let row = self.aggressors[self.next_aggressor];
        self.next_aggressor = (self.next_aggressor + 1) % self.aggressors.len();
        AttackStep::Act(row)
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!(
            "blacksmith({}+{} decoys)",
            self.aggressors.len(),
            self.decoys.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::{MitigationEngine, Nanos};
    use moat_sim::{SecurityConfig, SecuritySim};
    use moat_trackers::MisraGriesTracker;

    fn run(engine: Box<dyn MitigationEngine>, alerts: bool) -> moat_sim::SecurityReport {
        let mut cfg = SecurityConfig::paper_default();
        cfg.alerts_enabled = alerts;
        let mut sim = SecuritySim::new(cfg, engine);
        let mut attack = BlacksmithAttacker::new(2, 12, 0xB5);
        sim.run(&mut attack, Nanos::from_millis(4))
    }

    #[test]
    fn thrashing_breaks_small_misra_gries() {
        // A 4-entry Graphene-style table loses the aggressors in the
        // churn: their tracked counts decay and mitigation never lands.
        let r = run(Box::new(MisraGriesTracker::new(4, 16)), false);
        assert!(
            r.max_epoch > 1000,
            "aggressor epoch should run away, got {}",
            r.max_epoch
        );
    }

    #[test]
    fn larger_table_resists_the_same_pattern() {
        // With more entries than distinct rows in the pattern, the table
        // holds the aggressors and mitigates them.
        let r = run(Box::new(MisraGriesTracker::new(32, 16)), false);
        assert!(
            r.max_epoch < 1000,
            "32-entry table should keep up, got {}",
            r.max_epoch
        );
    }

    #[test]
    fn moat_is_immune_to_thrashing() {
        // Per-row counters cannot be evicted: MOAT holds its bound.
        let r = run(Box::new(MoatEngine::new(MoatConfig::paper_default())), true);
        assert!(r.max_epoch <= 99, "got {}", r.max_epoch);
    }

    #[test]
    #[should_panic(expected = "need aggressors")]
    fn zero_rows_rejected() {
        let _ = BlacksmithAttacker::new(0, 4, 1);
    }
}
