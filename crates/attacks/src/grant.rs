//! Shared helper for semi-scripted attackers: per-grant activation
//! accounting.
//!
//! The publish contract of
//! [`SemiScriptedAttacker`](moat_sim::SemiScriptedAttacker) lets an
//! attacker observe the defense once per grant; any counter its *own*
//! published activations will bump inside the grant must be modeled by
//! the attacker itself. [`GrantLog`] is that model: a tiny row → extra
//! activation-count map, cleared at every publish, that heap-driven
//! attackers (Ratchet, Feinting) add to the snapshot's PRAC counters
//! while vectorizing their min-count scheduling loops.

use moat_dram::{MitigationEngine, RowId};
use moat_sim::DefenseView;
use moat_trackers::PanopticonEngine;

/// Activations already published for each row within the current grant.
///
/// Backed by a linear-scan vector: grants are bounded by the simulator's
/// run cap (≤ 1024) and typically touch a handful of distinct rows, so a
/// scan beats hashing.
#[derive(Debug, Default)]
pub(crate) struct GrantLog<K: Copy + Eq> {
    acts: Vec<(K, u32)>,
}

impl<K: Copy + Eq> GrantLog<K> {
    /// Starts a fresh grant.
    pub(crate) fn clear(&mut self) {
        self.acts.clear();
    }

    /// Activations published for `key` so far in this grant.
    pub(crate) fn count(&self, key: K) -> u32 {
        self.acts
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |&(_, n)| n)
    }

    /// Records one published activation of `key`.
    pub(crate) fn bump(&mut self, key: K) {
        if let Some(entry) = self.acts.iter_mut().find(|(k, _)| *k == key) {
            entry.1 += 1;
        } else {
            self.acts.push((key, 1));
        }
    }
}

/// Builds an engine-aware Panopticon run: appends up to `want` planned
/// activations (row `k` chosen by `row_at(k)`) to `buf`, ending the run
/// at the first ACT that could flip the queue's `alert_pending` — the
/// threshold crossing that overflows a full queue. Returns how many acts
/// were appended (at least 1 when `want ≥ 1`).
///
/// This is how Jailbreak and the postponement attacker publish past the
/// engine's conservative [`RunGrant::alert_safe`](moat_sim::RunGrant)
/// tier: with the snapshot's queue occupancy and its own (grant-modeled)
/// counters, the attacker knows exactly which planned ACT causes the
/// `(free + 1)`-th crossing; everything before it provably cannot alert,
/// because queue pops — the only thing that frees a slot or clears the
/// flag — happen exclusively at REF/RFM events outside the grant. When
/// the flag is already pending nothing can *flip* (clears are also
/// event-bound), so the plan runs uncapped to `want`. When the engine is
/// not a [`PanopticonEngine`], the run conservatively stays within
/// `fallback_cap` (the grant's engine-safe tier).
///
/// The caller clears `log` before the walk; the crossings are evaluated
/// against the *engine's* queueing threshold (which may differ from the
/// attacker's own parameter).
pub(crate) fn push_panopticon_capped(
    view: &DefenseView<'_>,
    buf: &mut Vec<RowId>,
    log: &mut GrantLog<RowId>,
    want: usize,
    fallback_cap: usize,
    mut row_at: impl FnMut(usize) -> RowId,
) -> usize {
    let Some(pano) = view.engine().as_any().downcast_ref::<PanopticonEngine>() else {
        let n = want.min(fallback_cap);
        for k in 0..n {
            buf.push(row_at(k));
        }
        return n;
    };
    let threshold = pano.config().queue_threshold;
    let mut crossings_left = if pano.alert_pending() {
        usize::MAX
    } else {
        pano.config().queue_entries - pano.queue_len() + 1
    };
    let bank = view.unit.bank();
    for k in 0..want {
        let row = row_at(k);
        let after = bank.counter(row).get() + log.count(row) + 1;
        buf.push(row);
        log.bump(row);
        if after.is_multiple_of(threshold) {
            crossings_left -= 1;
            if crossings_left == 0 {
                // This ACT may overflow the queue and set the flag: the
                // run ends here; the simulator asserts at the next slot,
                // exactly like the per-step reference.
                return k + 1;
            }
        }
    }
    want
}

/// Closed-form single-row variant of [`push_panopticon_capped`]: the
/// crossings of one repeatedly hammered row are periodic (every
/// `threshold` acts, first one `threshold − counter mod threshold` acts
/// out), so the alert-edge cap is one arithmetic expression and the run
/// body a `repeat_n` extend — no per-act counter reads or crossing
/// checks. Exactly equivalent to the walking version over a constant
/// `row_at`.
pub(crate) fn push_panopticon_capped_single(
    view: &DefenseView<'_>,
    buf: &mut Vec<RowId>,
    want: usize,
    fallback_cap: usize,
    row: RowId,
) -> usize {
    let Some(pano) = view.engine().as_any().downcast_ref::<PanopticonEngine>() else {
        let n = want.min(fallback_cap);
        buf.extend(std::iter::repeat_n(row, n));
        return n;
    };
    let n = if pano.alert_pending() {
        want
    } else {
        let threshold = u64::from(pano.config().queue_threshold);
        let free = (pano.config().queue_entries - pano.queue_len()) as u64;
        let counter = u64::from(view.unit.bank().counter(row).get());
        // Crossings at k₁, k₁+t, …; the (free+1)-th — the first that can
        // overflow — may end the run, acts beyond it may not start.
        let k1 = threshold - counter % threshold;
        (want as u64).min(k1 + free * threshold) as usize
    };
    buf.extend(std::iter::repeat_n(row, n));
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_key_and_reset_on_clear() {
        let mut g: GrantLog<u32> = GrantLog::default();
        assert_eq!(g.count(7), 0);
        g.bump(7);
        g.bump(7);
        g.bump(9);
        assert_eq!(g.count(7), 2);
        assert_eq!(g.count(9), 1);
        assert_eq!(g.count(8), 0);
        g.clear();
        assert_eq!(g.count(7), 0);
    }
}
