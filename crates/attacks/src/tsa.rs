//! The Torrent-of-Staggered-ALERT (TSA) attack (§7.3, Fig. 12).
//!
//! The most potent ALERT-based performance attack. The key insight: an
//! ALERT should be triggered only when *no other bank* has a row available
//! to mitigate, so each RFM's bank-parallel mitigation is wasted on all
//! banks but one. The pattern: all banks prime their five rows to ATH in
//! parallel, then the banks take turns pushing their rows over ATH — a
//! torrent of ALERTs, staggered so they cannot be amortized.
//!
//! Because the very first ALERT's RFM consumes every bank's tracked entry
//! (CTA), each later bank re-primes its first row before its turn.

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::Request;

/// Builds the TSA request stream for `banks` banks, priming each of the
/// five rows per bank to `ath` activations.
///
/// Row addresses are chosen per bank starting at `base_row`, spaced six
/// apart. The same stream should be run with ALERTs enabled and disabled
/// to measure the throughput loss (Fig. 12: ~24% at 4 banks, ~52% at 17
/// banks — the tFAW limit).
pub fn tsa_stream(banks: u16, ath: u32, base_row: u32) -> Vec<Request> {
    assert!(banks > 0, "need at least one bank");
    let rows: Vec<u32> = (0..5).map(|i| base_row + 6 * i).collect();
    let mut out = Vec::new();

    // Phase 1: parallel priming — round-robin across banks so every bank
    // progresses at its own tRC pace.
    for _ in 0..ath {
        for &row in &rows {
            for b in 0..banks {
                out.push(Request {
                    gap: Nanos::ZERO,
                    bank: BankId::new(b),
                    row: RowId::new(row),
                });
            }
        }
    }

    // Phase 2: staggered triggers, one bank at a time.
    for b in 0..banks {
        if b > 0 {
            // The first ALERT consumed this bank's tracked first row;
            // re-prime it (the re-priming itself ends in a trigger).
            for _ in 0..ath {
                out.push(Request {
                    gap: Nanos::ZERO,
                    bank: BankId::new(b),
                    row: RowId::new(rows[0]),
                });
            }
        }
        // Trigger by cycling the rows a few times: each post-RFM touch
        // re-installs the next over-ATH row in the tracker, chaining one
        // ALERT per row even though the in-window activations are wasted.
        for _ in 0..4 {
            for &row in &rows {
                out.push(Request {
                    gap: Nanos::ZERO,
                    bank: BankId::new(b),
                    row: RowId::new(row),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::{AboLevel, DramConfig, MitigationEngine};
    use moat_sim::{PerfConfig, PerfSim, SlotBudget};

    fn cfg(banks: u16, alerts: bool) -> PerfConfig {
        PerfConfig {
            dram: DramConfig::paper_baseline(),
            banks,
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: alerts,
        }
    }

    fn moat() -> Box<dyn MitigationEngine> {
        Box::new(MoatEngine::new(MoatConfig::paper_default()))
    }

    fn tsa_loss(banks: u16) -> (f64, u64) {
        let stream = tsa_stream(banks, 64, 30_000);
        let with = PerfSim::new(cfg(banks, true), moat).run(stream.iter().copied());
        let base = PerfSim::new(cfg(banks, false), moat).run(stream.iter().copied());
        (with.slowdown_vs(&base), with.alerts)
    }

    #[test]
    fn tsa_triggers_roughly_five_alerts_per_bank() {
        let (_, alerts) = tsa_loss(4);
        assert!(
            (15..=25).contains(&alerts),
            "expected ≈20 alerts for 4 banks, got {alerts}"
        );
    }

    #[test]
    fn tsa_beats_synchronized_attacks() {
        // Staggering defeats the per-bank mitigation amortization; the
        // loss should clearly exceed the ~10% of synchronized kernels.
        let (loss4, _) = tsa_loss(4);
        assert!(loss4 > 0.12, "4-bank TSA loss {loss4}");
    }

    #[test]
    fn tsa_scales_with_bank_count() {
        let (loss4, _) = tsa_loss(4);
        let (loss17, _) = tsa_loss(17);
        assert!(
            loss17 > loss4,
            "17-bank TSA ({loss17}) should exceed 4-bank ({loss4})"
        );
    }
}
