//! The Feinting attack (§2.5, Table 2) against purely transparent
//! per-row-counter schemes (no ALERT path).
//!
//! The defender mitigates the highest-count row once per mitigation period.
//! The attacker maintains a pool of rows with *equal* counts, so each
//! mitigation wastes only one pool member's investment; the survivors keep
//! climbing. With `P` mitigation periods in the attack window and `A`
//! activations per period, the last survivor reaches approximately
//! `A · H(P)` activations (harmonic number `H`) — the feinting bound of
//! Table 2, which is why transparent schemes cannot tolerate low
//! thresholds and MOAT needs the reactive ALERT path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use std::borrow::Cow;

use moat_dram::RowId;
use moat_sim::{AttackStep, Attacker, DefenseView, RunGrant, SemiRun, SemiScriptedAttacker};

/// The feinting attacker: min-count round-robin over a shrinking pool.
///
/// Pool rows whose PRAC counter resets (mitigated or swept) are abandoned,
/// concentrating future activations on the survivors.
///
/// # Examples
///
/// ```
/// use moat_attacks::FeintingAttacker;
/// use moat_dram::Nanos;
/// use moat_sim::{SecurityConfig, SecuritySim, SlotBudget};
/// use moat_trackers::IdealSramTracker;
///
/// let mut cfg = SecurityConfig::paper_default();
/// cfg.alerts_enabled = false; // transparent scheme: REF-time only
/// let mut sim = SecuritySim::new(cfg, Box::new(IdealSramTracker::new(65536)));
/// let mut feint = FeintingAttacker::new(64, 20_000);
/// let report = sim.run(&mut feint, Nanos::from_millis(2));
/// // Even a perfect tracker leaks far past the mitigation rate's pace.
/// assert!(report.max_pressure > 200);
/// ```
#[derive(Debug)]
pub struct FeintingAttacker {
    /// (count, row) min-heap over the live pool.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    initial_pool: usize,
    /// First pool row (pool rows are `base_row + 6·slot`).
    base_row: u32,
    /// Per-grant touched marks for the semi-scripted form, slot-indexed:
    /// `touched[slot] == generation` ⇔ the slot's row was already
    /// published in the current grant, so its heap count *is* the
    /// modeled counter (mitigations cannot land mid-grant).
    touched: Vec<u64>,
    generation: u64,
}

impl FeintingAttacker {
    /// Creates a feinting pool of `pool_size` rows starting at `base_row`,
    /// spaced six rows apart (disjoint blast radii).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is zero.
    pub fn new(pool_size: usize, base_row: u32) -> Self {
        assert!(pool_size > 0, "pool must be non-empty");
        FeintingAttacker {
            heap: (0..pool_size as u32)
                .map(|i| Reverse((0, base_row + 6 * i)))
                .collect(),
            initial_pool: pool_size,
            base_row,
            touched: vec![0; pool_size],
            generation: 0,
        }
    }

    /// Live pool size.
    pub fn live_rows(&self) -> usize {
        self.heap.len()
    }

    /// Initial pool size.
    pub fn initial_pool(&self) -> usize {
        self.initial_pool
    }
}

impl Attacker for FeintingAttacker {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        while let Some(&Reverse((count, row))) = self.heap.peek() {
            let actual = view.unit.bank().counter(RowId::new(row)).get();
            if actual < count {
                // Mitigated (or swept): abandon — the feint succeeded.
                self.heap.pop();
                if self.heap.is_empty() {
                    return AttackStep::Stop;
                }
                continue;
            }
            self.heap.pop();
            self.heap.push(Reverse((actual + 1, row)));
            return AttackStep::Act(RowId::new(row));
        }
        AttackStep::Stop
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("feinting(pool={})", self.initial_pool))
    }
}

/// The semi-scripted form: the min-count round-robin vectorizes into one
/// published run per grant. PRAC counters only reset at REF/RFM events —
/// grant boundaries — so the abandon-on-reset check fires at exactly the
/// same points as in the per-step reference, and a row already published
/// this grant needs no re-read: its heap count *is* the modeled counter
/// (tracked by O(1) generation marks per pool slot). Engine-agnostic by
/// design, the publish stays within the engine-guaranteed tier of the
/// grant.
impl SemiScriptedAttacker for FeintingAttacker {
    fn publish(
        &mut self,
        view: &DefenseView<'_>,
        buf: &mut Vec<RowId>,
        grant: RunGrant,
    ) -> SemiRun {
        let max = grant.alert_safe;
        self.generation += 1;
        let bank = view.unit.bank();
        while buf.len() < max {
            let Some(&Reverse((count, row))) = self.heap.peek() else {
                break;
            };
            let slot = ((row - self.base_row) / 6) as usize;
            let actual = if self.touched[slot] == self.generation {
                count
            } else {
                bank.counter(RowId::new(row)).get()
            };
            if actual < count {
                // Mitigated (or swept): abandon — the feint succeeded.
                self.heap.pop();
                continue;
            }
            self.heap.pop();
            self.heap.push(Reverse((actual + 1, row)));
            self.touched[slot] = self.generation;
            buf.push(RowId::new(row));
        }
        if buf.is_empty() {
            SemiRun::Stop
        } else {
            SemiRun::Acts(buf.len())
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Attacker::name(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::Nanos;
    use moat_sim::{SecurityConfig, SecuritySim, SlotBudget};
    use moat_trackers::IdealSramTracker;

    /// Runs feinting against the ideal tracker with a mitigation rate of
    /// one aggressor per `k` tREFI for `periods` mitigation periods.
    fn feint(k: u32, pool: usize, millis: u64) -> u32 {
        let mut cfg = SecurityConfig::paper_default();
        cfg.alerts_enabled = false;
        cfg.budget = SlotBudget::per_aggressor(5, k);
        let mut sim = SecuritySim::new(cfg, Box::new(IdealSramTracker::new(65536)));
        // Base row 40_000: the refresh sweep needs ~24 ms to reach it.
        let mut attacker = FeintingAttacker::new(pool, 40_000);
        let report = sim.run(&mut attacker, Nanos::from_millis(millis));
        report.max_pressure
    }

    #[test]
    fn feinting_tracks_harmonic_bound() {
        // Over ~512 mitigation periods at 1 aggressor per 4 tREFI
        // (8 ms), the bound is A·H(P) = 268·H(512) ≈ 1822. The empirical
        // attack should land within ~25% of it (the strategy is
        // near-optimal, not exact).
        let p = 512usize;
        let a = 268.0;
        let h: f64 = (1..=p).map(|i| 1.0 / i as f64).sum();
        let bound = a * h;
        let measured = f64::from(feint(4, p, 8));
        assert!(
            measured > bound * 0.6,
            "measured {measured} far below bound {bound}"
        );
        assert!(
            measured < bound * 1.1,
            "measured {measured} exceeds bound {bound}"
        );
    }

    #[test]
    fn faster_mitigation_lowers_the_bound() {
        let slow = feint(4, 256, 6);
        let fast = feint(1, 256, 6);
        assert!(
            fast < slow,
            "1-per-tREFI ({fast}) should beat 1-per-4-tREFI ({slow})"
        );
    }

    #[test]
    fn pool_shrinks_as_rows_are_sacrificed() {
        let mut cfg = SecurityConfig::paper_default();
        cfg.alerts_enabled = false;
        let mut sim = SecuritySim::new(cfg, Box::new(IdealSramTracker::new(65536)));
        let mut attacker = FeintingAttacker::new(64, 40_000);
        sim.run(&mut attacker, Nanos::from_millis(2));
        assert!(attacker.live_rows() < 64, "live: {}", attacker.live_rows());
    }

    #[test]
    #[should_panic(expected = "pool must be non-empty")]
    fn zero_pool_rejected() {
        let _ = FeintingAttacker::new(0, 100);
    }
}
