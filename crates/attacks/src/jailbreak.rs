//! The Jailbreak attack on Panopticon (§3).
//!
//! Panopticon's queue stores only row addresses, not counters, and services
//! entries in FIFO order. Jailbreak exploits both properties:
//!
//! 1. **Fill** — activate 8 decoy rows round-robin 128 times each, so all
//!    8 cross the queueing threshold within the same tREFI and fill the
//!    queue (the attack row last).
//! 2. **Hammer** — keep activating the youngest entry at 32 activations
//!    per tREFI, so one fresh copy enters the queue exactly as one entry
//!    drains (no overflow, hence no ALERT). While resident behind 7 older
//!    entries the row absorbs 8 × 128 = 1024 further activations, for a
//!    total of 1152 — 9× the design threshold of 128.
//!
//! The randomized variant (§3.3) defeats counter randomization
//! probabilistically: an iteration succeeds when all 8 decoys start
//! "heavy-weight" (within 32 activations of a threshold crossing, ~1/4
//! each), which happens once in 2¹⁶ iterations on average.

use std::borrow::Cow;

use moat_dram::{Nanos, RowId};
use moat_sim::{AttackStep, Attacker, DefenseView, RunGrant, SemiRun, SemiScriptedAttacker};

use crate::grant::{push_panopticon_capped, push_panopticon_capped_single, GrantLog};
use moat_trackers::PanopticonEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Phases of the deterministic Jailbreak pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Round-robin priming of the 8 decoy+attack rows.
    Fill { act: u32 },
    /// Paced hammering of the attack row.
    Hammer,
    /// Finished.
    Done,
}

/// The deterministic Jailbreak attacker (§3.2).
///
/// Targets a [`PanopticonEngine`]; generic inspection is done through the
/// queue exposed via downcasting, per the threat model.
///
/// # Examples
///
/// ```
/// use moat_attacks::JailbreakAttacker;
/// use moat_dram::Nanos;
/// use moat_sim::{SecurityConfig, SecuritySim};
/// use moat_trackers::{PanopticonConfig, PanopticonEngine};
///
/// let mut sim = SecuritySim::new(
///     SecurityConfig::paper_default(),
///     Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
/// );
/// let mut jailbreak = JailbreakAttacker::new(20_000);
/// let report = sim.run(&mut jailbreak, Nanos::from_millis(2));
/// assert!(report.max_pressure >= 1100, "got {}", report.max_pressure);
/// assert_eq!(report.alerts, 0, "Jailbreak never overflows the queue");
/// ```
#[derive(Debug)]
pub struct JailbreakAttacker {
    rows: Vec<RowId>,
    threshold: u32,
    acts_per_trefi: u32,
    phase: Phase,
    /// Activations issued on the attack row within the current tREFI.
    hammer_acts_this_trefi: u32,
    current_trefi: u64,
    /// Per-grant published-activation model for the semi-scripted form.
    grant: GrantLog<RowId>,
}

impl JailbreakAttacker {
    /// Creates the attack around 8 rows starting at `base_row`, spaced six
    /// rows apart so their blast radii never overlap. Pick `base_row` far
    /// from the refresh pointer's early sweep (e.g. 20 000).
    pub fn new(base_row: u32) -> Self {
        Self::with_rows((0..8).map(|i| base_row + 6 * i).collect(), 128, 32)
    }

    /// Full control: decoy/attack rows (attack row last), the queueing
    /// threshold, and the paced hammering rate per tREFI.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two rows are given.
    pub fn with_rows(rows: Vec<u32>, threshold: u32, acts_per_trefi: u32) -> Self {
        assert!(rows.len() >= 2, "need decoys plus an attack row");
        JailbreakAttacker {
            rows: rows.into_iter().map(RowId::new).collect(),
            threshold,
            acts_per_trefi,
            phase: Phase::Fill { act: 0 },
            hammer_acts_this_trefi: 0,
            current_trefi: 0,
            grant: GrantLog::default(),
        }
    }

    /// The attack row (the youngest queue entry).
    pub fn attack_row(&self) -> RowId {
        *self.rows.last().expect("validated non-empty")
    }

    fn queue_of<'a>(&self, view: &'a DefenseView<'_>) -> Option<&'a PanopticonEngine> {
        view.engine().as_any().downcast_ref::<PanopticonEngine>()
    }

    /// The hammer phase's stop condition: the attack row's first copy has
    /// been mitigated. Queue pops and in-flight changes only happen at
    /// REF/RFM events — horizon boundaries — so the condition is constant
    /// across one published grant (own activations can only *add* queue
    /// copies).
    fn hammer_done(&self, view: &DefenseView<'_>) -> bool {
        self.queue_of(view).is_some_and(|p| {
            !p.queue().contains(&self.attack_row())
                && view.unit.inflight_row() != Some(self.attack_row())
        })
    }
}

impl Attacker for JailbreakAttacker {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        match self.phase {
            Phase::Fill { act } => {
                let total = self.threshold * self.rows.len() as u32;
                if act >= total {
                    self.phase = Phase::Hammer;
                    return self.step(view);
                }
                let row = self.rows[(act as usize) % self.rows.len()];
                self.phase = Phase::Fill { act: act + 1 };
                AttackStep::Act(row)
            }
            Phase::Hammer => {
                // Stop once the attack row's first copy has been mitigated
                // (it left the queue and its mitigation completed — the
                // queue no longer holds it, or holds only younger copies
                // while the ledger shows the pressure collapsed).
                if self.hammer_done(view) {
                    self.phase = Phase::Done;
                    return AttackStep::Stop;
                }
                // Pace: at most `acts_per_trefi` on the attack row per
                // tREFI, so one queue copy per mitigation period.
                let trefi = view.now.as_u64() / view.unit.config().timing.t_refi.as_u64();
                if trefi != self.current_trefi {
                    self.current_trefi = trefi;
                    self.hammer_acts_this_trefi = 0;
                }
                if self.hammer_acts_this_trefi < self.acts_per_trefi {
                    self.hammer_acts_this_trefi += 1;
                    AttackStep::Act(self.attack_row())
                } else {
                    AttackStep::Idle
                }
            }
            Phase::Done => AttackStep::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Owned(format!("jailbreak(t={})", self.threshold))
    }
}

/// The semi-scripted form: fill publishes whole decoy round-robin bursts,
/// hammer publishes its per-tREFI budget in one run and idles the rest of
/// the interval, re-observing the Panopticon queue only at drain points
/// (REF/RFM horizons). Both phases are engine-aware: they model their own
/// threshold crossings against the snapshot's queue occupancy (see
/// [`push_panopticon_capped`]), so runs extend past the engine's
/// conservative `alert_safe` tier — the hammer keeps the queue
/// permanently full, where that tier is a single slot — and end exactly
/// at any ACT that could overflow it. Bit-identical to the per-step
/// [`Attacker`] impl: every decision is a pure function of the snapshot
/// plus own state, and tREFI boundaries never fall inside a grant (the
/// REF deadline that caps each grant *is* the next tREFI multiple).
impl SemiScriptedAttacker for JailbreakAttacker {
    fn publish(
        &mut self,
        view: &DefenseView<'_>,
        buf: &mut Vec<RowId>,
        grant: RunGrant,
    ) -> SemiRun {
        match self.phase {
            Phase::Fill { act } => {
                let total = self.threshold * self.rows.len() as u32;
                if act >= total {
                    self.phase = Phase::Hammer;
                    return self.publish(view, buf, grant);
                }
                let want = ((total - act) as usize).min(grant.max);
                self.grant.clear();
                let rows = &self.rows;
                let start = act as usize;
                let n = push_panopticon_capped(
                    view,
                    buf,
                    &mut self.grant,
                    want,
                    grant.alert_safe,
                    |k| rows[(start + k) % rows.len()],
                );
                self.phase = Phase::Fill {
                    act: act + n as u32,
                };
                SemiRun::Acts(n)
            }
            Phase::Hammer => {
                if self.hammer_done(view) {
                    self.phase = Phase::Done;
                    return SemiRun::Stop;
                }
                let t_refi = view.unit.config().timing.t_refi;
                let trefi = view.now.as_u64() / t_refi.as_u64();
                if trefi != self.current_trefi {
                    self.current_trefi = trefi;
                    self.hammer_acts_this_trefi = 0;
                }
                let budget = self.acts_per_trefi - self.hammer_acts_this_trefi;
                if budget == 0 {
                    // Pacing satisfied: idle out the rest of this tREFI.
                    let t_rc = view.unit.config().timing.t_rc;
                    let boundary = (trefi + 1) * t_refi.as_u64();
                    let slots = (boundary - view.now.as_u64())
                        .div_ceil(t_rc.as_u64())
                        .max(1);
                    return SemiRun::Idle(slots);
                }
                let want = (budget as usize).min(grant.max);
                let n = push_panopticon_capped_single(
                    view,
                    buf,
                    want,
                    grant.alert_safe,
                    self.attack_row(),
                );
                self.hammer_acts_this_trefi += n as u32;
                SemiRun::Acts(n)
            }
            Phase::Done => SemiRun::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        Attacker::name(self)
    }
}

/// One iteration of the randomized Jailbreak (§3.3), modelled at event
/// granularity.
///
/// Given the randomized initial counters, an iteration's outcome is fully
/// determined: a decoy becomes a queue entry within its 32 priming
/// activations iff its initial counter is within 32 of a threshold
/// crossing ("heavy-weight", probability 64/256 = 1/4). The attack row
/// then sits behind the successful decoys and absorbs 128 activations per
/// occupied slot ahead of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomizedIteration {
    /// Decoys that entered the queue (0..=8).
    pub heavy_decoys: u32,
    /// Activations inflicted on the attack row this iteration.
    pub acts_on_attack_row: u32,
}

/// Fast model of the randomized Jailbreak: simulates `iterations`
/// iterations at iteration granularity (seeded, reproducible) and returns
/// the running maximum of activations on the attack row after each
/// iteration — the series plotted in Fig. 5.
///
/// Validated against the full event simulation in the integration tests.
#[derive(Debug)]
pub struct RandomizedJailbreak {
    threshold: u32,
    priming_acts: u32,
    rng: StdRng,
}

impl RandomizedJailbreak {
    /// Creates the model for a given queueing `threshold` (128 in the
    /// paper) with the paper's 32 priming activations per decoy.
    pub fn new(threshold: u32, seed: u64) -> Self {
        RandomizedJailbreak {
            threshold,
            priming_acts: 32,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs one iteration: samples 8 decoy initial counters and the attack
    /// row's counter, and computes the activations the attack row absorbs.
    pub fn iteration(&mut self) -> RandomizedIteration {
        // A decoy enqueues within `priming_acts` activations iff its
        // initial counter modulo threshold is within `priming_acts` of the
        // next crossing.
        let mut heavy = 0u32;
        for _ in 0..8 {
            let init: u32 = self.rng.random_range(0..256);
            if self.threshold - (init % self.threshold) <= self.priming_acts {
                heavy += 1;
            }
        }
        // One decoy entry is naturally mitigated while the pool is primed
        // and the attack row climbs to its own crossing (§3.3: "one row
        // gets mitigated over this time").
        let occupied = heavy.saturating_sub(1);
        let init_x: u32 = self.rng.random_range(0..256);
        let to_enqueue = self.threshold - (init_x % self.threshold);
        // While enqueued behind `occupied` entries, plus its own service
        // period, the paced attack row receives threshold acts per slot.
        let acts = to_enqueue + (occupied + 1) * self.threshold;
        RandomizedIteration {
            heavy_decoys: heavy,
            acts_on_attack_row: acts,
        }
    }

    /// The running-max series over `iterations` iterations: entry `i` is
    /// the best result seen in iterations `0..=i`.
    pub fn running_max(&mut self, iterations: u32) -> Vec<u32> {
        let mut best = 0;
        (0..iterations)
            .map(|_| {
                best = best.max(self.iteration().acts_on_attack_row);
                best
            })
            .collect()
    }

    /// Average time per iteration (§3.3: ≈256 µs including queue reset).
    pub fn iteration_time(&self) -> Nanos {
        Nanos::from_micros(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_row_is_last() {
        let j = JailbreakAttacker::new(1000);
        assert_eq!(j.attack_row(), RowId::new(1000 + 42));
    }

    #[test]
    #[should_panic(expected = "decoys")]
    fn needs_two_rows() {
        let _ = JailbreakAttacker::with_rows(vec![1], 128, 32);
    }

    #[test]
    fn randomized_iteration_bounds() {
        let mut r = RandomizedJailbreak::new(128, 7);
        for _ in 0..10_000 {
            let it = r.iteration();
            assert!(it.heavy_decoys <= 8);
            // Worst case: all 8 heavy → 7 occupied + self = 8 slots of 128
            // plus up to 128 to enqueue = 1152.
            assert!(it.acts_on_attack_row <= 1152);
            assert!(it.acts_on_attack_row >= 129);
        }
    }

    #[test]
    fn heavy_probability_is_one_quarter() {
        let mut r = RandomizedJailbreak::new(128, 11);
        let total: u32 = (0..20_000).map(|_| r.iteration().heavy_decoys).sum();
        let mean = total as f64 / 20_000.0;
        assert!((1.8..2.2).contains(&mean), "mean heavy decoys {mean} ≉ 2.0");
    }

    #[test]
    fn running_max_approaches_1145_within_2_20_iterations() {
        // Fig. 5: randomized Jailbreak reaches ≈1145 activations within
        // 2^20 iterations (success probability ≈ 2^-16 per iteration).
        let mut r = RandomizedJailbreak::new(128, 3);
        let series = r.running_max(1 << 20);
        let last = *series.last().unwrap();
        assert!(last >= 1100, "running max after 2^20 iterations: {last}");
        // Monotone non-decreasing by construction.
        assert!(series.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn running_max_is_low_early() {
        let mut r = RandomizedJailbreak::new(128, 3);
        let series = r.running_max(16);
        assert!(
            series[15] < 1152,
            "all-heavy within 16 iterations is (almost) impossible"
        );
    }
}
