//! Ground-truth Rowhammer security accounting.
//!
//! The threat model (§2.1) declares an attack successful "when any row
//! receives more than the threshold number of activations without any
//! intervening mitigation or refresh". The ledger tracks, for every *victim*
//! row, the hammer pressure it has absorbed: the number of activations to
//! rows within the blast radius since the victim was last refreshed (by the
//! regular refresh sweep, by a victim-refresh mitigation, or by an RFM).
//!
//! The victim-centric view is the physically meaningful one, and it is what
//! makes the unsafe-reset vulnerability of Fig. 7(a) visible: resetting an
//! aggressor's *counter* at its own refresh does not reset the *pressure* on
//! victims in the next, not-yet-refreshed group.
//!
//! The ledger is maintained by the simulator, outside any mitigation engine,
//! so defenses cannot influence the ground truth they are judged against.

use core::ops::Range;

use crate::config::DramConfig;
use crate::hint::prefetch_read;
use crate::types::RowId;

/// Per-row ledger state, interleaved so one activation touches one run of
/// adjacent cells instead of two parallel arrays. The victim range
/// `row ± blast_radius` plus the aggressor's own epoch then span one or
/// two cache lines rather than three or four — a measurable difference
/// once the row space outgrows the last-level cache.
#[derive(Debug, Clone, Copy, Default)]
struct LedgerCell {
    /// Hammer pressure absorbed as a victim since the last refresh.
    pressure: u32,
    /// Activations as an aggressor since the last mitigation/neighborhood
    /// refresh.
    epoch: u32,
}

/// Per-bank ground-truth hammer-pressure ledger.
///
/// # Examples
///
/// ```
/// use moat_dram::{DramConfig, RowId, SecurityLedger};
///
/// let cfg = DramConfig::builder().rows_per_bank(64).build();
/// let mut ledger = SecurityLedger::new(&cfg);
/// for _ in 0..10 {
///     ledger.on_activate(RowId::new(8));
/// }
/// // Rows 6,7,9,10 have each absorbed 10 activations of pressure.
/// assert_eq!(ledger.pressure(RowId::new(9)), 10);
/// ledger.on_victim_refresh(RowId::new(8)); // mitigate aggressor 8
/// assert_eq!(ledger.pressure(RowId::new(9)), 0);
/// assert_eq!(ledger.max_pressure_ever(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SecurityLedger {
    rows_per_bank: u32,
    blast_radius: u32,
    /// Per-row pressure and epoch, interleaved (see [`LedgerCell`]).
    ///
    /// The *pressure* half tracks hammer pressure per victim row since its
    /// last refresh. The *epoch* half is the aggressor-centric count:
    /// activations of each row since it was last mitigated or since its
    /// neighborhood was covered by the refresh sweep — the paper's
    /// threat-model metric ("any row receives more than the threshold
    /// number of activations without any intervening mitigation or
    /// refresh", §2.1). Unlike victim pressure, the epoch cannot be
    /// inflated by two independent aggressors sharing a victim, which
    /// activation-counting designs inherently do not bound.
    cells: Vec<LedgerCell>,
    /// Highest pressure ever observed on any row (the "max ACTs on attack
    /// row" metric of Figs. 5 and 10).
    max_ever: u32,
    /// Row achieving `max_ever`.
    max_row: RowId,
    /// Highest epoch ever observed.
    max_epoch: u32,
}

impl SecurityLedger {
    /// Creates a ledger for one bank.
    pub fn new(config: &DramConfig) -> Self {
        SecurityLedger {
            rows_per_bank: config.rows_per_bank,
            blast_radius: config.blast_radius,
            cells: vec![LedgerCell::default(); config.rows_per_bank as usize],
            max_ever: 0,
            max_row: RowId::new(0),
            max_epoch: 0,
        }
    }

    /// Records an activation of `row`: every victim within the blast radius
    /// absorbs one unit of pressure, and the row's own epoch advances.
    ///
    /// This is the single hottest ledger operation (once per simulated
    /// ACT), so the blast radius is walked as two dense index ranges —
    /// below and above the aggressor — with the running maximum folded
    /// into the same pass instead of a filtered victim iterator.
    #[inline]
    pub fn on_activate(&mut self, row: RowId) {
        let center = row.index();
        let lo = center.saturating_sub(self.blast_radius) as usize;
        let hi = (center + self.blast_radius).min(self.rows_per_bank - 1) as usize;
        let center = center as usize;

        let mut max = self.max_ever;
        let mut max_row = self.max_row;
        for v in lo..center {
            let p = &mut self.cells[v].pressure;
            *p += 1;
            if *p > max {
                max = *p;
                max_row = RowId::new(v as u32);
            }
        }
        for v in (center + 1)..=hi {
            let p = &mut self.cells[v].pressure;
            *p += 1;
            if *p > max {
                max = *p;
                max_row = RowId::new(v as u32);
            }
        }
        self.max_ever = max;
        self.max_row = max_row;

        let e = &mut self.cells[center].epoch;
        *e += 1;
        if *e > self.max_epoch {
            self.max_epoch = *e;
        }
    }

    /// Hints the cache to load the ledger cells [`on_activate`]
    /// (Self::on_activate) for `row` will touch. Called by the batched
    /// issue pipeline a few requests ahead of the activation so the loads
    /// overlap; has no observable effect on ledger state.
    #[inline]
    pub fn prefetch(&self, row: RowId) {
        let center = row.index().min(self.rows_per_bank - 1);
        let lo = center.saturating_sub(self.blast_radius) as usize;
        let hi = (center + self.blast_radius).min(self.rows_per_bank - 1) as usize;
        prefetch_read(&self.cells[lo]);
        prefetch_read(&self.cells[hi]);
    }

    /// Records a refresh of every row in `rows` (the regular refresh sweep):
    /// their pressure drops to zero. With the spatially contiguous
    /// ascending sweep, a row's epoch resets once the sweep covers its
    /// *upper* victims (its lower victims were refreshed just before), i.e.
    /// when row `r + blast_radius` is refreshed.
    pub fn on_refresh_rows(&mut self, rows: Range<u32>) {
        for r in rows.clone() {
            self.cells[r as usize].pressure = 0;
        }
        let lo = rows.start.saturating_sub(self.blast_radius);
        let hi = rows.end.saturating_sub(self.blast_radius);
        for r in lo..hi {
            self.cells[r as usize].epoch = 0;
        }
    }

    /// Records a victim-refresh mitigation of aggressor `row`: all victims
    /// within the blast radius are refreshed and the aggressor's epoch
    /// resets.
    pub fn on_victim_refresh(&mut self, row: RowId) {
        for v in row.victims(self.blast_radius, self.rows_per_bank) {
            self.cells[v.as_usize()].pressure = 0;
        }
        self.cells[row.as_usize()].epoch = 0;
    }

    /// Records a refresh of a single victim row (partial, slot-by-slot
    /// mitigation during REF refreshes one victim at a time).
    pub fn on_refresh_single(&mut self, row: RowId) {
        self.cells[row.as_usize()].pressure = 0;
    }

    /// Current pressure on `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn pressure(&self, row: RowId) -> u32 {
        self.cells[row.as_usize()].pressure
    }

    /// Highest pressure ever observed on any row. A defense tolerating
    /// Rowhammer threshold `T` is secure iff this never exceeds `T`.
    pub fn max_pressure_ever(&self) -> u32 {
        self.max_ever
    }

    /// The row on which [`max_pressure_ever`](Self::max_pressure_ever) was
    /// observed.
    pub fn max_pressure_row(&self) -> RowId {
        self.max_row
    }

    /// Current maximum pressure across all rows (not the historical max).
    pub fn current_max_pressure(&self) -> u32 {
        self.cells.iter().map(|c| c.pressure).max().unwrap_or(0)
    }

    /// Current epoch (activations since last mitigation/neighborhood
    /// refresh) of `row` — the paper's per-aggressor metric.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn epoch(&self, row: RowId) -> u32 {
        self.cells[row.as_usize()].epoch
    }

    /// Highest per-aggressor epoch ever observed — the paper's
    /// threat-model metric (§2.1). For attacks on disjoint row pools this
    /// equals [`max_pressure_ever`](Self::max_pressure_ever); for benign
    /// workloads it is the bound the per-aggressor counters actually
    /// enforce, while victim pressure can be inflated by coincidentally
    /// adjacent hot rows.
    pub fn max_epoch_ever(&self) -> u32 {
        self.max_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> SecurityLedger {
        let cfg = DramConfig::builder().rows_per_bank(64).build();
        SecurityLedger::new(&cfg)
    }

    #[test]
    fn pressure_accumulates_on_victims_only() {
        let mut l = ledger();
        for _ in 0..7 {
            l.on_activate(RowId::new(10));
        }
        assert_eq!(l.pressure(RowId::new(8)), 7);
        assert_eq!(l.pressure(RowId::new(9)), 7);
        assert_eq!(
            l.pressure(RowId::new(10)),
            0,
            "aggressor itself is not a victim"
        );
        assert_eq!(l.pressure(RowId::new(11)), 7);
        assert_eq!(l.pressure(RowId::new(12)), 7);
        assert_eq!(l.pressure(RowId::new(13)), 0);
    }

    #[test]
    fn double_sided_pressure_sums() {
        let mut l = ledger();
        for _ in 0..5 {
            l.on_activate(RowId::new(10));
            l.on_activate(RowId::new(12));
        }
        // Row 11 is within radius of both aggressors.
        assert_eq!(l.pressure(RowId::new(11)), 10);
        assert_eq!(l.max_pressure_ever(), 10);
        assert_eq!(l.max_pressure_row(), RowId::new(11));
    }

    #[test]
    fn refresh_clears_pressure_but_not_history() {
        let mut l = ledger();
        for _ in 0..9 {
            l.on_activate(RowId::new(20));
        }
        l.on_refresh_rows(16..24);
        assert_eq!(l.pressure(RowId::new(21)), 0);
        assert_eq!(l.max_pressure_ever(), 9);
        assert_eq!(l.current_max_pressure(), 0);
    }

    #[test]
    fn victim_refresh_mitigates_aggressor() {
        let mut l = ledger();
        for _ in 0..3 {
            l.on_activate(RowId::new(5));
        }
        l.on_victim_refresh(RowId::new(5));
        for v in [3u32, 4, 6, 7] {
            assert_eq!(l.pressure(RowId::new(v)), 0);
        }
    }

    #[test]
    fn single_victim_refresh_is_partial() {
        let mut l = ledger();
        for _ in 0..3 {
            l.on_activate(RowId::new(5));
        }
        l.on_refresh_single(RowId::new(6));
        assert_eq!(l.pressure(RowId::new(6)), 0);
        assert_eq!(
            l.pressure(RowId::new(4)),
            3,
            "other victims still pressured"
        );
    }

    #[test]
    fn epoch_counts_aggressor_acts() {
        let mut l = ledger();
        for _ in 0..7 {
            l.on_activate(RowId::new(10));
        }
        assert_eq!(l.epoch(RowId::new(10)), 7);
        assert_eq!(l.epoch(RowId::new(11)), 0, "victims have no epoch");
        assert_eq!(l.max_epoch_ever(), 7);
    }

    #[test]
    fn epoch_resets_on_mitigation() {
        let mut l = ledger();
        for _ in 0..5 {
            l.on_activate(RowId::new(10));
        }
        l.on_victim_refresh(RowId::new(10));
        assert_eq!(l.epoch(RowId::new(10)), 0);
        assert_eq!(l.max_epoch_ever(), 5);
    }

    #[test]
    fn epoch_resets_when_sweep_covers_upper_victims() {
        let mut l = ledger();
        for _ in 0..5 {
            l.on_activate(RowId::new(10));
        }
        // Refreshing rows 8..16 covers row 10's upper victims (11, 12):
        // with radius 2, epochs of rows 6..14 reset.
        l.on_refresh_rows(8..16);
        assert_eq!(l.epoch(RowId::new(10)), 0);
        // Row 13's upper victim 15 is covered: epoch resets.
        for _ in 0..3 {
            l.on_activate(RowId::new(13));
        }
        l.on_refresh_rows(8..16);
        assert_eq!(l.epoch(RowId::new(13)), 0);
        // Row 14's upper victim 16 is NOT covered: epoch persists.
        for _ in 0..3 {
            l.on_activate(RowId::new(14));
        }
        l.on_refresh_rows(8..16);
        assert_eq!(l.epoch(RowId::new(14)), 3, "victim 16 still unrefreshed");
    }

    #[test]
    fn epoch_vs_pressure_for_adjacent_aggressors() {
        // Two aggressors flanking one victim: pressure sums, epochs do not
        // (the activation-counting design bound is per-aggressor).
        let mut l = ledger();
        for _ in 0..50 {
            l.on_activate(RowId::new(10));
            l.on_activate(RowId::new(12));
        }
        assert_eq!(l.pressure(RowId::new(11)), 100);
        assert_eq!(l.max_epoch_ever(), 50);
    }

    #[test]
    fn edge_rows_have_fewer_victims() {
        let mut l = ledger();
        l.on_activate(RowId::new(0));
        assert_eq!(l.pressure(RowId::new(1)), 1);
        assert_eq!(l.pressure(RowId::new(2)), 1);
        // No underflow / wraparound below row 0.
        assert_eq!(l.current_max_pressure(), 1);
    }
}
