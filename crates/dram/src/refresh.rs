//! The refresh engine: periodic REF scheduling over spatially contiguous
//! groups, with optional REF postponement (Appendix B).
//!
//! A REF command is due every tREFI and refreshes the next refresh group
//! (8 spatially contiguous rows in the baseline, §4.3). The refresh pointer
//! wraps after covering the whole bank, so every row is refreshed at least
//! once per tREFW. The controller may postpone up to `max_postponed_refs`
//! REFs and later issue them back-to-back — the attack vector analysed in
//! Appendix B.

use crate::config::{DramConfig, RefreshOrder};
use crate::error::DramError;
use crate::types::Nanos;

/// Tracks the REF schedule and the spatially contiguous refresh pointer for
/// one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{DramConfig, Nanos, RefreshEngine};
///
/// let cfg = DramConfig::builder().rows_per_bank(64).build();
/// let mut refresh = RefreshEngine::new(&cfg);
/// assert!(!refresh.is_due(Nanos::ZERO));
/// assert!(refresh.is_due(cfg.timing.t_refi));
/// let group = refresh.perform(cfg.timing.t_refi);
/// assert_eq!(group.rows, 0..8);
/// ```
#[derive(Debug, Clone)]
pub struct RefreshEngine {
    t_refi: Nanos,
    groups: u32,
    rows_per_group: u32,
    max_postponed: u32,
    order: RefreshOrder,
    /// Position in the sweep sequence (group index for contiguous order).
    sweep_pos: u32,
    /// Deadline of the next (non-postponed) REF.
    next_due: Nanos,
    /// Number of currently postponed REFs (owed to the DRAM).
    postponed: u32,
    /// Total REFs performed.
    refs_done: u64,
}

/// The outcome of one REF command: which rows were refreshed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshedGroup {
    /// Refresh group index.
    pub group: u32,
    /// Dense row range refreshed by this REF.
    pub rows: core::ops::Range<u32>,
}

impl RefreshEngine {
    /// Creates a refresh engine with the pointer at group 0 and the first
    /// REF due at one tREFI.
    pub fn new(config: &DramConfig) -> Self {
        RefreshEngine {
            t_refi: config.timing.t_refi,
            groups: config.refresh_groups(),
            rows_per_group: config.rows_per_refresh_group,
            max_postponed: config.max_postponed_refs,
            order: config.refresh_order,
            sweep_pos: 0,
            next_due: config.timing.t_refi,
            postponed: 0,
            refs_done: 0,
        }
    }

    /// Whether a REF is due at `now` (its deadline has passed). Postponed
    /// REFs are owed but not due until the (pushed-out) deadline arrives;
    /// they are then repaid back-to-back as a batch (Appendix B).
    pub fn is_due(&self, now: Nanos) -> bool {
        now >= self.next_due
    }

    /// Whether any postponed REFs are owed.
    pub fn owed(&self) -> u32 {
        self.postponed
    }

    /// Deadline of the next scheduled REF.
    pub fn next_due(&self) -> Nanos {
        self.next_due
    }

    /// The group the next REF will refresh.
    pub fn next_group(&self) -> u32 {
        match self.order {
            RefreshOrder::Contiguous => self.sweep_pos,
            RefreshOrder::Strided(stride) => {
                ((u64::from(self.sweep_pos) * u64::from(stride)) % u64::from(self.groups)) as u32
            }
        }
    }

    /// Total REFs performed so far.
    pub fn refs_done(&self) -> u64 {
        self.refs_done
    }

    /// Postpones the currently due REF (Appendix B).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::PostponeLimitExceeded`] if the configured
    /// postponement budget is exhausted.
    pub fn postpone(&mut self) -> Result<(), DramError> {
        if self.postponed >= self.max_postponed {
            return Err(DramError::PostponeLimitExceeded {
                max: self.max_postponed,
            });
        }
        self.postponed += 1;
        self.next_due += self.t_refi;
        Ok(())
    }

    /// Performs one REF at `now`: advances the refresh pointer and returns
    /// the refreshed group. If REFs were postponed, this repays one owed
    /// REF without moving the deadline (so the batch drains back-to-back);
    /// otherwise the next deadline moves one tREFI later.
    pub fn perform(&mut self, _now: Nanos) -> RefreshedGroup {
        let group = self.next_group();
        let rows = (group * self.rows_per_group)..((group + 1) * self.rows_per_group);
        self.sweep_pos = (self.sweep_pos + 1) % self.groups;
        self.refs_done += 1;
        if self.postponed > 0 {
            self.postponed -= 1;
        } else {
            self.next_due += self.t_refi;
        }
        RefreshedGroup { group, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(max_postponed: u32) -> (DramConfig, RefreshEngine) {
        let cfg = DramConfig::builder()
            .rows_per_bank(64)
            .max_postponed_refs(max_postponed)
            .build();
        let e = RefreshEngine::new(&cfg);
        (cfg, e)
    }

    #[test]
    fn ref_due_every_trefi() {
        let (cfg, mut e) = engine(0);
        let t = cfg.timing.t_refi;
        assert!(!e.is_due(t - Nanos::new(1)));
        assert!(e.is_due(t));
        e.perform(t);
        assert!(!e.is_due(t));
        assert!(e.is_due(t * 2));
    }

    #[test]
    fn pointer_walks_contiguously_and_wraps() {
        let (cfg, mut e) = engine(0);
        let mut now = Nanos::ZERO;
        for i in 0..16u32 {
            now += cfg.timing.t_refi;
            let g = e.perform(now);
            assert_eq!(g.group, i % 8);
            assert_eq!(g.rows.start, (i % 8) * 8);
        }
        assert_eq!(e.refs_done(), 16);
    }

    #[test]
    fn postponement_respects_limit() {
        let (_, mut e) = engine(2);
        assert!(e.postpone().is_ok());
        assert!(e.postpone().is_ok());
        let err = e.postpone().unwrap_err();
        assert!(matches!(err, DramError::PostponeLimitExceeded { max: 2 }));
        assert_eq!(e.owed(), 2);
    }

    #[test]
    fn postponed_refs_are_repaid_as_a_batch() {
        // Appendix B: postpone 2 REFs → a batch of 3 REFs at the deadline.
        let (cfg, mut e) = engine(2);
        let t = cfg.timing.t_refi;
        e.postpone().unwrap(); // deadline 2·tREFI
        e.postpone().unwrap(); // deadline 3·tREFI
        assert!(!e.is_due(Nanos::ZERO));
        assert!(!e.is_due(t * 2));
        let batch_time = t * 3;
        assert!(e.is_due(batch_time));
        // Three REFs drain back-to-back at the deadline.
        e.perform(batch_time);
        assert!(e.is_due(batch_time), "owed REFs keep the deadline hot");
        assert_eq!(e.owed(), 1);
        e.perform(batch_time);
        assert!(e.is_due(batch_time));
        e.perform(batch_time);
        assert_eq!(e.owed(), 0);
        assert!(!e.is_due(batch_time));
        assert_eq!(e.next_due(), t * 4);
    }

    #[test]
    fn postponement_allows_up_to_201_acts_between_refs() {
        // Appendix B: with 2 postponed REFs an attacker gets up to ~201
        // activations between refresh batches (3 tREFI of ACT slots).
        let cfg = DramConfig::paper_baseline();
        let acts = 3 * cfg.timing.acts_per_trefi();
        assert_eq!(acts, 201);
    }
}
