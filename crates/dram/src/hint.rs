//! Cache-prefetch hints for the simulation hot path.
//!
//! The per-ACT state the simulators touch — PRAC counters, victim
//! pressure, aggressor epochs — is spread across tens of megabytes of
//! row-indexed arrays, so a workload that hashes rows across the full
//! bank turns every simulated ACT into a handful of dependent cache
//! misses. The batched request pipeline knows the `(bank, row)` of
//! upcoming requests ahead of time; these hints let it start those loads
//! early so the misses overlap instead of serializing.

/// Requests that the cache line holding `value` be brought into all cache
/// levels. Purely a performance hint: it never faults, never changes
/// observable state, and compiles to nothing on architectures without a
/// stable prefetch primitive.
#[inline(always)]
pub fn prefetch_read<T>(value: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint with no memory effects; any
    // address is allowed, and `value` is a valid reference besides.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            (value as *const T).cast::<i8>(),
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = value;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_no_op_semantically() {
        let v = vec![1u32, 2, 3];
        prefetch_read(&v[0]);
        prefetch_read(&v[2]);
        assert_eq!(v, [1, 2, 3]);
    }
}
