//! # moat-dram — DDR5 + PRAC + ABO substrate
//!
//! The DRAM-side substrate for the MOAT reproduction: DDR5 timing
//! parameters per the revised JESD79-5C specification, a functional bank
//! model with Per-Row Activation Counters (PRAC), the spatially contiguous
//! refresh engine, the ALERT Back-Off (ABO) protocol state machine, the
//! ground-truth Rowhammer security ledger, and the [`MitigationEngine`]
//! trait that mitigation designs (MOAT, Panopticon, ...) implement.
//!
//! ## Example: hammering a bank
//!
//! ```
//! use moat_dram::{Bank, DramConfig, Nanos, RowId, SecurityLedger};
//!
//! let cfg = DramConfig::builder().rows_per_bank(1024).build();
//! let mut bank = Bank::new(&cfg);
//! let mut ledger = SecurityLedger::new(&cfg);
//! let mut now = Nanos::ZERO;
//! for _ in 0..100 {
//!     bank.activate(RowId::new(10), now)?;
//!     ledger.on_activate(RowId::new(10));
//!     now += cfg.timing.t_rc;
//! }
//! assert_eq!(bank.counter(RowId::new(10)).get(), 100);
//! assert_eq!(ledger.pressure(RowId::new(11)), 100);
//! # Ok::<(), moat_dram::DramError>(())
//! ```
//!
//! The companion crates build on this substrate: `moat-core` implements the
//! MOAT engine, `moat-trackers` the Panopticon baselines, and `moat-sim`
//! the security and performance simulators.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abo;
mod bank;
mod config;
mod error;
mod hint;
mod ledger;
mod mapping;
mod mitigation;
mod refresh;
pub mod testing;
mod timing;
mod types;

pub use abo::{AboLevel, AboPhase, AboProtocol, EpisodeSchedule};
pub use bank::Bank;
pub use config::{DramConfig, DramConfigBuilder, RefreshOrder};
pub use error::DramError;
pub use hint::prefetch_read;
pub use ledger::SecurityLedger;
pub use mapping::{AddressMapping, DramAddress};
pub use mitigation::{
    EngineFault, IntegrityReport, MitigationEngine, NullEngine, RefMitigationMode,
};
pub use refresh::{RefreshEngine, RefreshedGroup};
pub use timing::DramTiming;
pub use types::{ActCount, BankId, Nanos, RowId};
