//! DRAM organization parameters and builder (Table 3 of the paper).

use crate::timing::DramTiming;
use crate::types::Nanos;

/// The order in which the refresh sweep visits groups.
///
/// The paper's safe counter-reset scheme (§4.3) *depends* on spatially
/// contiguous refresh: only then are the trailing rows of the most recent
/// group the sole rows whose victims are not yet refreshed. A strided
/// order — common in designs that interleave refresh for bank-level
/// concerns — reopens the Fig. 7(a) straddling window even with the
/// shadow counters in place (see the `ablation` experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefreshOrder {
    /// Groups refreshed in ascending row order (the paper's §4.3 scheme).
    #[default]
    Contiguous,
    /// Groups visited with the given stride (must be coprime with the
    /// group count to cover every group once per tREFW).
    Strided(u32),
}

/// Static organization of the simulated memory system.
///
/// Defaults follow Table 3: 32 banks per sub-channel, 2 sub-channels,
/// 64 Ki rows per bank, 8 KiB rows, refresh in 8192 spatially contiguous
/// groups of 8 rows, and a Rowhammer blast radius of 2 (four victims per
/// aggressor).
///
/// Use [`DramConfig::builder`] to customize:
///
/// ```
/// use moat_dram::DramConfig;
///
/// let cfg = DramConfig::builder()
///     .rows_per_bank(1 << 14)
///     .banks_per_subchannel(8)
///     .build();
/// assert_eq!(cfg.rows_per_bank, 1 << 14);
/// assert_eq!(cfg.refresh_groups(), (1 << 14) / 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Timing parameters.
    pub timing: DramTiming,
    /// Rows per bank (default 65536).
    pub rows_per_bank: u32,
    /// Banks per sub-channel (default 32).
    pub banks_per_subchannel: u16,
    /// Sub-channels per rank (default 2).
    pub subchannels: u16,
    /// Row size in bytes (default 8 KiB).
    pub row_bytes: u32,
    /// Rows per refresh group (default 8; 64 Ki rows / 8 = 8192 groups).
    pub rows_per_refresh_group: u32,
    /// Rowhammer blast radius: victims on each side of an aggressor
    /// (default 2, i.e. 4 victim rows, §2.2 "Mitigation-Rate").
    pub blast_radius: u32,
    /// Maximum number of REF commands the controller may postpone
    /// (Appendix B uses 2; 0 disables postponement).
    pub max_postponed_refs: u32,
    /// Order in which the refresh sweep visits groups.
    pub refresh_order: RefreshOrder,
}

impl DramConfig {
    /// The paper's baseline configuration (Table 3).
    pub const fn paper_baseline() -> Self {
        DramConfig {
            timing: DramTiming::ddr5_prac(),
            rows_per_bank: 65_536,
            banks_per_subchannel: 32,
            subchannels: 2,
            row_bytes: 8 * 1024,
            rows_per_refresh_group: 8,
            blast_radius: 2,
            max_postponed_refs: 0,
            refresh_order: RefreshOrder::Contiguous,
        }
    }

    /// Starts building a configuration from the paper baseline.
    pub fn builder() -> DramConfigBuilder {
        DramConfigBuilder {
            config: Self::paper_baseline(),
        }
    }

    /// Number of refresh groups per bank.
    pub const fn refresh_groups(&self) -> u32 {
        self.rows_per_bank / self.rows_per_refresh_group
    }

    /// Number of victim rows affected by one aggressor (2 × blast radius,
    /// fewer at the bank edges).
    pub const fn victims_per_aggressor(&self) -> u32 {
        2 * self.blast_radius
    }

    /// Convenience accessor for tREFI.
    pub const fn t_refi(&self) -> Nanos {
        self.timing.t_refi
    }

    /// Convenience accessor for tRC.
    pub const fn t_rc(&self) -> Nanos {
        self.timing.t_rc
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// Builder for [`DramConfig`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct DramConfigBuilder {
    config: DramConfig,
}

impl DramConfigBuilder {
    /// Sets the timing parameters.
    pub fn timing(mut self, timing: DramTiming) -> Self {
        self.config.timing = timing;
        self
    }

    /// Sets the number of rows per bank.
    ///
    /// # Panics
    ///
    /// Panics at [`build`](Self::build) time if the row count is not a
    /// multiple of the refresh-group size.
    pub fn rows_per_bank(mut self, rows: u32) -> Self {
        self.config.rows_per_bank = rows;
        self
    }

    /// Sets the number of banks per sub-channel.
    pub fn banks_per_subchannel(mut self, banks: u16) -> Self {
        self.config.banks_per_subchannel = banks;
        self
    }

    /// Sets the number of sub-channels.
    pub fn subchannels(mut self, subchannels: u16) -> Self {
        self.config.subchannels = subchannels;
        self
    }

    /// Sets the refresh-group size in rows.
    pub fn rows_per_refresh_group(mut self, rows: u32) -> Self {
        self.config.rows_per_refresh_group = rows;
        self
    }

    /// Sets the Rowhammer blast radius.
    pub fn blast_radius(mut self, radius: u32) -> Self {
        self.config.blast_radius = radius;
        self
    }

    /// Sets the maximum number of postponable REF commands.
    pub fn max_postponed_refs(mut self, refs: u32) -> Self {
        self.config.max_postponed_refs = refs;
        self
    }

    /// Sets the refresh sweep order.
    pub fn refresh_order(mut self, order: RefreshOrder) -> Self {
        self.config.refresh_order = order;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_bank` is zero or not divisible by
    /// `rows_per_refresh_group`, or if `blast_radius` is zero.
    pub fn build(self) -> DramConfig {
        let c = self.config;
        assert!(c.rows_per_bank > 0, "rows_per_bank must be non-zero");
        assert!(
            c.rows_per_refresh_group > 0
                && c.rows_per_bank.is_multiple_of(c.rows_per_refresh_group),
            "rows_per_bank ({}) must be a multiple of rows_per_refresh_group ({})",
            c.rows_per_bank,
            c.rows_per_refresh_group
        );
        assert!(c.blast_radius > 0, "blast_radius must be non-zero");
        if let RefreshOrder::Strided(stride) = c.refresh_order {
            assert!(
                stride > 0 && gcd(stride, c.refresh_groups()) == 1,
                "stride ({stride}) must be coprime with the group count ({})",
                c.refresh_groups()
            );
        }
        c
    }
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table3() {
        let c = DramConfig::paper_baseline();
        assert_eq!(c.rows_per_bank, 65_536);
        assert_eq!(c.banks_per_subchannel, 32);
        assert_eq!(c.subchannels, 2);
        assert_eq!(c.row_bytes, 8 * 1024);
        assert_eq!(c.refresh_groups(), 8192);
        assert_eq!(c.victims_per_aggressor(), 4);
    }

    #[test]
    fn builder_customizes() {
        let c = DramConfig::builder()
            .rows_per_bank(1024)
            .banks_per_subchannel(4)
            .blast_radius(1)
            .max_postponed_refs(2)
            .build();
        assert_eq!(c.rows_per_bank, 1024);
        assert_eq!(c.banks_per_subchannel, 4);
        assert_eq!(c.victims_per_aggressor(), 2);
        assert_eq!(c.max_postponed_refs, 2);
    }

    #[test]
    #[should_panic(expected = "multiple of rows_per_refresh_group")]
    fn builder_rejects_unaligned_groups() {
        let _ = DramConfig::builder().rows_per_bank(100).build();
    }

    #[test]
    #[should_panic(expected = "blast_radius")]
    fn builder_rejects_zero_radius() {
        let _ = DramConfig::builder().blast_radius(0).build();
    }

    #[test]
    fn strided_order_accepted_when_coprime() {
        let c = DramConfig::builder()
            .rows_per_bank(64)
            .refresh_order(RefreshOrder::Strided(3))
            .build();
        assert_eq!(c.refresh_order, RefreshOrder::Strided(3));
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn strided_order_rejects_non_coprime() {
        // 64 rows / 8 per group = 8 groups; stride 2 shares a factor.
        let _ = DramConfig::builder()
            .rows_per_bank(64)
            .refresh_order(RefreshOrder::Strided(2))
            .build();
    }
}
