//! Test harnesses for [`MitigationEngine`] implementors.
//!
//! Every engine promises the horizon invariant documented on
//! [`MitigationEngine::min_acts_to_alert`]; this module provides one
//! generic, engine-agnostic replay that checks it, so each engine's
//! proptest is a few lines of sequence generation plus a call to
//! [`assert_horizon_sound`] instead of a bespoke replay loop.

use crate::mitigation::MitigationEngine;
use crate::types::{ActCount, RowId};

/// How often (in ACTs) the replay interleaves a REF group and a
/// REF-time mitigation opportunity. Prime-ish spacings so the
/// substrate events drift across any periodic structure in the
/// generated ACT sequence.
const REF_EVERY: u64 = 61;
const MITIGATE_EVERY: u64 = 17;

/// Rows refreshed per interleaved REF group.
const REF_GROUP: u32 = 8;

/// Replays `acts` through `engine` exactly as a bank would — per-row
/// counter increments, interleaved REF groups, REF-time and ALERT-time
/// mitigations with the engine's own reset policy — and asserts the
/// horizon invariant at every step: whenever the engine promises `n`
/// via [`MitigationEngine::min_acts_to_alert`], `alert_pending` must
/// stay false until at least `n` further ACTs have completed.
///
/// The promise is sampled before *every* ACT and all outstanding
/// promises are checked simultaneously (an alert after `s` total ACTs
/// must satisfy `s >= t + n_t` for every earlier sample point `t`), so
/// a bound that is sound one step at a time but overpromises across
/// multiple steps still fails. Row indices in `acts` are taken modulo
/// `rows_per_bank`.
///
/// # Panics
///
/// If the engine alerts earlier than any outstanding promise allowed.
pub fn assert_horizon_sound<E: MitigationEngine>(
    engine: &mut E,
    acts: &[RowId],
    rows_per_bank: u32,
) {
    assert!(rows_per_bank > 0, "need at least one row");
    let mut counters = vec![0u32; rows_per_bank as usize];
    // The earliest total-ACT count at which an alert would not violate
    // any promise sampled so far.
    let mut earliest_alert: u64 = 0;
    let mut completed: u64 = 0;
    let mut next_ref_row: u32 = 0;

    for &act in acts {
        let row = RowId::new(act.index() % rows_per_bank);

        // Sample the promise this engine makes right now.
        let promise = engine.min_acts_to_alert();
        earliest_alert = earliest_alert.max(completed.saturating_add(promise));

        counters[row.as_usize()] = counters[row.as_usize()].saturating_add(1);
        engine.on_precharge_update(row, ActCount::new(counters[row.as_usize()]));
        completed += 1;

        if engine.alert_pending() {
            assert!(
                completed >= earliest_alert,
                "{}: alert after {completed} ACTs violates a horizon promise \
                 (no alert was possible before {earliest_alert} ACTs)",
                engine.name(),
            );
            drain_alert(engine, &mut counters);
            earliest_alert = 0;
        }

        if completed.is_multiple_of(MITIGATE_EVERY) {
            mitigate_one(engine, &mut counters, |e| e.select_ref_mitigation());
        }

        if completed.is_multiple_of(REF_EVERY) {
            let lo = next_ref_row.min(rows_per_bank - 1);
            let hi = (lo + REF_GROUP).min(rows_per_bank);
            engine.on_refresh_group(lo..hi, &mut |r: RowId| {
                ActCount::new(counters[r.as_usize()])
            });
            if engine.resets_counters_on_refresh() {
                for c in &mut counters[lo as usize..hi as usize] {
                    *c = 0;
                }
            }
            next_ref_row = if hi >= rows_per_bank { 0 } else { hi };
        }
    }
}

/// Services a pending ALERT the way the simulator's episode loop does:
/// repeated ALERT-time mitigations until the engine stops requesting
/// them (bounded, so a buggy engine cannot hang the test).
fn drain_alert<E: MitigationEngine>(engine: &mut E, counters: &mut [u32]) {
    for _ in 0..4096 {
        if !engine.alert_pending() {
            return;
        }
        if !mitigate_one(engine, counters, |e| e.select_alert_mitigation()) {
            return;
        }
    }
}

/// Performs one mitigation round-trip (select → counter reset per the
/// engine's policy → completion), returning whether a row was selected.
fn mitigate_one<E: MitigationEngine>(
    engine: &mut E,
    counters: &mut [u32],
    select: impl FnOnce(&mut E) -> Option<RowId>,
) -> bool {
    match select(engine) {
        Some(victim) => {
            if engine.resets_counter_on_mitigation() {
                if let Some(c) = counters.get_mut(victim.as_usize()) {
                    *c = 0;
                }
            }
            engine.on_mitigation_complete(victim);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::NullEngine;

    #[test]
    fn null_engine_passes_the_replay() {
        let acts: Vec<RowId> = (0..500u32).map(|i| RowId::new(i % 13)).collect();
        assert_horizon_sound(&mut NullEngine::new(), &acts, 64);
    }

    #[test]
    #[should_panic(expected = "violates a horizon promise")]
    fn overpromising_engine_is_caught() {
        /// Promises a 10-ACT horizon but alerts after 3 ACTs.
        #[derive(Debug)]
        struct Liar(u32);
        impl MitigationEngine for Liar {
            fn name(&self) -> &str {
                "liar"
            }
            fn on_precharge_update(&mut self, _row: RowId, _counter: ActCount) {
                self.0 += 1;
            }
            fn alert_pending(&self) -> bool {
                self.0 >= 3
            }
            fn min_acts_to_alert(&self) -> u64 {
                10
            }
            fn select_ref_mitigation(&mut self) -> Option<RowId> {
                None
            }
            fn sram_bytes_per_bank(&self) -> usize {
                0
            }
            fn as_any(&self) -> &dyn core::any::Any {
                self
            }
        }
        let acts: Vec<RowId> = (0..16u32).map(RowId::new).collect();
        assert_horizon_sound(&mut Liar(0), &acts, 64);
    }
}
