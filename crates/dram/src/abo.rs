//! The ALERT Back-Off (ABO) protocol state machine (§2.6, Fig. 2, Fig. 8).
//!
//! When the DRAM asserts ALERT, the memory controller may continue normal
//! operation for 180 ns, then must stall the sub-channel and issue `L` RFM
//! commands (350 ns each), where `L` is the *ABO mitigation level* (MR71
//! op[1:0], legal values 1, 2, 4). The specification also mandates a minimum
//! of `L` activations between consecutive ALERT assertions — the slack the
//! Ratchet attack (§5) exploits.

use core::fmt;

use crate::error::DramError;
use crate::timing::DramTiming;
use crate::types::Nanos;

/// The ABO mitigation level (MR71 op\[1:0\]); JEDEC legal values are 1, 2, 4.
///
/// The level determines both the number of RFMs issued per ALERT and the
/// minimum number of activations between consecutive ALERTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AboLevel {
    /// One RFM per ALERT (tALERT = 530 ns) — MOAT's default (§6.1).
    #[default]
    L1,
    /// Two RFMs per ALERT.
    L2,
    /// Four RFMs per ALERT (tALERT = 1580 ns).
    L4,
}

impl AboLevel {
    /// All legal levels, in increasing order.
    pub const ALL: [AboLevel; 3] = [AboLevel::L1, AboLevel::L2, AboLevel::L4];

    /// The numeric level `L` (number of RFMs; min inter-ALERT ACTs).
    pub const fn as_u8(self) -> u8 {
        match self {
            AboLevel::L1 => 1,
            AboLevel::L2 => 2,
            AboLevel::L4 => 4,
        }
    }

    /// Parses a numeric level.
    ///
    /// # Errors
    ///
    /// Returns `None` for values other than 1, 2, or 4 (the JEDEC legal
    /// values).
    pub const fn from_u8(level: u8) -> Option<AboLevel> {
        match level {
            1 => Some(AboLevel::L1),
            2 => Some(AboLevel::L2),
            4 => Some(AboLevel::L4),
            _ => None,
        }
    }
}

impl fmt::Display for AboLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.as_u8())
    }
}

/// The pre-resolved arithmetic of one complete ALERT episode: assert →
/// 180 ns activity window → stall → `L` back-to-back RFMs.
///
/// Both simulators resolve episode boundaries against this schedule
/// instead of stepping the [`AboProtocol`] through `L` individual
/// [`start_rfm`](AboProtocol::start_rfm) round-trips: once the activity
/// window has closed, the whole RFM phase is a single addition (see
/// [`AboProtocol::complete_episode`]), bit-identical to the stepped form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeSchedule {
    /// Normal-operation window after assertion (180 ns).
    act_window: Nanos,
    /// RFMs issued per episode (the level `L`).
    rfms: u8,
    /// Total stall time of the RFM phase: `L` × tRFM.
    rfm_total: Nanos,
}

impl EpisodeSchedule {
    /// Pre-resolves the episode arithmetic for `level` under `timing`.
    pub const fn new(level: AboLevel, timing: DramTiming) -> Self {
        EpisodeSchedule {
            act_window: timing.t_abo_act_window,
            rfms: level.as_u8(),
            rfm_total: Nanos::new(timing.t_rfm.as_u64() * level.as_u8() as u64),
        }
    }

    /// The stall point of an episode asserted at `assert_at`.
    pub fn stall_at(&self, assert_at: Nanos) -> Nanos {
        assert_at + self.act_window
    }

    /// Completion time of the RFM phase when the stall begins at
    /// `stall_start`.
    pub fn done_at(&self, stall_start: Nanos) -> Nanos {
        stall_start + self.rfm_total
    }

    /// RFMs issued per episode.
    pub const fn rfms(&self) -> u8 {
        self.rfms
    }

    /// Total episode duration (tALERT): activity window plus RFM phase.
    pub fn t_alert(&self) -> Nanos {
        self.act_window + self.rfm_total
    }
}

/// Where the protocol currently is within an ALERT episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AboPhase {
    /// No ALERT in progress.
    Idle,
    /// ALERT asserted; normal operation permitted until `stall_at`.
    ActWindow {
        /// Time at which the controller must stop normal operations.
        stall_at: Nanos,
    },
    /// RFM phase: the sub-channel is stalled.
    Rfm {
        /// RFMs still to issue (including any in flight).
        remaining: u8,
        /// Completion time of the RFM currently executing.
        busy_until: Nanos,
    },
}

/// The ABO protocol state machine for one sub-channel.
///
/// # Examples
///
/// ```
/// use moat_dram::{AboLevel, AboProtocol, DramTiming, Nanos};
///
/// let timing = DramTiming::ddr5_prac();
/// let mut abo = AboProtocol::new(AboLevel::L1, timing);
/// assert!(abo.can_assert());
/// let stall_at = abo.assert_alert(Nanos::ZERO)?;
/// assert_eq!(stall_at, Nanos::new(180));
/// let done = abo.start_rfm(stall_at)?;
/// assert_eq!(done, Nanos::new(530)); // tALERT for level 1
/// // A fresh ALERT now needs 1 activation first (level-1 spacing):
/// assert!(!abo.can_assert());
/// abo.on_act();
/// assert!(abo.can_assert());
/// # Ok::<(), moat_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AboProtocol {
    level: AboLevel,
    timing: DramTiming,
    /// Pre-resolved episode arithmetic for this level.
    schedule: EpisodeSchedule,
    phase: AboPhase,
    /// Activations since the last ALERT episode completed.
    acts_since_episode: u64,
    /// Whether any ALERT has completed yet (the spacing rule only binds
    /// between consecutive ALERTs).
    had_episode: bool,
    alerts: u64,
    rfms: u64,
}

impl AboProtocol {
    /// Creates an idle protocol instance.
    pub fn new(level: AboLevel, timing: DramTiming) -> Self {
        AboProtocol {
            level,
            timing,
            schedule: EpisodeSchedule::new(level, timing),
            phase: AboPhase::Idle,
            acts_since_episode: 0,
            had_episode: false,
            alerts: 0,
            rfms: 0,
        }
    }

    /// The configured mitigation level.
    pub fn level(&self) -> AboLevel {
        self.level
    }

    /// Current protocol phase.
    pub fn phase(&self) -> AboPhase {
        self.phase
    }

    /// Total ALERTs asserted.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Total RFMs issued.
    pub fn rfms(&self) -> u64 {
        self.rfms
    }

    /// The pre-resolved episode schedule for this level.
    pub fn schedule(&self) -> EpisodeSchedule {
        self.schedule
    }

    /// Activations recorded since the last ALERT episode completed.
    pub fn acts_since_episode(&self) -> u64 {
        self.acts_since_episode
    }

    /// Records a normal activation on the sub-channel (used to satisfy the
    /// minimum inter-ALERT activation rule). Saturating: a counter pinned
    /// at `u64::MAX` keeps satisfying the spacing rule instead of wrapping
    /// to zero and spuriously blocking ALERTs.
    pub fn on_act(&mut self) {
        self.acts_since_episode = self.acts_since_episode.saturating_add(1);
    }

    /// Records `n` activations at once — the batched form of
    /// [`on_act`](Self::on_act) used when a whole event-free run of ACTs
    /// is issued in one step. Saturating like `on_act`.
    pub fn on_acts(&mut self, n: u64) {
        self.acts_since_episode = self.acts_since_episode.saturating_add(n);
    }

    /// Whether an ALERT may be asserted now: the protocol must be idle and,
    /// if an ALERT episode has already completed, at least `L` activations
    /// must have occurred since.
    pub fn can_assert(&self) -> bool {
        matches!(self.phase, AboPhase::Idle)
            && (!self.had_episode || self.acts_since_episode >= u64::from(self.level.as_u8()))
    }

    /// Asserts ALERT at `now`. Returns the time at which the controller
    /// must stall (now + 180 ns).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AlertNotPermitted`] if
    /// [`can_assert`](Self::can_assert) is false.
    pub fn assert_alert(&mut self, now: Nanos) -> Result<Nanos, DramError> {
        if !self.can_assert() {
            return Err(DramError::AlertNotPermitted);
        }
        let stall_at = now + self.timing.t_abo_act_window;
        self.phase = AboPhase::ActWindow { stall_at };
        self.alerts = self.alerts.saturating_add(1);
        Ok(stall_at)
    }

    /// Executes the entire RFM phase of the current episode as one
    /// arithmetic step: `L` back-to-back RFMs starting at `now`, per the
    /// pre-resolved [`EpisodeSchedule`]. Returns the completion time,
    /// `now + L·tRFM` — exactly what chaining `L`
    /// [`start_rfm`](Self::start_rfm) calls from `now` would return, with
    /// identical end state (idle, spacing counter reset, totals bumped).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AlertNotPermitted`] unless the protocol is in
    /// the activity window of an episode and the window has elapsed
    /// (`now ≥ stall_at`). A partially drained RFM phase must be finished
    /// with `start_rfm`.
    pub fn complete_episode(&mut self, now: Nanos) -> Result<Nanos, DramError> {
        match self.phase {
            AboPhase::ActWindow { stall_at } if now >= stall_at => {
                self.rfms = self.rfms.saturating_add(u64::from(self.schedule.rfms()));
                self.phase = AboPhase::Idle;
                self.had_episode = true;
                self.acts_since_episode = 0;
                Ok(self.schedule.done_at(now))
            }
            _ => Err(DramError::AlertNotPermitted),
        }
    }

    /// Issues the next RFM at `now`. Returns its completion time. When the
    /// final RFM completes, the protocol returns to idle and the
    /// inter-ALERT activation counter resets.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AlertNotPermitted`] if no ALERT is in progress,
    /// if the activity window has not yet elapsed, or if the previous RFM
    /// is still executing.
    pub fn start_rfm(&mut self, now: Nanos) -> Result<Nanos, DramError> {
        let remaining = match self.phase {
            AboPhase::ActWindow { stall_at } => {
                if now < stall_at {
                    return Err(DramError::AlertNotPermitted);
                }
                self.level.as_u8()
            }
            AboPhase::Rfm {
                remaining,
                busy_until,
            } => {
                if remaining == 0 || now < busy_until {
                    return Err(DramError::AlertNotPermitted);
                }
                remaining
            }
            AboPhase::Idle => return Err(DramError::AlertNotPermitted),
        };
        let busy_until = now + self.timing.t_rfm;
        self.rfms = self.rfms.saturating_add(1);
        let remaining = remaining - 1;
        if remaining == 0 {
            // Episode completes when this RFM finishes; record it now so the
            // caller can simply advance the clock to `busy_until`.
            self.phase = AboPhase::Idle;
            self.had_episode = true;
            self.acts_since_episode = 0;
        } else {
            self.phase = AboPhase::Rfm {
                remaining,
                busy_until,
            };
        }
        Ok(busy_until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abo(level: AboLevel) -> AboProtocol {
        AboProtocol::new(level, DramTiming::ddr5_prac())
    }

    #[test]
    fn level_roundtrip() {
        for l in AboLevel::ALL {
            assert_eq!(AboLevel::from_u8(l.as_u8()), Some(l));
        }
        assert_eq!(AboLevel::from_u8(3), None);
        assert_eq!(AboLevel::from_u8(0), None);
        assert_eq!(AboLevel::L4.to_string(), "L4");
    }

    #[test]
    fn level1_episode_is_530ns() {
        let mut a = abo(AboLevel::L1);
        let stall = a.assert_alert(Nanos::new(1000)).unwrap();
        assert_eq!(stall, Nanos::new(1180));
        let done = a.start_rfm(stall).unwrap();
        assert_eq!(done, Nanos::new(1530));
        assert_eq!(a.phase(), AboPhase::Idle);
        assert_eq!(a.alerts(), 1);
        assert_eq!(a.rfms(), 1);
    }

    #[test]
    fn level4_issues_four_rfms() {
        let mut a = abo(AboLevel::L4);
        let stall = a.assert_alert(Nanos::ZERO).unwrap();
        let mut t = stall;
        for i in 0..4 {
            t = a.start_rfm(t).unwrap();
            if i < 3 {
                assert!(matches!(a.phase(), AboPhase::Rfm { .. }));
            }
        }
        assert_eq!(t, Nanos::new(180 + 4 * 350));
        assert_eq!(a.phase(), AboPhase::Idle);
        assert_eq!(a.rfms(), 4);
    }

    #[test]
    fn rfm_cannot_start_during_act_window() {
        let mut a = abo(AboLevel::L1);
        let stall = a.assert_alert(Nanos::ZERO).unwrap();
        assert!(a.start_rfm(stall - Nanos::new(1)).is_err());
        assert!(a.start_rfm(stall).is_ok());
    }

    #[test]
    fn inter_alert_spacing_enforced() {
        for level in AboLevel::ALL {
            let mut a = abo(level);
            let stall = a.assert_alert(Nanos::ZERO).unwrap();
            let mut t = stall;
            for _ in 0..level.as_u8() {
                t = a.start_rfm(t).unwrap();
            }
            // Immediately re-asserting is forbidden.
            assert!(!a.can_assert());
            assert!(a.assert_alert(t).is_err());
            // After L activations it becomes legal again.
            for _ in 0..level.as_u8() {
                assert!(!a.can_assert() || level.as_u8() == 0);
                a.on_act();
            }
            assert!(a.can_assert(), "level {level} should allow after L acts");
        }
    }

    #[test]
    fn first_alert_needs_no_prior_acts() {
        let mut a = abo(AboLevel::L4);
        assert!(a.can_assert());
        assert!(a.assert_alert(Nanos::ZERO).is_ok());
    }

    #[test]
    fn double_assert_rejected() {
        let mut a = abo(AboLevel::L1);
        a.assert_alert(Nanos::ZERO).unwrap();
        assert!(a.assert_alert(Nanos::new(10)).is_err());
    }

    #[test]
    fn rfm_without_alert_rejected() {
        let mut a = abo(AboLevel::L1);
        assert!(a.start_rfm(Nanos::ZERO).is_err());
    }

    #[test]
    fn complete_episode_matches_stepped_rfms() {
        // The flattened episode is bit-identical to chaining L start_rfm
        // calls: same completion time, same end state, same totals.
        for level in AboLevel::ALL {
            let mut stepped = abo(level);
            let mut flat = abo(level);
            for episode in 0..3u64 {
                let at = Nanos::new(10_000 * (episode + 1));
                let stall_s = stepped.assert_alert(at).unwrap();
                let stall_f = flat.assert_alert(at).unwrap();
                assert_eq!(stall_s, stall_f);
                let mut t = stall_s;
                for _ in 0..level.as_u8() {
                    t = stepped.start_rfm(t).unwrap();
                }
                let done = flat.complete_episode(stall_f).unwrap();
                assert_eq!(done, t, "level {level}, episode {episode}");
                assert_eq!(flat.phase(), stepped.phase());
                assert_eq!(flat.rfms(), stepped.rfms());
                assert_eq!(flat.acts_since_episode(), stepped.acts_since_episode());
                for _ in 0..level.as_u8() {
                    stepped.on_act();
                    flat.on_act();
                }
            }
        }
    }

    #[test]
    fn complete_episode_requires_closed_window() {
        let mut a = abo(AboLevel::L4);
        assert!(a.complete_episode(Nanos::ZERO).is_err(), "idle");
        let stall = a.assert_alert(Nanos::ZERO).unwrap();
        assert!(
            a.complete_episode(stall - Nanos::new(1)).is_err(),
            "window still open"
        );
        // A partially drained RFM phase must be finished per-step.
        let t = a.start_rfm(stall).unwrap();
        assert!(a.complete_episode(t).is_err(), "mid-RFM");
    }

    #[test]
    fn schedule_matches_timing_table() {
        let t = DramTiming::ddr5_prac();
        for level in AboLevel::ALL {
            let s = EpisodeSchedule::new(level, t);
            assert_eq!(s.rfms(), level.as_u8());
            assert_eq!(s.t_alert(), t.t_alert(level.as_u8()));
            assert_eq!(s.stall_at(Nanos::new(100)), Nanos::new(280));
            assert_eq!(
                s.done_at(Nanos::new(280)),
                Nanos::new(280 + 350 * u64::from(level.as_u8()))
            );
            assert_eq!(abo(level).schedule(), s);
        }
    }

    #[test]
    fn act_counter_saturates_instead_of_wrapping() {
        // Regression: a multi-hour virtual-time run keeps calling on_act /
        // on_acts; the spacing counter must pin at u64::MAX rather than
        // wrap to zero (which would spuriously forbid the next ALERT).
        let mut a = abo(AboLevel::L4);
        let stall = a.assert_alert(Nanos::ZERO).unwrap();
        a.complete_episode(stall).unwrap();
        a.on_acts(u64::MAX);
        assert!(a.can_assert());
        a.on_act(); // would wrap to 0 without saturation
        a.on_acts(u64::MAX);
        assert!(a.can_assert(), "saturated counter keeps satisfying spacing");
        assert_eq!(a.acts_since_episode(), u64::MAX);
    }

    #[test]
    fn episode_totals_accumulate_across_many_episodes() {
        // The alerts/rfms totals ride saturating adds; drive enough
        // episodes through both the stepped and flattened paths to pin
        // the accounting (one alert, L RFMs each).
        let mut a = abo(AboLevel::L2);
        let mut now = Nanos::ZERO;
        for i in 0..10_000u64 {
            let stall = a.assert_alert(now).unwrap();
            now = if i % 2 == 0 {
                a.complete_episode(stall).unwrap()
            } else {
                let t = a.start_rfm(stall).unwrap();
                a.start_rfm(t).unwrap()
            };
            a.on_acts(2);
            now += Nanos::new(104);
        }
        assert_eq!(a.alerts(), 10_000);
        assert_eq!(a.rfms(), 20_000);
    }
}
