//! A DRAM bank with PRAC per-row activation counters.
//!
//! The bank is a *functional* model: it holds the per-row counter array,
//! enforces the tRC activation spacing, and performs counter updates at the
//! precharge that follows each activation (the paper runs a closed-page
//! policy, so every ACT is followed by an automatic precharge). Data values
//! are not modelled — Rowhammer analysis needs only command and counter
//! behaviour.

use core::ops::Range;

use crate::config::DramConfig;
use crate::error::DramError;
use crate::types::{ActCount, Nanos, RowId};

/// One DRAM bank: per-row PRAC counters plus activation timing state.
///
/// # Examples
///
/// ```
/// use moat_dram::{Bank, DramConfig, Nanos, RowId};
///
/// let cfg = DramConfig::builder().rows_per_bank(1024).build();
/// let mut bank = Bank::new(&cfg);
/// let count = bank.activate(RowId::new(3), Nanos::ZERO)?;
/// assert_eq!(count.get(), 1);
/// // A second ACT must wait at least tRC:
/// assert!(bank.activate(RowId::new(3), Nanos::new(10)).is_err());
/// # Ok::<(), moat_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    config: DramConfig,
    /// In-array PRAC counter per row.
    counters: Vec<u32>,
    /// Earliest time the next ACT may issue.
    next_ready: Nanos,
    /// Total activations performed on this bank.
    total_acts: u64,
}

impl Bank {
    /// Creates a bank with all PRAC counters at zero.
    pub fn new(config: &DramConfig) -> Self {
        Bank {
            config: *config,
            counters: vec![0; config.rows_per_bank as usize],
            next_ready: Nanos::ZERO,
            total_acts: 0,
        }
    }

    /// The configuration this bank was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Activates `row` at time `now`, performing the closed-page
    /// activate/precharge pair and the PRAC read-modify-write.
    ///
    /// Returns the *post-increment* counter value, i.e. the value the
    /// precharge logic sees when deciding whether to request an ALERT
    /// (§2.6: "the ALERT signal is ... triggered during the precharge
    /// operation").
    ///
    /// # Errors
    ///
    /// Returns [`DramError::TimingViolation`] if `now` is earlier than
    /// tRC after the previous activation, and [`DramError::RowOutOfRange`]
    /// if `row` is outside the bank.
    #[inline]
    pub fn activate(&mut self, row: RowId, now: Nanos) -> Result<ActCount, DramError> {
        self.check_row(row)?;
        if now < self.next_ready {
            return Err(DramError::TimingViolation {
                earliest: self.next_ready,
                attempted: now,
            });
        }
        self.next_ready = now + self.config.timing.t_rc;
        self.total_acts += 1;
        let c = &mut self.counters[row.as_usize()];
        *c = c.saturating_add(1);
        Ok(ActCount::new(*c))
    }

    /// Earliest time the next ACT may issue.
    #[inline]
    pub fn next_ready(&self) -> Nanos {
        self.next_ready
    }

    /// Hints the cache to load the PRAC counter of `row`. Called by the
    /// batched issue pipeline ahead of the actual
    /// [`activate`](Self::activate); out-of-range rows are ignored (the
    /// activation itself still reports the error).
    #[inline]
    pub fn prefetch_counter(&self, row: RowId) {
        if let Some(c) = self.counters.get(row.as_usize()) {
            crate::hint::prefetch_read(c);
        }
    }

    /// Blocks the bank until `until` (used when the sub-channel is stalled
    /// by an ALERT or a REF occupies the bank).
    pub fn occupy_until(&mut self, until: Nanos) {
        self.next_ready = self.next_ready.max(until);
    }

    /// Reads the in-array PRAC counter of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn counter(&self, row: RowId) -> ActCount {
        ActCount::new(self.counters[row.as_usize()])
    }

    /// Overwrites the PRAC counter of `row` (used for randomized
    /// initialization of Panopticon-style designs, §3.3).
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn set_counter(&mut self, row: RowId, value: ActCount) {
        self.counters[row.as_usize()] = value.get();
    }

    /// Resets the PRAC counter of `row` to zero (e.g. after the extra
    /// activation MOAT spends to clear an aggressor's counter).
    ///
    /// # Panics
    ///
    /// Panics if `row` is outside the bank.
    pub fn reset_counter(&mut self, row: RowId) {
        self.counters[row.as_usize()] = 0;
    }

    /// Resets the PRAC counters of every row in `rows` (refresh-time reset).
    pub fn reset_counters_in(&mut self, rows: Range<u32>) {
        for r in rows {
            self.counters[r as usize] = 0;
        }
    }

    /// The dense row range covered by refresh group `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside `0..refresh_groups()`.
    pub fn group_rows(&self, group: u32) -> Range<u32> {
        assert!(
            group < self.config.refresh_groups(),
            "group {group} out of range"
        );
        let per = self.config.rows_per_refresh_group;
        (group * per)..((group + 1) * per)
    }

    /// Total number of activations performed on this bank.
    pub fn total_acts(&self) -> u64 {
        self.total_acts
    }

    /// Number of rows in the bank.
    pub fn rows(&self) -> u32 {
        self.config.rows_per_bank
    }

    fn check_row(&self, row: RowId) -> Result<(), DramError> {
        if row.index() < self.config.rows_per_bank {
            Ok(())
        } else {
            Err(DramError::RowOutOfRange {
                row,
                rows_per_bank: self.config.rows_per_bank,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DramConfig {
        DramConfig::builder().rows_per_bank(64).build()
    }

    #[test]
    fn activation_increments_counter() {
        let mut b = Bank::new(&small());
        let mut now = Nanos::ZERO;
        for i in 1..=5u32 {
            let c = b.activate(RowId::new(7), now).unwrap();
            assert_eq!(c.get(), i);
            now += b.config().timing.t_rc;
        }
        assert_eq!(b.counter(RowId::new(7)).get(), 5);
        assert_eq!(b.total_acts(), 5);
    }

    #[test]
    fn trc_is_enforced() {
        let mut b = Bank::new(&small());
        b.activate(RowId::new(0), Nanos::ZERO).unwrap();
        let err = b.activate(RowId::new(1), Nanos::new(51)).unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { .. }));
        assert!(b.activate(RowId::new(1), Nanos::new(52)).is_ok());
    }

    #[test]
    fn row_bounds_checked() {
        let mut b = Bank::new(&small());
        let err = b.activate(RowId::new(64), Nanos::ZERO).unwrap_err();
        assert!(matches!(err, DramError::RowOutOfRange { .. }));
    }

    #[test]
    fn occupy_until_blocks() {
        let mut b = Bank::new(&small());
        b.occupy_until(Nanos::new(1000));
        assert!(b.activate(RowId::new(0), Nanos::new(999)).is_err());
        assert!(b.activate(RowId::new(0), Nanos::new(1000)).is_ok());
    }

    #[test]
    fn group_rows_partition_bank() {
        let b = Bank::new(&small());
        // 64 rows / 8 per group = 8 groups.
        let mut seen = [false; 64];
        for g in 0..8 {
            for r in b.group_rows(g) {
                assert!(!seen[r as usize]);
                seen[r as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counter_reset_operations() {
        let mut b = Bank::new(&small());
        let mut now = Nanos::ZERO;
        for r in 0..16u32 {
            b.activate(RowId::new(r), now).unwrap();
            now += b.config().timing.t_rc;
        }
        b.reset_counter(RowId::new(0));
        assert_eq!(b.counter(RowId::new(0)), ActCount::ZERO);
        b.reset_counters_in(8..16);
        for r in 8..16u32 {
            assert_eq!(b.counter(RowId::new(r)), ActCount::ZERO);
        }
        assert_eq!(b.counter(RowId::new(1)).get(), 1);
    }

    #[test]
    fn set_counter_for_randomized_init() {
        let mut b = Bank::new(&small());
        b.set_counter(RowId::new(3), ActCount::new(200));
        assert_eq!(b.counter(RowId::new(3)).get(), 200);
    }
}
