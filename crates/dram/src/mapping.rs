//! Physical-address to DRAM-coordinate mapping.
//!
//! The paper's baseline uses a CoffeeLake-style mapping (Table 3): bank bits
//! are XOR-hashed with row bits so that consecutive cache lines spread
//! across banks, which is the behaviour attackers must invert to colocate
//! aggressors in one bank. The exact Intel function is undocumented; we
//! implement the widely reverse-engineered XOR structure (rank/bank bits
//! XORed with higher-order row bits), which preserves the property the
//! experiments need: a fixed, invertible addr→(subchannel, bank, row)
//! function with bank interleaving.

use crate::config::DramConfig;
use crate::types::{BankId, RowId};

/// A fully decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramAddress {
    /// Sub-channel index.
    pub subchannel: u16,
    /// Bank within the sub-channel.
    pub bank: BankId,
    /// Row within the bank.
    pub row: RowId,
    /// Byte column within the row.
    pub column: u32,
}

/// XOR-hashed address mapping in the CoffeeLake style.
///
/// Bit layout (from LSB): column within the 8 KiB row, then sub-channel,
/// then bank, then row; the bank bits are XORed with the low row bits.
///
/// # Examples
///
/// ```
/// use moat_dram::{AddressMapping, DramConfig};
///
/// let map = AddressMapping::new(&DramConfig::paper_baseline());
/// let addr = 0x1234_5678u64;
/// let coord = map.decode(addr);
/// assert_eq!(map.encode(coord), addr & map.address_mask());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    column_bits: u32,
    subchannel_bits: u32,
    bank_bits: u32,
    row_bits: u32,
}

impl AddressMapping {
    /// Builds the mapping for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any of the configured sizes is not a power of two.
    pub fn new(config: &DramConfig) -> Self {
        let column_bits = log2_exact(config.row_bytes as u64, "row_bytes");
        let subchannel_bits = log2_exact(u64::from(config.subchannels), "subchannels");
        let bank_bits = log2_exact(u64::from(config.banks_per_subchannel), "banks");
        let row_bits = log2_exact(u64::from(config.rows_per_bank), "rows_per_bank");
        AddressMapping {
            column_bits,
            subchannel_bits,
            bank_bits,
            row_bits,
        }
    }

    /// Total number of address bits the mapping covers.
    pub fn address_bits(&self) -> u32 {
        self.column_bits + self.subchannel_bits + self.bank_bits + self.row_bits
    }

    /// Mask of the physical-address bits the mapping decodes.
    pub fn address_mask(&self) -> u64 {
        (1u64 << self.address_bits()) - 1
    }

    /// Decodes a physical address into DRAM coordinates.
    pub fn decode(&self, addr: u64) -> DramAddress {
        let addr = addr & self.address_mask();
        let column = (addr & ((1 << self.column_bits) - 1)) as u32;
        let mut rest = addr >> self.column_bits;
        let subchannel = (rest & ((1 << self.subchannel_bits) - 1)) as u16;
        rest >>= self.subchannel_bits;
        let raw_bank = (rest & ((1 << self.bank_bits) - 1)) as u32;
        rest >>= self.bank_bits;
        let row = (rest & ((1 << self.row_bits) - 1)) as u32;
        // CoffeeLake-style bank hash: bank bits XORed with the low row bits.
        let bank = raw_bank ^ (row & ((1 << self.bank_bits) - 1));
        DramAddress {
            subchannel,
            bank: BankId::new(bank as u16),
            row: RowId::new(row),
            column,
        }
    }

    /// Encodes DRAM coordinates back into a physical address (the inverse
    /// of [`decode`](Self::decode)).
    pub fn encode(&self, coord: DramAddress) -> u64 {
        let row = u64::from(coord.row.index());
        let bank_hash = u64::from(coord.bank.index()) ^ (row & ((1 << self.bank_bits) - 1));
        let mut addr = row;
        addr = (addr << self.bank_bits) | bank_hash;
        addr = (addr << self.subchannel_bits) | u64::from(coord.subchannel);
        addr = (addr << self.column_bits) | u64::from(coord.column);
        addr
    }
}

fn log2_exact(v: u64, what: &str) -> u32 {
    assert!(v.is_power_of_two(), "{what} ({v}) must be a power of two");
    v.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&DramConfig::paper_baseline())
    }

    #[test]
    fn decode_encode_roundtrip() {
        let m = mapping();
        for addr in [0u64, 0x1000, 0xdead_beef, 0x7fff_ffff, m.address_mask()] {
            let masked = addr & m.address_mask();
            assert_eq!(m.encode(m.decode(addr)), masked, "addr {addr:#x}");
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = mapping();
        let coord = DramAddress {
            subchannel: 1,
            bank: BankId::new(17),
            row: RowId::new(0xbeef),
            column: 0x123,
        };
        assert_eq!(m.decode(m.encode(coord)), coord);
    }

    #[test]
    fn bank_interleaving_spreads_consecutive_rows() {
        // Same raw bank bits, consecutive rows → different hashed banks.
        let m = mapping();
        let row_stride = 1u64 << (m.column_bits + m.subchannel_bits + m.bank_bits);
        let a = m.decode(0);
        let b = m.decode(row_stride);
        assert_ne!(a.bank, b.bank, "bank hash should differ across rows");
        assert_eq!(a.row.index() + 1, b.row.index());
    }

    #[test]
    fn paper_baseline_address_bits() {
        // 8 KiB column (13) + 1 subchannel + 5 bank + 16 row = 35 bits = 32 GB.
        let m = mapping();
        assert_eq!(m.address_bits(), 35);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let cfg = DramConfig::builder()
            .rows_per_bank(24)
            .rows_per_refresh_group(8)
            .build();
        let _ = AddressMapping::new(&cfg);
    }
}
