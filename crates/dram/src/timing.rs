//! DDR5 timing parameters (Table 1 of the paper, revised JESD79-5C values
//! that account for PRAC's read-modify-write of the per-row counter).
//!
//! The paper's security arithmetic is a counting argument over these values:
//! at tRC = 52 ns and tRFC = 410 ns, at most ⌊(3900 − 410) / 52⌋ = 67
//! activations fit in one tREFI.

use crate::types::Nanos;

/// DDR5 / PRAC timing parameters.
///
/// Defaults are the revised JESD79-5C values from Table 1 of the paper.
/// All fields are public: this is a passive parameter block in the C-struct
/// spirit, and experiments routinely sweep individual values.
///
/// # Examples
///
/// ```
/// use moat_dram::DramTiming;
///
/// let t = DramTiming::ddr5_prac();
/// assert_eq!(t.acts_per_trefi(), 67);
/// assert_eq!(t.refs_per_trefw(), 8205);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// Time for performing an ACT (12 ns).
    pub t_act: Nanos,
    /// Time to precharge an open row (36 ns with PRAC counter update).
    pub t_pre: Nanos,
    /// Minimum time a row must be kept open (16 ns).
    pub t_ras: Nanos,
    /// Time between successive ACTs to the same bank (52 ns).
    pub t_rc: Nanos,
    /// Refresh window: every row refreshed once per tREFW (32 ms).
    pub t_refw: Nanos,
    /// Time between successive REF commands (3900 ns).
    pub t_refi: Nanos,
    /// Execution time of a REF command (410 ns).
    pub t_rfc: Nanos,
    /// Normal-operation window after ALERT assertion before the MC must
    /// stall (180 ns).
    pub t_abo_act_window: Nanos,
    /// Execution time of one RFM (Refresh Management) command (350 ns),
    /// equivalent to refreshing 5 rows.
    pub t_rfm: Nanos,
}

impl DramTiming {
    /// Revised DDR5 specifications per JESD79-5C (Table 1), including the
    /// PRAC changes (tPRE 16→36 ns, tRAS 32→16 ns, tRC 48→52 ns).
    pub const fn ddr5_prac() -> Self {
        DramTiming {
            t_act: Nanos::new(12),
            t_pre: Nanos::new(36),
            t_ras: Nanos::new(16),
            t_rc: Nanos::new(52),
            t_refw: Nanos::new(32_000_000),
            t_refi: Nanos::new(3_900),
            t_rfc: Nanos::new(410),
            t_abo_act_window: Nanos::new(180),
            t_rfm: Nanos::new(350),
        }
    }

    /// Maximum number of activations that fit in one tREFI, accounting for
    /// the tRFC spent on refresh: ⌊(tREFI − tRFC) / tRC⌋ = 67 for the
    /// default parameters (§2.2).
    pub const fn acts_per_trefi(&self) -> u64 {
        (self.t_refi.as_u64() - self.t_rfc.as_u64()) / self.t_rc.as_u64()
    }

    /// Number of REF commands per refresh window: ⌊tREFW / tREFI⌋.
    ///
    /// The DRAM array is divided into 8192 refresh groups, so with the
    /// default 8205 REFs per window every group is refreshed at least once.
    pub const fn refs_per_trefw(&self) -> u64 {
        self.t_refw.as_u64() / self.t_refi.as_u64()
    }

    /// Duration of a complete ALERT for a given ABO mitigation level:
    /// 180 ns of permitted activity plus `level` RFMs of 350 ns each
    /// (530 ns for level 1, §2.6).
    pub const fn t_alert(&self, level: u8) -> Nanos {
        Nanos::new(self.t_abo_act_window.as_u64() + self.t_rfm.as_u64() * level as u64)
    }

    /// Minimum time between two ALERT assertions for a given ABO level
    /// (Appendix A): `180 ns + (tRFM + tRC) · L`.
    pub const fn t_alert_to_alert(&self, level: u8) -> Nanos {
        Nanos::new(
            self.t_abo_act_window.as_u64()
                + (self.t_rfm.as_u64() + self.t_rc.as_u64()) * level as u64,
        )
    }

    /// Minimum number of activations an attacker can force between two
    /// consecutive ALERT assertions (Fig. 8): 3 during the 180 ns window
    /// plus `level` mandated activations after the RFMs, i.e. `3 + L`.
    pub const fn min_acts_between_alerts(&self, level: u8) -> u64 {
        self.t_abo_act_window.as_u64() / self.t_rc.as_u64() + level as u64
    }

    /// The usable attack window within a refresh period (Appendix A uses
    /// tREFW minus the aggregate refresh time ≈ 28.64 ms).
    pub const fn attack_window(&self) -> Nanos {
        let refresh_time = self.refs_per_trefw() * self.t_rfc.as_u64();
        Nanos::new(self.t_refw.as_u64() - refresh_time)
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr5_prac()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let t = DramTiming::ddr5_prac();
        assert_eq!(t.t_act, Nanos::new(12));
        assert_eq!(t.t_pre, Nanos::new(36));
        assert_eq!(t.t_ras, Nanos::new(16));
        assert_eq!(t.t_rc, Nanos::new(52));
        assert_eq!(t.t_refw, Nanos::from_millis(32));
        assert_eq!(t.t_refi, Nanos::new(3900));
        assert_eq!(t.t_rfc, Nanos::new(410));
    }

    #[test]
    fn derived_acts_per_trefi_is_67() {
        // §2.2: "given tRC of 52ns, we can perform a maximum of 67
        // activations within tREFI".
        assert_eq!(DramTiming::ddr5_prac().acts_per_trefi(), 67);
    }

    #[test]
    fn alert_duration_level1_is_530ns() {
        // §2.6: "the minimum duration of ALERT is 530ns".
        let t = DramTiming::ddr5_prac();
        assert_eq!(t.t_alert(1), Nanos::new(530));
        assert_eq!(t.t_alert(4), Nanos::new(180 + 4 * 350));
    }

    #[test]
    fn min_acts_between_alerts_matches_fig8() {
        // Fig. 8: level 1 → 4 ACTs, level 4 → 7 ACTs.
        let t = DramTiming::ddr5_prac();
        assert_eq!(t.min_acts_between_alerts(1), 4);
        assert_eq!(t.min_acts_between_alerts(2), 5);
        assert_eq!(t.min_acts_between_alerts(4), 7);
    }

    #[test]
    fn alert_to_alert_spacing_matches_appendix_a() {
        // Appendix A: tA2A = 180ns + (350 + 52)·L.
        let t = DramTiming::ddr5_prac();
        assert_eq!(t.t_alert_to_alert(1), Nanos::new(582));
        assert_eq!(t.t_alert_to_alert(2), Nanos::new(984));
        assert_eq!(t.t_alert_to_alert(4), Nanos::new(1788));
    }

    #[test]
    fn attack_window_close_to_28_64_ms() {
        // Appendix A: H(N) must stay below ~28.64 ms (tREFW − refresh time).
        let w = DramTiming::ddr5_prac().attack_window();
        let ms = w.as_u64() as f64 / 1e6;
        assert!((28.0..29.0).contains(&ms), "attack window was {ms} ms");
    }

    #[test]
    fn refs_per_trefw_covers_8192_groups() {
        assert!(DramTiming::ddr5_prac().refs_per_trefw() >= 8192);
    }
}
