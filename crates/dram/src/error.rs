//! Error types for the DRAM substrate.

use core::fmt;

use crate::types::{Nanos, RowId};

/// Errors returned by the DRAM bank and protocol state machines.
///
/// All variants indicate a protocol violation by the caller (the memory
/// controller or an attacker model), never an internal inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramError {
    /// An ACT was issued before the bank's tRC window elapsed.
    TimingViolation {
        /// Earliest legal issue time.
        earliest: Nanos,
        /// The attempted issue time.
        attempted: Nanos,
    },
    /// A row index outside `rows_per_bank` was addressed.
    RowOutOfRange {
        /// The offending row.
        row: RowId,
        /// Number of rows in the bank.
        rows_per_bank: u32,
    },
    /// ALERT was asserted while the ABO protocol forbids it (already in an
    /// ALERT, or the minimum inter-ALERT activations have not occurred).
    AlertNotPermitted,
    /// A REF postponement beyond the configured maximum was requested.
    PostponeLimitExceeded {
        /// Configured maximum number of postponable REFs.
        max: u32,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramError::TimingViolation {
                earliest,
                attempted,
            } => write!(
                f,
                "activation at {attempted} violates tRC (earliest legal time {earliest})"
            ),
            DramError::RowOutOfRange { row, rows_per_bank } => {
                write!(f, "{row} is outside the bank ({rows_per_bank} rows)")
            }
            DramError::AlertNotPermitted => {
                write!(f, "ALERT assertion not permitted by the ABO protocol state")
            }
            DramError::PostponeLimitExceeded { max } => {
                write!(f, "cannot postpone more than {max} REF commands")
            }
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: [DramError; 4] = [
            DramError::TimingViolation {
                earliest: Nanos::new(52),
                attempted: Nanos::new(10),
            },
            DramError::RowOutOfRange {
                row: RowId::new(70000),
                rows_per_bank: 65536,
            },
            DramError::AlertNotPermitted,
            DramError::PostponeLimitExceeded { max: 2 },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
