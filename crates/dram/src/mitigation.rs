//! The interface between the DRAM substrate and a Rowhammer mitigation
//! engine.
//!
//! PRAC+ABO is a *framework* (§2.7): the DRAM provides per-row counters and
//! the ALERT back-off signal, but when to select a row for mitigation and
//! when to assert ALERT is up to the implementation. Every design evaluated
//! by the paper — MOAT, Panopticon (both variants), and the no-op baseline —
//! implements [`MitigationEngine`], and the simulators drive them through
//! this trait, so all designs are compared under identical substrate rules.
//!
//! Engines are *per bank*: each bank instantiates its own engine, matching
//! the paper's per-bank trackers (queue per bank, CTA/CMA per bank).

use core::any::Any;
use core::fmt;
use core::ops::Range;

use crate::types::{ActCount, RowId};

/// How an engine consumes the REF-time mitigation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefMitigationMode {
    /// Gradual mitigation (§2.2, Appendix B): one victim row can be
    /// refreshed per REF; a full aggressor mitigation takes
    /// [`ops_per_mitigation`](MitigationEngine::ops_per_mitigation) REF
    /// slots. This is the DDR4-style default used for all designs in the
    /// paper's main evaluation.
    Gradual,
    /// Drain-all-entries-on-REF (Appendix B): each REF is repurposed to
    /// fully mitigate up to two aggressor rows, and ALERTs are issued until
    /// the tracker is empty.
    DrainAll,
}

/// An injected single-event fault in an engine's private tracking state.
///
/// Real in-DRAM trackers are SRAM subject to single-event upsets; the
/// fault-injection layer (crate `moat-faults`) uses these to measure how
/// much counter corruption each design tolerates before its
/// [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert) bound goes
/// unsound. Interpretation is engine-specific — `slot` indexes whatever
/// per-bank tracking structure the design keeps (MOAT's tracked-row
/// table, Panopticon's FIFO queue) and is taken modulo its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineFault {
    /// Flip one bit of the counter (or row tag) held in tracking slot
    /// `slot`. `bit` is taken modulo the field width.
    FlipCounterBit {
        /// Index into the engine's tracking structure.
        slot: usize,
        /// Bit position to flip.
        bit: u32,
    },
    /// A pending ALERT request is silently dropped (the assertion never
    /// reaches the memory controller).
    LoseAlert,
    /// Tracking slot `slot` is stuck: its contents revert to an inert
    /// value (a cleared counter, a repeated queue entry), losing whatever
    /// the engine had recorded there.
    StuckEntry {
        /// Index into the engine's tracking structure.
        slot: usize,
    },
}

/// What an armed integrity guard found when it verified an engine's
/// tracking state against its parity/ECC shadow.
///
/// Returned by [`MitigationEngine::integrity_check`]. `detected` counts
/// shadow mismatches found this check; `repaired` counts the subset the
/// engine restored exactly from the shadow (ECC-correctable state: a
/// flipped queue tag, a lost ALERT flag); `untrusted` lists the rows
/// whose counts the engine can no longer vouch for — the caller's
/// conservative fallback proactively mitigates those, which resets them
/// to a trusted (zero) state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Whether a guard shadow was armed at all. `false` means the check
    /// was a no-op (unguarded engine), not a clean bill of health.
    pub guarded: bool,
    /// Shadow mismatches detected by this check.
    pub detected: u32,
    /// Mismatches repaired exactly from the shadow.
    pub repaired: u32,
    /// Rows whose tracked counts remain untrusted after repair.
    pub untrusted: Vec<RowId>,
}

impl IntegrityReport {
    /// The report of an unguarded engine: nothing checked.
    pub fn unguarded() -> Self {
        IntegrityReport::default()
    }

    /// The report of an armed guard that found every shadow consistent.
    pub fn clean() -> Self {
        IntegrityReport {
            guarded: true,
            ..IntegrityReport::default()
        }
    }

    /// Whether this check found any corruption.
    pub fn corrupt(&self) -> bool {
        self.detected > 0
    }
}

/// A Rowhammer mitigation engine for one DRAM bank.
///
/// The simulator calls the methods in this order per event:
///
/// 1. [`on_precharge_update`](Self::on_precharge_update) after every
///    activation (the PRAC counter update happens in the precharge).
/// 2. [`alert_pending`](Self::alert_pending) is polled; if true and the ABO
///    protocol permits, the simulator asserts ALERT and, per RFM, calls
///    [`select_alert_mitigation`](Self::select_alert_mitigation) followed by
///    [`on_mitigation_complete`](Self::on_mitigation_complete).
/// 3. At every REF, [`on_refresh_group`](Self::on_refresh_group) is called
///    *before* the bank resets the group's counters (if
///    [`resets_counters_on_refresh`](Self::resets_counters_on_refresh)), so
///    safe-reset designs can snapshot the counters they must preserve.
/// 4. When the REF-time mitigation budget allows starting a new aggressor
///    mitigation, [`select_ref_mitigation`](Self::select_ref_mitigation) is
///    called; its completion is signalled via `on_mitigation_complete`.
///
/// # Minimal contract for new engines
///
/// The trait splits into a small **required core** and a set of
/// **defaulted capability surfaces**. A third-party engine implements
/// exactly five methods plus the `as_any` downcasting hook:
///
/// * [`name`](Self::name) — a cached, allocation-free label;
/// * [`on_precharge_update`](Self::on_precharge_update) — observe one
///   ACT (this is the only place `alert_pending` may flip to true);
/// * [`alert_pending`](Self::alert_pending) — the ALERT request flag;
/// * [`select_ref_mitigation`](Self::select_ref_mitigation) — the next
///   aggressor worth mitigating (also the default ALERT-time choice);
/// * [`sram_bytes_per_bank`](Self::sram_bytes_per_bank) — the §6.5
///   storage cost the comparison tables report;
/// * [`as_any`](Self::as_any) — return `self` (one line; it cannot be
///   defaulted because `Any` needs the concrete type).
///
/// Everything else defaults to a conservative, always-sound behavior
/// and is opted into per capability:
///
/// * **Horizon hint** — [`min_acts_to_alert`](Self::min_acts_to_alert)
///   defaults to one ACT of guarantee while idle. Override it with a
///   design-specific sound bound to unlock batched simulation speed;
///   every override must satisfy the horizon invariant spelled out on
///   the method.
/// * **Mitigation plumbing** —
///   [`select_alert_mitigation`](Self::select_alert_mitigation)
///   delegates to `select_ref_mitigation`, and
///   [`on_mitigation_complete`](Self::on_mitigation_complete) /
///   [`on_refresh_group`](Self::on_refresh_group) are no-ops. Engines
///   whose bookkeeping must observe completions or REF boundaries
///   (queue pops, §4.3 snapshots) override them.
/// * **Substrate policy** — `resets_counters_on_refresh`,
///   `resets_counter_on_mitigation`, `ops_per_mitigation`,
///   `ref_mitigation_mode`, `effective_counter`.
/// * **Fault & guard surface** — [`apply_fault`](Self::apply_fault),
///   [`guard_arm`](Self::guard_arm),
///   [`integrity_check`](Self::integrity_check),
///   [`scrub_resync`](Self::scrub_resync) default to "no faultable
///   state / unguarded"; implement them to participate in the
///   `repro faults` and `repro recover` sweeps.
///
/// The registry in `moat-trackers` (`registry` module) is the single
/// place a new engine is wired into the sweeps, the arena, and the
/// fleet; see its docs for the name → constructor × config-grid shape.
pub trait MitigationEngine: fmt::Debug {
    /// A short human-readable name (e.g. `"moat-L1-ath64-eth32"`).
    ///
    /// Engines whose name depends on their configuration should format it
    /// once at construction and return the cached slice — this method may
    /// be called from reporting paths inside simulation loops and must
    /// not allocate.
    fn name(&self) -> &str;

    /// The PRAC counter of `row` has been updated during precharge;
    /// `counter` is the post-increment in-array value.
    fn on_precharge_update(&mut self, row: RowId, counter: ActCount);

    /// Whether the engine is requesting an ALERT. The simulator polls this
    /// after every event and asserts ALERT as soon as the ABO protocol
    /// permits.
    fn alert_pending(&self) -> bool;

    /// A sound lower bound on how many further activations this bank can
    /// absorb before [`alert_pending`](Self::alert_pending) could become
    /// true — the *event-horizon* hint the batched security simulator
    /// sizes attacker runs with.
    ///
    /// # The horizon invariant
    ///
    /// A return value of `n` guarantees that `alert_pending` stays false
    /// until at least `n` further activations have completed: for every
    /// `k < n`, after `k` more ACTs (on any rows) the flag is still
    /// false. The bound must be **sound** (never overestimate) but may be
    /// arbitrarily conservative; `0` means "no guarantee" (in particular
    /// when an ALERT is already pending), and the batched simulator then
    /// falls back to stepping one ACT at a time. Since the flag can only
    /// flip inside [`on_precharge_update`](Self::on_precharge_update),
    /// returning `1` while the flag is false is always sound — the
    /// default. Engines that never alert may return `u64::MAX`.
    ///
    /// The guarantee assumes counters mutate only through this trait's
    /// hooks and the substrate's refresh/mitigation resets; out-of-band
    /// writes (e.g. [`Bank::set_counter`](crate::Bank::set_counter) after
    /// simulation start) void it.
    fn min_acts_to_alert(&self) -> u64 {
        u64::from(!self.alert_pending())
    }

    /// Selects the next aggressor row for proactive (REF-time) mitigation,
    /// or `None` if nothing currently warrants mitigation.
    fn select_ref_mitigation(&mut self) -> Option<RowId>;

    /// Selects the aggressor row to mitigate in one RFM of an ALERT
    /// episode, or `None` if the engine has nothing to mitigate (the RFM is
    /// then spent idle). Defaults to the engine's REF-time choice — for
    /// most trackers the hottest row is the right pick under either
    /// trigger, and only designs that distinguish the two (MOAT's
    /// ALERT-threshold episodes) need to override.
    fn select_alert_mitigation(&mut self) -> Option<RowId> {
        self.select_ref_mitigation()
    }

    /// Mitigation of `row` (victim refreshes, plus counter reset when
    /// [`resets_counter_on_mitigation`](Self::resets_counter_on_mitigation))
    /// has completed. Defaults to a no-op; engines whose bookkeeping must
    /// observe completions (clearing a queue entry, resetting a tracked
    /// count) override it.
    fn on_mitigation_complete(&mut self, _row: RowId) {}

    /// A REF is refreshing `rows`. Called before any counter reset, with
    /// `counter_of` providing the current in-array counter of any row in
    /// the bank (safe-reset designs snapshot the trailing rows, §4.3).
    /// Defaults to a no-op for engines indifferent to REF boundaries.
    fn on_refresh_group(
        &mut self,
        _rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
    }

    /// Whether the bank should reset the PRAC counters of refreshed rows
    /// (reset-on-refresh, §4.3). Panopticon's counters are free-running.
    fn resets_counters_on_refresh(&self) -> bool {
        false
    }

    /// Whether completing an aggressor mitigation resets its PRAC counter
    /// (MOAT spends one extra REF slot to do so).
    fn resets_counter_on_mitigation(&self) -> bool {
        true
    }

    /// REF-slot cost of one full aggressor mitigation under
    /// [`RefMitigationMode::Gradual`]: the number of victim rows plus one
    /// if the counter is also reset (5 for MOAT, 4 for Panopticon, §4.1).
    fn ops_per_mitigation(&self) -> u32 {
        if self.resets_counter_on_mitigation() {
            5
        } else {
            4
        }
    }

    /// How this engine uses REF time.
    fn ref_mitigation_mode(&self) -> RefMitigationMode {
        RefMitigationMode::Gradual
    }

    /// SRAM bytes this design needs per bank (§6.5).
    fn sram_bytes_per_bank(&self) -> usize;

    /// The counter value the engine attributes to `row` given the in-array
    /// value — shadow-aware for safe-reset designs (§4.3).
    fn effective_counter(&self, _row: RowId, in_array: ActCount) -> ActCount {
        in_array
    }

    /// Applies an injected [`EngineFault`] to the engine's private
    /// tracking state, returning whether any state actually changed.
    ///
    /// Implementations must re-establish their internal invariants before
    /// returning (e.g. recompute cached maxima and the pending-alert
    /// flag), but the *horizon* guarantee of
    /// [`min_acts_to_alert`](Self::min_acts_to_alert) is deliberately
    /// **not** restored: a fault is exactly the kind of out-of-band write
    /// that voids it, and the fault-injection layer measures when the
    /// previously promised bound breaks. Engines without faultable state
    /// ignore every fault (the default).
    fn apply_fault(&mut self, _fault: &EngineFault) -> bool {
        false
    }

    /// Arms the engine's parity/ECC shadow over its private tracking
    /// state, returning whether the engine supports guarding at all.
    ///
    /// Once armed, every legitimate state mutation (the trait hooks
    /// above) keeps the shadow in sync, while out-of-band corruption
    /// ([`apply_fault`](Self::apply_fault)) deliberately does not — that
    /// divergence is exactly what
    /// [`integrity_check`](Self::integrity_check) detects. Arming is
    /// idempotent; the default (no guard support) returns `false`.
    fn guard_arm(&mut self) -> bool {
        false
    }

    /// Verifies the engine's tracking state against its armed shadow.
    ///
    /// Repairs what the shadow can restore *exactly* (ECC-correctable
    /// state such as flipped row tags or a dropped ALERT flag) and
    /// reports the rows whose counts remain untrusted — a parity shadow
    /// detects a corrupted count but cannot recover its value, so the
    /// caller applies the conservative fallback (proactive mitigation)
    /// to those rows. Unguarded engines return
    /// [`IntegrityReport::unguarded`] (the default) at zero cost.
    fn integrity_check(&mut self) -> IntegrityReport {
        IntegrityReport::unguarded()
    }

    /// Resynchronizes the engine's tracked counts against the
    /// authoritative in-array counters (`counter_of` reads the bank's
    /// raw per-row counter; safe-reset designs fold in their own §4.3
    /// shadow offsets), restoring any state the scrub can derive — a
    /// desynced count, an ALERT the corrupted counts had suppressed —
    /// and re-arming the shadow over the repaired state. Returns how
    /// many tracking slots the scrub corrected. Unguarded or
    /// scrub-less designs return `0` (the default).
    fn scrub_resync(&mut self, counter_of: &mut dyn FnMut(RowId) -> ActCount) -> u32 {
        let _ = counter_of;
        0
    }

    /// Downcasting hook so adaptive attackers (threat model §2.1: "the
    /// attacker knows the defense algorithm, including which row has been
    /// selected for mitigation") can inspect concrete engine state.
    fn as_any(&self) -> &dyn Any;

    /// The innermost trait object for this engine.
    ///
    /// Type-erased views (e.g. the simulators'
    /// `BankUnitView`) are built through this hook instead of coercing
    /// `&E` directly: for a concrete engine the two are the same, but for
    /// `E = Box<dyn MitigationEngine>` the coercion would stack a second
    /// vtable hop through the forwarding `Box` impl, while `as_dyn`
    /// unwraps straight to the inner object.
    fn as_dyn(&self) -> &dyn MitigationEngine
    where
        Self: Sized,
    {
        self
    }
}

/// Expands to a full [`MitigationEngine`] impl that forwards every
/// method to the pointee.
///
/// The two box impls below used to be ~90 hand-written forwarding
/// methods each, kept in lockstep by review alone; the macro makes the
/// forwarding mechanical so adding a trait method is a one-line change
/// here instead of two copy-paste edits. Only the
/// [`as_dyn`](MitigationEngine::as_dyn) body is caller-supplied — it is
/// the one method whose unwrapping differs between the sized and the
/// erased box.
macro_rules! forward_engine_to_pointee {
    (
        $(#[$attr:meta])*
        impl ($($gens:tt)+) MitigationEngine for $ty:ty;
        as_dyn: |$slf:ident| $as_dyn:expr
    ) => {
        $(#[$attr])*
        impl<$($gens)+> MitigationEngine for $ty {
            fn name(&self) -> &str {
                (**self).name()
            }
            fn on_precharge_update(&mut self, row: RowId, counter: ActCount) {
                (**self).on_precharge_update(row, counter);
            }
            fn alert_pending(&self) -> bool {
                (**self).alert_pending()
            }
            fn min_acts_to_alert(&self) -> u64 {
                (**self).min_acts_to_alert()
            }
            fn select_ref_mitigation(&mut self) -> Option<RowId> {
                (**self).select_ref_mitigation()
            }
            fn select_alert_mitigation(&mut self) -> Option<RowId> {
                (**self).select_alert_mitigation()
            }
            fn on_mitigation_complete(&mut self, row: RowId) {
                (**self).on_mitigation_complete(row);
            }
            fn on_refresh_group(
                &mut self,
                rows: Range<u32>,
                counter_of: &mut dyn FnMut(RowId) -> ActCount,
            ) {
                (**self).on_refresh_group(rows, counter_of);
            }
            fn resets_counters_on_refresh(&self) -> bool {
                (**self).resets_counters_on_refresh()
            }
            fn resets_counter_on_mitigation(&self) -> bool {
                (**self).resets_counter_on_mitigation()
            }
            fn ops_per_mitigation(&self) -> u32 {
                (**self).ops_per_mitigation()
            }
            fn ref_mitigation_mode(&self) -> RefMitigationMode {
                (**self).ref_mitigation_mode()
            }
            fn sram_bytes_per_bank(&self) -> usize {
                (**self).sram_bytes_per_bank()
            }
            fn effective_counter(&self, row: RowId, in_array: ActCount) -> ActCount {
                (**self).effective_counter(row, in_array)
            }
            fn apply_fault(&mut self, fault: &EngineFault) -> bool {
                (**self).apply_fault(fault)
            }
            fn guard_arm(&mut self) -> bool {
                (**self).guard_arm()
            }
            fn integrity_check(&mut self) -> IntegrityReport {
                (**self).integrity_check()
            }
            fn scrub_resync(&mut self, counter_of: &mut dyn FnMut(RowId) -> ActCount) -> u32 {
                (**self).scrub_resync(counter_of)
            }
            fn as_any(&self) -> &dyn Any {
                (**self).as_any()
            }
            fn as_dyn(&self) -> &dyn MitigationEngine {
                let $slf = self;
                $as_dyn
            }
        }
    };
}

forward_engine_to_pointee! {
    /// Forwarding implementation so a boxed concrete engine `Box<E>` is
    /// itself a [`MitigationEngine`].
    ///
    /// Together with the `Box<dyn MitigationEngine>` impl below, this is
    /// what lets the simulators be generic over `E: MitigationEngine` —
    /// monomorphizing and inlining a concrete engine into the per-ACT hot
    /// path — while heterogeneous-engine experiments keep passing boxed
    /// trait objects exactly as before. The impls are split (sized vs.
    /// erased) rather than a single `E: ?Sized` blanket so each can unwrap
    /// to the innermost trait object in [`MitigationEngine::as_dyn`].
    impl (E: MitigationEngine) MitigationEngine for Box<E>;
    as_dyn: |this| (**this).as_dyn()
}

forward_engine_to_pointee! {
    /// Forwarding implementation for the fully erased `Box<dyn
    /// MitigationEngine>` — the boxed-path engine type the simulators
    /// default to. [`MitigationEngine::as_dyn`] returns the *inner* trait
    /// object, so type-erased views dispatch through one vtable, not two.
    impl ('e) MitigationEngine for Box<dyn MitigationEngine + 'e>;
    as_dyn: |this| &**this
}

/// A baseline engine that performs no mitigation at all.
///
/// Useful as the ALERT-free baseline the paper normalizes performance
/// against, and for measuring raw attack pressure.
#[derive(Debug, Clone, Default)]
pub struct NullEngine;

impl NullEngine {
    /// Creates a no-op engine.
    pub fn new() -> Self {
        NullEngine
    }
}

/// `NullEngine` is the minimal-contract engine: the five required
/// methods, `as_any`, and a single capability override (the unbounded
/// horizon of a design that never alerts).
impl MitigationEngine for NullEngine {
    fn name(&self) -> &str {
        "none"
    }

    fn on_precharge_update(&mut self, _row: RowId, _counter: ActCount) {}

    fn alert_pending(&self) -> bool {
        false
    }

    fn min_acts_to_alert(&self) -> u64 {
        u64::MAX // never alerts: the horizon is unbounded
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        None
    }

    fn sram_bytes_per_bank(&self) -> usize {
        0
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_engine_never_alerts() {
        let mut e = NullEngine::new();
        for i in 0..1000u32 {
            e.on_precharge_update(RowId::new(i % 4), ActCount::new(i));
        }
        assert!(!e.alert_pending());
        assert_eq!(e.min_acts_to_alert(), u64::MAX);
        assert_eq!(e.select_ref_mitigation(), None);
        assert_eq!(e.select_alert_mitigation(), None);
        assert_eq!(e.sram_bytes_per_bank(), 0);
        assert_eq!(e.name(), "none");
    }

    #[test]
    fn default_ops_per_mitigation_reflects_counter_reset() {
        let e = NullEngine::new();
        assert!(e.resets_counter_on_mitigation());
        assert_eq!(e.ops_per_mitigation(), 5);
        assert!(!e.resets_counters_on_refresh());
        assert_eq!(e.ref_mitigation_mode(), RefMitigationMode::Gradual);
    }

    /// The minimal contract from the trait docs: a test double
    /// implementing only the required core compiles and inherits sound
    /// defaults for everything else.
    #[derive(Debug)]
    struct Flag(bool);
    impl MitigationEngine for Flag {
        fn name(&self) -> &str {
            "flag"
        }
        fn on_precharge_update(&mut self, _row: RowId, _counter: ActCount) {}
        fn alert_pending(&self) -> bool {
            self.0
        }
        fn select_ref_mitigation(&mut self) -> Option<RowId> {
            Some(RowId::new(7))
        }
        fn sram_bytes_per_bank(&self) -> usize {
            0
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn default_horizon_hint_is_one_act() {
        // A bare impl inherits the always-sound default: one ACT of
        // horizon while idle, none once an ALERT is pending.
        assert_eq!(Flag(false).min_acts_to_alert(), 1);
        assert_eq!(Flag(true).min_acts_to_alert(), 0);
        // The hint forwards through both boxed impls.
        let boxed: Box<dyn MitigationEngine> = Box::new(NullEngine::new());
        assert_eq!(boxed.min_acts_to_alert(), u64::MAX);
        let sized = Box::new(NullEngine::new());
        assert_eq!(MitigationEngine::min_acts_to_alert(&sized), u64::MAX);
    }

    #[test]
    fn as_dyn_unwraps_to_the_innermost_object() {
        let concrete = NullEngine::new();
        // Concrete engine: as_dyn is a plain coercion.
        assert_eq!(concrete.as_dyn().name(), "none");
        // Boxed trait object: as_dyn strips the box, so the returned
        // reference points at the NullEngine itself, not the Box.
        let boxed: Box<dyn MitigationEngine> = Box::new(NullEngine::new());
        let inner = boxed.as_dyn();
        assert_eq!(inner.name(), "none");
        assert!(std::ptr::eq(
            inner as *const dyn MitigationEngine as *const u8,
            boxed.as_any().downcast_ref::<NullEngine>().unwrap() as *const NullEngine as *const u8,
        ));
        // Double boxing unwraps recursively through the sized impl.
        let double: Box<Box<dyn MitigationEngine>> = Box::new(Box::new(NullEngine::new()));
        assert_eq!(double.as_dyn().name(), "none");
    }

    #[test]
    fn guard_hooks_default_to_unguarded_and_forward_through_boxes() {
        let mut e = NullEngine::new();
        assert!(!e.guard_arm(), "no guard support by default");
        let report = e.integrity_check();
        assert_eq!(report, IntegrityReport::unguarded());
        assert!(!report.guarded);
        assert!(!report.corrupt());
        assert_eq!(e.scrub_resync(&mut |_| ActCount::new(0)), 0);

        let mut boxed: Box<dyn MitigationEngine> = Box::new(NullEngine::new());
        assert!(!boxed.guard_arm());
        assert_eq!(boxed.integrity_check(), IntegrityReport::unguarded());
        assert_eq!(boxed.scrub_resync(&mut |_| ActCount::new(0)), 0);
        let mut sized = Box::new(NullEngine::new());
        assert!(!MitigationEngine::guard_arm(&mut sized));
        assert_eq!(
            MitigationEngine::integrity_check(&mut sized),
            IntegrityReport::unguarded()
        );

        assert!(IntegrityReport::clean().guarded);
        assert!(!IntegrityReport::clean().corrupt());
    }

    #[test]
    fn defaulted_mitigation_plumbing_delegates_and_noops() {
        // select_alert_mitigation defaults to the REF-time choice;
        // completion and refresh notifications default to no-ops.
        let mut e = Flag(true);
        assert_eq!(e.select_alert_mitigation(), Some(RowId::new(7)));
        e.on_mitigation_complete(RowId::new(7));
        e.on_refresh_group(0..8, &mut |_| ActCount::new(0));
        assert!(e.alert_pending(), "defaults must not touch engine state");
    }

    #[test]
    fn engine_is_object_safe() {
        let e: Box<dyn MitigationEngine> = Box::new(NullEngine::new());
        assert_eq!(
            e.effective_counter(RowId::new(0), ActCount::new(7)).get(),
            7
        );
        assert!(e.as_any().downcast_ref::<NullEngine>().is_some());
    }
}
