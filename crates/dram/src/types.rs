//! Fundamental newtypes shared across the MOAT workspace.
//!
//! All DRAM timing in the paper is expressed in integral nanoseconds, so the
//! time base is a [`Nanos`] newtype over `u64`. Row/bank identifiers are
//! newtypes so that a row index can never be confused with a bank index or a
//! raw counter value (C-NEWTYPE).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A duration or instant measured in nanoseconds.
///
/// The simulator clock is a monotonically increasing `Nanos` starting at 0.
/// DDR5 timing parameters (tRC, tREFI, ...) are also `Nanos`, so arithmetic
/// between instants and durations stays in one unit system.
///
/// # Examples
///
/// ```
/// use moat_dram::Nanos;
///
/// let t_rc = Nanos::new(52);
/// let start = Nanos::ZERO;
/// assert_eq!(start + t_rc * 3, Nanos::new(156));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero instant / empty duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a `Nanos` from a raw nanosecond count.
    #[inline]
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a `Nanos` from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a `Nanos` from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the value as seconds (lossy, for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Integer division of one duration by another (e.g. how many tRC slots
    /// fit in a tREFI).
    #[inline]
    pub const fn div_duration(self, rhs: Nanos) -> u64 {
        self.0 / rhs.0
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Rem<Nanos> for Nanos {
    type Output = Nanos;
    #[inline]
    fn rem(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 % rhs.0)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl From<u64> for Nanos {
    #[inline]
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

/// Identifies a DRAM row within one bank.
///
/// Row ids are dense indices `0..rows_per_bank` (65536 in the paper's
/// configuration). Adjacency (`row ± 1`) is physical adjacency, which is what
/// Rowhammer blast radius is defined over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(u32);

impl RowId {
    /// Creates a row id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        RowId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the dense index as `usize` for slice indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// The physically adjacent row below, if any.
    #[inline]
    pub fn below(self) -> Option<RowId> {
        self.0.checked_sub(1).map(RowId)
    }

    /// The physically adjacent row above, if it is within `rows_per_bank`.
    #[inline]
    pub fn above(self, rows_per_bank: u32) -> Option<RowId> {
        let next = self.0 + 1;
        (next < rows_per_bank).then_some(RowId(next))
    }

    /// Iterates over the victim rows within `radius` of this aggressor,
    /// clamped to the bank bounds. The aggressor itself is not included.
    ///
    /// # Examples
    ///
    /// ```
    /// use moat_dram::RowId;
    /// let victims: Vec<_> = RowId::new(1).victims(2, 65536).collect();
    /// assert_eq!(victims, vec![RowId::new(0), RowId::new(2), RowId::new(3)]);
    /// ```
    pub fn victims(self, radius: u32, rows_per_bank: u32) -> impl Iterator<Item = RowId> {
        let lo = self.0.saturating_sub(radius);
        let hi = (self.0 + radius).min(rows_per_bank.saturating_sub(1));
        let center = self.0;
        (lo..=hi).filter(move |&r| r != center).map(RowId)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row{}", self.0)
    }
}

impl From<u32> for RowId {
    #[inline]
    fn from(index: u32) -> Self {
        RowId(index)
    }
}

/// Identifies a bank within one sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(u16);

impl BankId {
    /// Creates a bank id from a dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        BankId(index)
    }

    /// Returns the dense index.
    #[inline]
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the dense index as `usize` for slice indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

impl From<u16> for BankId {
    #[inline]
    fn from(index: u16) -> Self {
        BankId(index)
    }
}

/// A PRAC activation-counter value.
///
/// The JEDEC PRAC counter is a per-row in-array counter updated during the
/// precharge that follows each activation. This type wraps the raw count and
/// offers saturating arithmetic so counter handling can never silently wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ActCount(u32);

impl ActCount {
    /// Zero activations.
    pub const ZERO: ActCount = ActCount(0);

    /// Creates a count from a raw value.
    #[inline]
    pub const fn new(count: u32) -> Self {
        ActCount(count)
    }

    /// Returns the raw count.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Increments by one activation (saturating).
    #[inline]
    #[must_use]
    pub const fn incremented(self) -> ActCount {
        ActCount(self.0.saturating_add(1))
    }
}

impl fmt::Display for ActCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for ActCount {
    #[inline]
    fn from(count: u32) -> Self {
        ActCount(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::new(100);
        let b = Nanos::new(52);
        assert_eq!(a + b, Nanos::new(152));
        assert_eq!(a - b, Nanos::new(48));
        assert_eq!(b * 3, Nanos::new(156));
        assert_eq!(a / 2, Nanos::new(50));
        assert_eq!(Nanos::new(3900).div_duration(Nanos::new(52)), 75);
        assert_eq!(a.saturating_sub(Nanos::new(200)), Nanos::ZERO);
        assert_eq!(a.checked_sub(Nanos::new(200)), None);
        assert_eq!(Nanos::from_millis(32), Nanos::new(32_000_000));
        assert_eq!(Nanos::from_micros(5), Nanos::new(5_000));
    }

    #[test]
    fn nanos_ordering_and_minmax() {
        let a = Nanos::new(10);
        let b = Nanos::new(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(format!("{a}"), "10ns");
    }

    #[test]
    fn nanos_sum() {
        let total: Nanos = (1..=4).map(Nanos::new).sum();
        assert_eq!(total, Nanos::new(10));
    }

    #[test]
    fn row_adjacency() {
        let r = RowId::new(5);
        assert_eq!(r.below(), Some(RowId::new(4)));
        assert_eq!(r.above(65536), Some(RowId::new(6)));
        assert_eq!(RowId::new(0).below(), None);
        assert_eq!(RowId::new(65535).above(65536), None);
    }

    #[test]
    fn victims_clamped_at_edges() {
        let v: Vec<_> = RowId::new(0).victims(2, 65536).collect();
        assert_eq!(v, vec![RowId::new(1), RowId::new(2)]);
        let v: Vec<_> = RowId::new(65535).victims(2, 65536).collect();
        assert_eq!(v, vec![RowId::new(65533), RowId::new(65534)]);
        let v: Vec<_> = RowId::new(100).victims(2, 65536).collect();
        assert_eq!(v.len(), 4);
        assert!(!v.contains(&RowId::new(100)));
    }

    #[test]
    fn act_count_saturates() {
        let c = ActCount::new(u32::MAX);
        assert_eq!(c.incremented(), ActCount::new(u32::MAX));
        assert_eq!(ActCount::ZERO.incremented(), ActCount::new(1));
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{:?}", Nanos::ZERO).is_empty());
        assert!(!format!("{}", RowId::new(3)).is_empty());
        assert!(!format!("{}", BankId::new(3)).is_empty());
        assert!(!format!("{}", ActCount::ZERO).is_empty());
    }
}
