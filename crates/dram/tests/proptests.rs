//! Property-based tests for the DRAM substrate invariants.

use moat_dram::{
    AboLevel, AboProtocol, AddressMapping, Bank, DramConfig, DramTiming, Nanos, RowId,
    SecurityLedger,
};
use proptest::prelude::*;

fn small_config() -> DramConfig {
    DramConfig::builder().rows_per_bank(256).build()
}

proptest! {
    /// The PRAC counter of every row always equals the exact number of
    /// activations performed on it (idealized tracking, §2.4).
    #[test]
    fn prac_counter_matches_ground_truth(rows in prop::collection::vec(0u32..256, 1..500)) {
        let cfg = small_config();
        let mut bank = Bank::new(&cfg);
        let mut truth = vec![0u32; 256];
        let mut now = Nanos::ZERO;
        for r in &rows {
            bank.activate(RowId::new(*r), now).unwrap();
            truth[*r as usize] += 1;
            now += cfg.timing.t_rc;
        }
        for r in 0..256u32 {
            prop_assert_eq!(bank.counter(RowId::new(r)).get(), truth[r as usize]);
        }
        prop_assert_eq!(bank.total_acts(), rows.len() as u64);
    }

    /// Two activations can never be closer than tRC.
    #[test]
    fn trc_never_violated(gaps in prop::collection::vec(0u64..120, 1..200)) {
        let cfg = small_config();
        let mut bank = Bank::new(&cfg);
        let mut now = Nanos::ZERO;
        let mut last_accepted: Option<Nanos> = None;
        for gap in gaps {
            now += Nanos::new(gap);
            if bank.activate(RowId::new(0), now).is_ok() {
                if let Some(prev) = last_accepted {
                    prop_assert!(now.as_u64() - prev.as_u64() >= cfg.timing.t_rc.as_u64());
                }
                last_accepted = Some(now);
            }
        }
    }

    /// Ledger pressure on a victim is exactly the number of activations of
    /// rows within the blast radius since the victim's last refresh.
    #[test]
    fn ledger_pressure_matches_naive_model(
        ops in prop::collection::vec((0u32..256, prop::bool::ANY), 1..400)
    ) {
        let cfg = small_config();
        let mut ledger = SecurityLedger::new(&cfg);
        let mut naive = vec![0u32; 256];
        for (row, is_refresh) in ops {
            if is_refresh {
                ledger.on_refresh_single(RowId::new(row));
                naive[row as usize] = 0;
            } else {
                ledger.on_activate(RowId::new(row));
                let lo = row.saturating_sub(cfg.blast_radius);
                let hi = (row + cfg.blast_radius).min(255);
                for v in lo..=hi {
                    if v != row {
                        naive[v as usize] += 1;
                    }
                }
            }
        }
        for r in 0..256u32 {
            prop_assert_eq!(ledger.pressure(RowId::new(r)), naive[r as usize]);
        }
        prop_assert_eq!(
            ledger.current_max_pressure(),
            naive.iter().copied().max().unwrap()
        );
    }

    /// The address mapping is a bijection on its address space.
    #[test]
    fn mapping_roundtrips(addr in 0u64..(1 << 35)) {
        let map = AddressMapping::new(&DramConfig::paper_baseline());
        let coord = map.decode(addr);
        prop_assert_eq!(map.encode(coord), addr & map.address_mask());
    }

    /// The ABO protocol never allows two ALERT assertions separated by
    /// fewer than `min_acts_between_alerts(L)` total activations (Fig. 8:
    /// 3 in-window + L post-RFM).
    #[test]
    fn abo_spacing_invariant(
        level_idx in 0usize..3,
        acts in prop::collection::vec(0u8..4, 1..100)
    ) {
        let level = AboLevel::ALL[level_idx];
        let timing = DramTiming::ddr5_prac();
        let mut abo = AboProtocol::new(level, timing);
        let mut now = Nanos::ZERO;
        let mut acts_since_last_alert = u64::MAX; // no previous alert
        for n_acts in acts {
            // Attacker performs a few ACTs, then tries to assert.
            for _ in 0..n_acts {
                abo.on_act();
                acts_since_last_alert = acts_since_last_alert.saturating_add(1);
                now += timing.t_rc;
            }
            if abo.can_assert() {
                // In-window ACTs: the attacker can squeeze 3 more in the
                // 180 ns window; count them toward the spacing total.
                let stall = abo.assert_alert(now).unwrap();
                let in_window = (stall.as_u64() - now.as_u64()) / timing.t_rc.as_u64();
                if acts_since_last_alert != u64::MAX {
                    let total = acts_since_last_alert + in_window;
                    prop_assert!(
                        total >= timing.min_acts_between_alerts(level.as_u8()) - 1,
                        "alerts spaced by only {total} acts at level {level}"
                    );
                }
                let mut t = stall;
                for _ in 0..level.as_u8() {
                    t = abo.start_rfm(t).unwrap();
                }
                now = t;
                acts_since_last_alert = 0;
            }
        }
    }
}
