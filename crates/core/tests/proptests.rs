//! Property-based tests of the MOAT engine's invariants.

use moat_core::{MoatConfig, MoatEngine, ResetPolicy};
use moat_dram::{AboLevel, ActCount, MitigationEngine, RowId};
use proptest::prelude::*;

/// Drives the engine with an arbitrary precharge sequence, mirroring the
/// in-array counters the bank would maintain.
fn drive(engine: &mut MoatEngine, ops: &[(u32, bool)]) -> Vec<u32> {
    let mut counters = vec![0u32; 64];
    for &(row, mitigate) in ops {
        let row = row % 64;
        if mitigate {
            if let Some(selected) = engine.select_ref_mitigation() {
                counters[selected.as_usize()] = 0;
                engine.on_mitigation_complete(selected);
            }
        } else {
            counters[row as usize] += 1;
            engine.on_precharge_update(RowId::new(row), ActCount::new(counters[row as usize]));
        }
    }
    counters
}

proptest! {
    /// The CTA always holds the maximum tracked count, and every tracked
    /// count is at least ETH.
    #[test]
    fn cta_is_max_and_tracked_counts_respect_eth(
        ops in prop::collection::vec((0u32..64, prop::bool::ANY), 1..300)
    ) {
        let mut e = MoatEngine::new(MoatConfig::paper_default());
        drive(&mut e, &ops);
        if let Some(cta) = e.cta() {
            for entry in e.tracker() {
                prop_assert!(entry.count <= cta.count);
                prop_assert!(entry.count >= 32, "tracked below ETH: {}", entry.count);
            }
        }
    }

    /// alert_pending is true exactly when some tracked count exceeds ATH.
    #[test]
    fn alert_pending_iff_tracked_count_exceeds_ath(
        ops in prop::collection::vec((0u32..64, prop::bool::ANY), 1..300)
    ) {
        let mut e = MoatEngine::new(MoatConfig::paper_default());
        drive(&mut e, &ops);
        let any_above = e.tracker().iter().any(|t| t.count > 64);
        prop_assert_eq!(e.alert_pending(), any_above);
    }

    /// A row whose true count stays below ETH is never tracked; a row
    /// whose count crosses ATH while being the hottest always triggers.
    #[test]
    fn cold_rows_never_tracked(acts in prop::collection::vec(0u32..64, 1..200)) {
        let mut e = MoatEngine::new(MoatConfig::paper_default());
        let mut counters = vec![0u32; 64];
        for row in acts {
            // Cap every row below ETH.
            if counters[row as usize] < 31 {
                counters[row as usize] += 1;
                e.on_precharge_update(RowId::new(row), ActCount::new(counters[row as usize]));
            }
        }
        prop_assert!(e.tracker().is_empty());
        prop_assert!(!e.alert_pending());
    }

    /// MOAT-L tracker never exceeds L entries and mitigation always
    /// returns the current maximum.
    #[test]
    fn tracker_capacity_and_max_selection(
        level_idx in 0usize..3,
        ops in prop::collection::vec((0u32..64, prop::bool::ANY), 1..300)
    ) {
        let level = AboLevel::ALL[level_idx];
        let mut e = MoatEngine::new(MoatConfig::with_ath(64).level(level));
        drive(&mut e, &ops);
        prop_assert!(e.tracker().len() <= level.as_u8() as usize);
        if let Some(max) = e.tracker().iter().map(|t| t.count).max() {
            let selected = e.select_alert_mitigation().unwrap();
            // The removed entry had the maximum count.
            prop_assert!(e.tracker().iter().all(|t| t.count <= max));
            let _ = selected;
        }
    }

    /// Safe reset: the effective counter after a refresh never understates
    /// the pre-reset value for shadowed (trailing) rows.
    #[test]
    fn shadow_preserves_trailing_counts(pre in prop::collection::vec(0u32..200, 8)) {
        let mut e = MoatEngine::new(MoatConfig::paper_default());
        e.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(pre[r.as_usize()]));
        // Trailing rows 6 and 7 keep their counts; the rest fall to the
        // in-array value (0 after the bank's reset).
        prop_assert_eq!(e.effective_counter(RowId::new(6), ActCount::ZERO).get(), pre[6]);
        prop_assert_eq!(e.effective_counter(RowId::new(7), ActCount::ZERO).get(), pre[7]);
        for r in 0..6u32 {
            prop_assert_eq!(e.effective_counter(RowId::new(r), ActCount::ZERO).get(), 0);
        }
    }

    /// The unsafe policy keeps no shadows regardless of input.
    #[test]
    fn unsafe_policy_never_shadows(pre in prop::collection::vec(0u32..200, 8)) {
        let mut e = MoatEngine::new(
            MoatConfig::paper_default().reset_policy(ResetPolicy::Unsafe),
        );
        e.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(pre[r.as_usize()]));
        for r in 0..8u32 {
            prop_assert_eq!(e.effective_counter(RowId::new(r), ActCount::new(3)).get(), 3);
        }
    }
}

#[test]
fn engine_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<MoatEngine>();
}

/// A reference implementation of the tracker with the *original*
/// multi-scan semantics: find the row's entry with one scan, find the
/// minimum with a second, recompute the ALERT flag with a third, and
/// locate the maximum lazily with `max_by_key` at selection time. The
/// fused single-scan engine must be observationally identical to this.
mod oracle {
    use moat_core::MoatConfig;
    use moat_dram::RowId;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Entry {
        pub row: RowId,
        pub count: u32,
    }

    #[derive(Debug)]
    pub struct MultiScanTracker {
        cfg: MoatConfig,
        pub tracker: Vec<Entry>,
        pub alert_pending: bool,
        pub alerts_requested: u64,
    }

    impl MultiScanTracker {
        pub fn new(cfg: MoatConfig) -> Self {
            MultiScanTracker {
                cfg,
                tracker: Vec::new(),
                alert_pending: false,
                alerts_requested: 0,
            }
        }

        fn refresh_alert_flag(&mut self) {
            let was = self.alert_pending;
            self.alert_pending = self.tracker.iter().any(|e| e.count > self.cfg.ath);
            if self.alert_pending && !was {
                self.alerts_requested += 1;
            }
        }

        pub fn on_precharge_update(&mut self, row: RowId, effective: u32) {
            if let Some(e) = self.tracker.iter_mut().find(|e| e.row == row) {
                e.count = e.count.max(effective);
            } else if effective >= self.cfg.eth {
                if self.tracker.len() < self.cfg.tracker_entries() {
                    self.tracker.push(Entry {
                        row,
                        count: effective,
                    });
                } else if let Some(min) = self.tracker.iter_mut().min_by_key(|e| e.count) {
                    if effective > min.count {
                        *min = Entry {
                            row,
                            count: effective,
                        };
                    }
                }
            }
            self.refresh_alert_flag();
        }

        pub fn cta(&self) -> Option<Entry> {
            self.tracker.iter().copied().max_by_key(|e| e.count)
        }

        pub fn take_max(&mut self) -> Option<Entry> {
            let idx = self
                .tracker
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| e.count)
                .map(|(i, _)| i)?;
            let entry = self.tracker.swap_remove(idx);
            self.refresh_alert_flag();
            Some(entry)
        }
    }
}

proptest! {
    /// Observational equivalence of the fused single-scan tracker update
    /// with the original multi-scan semantics, over arbitrary interleaved
    /// precharge/mitigation sequences and every MOAT-L level. The entry
    /// vectors must match *in order* (swap_remove order included), along
    /// with the CTA, the ALERT flag, its rising-edge count, and every
    /// selected mitigation row.
    #[test]
    fn fused_scan_matches_multiscan_reference(
        level_idx in 0usize..3,
        ops in prop::collection::vec((0u32..48, prop::bool::ANY), 1..400)
    ) {
        let cfg = MoatConfig::with_ath(64).level(AboLevel::ALL[level_idx]);
        let mut fused = MoatEngine::new(cfg);
        let mut reference = oracle::MultiScanTracker::new(cfg);
        let mut counters = [0u32; 48];

        for (row, mitigate) in ops {
            if mitigate {
                let selected = fused.select_ref_mitigation();
                let expected = reference.take_max();
                prop_assert_eq!(selected, expected.map(|e| e.row));
                if let Some(r) = selected {
                    counters[r.as_usize()] = 0;
                    fused.on_mitigation_complete(r);
                }
            } else {
                counters[row as usize] += 1;
                let effective = counters[row as usize];
                fused.on_precharge_update(RowId::new(row), ActCount::new(effective));
                reference.on_precharge_update(RowId::new(row), effective);
            }

            // Full visible-state comparison after every operation.
            let fused_entries: Vec<(RowId, u32)> =
                fused.tracker().iter().map(|e| (e.row, e.count)).collect();
            let ref_entries: Vec<(RowId, u32)> =
                reference.tracker.iter().map(|e| (e.row, e.count)).collect();
            prop_assert_eq!(fused_entries, ref_entries);
            prop_assert_eq!(
                fused.cta().map(|e| (e.row, e.count)),
                reference.cta().map(|e| (e.row, e.count))
            );
            prop_assert_eq!(fused.alert_pending(), reference.alert_pending);
            prop_assert_eq!(fused.stats().alerts_requested, reference.alerts_requested);
        }
    }
}
