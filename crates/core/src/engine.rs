//! The MOAT mitigation engine (§4, Appendix D).
//!
//! MOAT eschews Panopticon's multi-entry queue in favour of tracking a
//! single entry per bank (the CTA — *Current Tracked Addr*), plus a CMA
//! (*Currently Mitigated Addr*) register naming the row whose victims are
//! being refreshed. Crucially, and unlike Panopticon, **the CTA stores the
//! counter value alongside the row address**, which is what defeats
//! Jailbreak-style attacks: a row that keeps getting hammered while tracked
//! keeps raising its tracked count and crosses ATH, forcing an ALERT.
//!
//! The generalized MOAT-L design (Appendix D) tracks `L` entries for ABO
//! level `L`, always keeping the `L` highest-count rows seen since the last
//! mitigation and mitigating the highest-count one first.

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, EngineFault, IntegrityReport, MitigationEngine, RowId};

use crate::config::{MoatConfig, ResetPolicy};

/// One tracker entry: a row address plus its (shadow-aware) counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedEntry {
    /// The tracked aggressor row.
    pub row: RowId,
    /// The counter value MOAT attributes to the row.
    pub count: u32,
}

/// A trailing-row SRAM shadow counter for safe reset-on-refresh (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShadowCounter {
    row: RowId,
    count: u32,
}

/// Parity byte over a tracked count: the XOR fold of its four bytes.
/// Any single-bit upset in the count flips exactly one bit of the fold,
/// so the SEU fault model (`EngineFault::FlipCounterBit`) is detected
/// with certainty; multi-bit corruption (`StuckEntry`) is detected
/// whenever the zeroed count had a non-zero fold.
#[inline]
fn parity_of(count: u32) -> u8 {
    let b = count.to_le_bytes();
    b[0] ^ b[1] ^ b[2] ^ b[3]
}

/// Parity shadow over one tracker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotShadow {
    row: RowId,
    parity: u8,
}

/// The armed integrity guard: a parity shadow of the tracker plus an
/// exact copy of the ALERT latch. Legitimate mutations re-derive the
/// shadow ([`MoatEngine::reguard`]); `apply_fault` deliberately does
/// not, which is what makes injected corruption visible to
/// [`MitigationEngine::integrity_check`].
#[derive(Debug, Clone, Default)]
struct MoatGuard {
    slots: Vec<SlotShadow>,
    alert: bool,
}

/// Running statistics the engine keeps about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MoatStats {
    /// Number of times an ALERT was requested.
    pub alerts_requested: u64,
    /// Rows handed out for proactive (REF-time) mitigation.
    pub proactive_selected: u64,
    /// Rows handed out for reactive (RFM) mitigation.
    pub reactive_selected: u64,
    /// Tracker insertions (new row displacing or filling an entry).
    pub insertions: u64,
}

/// The MOAT engine for one bank.
///
/// # Examples
///
/// ```
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::{ActCount, MitigationEngine, RowId};
///
/// let mut moat = MoatEngine::new(MoatConfig::paper_default());
/// // A row crossing ETH (32) becomes tracked:
/// moat.on_precharge_update(RowId::new(7), ActCount::new(33));
/// assert_eq!(moat.cta().unwrap().row, RowId::new(7));
/// // A row crossing ATH (64) requests an ALERT:
/// moat.on_precharge_update(RowId::new(9), ActCount::new(65));
/// assert!(moat.alert_pending());
/// ```
#[derive(Debug, Clone)]
pub struct MoatEngine {
    config: MoatConfig,
    /// Cached display name (formatted once — `name()` is allocation-free).
    name: String,
    /// The tracked entries (1 for MOAT-L1; `L` for MOAT-L, Appendix D).
    tracker: Vec<TrackedEntry>,
    /// Index of the highest-count entry (ties resolved to the highest
    /// index, matching `Iterator::max_by_key` over the tracker vector).
    /// Only meaningful while the tracker is non-empty.
    max_idx: usize,
    /// The row currently being mitigated (CMA register).
    cma: Option<RowId>,
    /// Trailing-row shadows for safe reset (§4.3).
    shadows: Vec<ShadowCounter>,
    alert_pending: bool,
    /// The single untracked row with the highest known standing count —
    /// attributed so a mitigation of exactly that row can retire the
    /// hazard (see [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert)).
    hazard_row: Option<RowId>,
    /// Upper bound on `hazard_row`'s current effective count.
    hazard_count: u32,
    /// Upper bound on the effective count of every *other* untracked row
    /// (starts at ETH − 1: below ETH a row is never tracked, and raised
    /// whenever an attributed hazard is demoted or a count leaves the
    /// tracker unattributed). Never decays — conservative.
    hazard_base: u32,
    /// Armed integrity guard (`None` when disarmed — the default).
    guard: Option<MoatGuard>,
    stats: MoatStats,
}

impl MoatEngine {
    /// Creates a MOAT engine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MoatConfig::validate`]).
    pub fn new(config: MoatConfig) -> Self {
        config.validate();
        MoatEngine {
            config,
            name: format!("moat-{}-ath{}-eth{}", config.level, config.ath, config.eth),
            tracker: Vec::with_capacity(config.tracker_entries()),
            max_idx: 0,
            cma: None,
            shadows: Vec::with_capacity(config.shadow_slots as usize),
            alert_pending: false,
            hazard_row: None,
            hazard_count: 0,
            hazard_base: config.eth.saturating_sub(1),
            guard: None,
            stats: MoatStats::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &MoatConfig {
        &self.config
    }

    /// The CTA register: the highest-count tracked entry (MOAT-L1's single
    /// entry), or `None` when the tracker is empty. `O(1)` — the maximum
    /// is maintained incrementally by the precharge hook.
    pub fn cta(&self) -> Option<TrackedEntry> {
        self.tracker.get(self.max_idx).copied()
    }

    /// All tracked entries (1 for L1, up to `L` for MOAT-L).
    pub fn tracker(&self) -> &[TrackedEntry] {
        &self.tracker
    }

    /// The CMA register: the row currently undergoing mitigation.
    pub fn cma(&self) -> Option<RowId> {
        self.cma
    }

    /// The SRAM shadow count held for `row`, if it is currently shadowed
    /// (§4.3 safe reset). Exposed for adaptive attackers per the threat
    /// model (§2.1): while a shadow is active, the *effective* count the
    /// next activation reports is the shadow's, not the in-array
    /// counter's — which is what an engine-aware semi-scripted attacker
    /// must model to know exactly when its run trips the ALERT flag
    /// (`effective > ATH`).
    pub fn shadow_count(&self, row: RowId) -> Option<u32> {
        self.shadows.iter().find(|s| s.row == row).map(|s| s.count)
    }

    /// Engine statistics.
    pub fn stats(&self) -> MoatStats {
        self.stats
    }

    /// The shadow-aware counter value for `row` given the in-array value,
    /// updating the shadow if `row` is shadowed. Called on every precharge.
    #[inline]
    fn bump_effective(&mut self, row: RowId, in_array: ActCount) -> u32 {
        if let Some(s) = self.shadows.iter_mut().find(|s| s.row == row) {
            s.count = s.count.saturating_add(1);
            s.count
        } else {
            in_array.get()
        }
    }

    /// Rebuilds the incrementally maintained maximum index and alert flag
    /// by rescanning the tracker. Only called on the rare mitigation
    /// events (entry removal, mitigation completion) — the per-ACT hot
    /// path maintains both without a rescan.
    fn resync(&mut self) {
        let was = self.alert_pending;
        let mut max_idx = 0;
        let mut max_count = 0;
        let mut any_above = false;
        for (i, e) in self.tracker.iter().enumerate() {
            // `>=` resolves ties to the highest index, matching the
            // behaviour of `max_by_key` over the same vector.
            if e.count >= max_count {
                max_count = e.count;
                max_idx = i;
            }
            any_above |= e.count > self.config.ath;
        }
        self.max_idx = max_idx;
        self.alert_pending = any_above;
        if any_above && !was {
            self.stats.alerts_requested += 1;
        }
    }

    /// Records that the entry at `idx` now holds `count`, folding the
    /// max-index and ALERT-flag maintenance into the caller's single pass.
    #[inline]
    fn note_count(&mut self, idx: usize, count: u32) {
        let cur = self.tracker[self.max_idx].count;
        if count > cur || (count == cur && idx >= self.max_idx) {
            self.max_idx = idx;
        }
        if count > self.config.ath && !self.alert_pending {
            self.alert_pending = true;
            self.stats.alerts_requested += 1;
        }
    }

    /// Removes and returns the highest-count tracked entry.
    fn take_max(&mut self) -> Option<TrackedEntry> {
        if self.tracker.is_empty() {
            return None;
        }
        let entry = self.tracker.swap_remove(self.max_idx);
        // The removed count now stands on an untracked row (the CMA row
        // keeps absorbing ACTs until its mitigation completes — the very
        // window Jailbreak exploits), so the horizon must account for it.
        self.note_untracked(entry.row, entry.count);
        self.resync();
        Some(entry)
    }

    /// Records that `row` currently stands untracked at up to `count`
    /// activations, keeping the event-horizon watermark sound: the
    /// highest such count stays attributed to its row (so completing that
    /// row's mitigation can retire it), everything else folds into the
    /// unattributed base.
    #[inline]
    fn note_untracked(&mut self, row: RowId, count: u32) {
        if count <= self.hazard_base {
            return;
        }
        match self.hazard_row {
            Some(r) if r == row => self.hazard_count = self.hazard_count.max(count),
            _ => {
                if count > self.hazard_count {
                    self.hazard_base = self.hazard_base.max(self.hazard_count);
                    self.hazard_row = Some(row);
                    self.hazard_count = count;
                } else {
                    self.hazard_base = self.hazard_base.max(count);
                }
            }
        }
    }

    /// Re-derives the parity shadow from the current tracker and ALERT
    /// latch. Called at the end of every *legitimate* mutating trait hook
    /// — and pointedly **not** from [`MitigationEngine::apply_fault`], so
    /// injected corruption leaves the shadow stale and detectable. A no-op
    /// while the guard is disarmed.
    #[inline]
    fn reguard(&mut self) {
        if let Some(g) = self.guard.as_mut() {
            g.slots.clear();
            g.slots.extend(self.tracker.iter().map(|e| SlotShadow {
                row: e.row,
                parity: parity_of(e.count),
            }));
            g.alert = self.alert_pending;
        }
    }

    /// Retires the attributed hazard when `row` stops being a standing
    /// threat — it was (re-)inserted into the tracker (the CTA maximum
    /// covers it again) or its counter was just reset by a completed
    /// mitigation.
    #[inline]
    fn clear_hazard_if(&mut self, row: RowId) {
        if self.hazard_row == Some(row) {
            self.hazard_row = None;
            self.hazard_count = 0;
        }
    }
}

impl MitigationEngine for MoatEngine {
    fn name(&self) -> &str {
        &self.name
    }

    /// The per-ACT hot path: one fused scan over the (≤ L ≤ 4 entry)
    /// tracker finds the row's entry *and* the minimum entry, applies the
    /// update/insert/replace, and maintains the CTA maximum and ALERT flag
    /// incrementally — where the original implementation rescanned the
    /// tracker separately for each of those.
    #[inline]
    fn on_precharge_update(&mut self, row: RowId, counter: ActCount) {
        let effective = self.bump_effective(row, counter);

        // Single pass: the row's entry if tracked, else the first minimum.
        let mut found = None;
        let mut min_idx = 0;
        let mut min_count = u32::MAX;
        for (i, e) in self.tracker.iter().enumerate() {
            if e.row == row {
                found = Some(i);
                break;
            }
            if e.count < min_count {
                min_count = e.count;
                min_idx = i;
            }
        }

        if let Some(i) = found {
            let e = &mut self.tracker[i];
            e.count = e.count.max(effective);
            let count = e.count;
            self.note_count(i, count);
        } else if effective >= self.config.eth {
            if self.tracker.len() < self.config.tracker_entries() {
                self.tracker.push(TrackedEntry {
                    row,
                    count: effective,
                });
                self.stats.insertions += 1;
                self.note_count(self.tracker.len() - 1, effective);
                self.clear_hazard_if(row);
            } else if effective > min_count {
                // Appendix D: replace the minimum-count entry if the
                // accessed row has a higher count.
                let displaced = self.tracker[min_idx];
                self.note_untracked(displaced.row, displaced.count);
                self.tracker[min_idx] = TrackedEntry {
                    row,
                    count: effective,
                };
                self.stats.insertions += 1;
                self.note_count(min_idx, effective);
                self.clear_hazard_if(row);
            } else {
                // Above ETH but not admitted: the row stands untracked at
                // `effective` and the horizon must remember it.
                self.note_untracked(row, effective);
            }
        }
        self.reguard();
    }

    fn alert_pending(&self) -> bool {
        self.alert_pending
    }

    /// MOAT's event horizon: every tracked count is bounded by the CTA
    /// maximum, every untracked standing count by the hazard watermark,
    /// and a count can only grow by one per ACT — so no row can exceed
    /// ATH before `ATH + 1 − max(CTA, watermark)` further activations.
    fn min_acts_to_alert(&self) -> u64 {
        if self.alert_pending {
            return 0;
        }
        let tracked = self.tracker.get(self.max_idx).map_or(0, |e| e.count);
        let standing = tracked.max(self.hazard_count).max(self.hazard_base);
        u64::from((self.config.ath + 1).saturating_sub(standing)).max(1)
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        // Mitigation-period boundary: latch CTA into CMA, invalidate CTA.
        let entry = self.take_max()?;
        self.cma = Some(entry.row);
        self.stats.proactive_selected += 1;
        self.reguard();
        Some(entry.row)
    }

    fn select_alert_mitigation(&mut self) -> Option<RowId> {
        let entry = self.take_max()?;
        self.cma = Some(entry.row);
        self.stats.reactive_selected += 1;
        self.reguard();
        Some(entry.row)
    }

    fn on_mitigation_complete(&mut self, row: RowId) {
        if self.cma == Some(row) {
            self.cma = None;
        }
        // The aggressor's counter was reset; reset its shadow too.
        if let Some(s) = self.shadows.iter_mut().find(|s| s.row == row) {
            s.count = 0;
        }
        // Counter and shadow are back to zero (MOAT spends a slot on the
        // reset), so an attributed hazard on this row is retired — this is
        // what restores a wide horizon after each ALERT episode.
        self.clear_hazard_if(row);
        self.resync();
        self.reguard();
    }

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        match self.config.reset_policy {
            ResetPolicy::None | ResetPolicy::Unsafe => {}
            ResetPolicy::Safe => {
                // §4.3: replace the shadow set with the trailing rows of the
                // freshly refreshed group (their victims in the *next* group
                // are not yet refreshed). Pre-reset counts are preserved,
                // shadow-aware in case a trailing row was already shadowed.
                let slots = self.config.shadow_slots.min(rows.len() as u32);
                let new_shadows: Vec<ShadowCounter> = (0..slots)
                    .map(|i| {
                        let row = RowId::new(rows.end - 1 - i);
                        let in_array = counter_of(row);
                        let count = self
                            .shadows
                            .iter()
                            .find(|s| s.row == row)
                            .map_or(in_array.get(), |s| s.count);
                        ShadowCounter { row, count }
                    })
                    .collect();
                self.shadows = new_shadows;
            }
        }
    }

    fn resets_counters_on_refresh(&self) -> bool {
        !matches!(self.config.reset_policy, ResetPolicy::None)
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        true // MOAT spends the 5th REF slot resetting the aggressor counter.
    }

    fn sram_bytes_per_bank(&self) -> usize {
        // §6.5 / Appendix D: L tracker entries of 3 bytes (address +
        // counter), CMA of 2 bytes, and two shadow counters of 1 byte each.
        self.config.tracker_entries() * 3 + 2 + self.config.shadow_slots as usize
    }

    fn effective_counter(&self, row: RowId, in_array: ActCount) -> ActCount {
        self.shadows
            .iter()
            .find(|s| s.row == row)
            .map_or(in_array, |s| ActCount::new(s.count))
    }

    /// SEUs land in the tracked-entry SRAM (the `L ≤ 4` counters the CTA
    /// maximum is computed over). After mutating a count the cached
    /// maximum and the ALERT flag are rebuilt via `resync`, so the engine
    /// stays internally consistent — but a previously promised horizon
    /// may now be unsound, which is exactly what the fault sweep
    /// measures. `LoseAlert` clears the request latch; the flag re-arms
    /// the next time a counter update crosses ATH.
    fn apply_fault(&mut self, fault: &EngineFault) -> bool {
        match *fault {
            EngineFault::FlipCounterBit { slot, bit } => {
                if self.tracker.is_empty() {
                    return false;
                }
                let slot = slot % self.tracker.len();
                self.tracker[slot].count ^= 1 << (bit % u32::BITS);
                self.resync();
                true
            }
            EngineFault::LoseAlert => {
                let was = self.alert_pending;
                self.alert_pending = false;
                was
            }
            EngineFault::StuckEntry { slot } => {
                if self.tracker.is_empty() {
                    return false;
                }
                let slot = slot % self.tracker.len();
                let changed = self.tracker[slot].count != 0;
                self.tracker[slot].count = 0;
                self.resync();
                changed
            }
        }
    }

    fn guard_arm(&mut self) -> bool {
        if self.guard.is_none() {
            self.guard = Some(MoatGuard::default());
        }
        self.reguard();
        true
    }

    /// Compares each tracker slot against its parity shadow and the ALERT
    /// latch against its shadow bit. Counter corruption is **detect-only**
    /// — a parity byte cannot reconstruct the pre-fault count, so the
    /// mismatched row is reported untrusted for the caller's conservative
    /// fallback (a forced mitigation resets the row to a trusted zero). A
    /// lost ALERT is fully shadowed and restored exactly.
    fn integrity_check(&mut self) -> IntegrityReport {
        let Some(guard) = self.guard.as_ref() else {
            return IntegrityReport::unguarded();
        };
        let mut report = IntegrityReport::clean();
        for (e, s) in self.tracker.iter().zip(guard.slots.iter()) {
            if e.row != s.row || parity_of(e.count) != s.parity {
                report.detected += 1;
                report.untrusted.push(e.row);
            }
        }
        let shadow_alert = guard.alert;
        if self.alert_pending != shadow_alert {
            report.detected += 1;
            report.repaired += 1;
            // The latch is a single shadowed bit: restore it exactly. The
            // request was already counted when the latch first set, so the
            // stats are left alone.
            self.alert_pending = shadow_alert;
        }
        report
    }

    /// Resyncs every tracked count against the authoritative effective
    /// counter (in-array value, §4.3-shadow-aware), rebuilds the CTA
    /// maximum and ALERT latch from the corrected counts, and re-arms the
    /// parity shadow. Setting a tracked count to the true standing count
    /// is sound by definition — the horizon promise is a statement about
    /// true counts reaching ATH.
    fn scrub_resync(&mut self, counter_of: &mut dyn FnMut(RowId) -> ActCount) -> u32 {
        if self.guard.is_none() {
            return 0;
        }
        let mut corrected = 0;
        for i in 0..self.tracker.len() {
            let row = self.tracker[i].row;
            let truth = self.effective_counter(row, counter_of(row)).get();
            if self.tracker[i].count != truth {
                self.tracker[i].count = truth;
                corrected += 1;
            }
        }
        self.resync();
        self.reguard();
        corrected
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::AboLevel;

    fn engine() -> MoatEngine {
        MoatEngine::new(MoatConfig::paper_default())
    }

    #[test]
    fn rows_below_eth_are_not_tracked() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(1), ActCount::new(31));
        assert!(m.cta().is_none());
        m.on_precharge_update(RowId::new(1), ActCount::new(32));
        assert_eq!(
            m.cta(),
            Some(TrackedEntry {
                row: RowId::new(1),
                count: 32
            })
        );
    }

    #[test]
    fn cta_tracks_highest_count() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(1), ActCount::new(40));
        m.on_precharge_update(RowId::new(2), ActCount::new(50));
        assert_eq!(m.cta().unwrap().row, RowId::new(2));
        // A lower-count row does not displace the CTA.
        m.on_precharge_update(RowId::new(3), ActCount::new(45));
        assert_eq!(m.cta().unwrap().row, RowId::new(2));
        // The tracked row's own activations raise its tracked count.
        m.on_precharge_update(RowId::new(2), ActCount::new(51));
        assert_eq!(m.cta().unwrap().count, 51);
    }

    #[test]
    fn alert_on_crossing_ath() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(5), ActCount::new(64));
        assert!(!m.alert_pending(), "count == ATH does not alert");
        m.on_precharge_update(RowId::new(5), ActCount::new(65));
        assert!(m.alert_pending(), "count > ATH alerts");
        assert_eq!(m.stats().alerts_requested, 1);
    }

    #[test]
    fn alert_mitigation_clears_pending() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(5), ActCount::new(70));
        assert!(m.alert_pending());
        let row = m.select_alert_mitigation().unwrap();
        assert_eq!(row, RowId::new(5));
        assert_eq!(m.cma(), Some(row));
        m.on_mitigation_complete(row);
        assert!(!m.alert_pending());
        assert_eq!(m.cma(), None);
        assert!(m.cta().is_none());
    }

    #[test]
    fn ref_mitigation_latches_cta_to_cma() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(9), ActCount::new(40));
        let row = m.select_ref_mitigation().unwrap();
        assert_eq!(row, RowId::new(9));
        assert_eq!(m.cma(), Some(RowId::new(9)));
        assert!(m.cta().is_none(), "CTA invalidated after latch");
        m.on_mitigation_complete(row);
        assert_eq!(m.cma(), None);
    }

    #[test]
    fn moat_l4_tracks_four_highest() {
        let mut m = MoatEngine::new(MoatConfig::with_ath(64).level(AboLevel::L4));
        for (r, c) in [(1u32, 40u32), (2, 45), (3, 50), (4, 55)] {
            m.on_precharge_update(RowId::new(r), ActCount::new(c));
        }
        assert_eq!(m.tracker().len(), 4);
        // Higher-count row replaces the minimum (row 1, count 40).
        m.on_precharge_update(RowId::new(5), ActCount::new(42));
        assert!(m.tracker().iter().all(|e| e.row != RowId::new(1)));
        assert!(m.tracker().iter().any(|e| e.row == RowId::new(5)));
        // Lower-count row does not.
        m.on_precharge_update(RowId::new(6), ActCount::new(33));
        assert!(m.tracker().iter().all(|e| e.row != RowId::new(6)));
        // Mitigation selects the maximum.
        assert_eq!(m.select_ref_mitigation(), Some(RowId::new(4)));
        assert_eq!(m.tracker().len(), 3);
    }

    #[test]
    fn sram_budget_matches_paper() {
        // §6.5 / Appendix D: 7 bytes (L1), 10 bytes (L2), 16 bytes (L4).
        let l1 = MoatEngine::new(MoatConfig::with_ath(64));
        let l2 = MoatEngine::new(MoatConfig::with_ath(64).level(AboLevel::L2));
        let l4 = MoatEngine::new(MoatConfig::with_ath(64).level(AboLevel::L4));
        assert_eq!(l1.sram_bytes_per_bank(), 7);
        assert_eq!(l2.sram_bytes_per_bank(), 10);
        assert_eq!(l4.sram_bytes_per_bank(), 16);
    }

    #[test]
    fn safe_reset_shadows_trailing_rows() {
        let mut m = engine();
        // Simulate the refresh of group rows 0..8 where row 6 has count 50
        // and row 7 has count 60.
        let mut counts = [0u32; 16];
        counts[6] = 50;
        counts[7] = 60;
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        // In-array counters are now reset (bank would do it); the shadow
        // preserves the counts, so the next activation sees count 61.
        m.on_precharge_update(RowId::new(7), ActCount::new(1));
        assert_eq!(
            m.cta().unwrap(),
            TrackedEntry {
                row: RowId::new(7),
                count: 61
            }
        );
        m.on_precharge_update(RowId::new(6), ActCount::new(1));
        assert_eq!(
            m.effective_counter(RowId::new(6), ActCount::new(1)).get(),
            51
        );
        // Row 5 was not shadowed: its effective count is the in-array one.
        assert_eq!(
            m.effective_counter(RowId::new(5), ActCount::new(1)).get(),
            1
        );
    }

    #[test]
    fn shadow_replaced_at_next_group() {
        let mut m = engine();
        let mut counts = [10u32; 24];
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        counts[14] = 30;
        counts[15] = 40;
        m.on_refresh_group(8..16, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        // Old shadows (rows 6,7) dropped; new ones are rows 14,15.
        assert_eq!(
            m.effective_counter(RowId::new(7), ActCount::new(2)).get(),
            2
        );
        assert_eq!(
            m.effective_counter(RowId::new(15), ActCount::new(0)).get(),
            40
        );
    }

    #[test]
    fn shadowed_alert_fires_across_reset() {
        // A trailing row at ATH that is activated right after its group's
        // refresh still alerts (the unsafe design would not).
        let mut m = engine();
        let mut counts = [0u32; 8];
        counts[7] = 64;
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        m.on_precharge_update(RowId::new(7), ActCount::new(1));
        assert!(m.alert_pending(), "shadow count 65 > ATH must alert");
    }

    #[test]
    fn unsafe_reset_keeps_no_shadow() {
        let mut m = MoatEngine::new(MoatConfig::paper_default().reset_policy(ResetPolicy::Unsafe));
        let counts = [64u32; 8];
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        // The bank would have reset the in-array counter to 0; the next
        // precharge therefore reports count 1.
        m.on_precharge_update(RowId::new(7), ActCount::new(1));
        assert!(!m.alert_pending(), "unsafe reset forgets the 64 prior acts");
    }

    #[test]
    fn mitigation_resets_shadow() {
        let mut m = engine();
        let counts = [50u32; 8];
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        m.on_precharge_update(RowId::new(7), ActCount::new(1)); // shadow 51
        let row = m.select_ref_mitigation().unwrap();
        assert_eq!(row, RowId::new(7));
        m.on_mitigation_complete(row);
        assert_eq!(
            m.effective_counter(RowId::new(7), ActCount::new(0)).get(),
            0
        );
    }

    #[test]
    fn name_mentions_config() {
        let m = MoatEngine::new(MoatConfig::with_ath(128));
        assert_eq!(m.name(), "moat-L1-ath128-eth64");
    }

    #[test]
    fn horizon_starts_at_ath_minus_eth_slack() {
        // Fresh engine: no row can stand above ETH − 1, so the horizon is
        // ATH + 1 − (ETH − 1) = 34 for the paper's 64/32.
        let m = engine();
        assert_eq!(m.min_acts_to_alert(), 34);
    }

    #[test]
    fn horizon_shrinks_with_the_tracked_maximum() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(5), ActCount::new(50));
        assert_eq!(m.min_acts_to_alert(), 65 - 50);
        m.on_precharge_update(RowId::new(5), ActCount::new(64));
        assert_eq!(m.min_acts_to_alert(), 1, "one more ACT may alert");
        m.on_precharge_update(RowId::new(5), ActCount::new(65));
        assert!(m.alert_pending());
        assert_eq!(m.min_acts_to_alert(), 0);
    }

    #[test]
    fn horizon_recovers_after_alert_mitigation() {
        // The hammer cadence: alert at 65, RFM mitigates the row (counter
        // reset) — the hazard retires and the horizon re-opens.
        let mut m = engine();
        m.on_precharge_update(RowId::new(5), ActCount::new(65));
        let row = m.select_alert_mitigation().unwrap();
        assert_eq!(
            m.min_acts_to_alert(),
            1,
            "between select and completion the CMA row still stands at 65, \
             so the horizon collapses to the no-guarantee single step"
        );
        m.on_mitigation_complete(row);
        assert_eq!(m.min_acts_to_alert(), 34);
    }

    #[test]
    fn horizon_remembers_rows_the_tracker_let_go() {
        // L1: row A tracked at 63 gets displaced by row B at 64; B is then
        // mitigated. A still stands untracked at 63, and the horizon must
        // not forget it — 2 ACTs on A would alert (64, then 65 > ATH).
        let mut m = engine();
        m.on_precharge_update(RowId::new(1), ActCount::new(63));
        m.on_precharge_update(RowId::new(2), ActCount::new(64));
        let row = m.select_alert_mitigation().unwrap();
        assert_eq!(row, RowId::new(2));
        m.on_mitigation_complete(row);
        assert!(!m.alert_pending());
        assert!(
            m.min_acts_to_alert() <= 2,
            "horizon {} must cover row 1 standing at 63",
            m.min_acts_to_alert()
        );
    }

    #[test]
    fn horizon_covers_rejected_insertions() {
        // L1 with a full tracker: a row above ETH that fails to displace
        // the entry still stands at its count.
        let mut m = engine();
        m.on_precharge_update(RowId::new(1), ActCount::new(60));
        m.on_precharge_update(RowId::new(2), ActCount::new(55)); // rejected
        let row = m.select_ref_mitigation().unwrap();
        assert_eq!(row, RowId::new(1));
        m.on_mitigation_complete(row);
        // Row 2 still stands at 55 → at most 10 ACTs to an alert.
        assert!(
            m.min_acts_to_alert() <= 10,
            "horizon {} must cover the rejected row at 55",
            m.min_acts_to_alert()
        );
    }

    #[test]
    fn disarmed_guard_is_inert() {
        let mut m = engine();
        m.on_precharge_update(RowId::new(1), ActCount::new(50));
        let report = m.integrity_check();
        assert!(
            !report.guarded,
            "disarmed check is a no-op, not a clean bill"
        );
        assert_eq!(m.scrub_resync(&mut |_| ActCount::new(0)), 0);
        // A fault lands undetected without the guard.
        m.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 4 });
        assert!(!m.integrity_check().guarded);
    }

    #[test]
    fn guard_detects_injected_bit_flip() {
        let mut m = engine();
        assert!(m.guard_arm());
        m.on_precharge_update(RowId::new(1), ActCount::new(50));
        assert_eq!(m.integrity_check(), IntegrityReport::clean());
        assert!(m.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 4 }));
        let report = m.integrity_check();
        assert_eq!(report.detected, 1);
        assert_eq!(report.repaired, 0, "count corruption is detect-only");
        assert_eq!(report.untrusted, vec![RowId::new(1)]);
    }

    #[test]
    fn guard_repairs_lost_alert_exactly() {
        let mut m = engine();
        m.guard_arm();
        m.on_precharge_update(RowId::new(5), ActCount::new(65));
        assert!(m.alert_pending());
        assert!(m.apply_fault(&EngineFault::LoseAlert));
        assert!(!m.alert_pending());
        let report = m.integrity_check();
        assert_eq!(report.detected, 1);
        assert_eq!(report.repaired, 1);
        assert!(report.untrusted.is_empty());
        assert!(m.alert_pending(), "latch restored from the shadow bit");
    }

    #[test]
    fn legitimate_mutations_keep_the_shadow_in_sync() {
        let mut m = engine();
        m.guard_arm();
        m.on_precharge_update(RowId::new(1), ActCount::new(40));
        m.on_precharge_update(RowId::new(2), ActCount::new(65));
        let row = m.select_alert_mitigation().unwrap();
        m.on_mitigation_complete(row);
        let counts = [30u32; 8];
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        assert_eq!(m.integrity_check(), IntegrityReport::clean());
    }

    #[test]
    fn scrub_resyncs_tracker_to_authoritative_counts() {
        let mut m = engine();
        m.guard_arm();
        m.on_precharge_update(RowId::new(1), ActCount::new(60));
        // Corrupt the count low — the dangerous direction (horizon promises
        // too much).
        m.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 5 });
        assert_eq!(m.tracker()[0].count, 60 ^ (1 << 5));
        assert!(m.integrity_check().corrupt());
        let corrected = m.scrub_resync(&mut |_| ActCount::new(60));
        assert_eq!(corrected, 1);
        assert_eq!(m.tracker()[0].count, 60);
        assert_eq!(m.integrity_check(), IntegrityReport::clean());
    }

    #[test]
    fn scrub_restores_a_suppressed_alert_from_truth() {
        let mut m = engine();
        m.guard_arm();
        m.on_precharge_update(RowId::new(1), ActCount::new(65));
        assert!(m.alert_pending());
        // A flip that lowers the count below ATH also clears the latch via
        // the fault path's resync.
        m.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 6 });
        assert_eq!(m.tracker()[0].count, 1);
        assert!(!m.alert_pending());
        let corrected = m.scrub_resync(&mut |_| ActCount::new(65));
        assert_eq!(corrected, 1);
        assert!(m.alert_pending(), "truth 65 > ATH re-arms the latch");
    }

    #[test]
    fn scrub_is_shadow_aware() {
        let mut m = engine();
        m.guard_arm();
        let counts = [50u32; 8];
        m.on_refresh_group(0..8, &mut |r: RowId| ActCount::new(counts[r.as_usize()]));
        m.on_precharge_update(RowId::new(7), ActCount::new(1)); // shadow 51
        m.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 3 });
        // The in-array counter was reset by the refresh; the §4.3 shadow
        // (51) is the authority the scrub must consult.
        let corrected = m.scrub_resync(&mut |_| ActCount::new(1));
        assert_eq!(corrected, 1);
        assert_eq!(m.tracker()[0].count, 51);
    }

    #[test]
    fn horizon_is_sound_under_a_simulated_act_replay() {
        // Adversarial replay: repeatedly ask for the horizon, then issue
        // exactly that many ACTs concentrated on one row — alert_pending
        // must never fire before the promised count is exhausted.
        let mut m = MoatEngine::new(MoatConfig::with_ath(64).level(AboLevel::L2));
        let mut counts = [0u32; 8];
        let mut step = 0u32;
        for round in 0..200 {
            let n = m.min_acts_to_alert();
            if n == 0 {
                // Drain the alert like an RFM would.
                let row = m.select_alert_mitigation().expect("alerting entry");
                counts[row.as_usize()] = 0;
                m.on_mitigation_complete(row);
                continue;
            }
            let target = RowId::new(step % 3); // rotate hot rows
            step += 1;
            for k in 0..n {
                let c = &mut counts[target.as_usize()];
                *c += 1;
                m.on_precharge_update(target, ActCount::new(*c));
                assert!(
                    k + 1 >= n || !m.alert_pending(),
                    "round {round}: alert after {k} acts, horizon promised {n}"
                );
            }
        }
    }
}
