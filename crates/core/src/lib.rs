//! # moat-core — the MOAT Rowhammer mitigation engine
//!
//! This crate implements the paper's primary contribution: **MOAT**
//! (*Mitigating Rowhammer with Dual Thresholds*), a provably secure
//! in-DRAM Rowhammer mitigation built on the DDR5 PRAC + ABO framework
//! (§4 of the paper).
//!
//! MOAT tracks a single entry per bank — the CTA (*Current Tracked Addr*)
//! register, holding both a row address **and its counter value** — plus a
//! CMA (*Currently Mitigated Addr*) register. Two internal thresholds drive
//! it:
//!
//! * **ETH** — eligibility threshold for proactive mitigation during REF,
//! * **ATH** — ALERT threshold for reactive mitigation via ABO.
//!
//! The safe counter-reset-on-refresh scheme (§4.3) replicates the counters
//! of the two trailing rows of each refreshed group into SRAM so that the
//! reset can never under-count a straddling attacker. The generalized
//! MOAT-L design (Appendix D) extends the tracker to `L` entries for ABO
//! levels 2 and 4.
//!
//! ## Example
//!
//! ```
//! use moat_core::{MoatConfig, MoatEngine};
//! use moat_dram::{ActCount, MitigationEngine, RowId};
//!
//! let mut moat = MoatEngine::new(MoatConfig::paper_default());
//! for count in 1..=65 {
//!     moat.on_precharge_update(RowId::new(42), ActCount::new(count));
//! }
//! assert!(moat.alert_pending()); // 65 > ATH(64): reactive mitigation
//! assert_eq!(moat.sram_bytes_per_bank(), 7); // §6.5: 7 bytes per bank
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;

pub use config::{MoatConfig, ResetPolicy};
pub use engine::{MoatEngine, MoatStats, TrackedEntry};
