//! MOAT configuration: the dual thresholds and the ABO level.

use moat_dram::AboLevel;

/// Configuration of a MOAT engine (§4).
///
/// MOAT uses two internal thresholds:
///
/// * **ETH** (Eligibility Threshold) — a row must reach this count to be
///   considered for proactive mitigation during REF. ETH reduces the energy
///   spent on mitigating cold rows (§6.4; default ATH/2).
/// * **ATH** (ALERT Threshold) — a row crossing this count triggers an
///   ALERT for reactive mitigation. ATH determines the tolerated Rowhammer
///   threshold (§4.4, §5.3).
///
/// # Examples
///
/// ```
/// use moat_core::MoatConfig;
///
/// let cfg = MoatConfig::with_ath(64); // paper default: ETH = ATH/2
/// assert_eq!(cfg.eth, 32);
/// assert_eq!(cfg.level.as_u8(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoatConfig {
    /// ALERT threshold (paper default 64).
    pub ath: u32,
    /// Eligibility threshold (paper default ATH/2 = 32).
    pub eth: u32,
    /// ABO mitigation level; MOAT-L tracks `level` entries (Appendix D).
    pub level: AboLevel,
    /// Number of trailing-row shadow counters kept for safe
    /// reset-on-refresh (§4.3; equals the blast radius, default 2).
    pub shadow_slots: u32,
    /// Counter-reset policy on refresh (§4.3 / Fig. 7).
    pub reset_policy: ResetPolicy,
}

/// What happens to PRAC counters when their rows are refreshed (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResetPolicy {
    /// Safe reset (§4.3): counters reset, but the trailing rows of the
    /// refreshed group are replicated into SRAM shadow counters first.
    #[default]
    Safe,
    /// Unsafe reset (Fig. 7a): counters reset with no shadow — vulnerable
    /// to straddling attacks that double the tolerated threshold.
    Unsafe,
    /// No reset: counters free-run (Panopticon-style).
    None,
}

impl MoatConfig {
    /// The paper's default configuration: ATH = 64, ETH = 32, level 1,
    /// safe reset (§6.1).
    pub const fn paper_default() -> Self {
        MoatConfig {
            ath: 64,
            eth: 32,
            level: AboLevel::L1,
            shadow_slots: 2,
            reset_policy: ResetPolicy::Safe,
        }
    }

    /// A configuration with the given ATH and the paper's ETH = ATH/2 rule.
    pub const fn with_ath(ath: u32) -> Self {
        MoatConfig {
            ath,
            eth: ath / 2,
            level: AboLevel::L1,
            shadow_slots: 2,
            reset_policy: ResetPolicy::Safe,
        }
    }

    /// Sets the eligibility threshold.
    #[must_use]
    pub const fn eth(mut self, eth: u32) -> Self {
        self.eth = eth;
        self
    }

    /// Sets the ABO level (MOAT-L2 / MOAT-L4, Appendix D).
    #[must_use]
    pub const fn level(mut self, level: AboLevel) -> Self {
        self.level = level;
        self
    }

    /// Sets the counter reset policy.
    #[must_use]
    pub const fn reset_policy(mut self, policy: ResetPolicy) -> Self {
        self.reset_policy = policy;
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `eth > ath` or `ath == 0`.
    pub fn validate(&self) {
        assert!(self.ath > 0, "ATH must be non-zero");
        assert!(
            self.eth <= self.ath,
            "ETH ({}) must not exceed ATH ({})",
            self.eth,
            self.ath
        );
    }

    /// Number of tracker entries: the ABO level `L` (a single CTA for the
    /// default MOAT-L1).
    pub const fn tracker_entries(&self) -> usize {
        self.level.as_u8() as usize
    }
}

impl Default for MoatConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_ath64_eth32_l1() {
        let c = MoatConfig::paper_default();
        assert_eq!(c.ath, 64);
        assert_eq!(c.eth, 32);
        assert_eq!(c.level, AboLevel::L1);
        assert_eq!(c.tracker_entries(), 1);
        assert_eq!(c.reset_policy, ResetPolicy::Safe);
        c.validate();
    }

    #[test]
    fn with_ath_halves_eth() {
        assert_eq!(MoatConfig::with_ath(128).eth, 64);
        assert_eq!(MoatConfig::with_ath(32).eth, 16);
    }

    #[test]
    fn builder_style_setters() {
        let c = MoatConfig::with_ath(64)
            .eth(48)
            .level(AboLevel::L4)
            .reset_policy(ResetPolicy::None);
        assert_eq!(c.eth, 48);
        assert_eq!(c.tracker_entries(), 4);
        assert_eq!(c.reset_policy, ResetPolicy::None);
    }

    #[test]
    #[should_panic(expected = "must not exceed ATH")]
    fn validate_rejects_eth_above_ath() {
        MoatConfig::with_ath(64).eth(65).validate();
    }
}
