//! Property-based tests for the engine zoo.

use moat_dram::testing::assert_horizon_sound;
use moat_dram::{ActCount, MitigationEngine, RowId};
use moat_trackers::{
    registry, IdealSramTracker, MisraGriesTracker, PanopticonConfig, PanopticonEngine,
};
use proptest::prelude::*;

proptest! {
    /// The horizon invariant holds for every engine in the registry —
    /// every config-grid variant — under the same generated adversarial
    /// replay (hot rows aliased across tracking structures plus spray).
    /// One generic harness (`moat_dram::testing::assert_horizon_sound`)
    /// covers MOAT, Panopticon, ABACuS, CoMeT, DSAC, and CnC-PRAC; a
    /// violated promise in any of them panics with the engine's name.
    #[test]
    fn every_registry_engine_horizon_is_sound(
        rows in prop::collection::vec(0u32..2048, 200..1200),
        hot in 0u32..64,
    ) {
        // Bias the stream: every third ACT hammers the hot row so
        // thresholds are actually crossed within the replay.
        let acts: Vec<RowId> = rows
            .iter()
            .enumerate()
            .map(|(i, &r)| RowId::new(if i % 3 == 0 { hot } else { r }))
            .collect();
        for spec in registry::ENGINES {
            for variant in spec.variants {
                let mut engine = (variant.build)();
                assert_horizon_sound(&mut engine, &acts, 2048);
            }
        }
    }

    /// DSAC's stochastic path is a pure function of its construction
    /// seed: identical replays of registry-built engines stay in
    /// lockstep on every observable surface.
    #[test]
    fn dsac_replay_is_deterministic_from_seed(
        rows in prop::collection::vec(0u32..64, 100..600)
    ) {
        let mut a = registry::build("dsac").unwrap();
        let mut b = registry::build("dsac").unwrap();
        for (i, &r) in rows.iter().enumerate() {
            a.on_precharge_update(RowId::new(r), ActCount::new(i as u32 + 1));
            b.on_precharge_update(RowId::new(r), ActCount::new(i as u32 + 1));
            prop_assert_eq!(a.alert_pending(), b.alert_pending());
            prop_assert_eq!(a.min_acts_to_alert(), b.min_acts_to_alert());
        }
        let (sa, sb) = (a.select_ref_mitigation(), b.select_ref_mitigation());
        prop_assert_eq!(sa, sb);
    }

    /// Panopticon's queue never exceeds its capacity, and an ALERT is
    /// requested only after an overflow drop.
    #[test]
    fn panopticon_queue_bounded(
        counters in prop::collection::vec(1u32..2000, 1..300)
    ) {
        let mut p = PanopticonEngine::new(PanopticonConfig::paper_default());
        let mut dropped = 0u64;
        for (i, c) in counters.iter().enumerate() {
            let before = p.overflow_drops();
            p.on_precharge_update(RowId::new(i as u32 % 32), ActCount::new(*c));
            dropped += p.overflow_drops() - before;
            prop_assert!(p.queue_len() <= 8);
        }
        prop_assert_eq!(p.alert_pending(), dropped > 0 && p.queue_len() == 8);
    }

    /// Insertions happen exactly at non-zero multiples of the threshold.
    #[test]
    fn panopticon_inserts_only_on_crossings(count in 1u32..100_000) {
        let mut p = PanopticonEngine::new(PanopticonConfig::paper_default());
        p.on_precharge_update(RowId::new(1), ActCount::new(count));
        prop_assert_eq!(p.queue_len(), usize::from(count % 128 == 0));
    }

    /// FIFO order: entries drain in exactly the order they entered.
    #[test]
    fn panopticon_is_fifo(rows in prop::collection::vec(0u32..1000, 1..8)) {
        let mut p = PanopticonEngine::new(PanopticonConfig::paper_default());
        for &r in &rows {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        for &r in &rows {
            prop_assert_eq!(p.select_ref_mitigation(), Some(RowId::new(r)));
        }
        prop_assert_eq!(p.select_ref_mitigation(), None);
    }

    /// The ideal tracker's counts always equal the true per-row activation
    /// counts (between mitigations).
    #[test]
    fn ideal_tracker_is_exact(rows in prop::collection::vec(0u32..128, 1..500)) {
        let mut t = IdealSramTracker::new(128);
        let mut truth = vec![0u32; 128];
        for &r in &rows {
            t.on_precharge_update(RowId::new(r), ActCount::ZERO);
            truth[r as usize] += 1;
        }
        for r in 0..128u32 {
            prop_assert_eq!(t.count(RowId::new(r)), truth[r as usize]);
        }
        // Selection returns the argmax.
        if let Some(sel) = t.select_ref_mitigation() {
            let max = truth.iter().copied().max().unwrap();
            prop_assert_eq!(truth[sel.as_usize()], max);
        }
    }

    /// Misra–Gries guarantee: any row activated more than N/(k+1) times
    /// (k = table capacity) is present in the table.
    #[test]
    fn misra_gries_heavy_hitter_guarantee(
        noise in prop::collection::vec(1u32..64, 0..200),
        heavy_acts in 80u32..200
    ) {
        let capacity = 4usize;
        let mut t = MisraGriesTracker::new(capacity, 1);
        let total = noise.len() as u32 + heavy_acts;
        // Interleave a heavy hitter (row 0) with noise rows (1..64).
        let mut noise_iter = noise.iter();
        for i in 0..total {
            if i % (total / heavy_acts.max(1)).max(1) == 0 {
                t.on_precharge_update(RowId::new(0), ActCount::ZERO);
            } else if let Some(&r) = noise_iter.next() {
                t.on_precharge_update(RowId::new(r), ActCount::ZERO);
            } else {
                t.on_precharge_update(RowId::new(0), ActCount::ZERO);
            }
        }
        // Heavy hitter got ≥ heavy_acts of ~total acts; with capacity 4 the
        // guarantee threshold is total/5.
        if u64::from(heavy_acts) > u64::from(total) / (capacity as u64 + 1) {
            prop_assert!(
                t.entries().iter().any(|&(r, _)| r == RowId::new(0)),
                "heavy hitter evicted: {:?}",
                t.entries()
            );
        }
    }
}

#[test]
fn trackers_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<PanopticonEngine>();
    assert_send::<IdealSramTracker>();
    assert_send::<MisraGriesTracker>();
    assert_send::<moat_trackers::AbacusEngine>();
    assert_send::<moat_trackers::CometEngine>();
    assert_send::<moat_trackers::DsacEngine>();
    assert_send::<moat_trackers::CncPracEngine>();
}
