//! The ABACuS shared-counter tracker (PAPERS.md: "ABACuS: All-Bank
//! Activation Counters for Scalable and Low Overhead RowHammer
//! Mitigation", arXiv 2310.09977).
//!
//! ABACuS's observation is that real workloads activate the *same row
//! address* across banks nearly simultaneously, so one shared Row
//! Activation Counter (RAC) per row-ID group can stand in for sixteen
//! per-bank counters — the SRAM cost amortizes across every bank that
//! shares the table. We model the per-bank slice of that design: rows
//! hash (modulo) into a RAC table, each RAC tracks the maximum
//! activation pressure of its group and remembers the most recent
//! aggressor, and crossing the alert threshold raises ALERT. Sharing
//! counters *within* a bank is the same aliasing trade-off as sharing
//! across banks: a group's counter over-approximates every member row,
//! so the bound is conservative (never misses an aggressor) while the
//! table stays tiny.

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, EngineFault, MitigationEngine, RowId};

/// Configuration of an ABACuS bank tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbacusConfig {
    /// Shared row-activation counters per table (paper: one per row ID,
    /// shared across banks; here the per-bank table size).
    pub counters: usize,
    /// Alert threshold: a RAC reaching this count raises ALERT.
    pub ath: u32,
    /// RACs at or above this count are worth a REF-time mitigation slot.
    pub mitigation_floor: u32,
    /// Banks amortizing the table cost (the all-bank sharing factor the
    /// SRAM accounting divides by).
    pub shared_banks: usize,
}

impl AbacusConfig {
    /// A default comparable to MOAT's ATH=64 operating point: 512 RACs
    /// shared across 16 banks.
    pub const fn paper_default() -> Self {
        AbacusConfig {
            counters: 512,
            ath: 64,
            mitigation_floor: 32,
            shared_banks: 16,
        }
    }

    /// A small-table variant stressing the aliasing trade-off.
    pub const fn small_table() -> Self {
        AbacusConfig {
            counters: 128,
            ath: 64,
            mitigation_floor: 32,
            shared_banks: 16,
        }
    }
}

impl Default for AbacusConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One shared row-activation counter: the group's pressure count and
/// the most recent aggressor row charged to it (the row a mitigation
/// targets).
#[derive(Debug, Clone, Copy, Default)]
struct Rac {
    count: u32,
    last_row: RowId,
}

/// The ABACuS engine for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::{AbacusConfig, AbacusEngine};
///
/// let mut a = AbacusEngine::new(AbacusConfig::paper_default());
/// for _ in 0..64 {
///     a.on_precharge_update(RowId::new(9), ActCount::ZERO);
/// }
/// assert!(a.alert_pending());
/// ```
#[derive(Debug, Clone)]
pub struct AbacusEngine {
    config: AbacusConfig,
    /// Cached display name (`name()` is allocation-free).
    name: String,
    racs: Vec<Rac>,
    /// Incrementally maintained maximum RAC count (exact after every
    /// update: increments only grow it, resets recompute it).
    max_count: u32,
    alert_pending: bool,
}

impl AbacusEngine {
    /// Creates an ABACuS engine.
    ///
    /// # Panics
    ///
    /// Panics if `counters`, `ath`, or `shared_banks` is zero.
    pub fn new(config: AbacusConfig) -> Self {
        assert!(config.counters > 0, "table must have counters");
        assert!(config.ath > 0, "alert threshold must be non-zero");
        assert!(config.shared_banks > 0, "sharing factor must be non-zero");
        AbacusEngine {
            config,
            name: format!("abacus-{}c-ath{}", config.counters, config.ath),
            racs: vec![Rac::default(); config.counters],
            max_count: 0,
            alert_pending: false,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &AbacusConfig {
        &self.config
    }

    /// The RAC count currently charged to `row`'s group.
    pub fn group_count(&self, row: RowId) -> u32 {
        self.racs[self.slot_of(row)].count
    }

    #[inline]
    fn slot_of(&self, row: RowId) -> usize {
        row.as_usize() % self.config.counters
    }

    /// Recomputes the cached maximum and the alert flag from the table
    /// (used after resets; the per-ACT path maintains both incrementally).
    fn recompute(&mut self) {
        self.max_count = self.racs.iter().map(|r| r.count).max().unwrap_or(0);
        self.alert_pending = self.max_count >= self.config.ath;
    }
}

impl MitigationEngine for AbacusEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_precharge_update(&mut self, row: RowId, _counter: ActCount) {
        let slot = self.slot_of(row);
        let rac = &mut self.racs[slot];
        rac.count = rac.count.saturating_add(1);
        rac.last_row = row;
        if rac.count > self.max_count {
            self.max_count = rac.count;
        }
        if rac.count >= self.config.ath {
            self.alert_pending = true;
        }
    }

    fn alert_pending(&self) -> bool {
        self.alert_pending
    }

    /// Each ACT increments exactly one RAC by one, and ALERT requires
    /// some RAC to reach `ath`, so with the maximum count at `m` no
    /// alert is possible for the next `ath - m` activations. Resets
    /// (mitigation, the tREFW window reset) only lower counts, which
    /// widens the bound — never narrows it.
    fn min_acts_to_alert(&self) -> u64 {
        if self.alert_pending {
            return 0;
        }
        u64::from(self.config.ath.saturating_sub(self.max_count)).max(1)
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        let rac = self
            .racs
            .iter()
            .filter(|r| r.count >= self.config.mitigation_floor)
            .max_by_key(|r| r.count)?;
        Some(rac.last_row)
    }

    fn on_mitigation_complete(&mut self, row: RowId) {
        let slot = self.slot_of(row);
        self.racs[slot].count = 0;
        self.recompute();
    }

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        // The spatially contiguous refresh engine wraps to row 0 at each
        // new tREFW window; ABACuS clears its RACs every window.
        if rows.start == 0 {
            for rac in &mut self.racs {
                rac.count = 0;
            }
            self.recompute();
        }
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        false // the RAC, not the in-array PRAC counter, is the tracker.
    }

    fn sram_bytes_per_bank(&self) -> usize {
        // Count (2 B) + sibling row tag (2 B) per RAC, amortized over
        // the banks sharing the table — the design's headline saving.
        self.config.counters * 4 / self.config.shared_banks
    }

    /// The RAC table is SRAM like any other tracker: `FlipCounterBit`
    /// flips a count bit (modulo the 16-bit field), `StuckEntry` clears
    /// the slot, `LoseAlert` drops the pending request. Cached state is
    /// re-derived so only the *horizon promise* (deliberately) breaks.
    fn apply_fault(&mut self, fault: &EngineFault) -> bool {
        let changed = match *fault {
            EngineFault::FlipCounterBit { slot, bit } => {
                let slot = slot % self.racs.len();
                self.racs[slot].count ^= 1 << (bit % 16);
                true
            }
            EngineFault::LoseAlert => {
                let was = self.alert_pending;
                self.alert_pending = false;
                // Keep the flag down until a fresh crossing: recompute
                // below would re-raise it instantly, so mask by clamping
                // the offending counts one below the threshold.
                for rac in &mut self.racs {
                    rac.count = rac.count.min(self.config.ath - 1);
                }
                was
            }
            EngineFault::StuckEntry { slot } => {
                let slot = slot % self.racs.len();
                let changed = self.racs[slot].count != 0;
                self.racs[slot] = Rac::default();
                changed
            }
        };
        let alert_was = self.alert_pending;
        self.max_count = self.racs.iter().map(|r| r.count).max().unwrap_or(0);
        self.alert_pending = alert_was || self.max_count >= self.config.ath;
        changed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::testing::assert_horizon_sound;

    fn engine() -> AbacusEngine {
        AbacusEngine::new(AbacusConfig::paper_default())
    }

    #[test]
    fn shared_counter_aggregates_the_group() {
        let mut a = engine();
        // Rows 3 and 3+512 share a RAC under the paper-default table.
        a.on_precharge_update(RowId::new(3), ActCount::ZERO);
        a.on_precharge_update(RowId::new(3 + 512), ActCount::ZERO);
        assert_eq!(a.group_count(RowId::new(3)), 2);
        assert_eq!(a.group_count(RowId::new(3 + 512)), 2);
    }

    #[test]
    fn alert_at_threshold_and_reset_on_mitigation() {
        let mut a = engine();
        for i in 0..64u32 {
            assert!(!a.alert_pending(), "early alert at {i}");
            a.on_precharge_update(RowId::new(7), ActCount::ZERO);
        }
        assert!(a.alert_pending());
        let row = a.select_alert_mitigation().expect("hot row selected");
        assert_eq!(row, RowId::new(7), "most recent aggressor of the group");
        a.on_mitigation_complete(row);
        assert!(!a.alert_pending());
        assert_eq!(a.group_count(RowId::new(7)), 0);
    }

    #[test]
    fn floor_gates_proactive_mitigation() {
        let mut a = engine();
        for _ in 0..31 {
            a.on_precharge_update(RowId::new(5), ActCount::ZERO);
        }
        assert_eq!(a.select_ref_mitigation(), None);
        a.on_precharge_update(RowId::new(5), ActCount::ZERO);
        assert_eq!(a.select_ref_mitigation(), Some(RowId::new(5)));
    }

    #[test]
    fn window_wrap_resets_the_table() {
        let mut a = engine();
        for _ in 0..40 {
            a.on_precharge_update(RowId::new(9), ActCount::ZERO);
        }
        a.on_refresh_group(512..520, &mut |_| ActCount::ZERO);
        assert_eq!(a.group_count(RowId::new(9)), 40, "mid-window REF is inert");
        a.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        assert_eq!(a.group_count(RowId::new(9)), 0, "window wrap clears RACs");
    }

    #[test]
    fn horizon_counts_down_with_the_max() {
        let mut a = engine();
        assert_eq!(a.min_acts_to_alert(), 64);
        for i in 0..10 {
            a.on_precharge_update(RowId::new(1), ActCount::ZERO);
            assert_eq!(a.min_acts_to_alert(), 64 - i - 1);
        }
    }

    #[test]
    fn horizon_is_sound_under_replay() {
        // Aliased rows (stride = table size) concentrate pressure on few
        // RACs — the worst case for a shared-counter bound.
        let acts: Vec<RowId> = (0..4000u32)
            .map(|i| RowId::new((i % 7) * 512 + (i % 3)))
            .collect();
        assert_horizon_sound(&mut engine(), &acts, 4096);
        let small = AbacusEngine::new(AbacusConfig::small_table());
        assert_horizon_sound(&mut { small }, &acts, 4096);
    }

    #[test]
    fn sram_cost_amortizes_across_banks() {
        // 512 RACs × 4 B / 16 banks = 128 B per bank.
        assert_eq!(engine().sram_bytes_per_bank(), 128);
    }

    #[test]
    fn faults_change_state_and_rederive_invariants() {
        let mut a = engine();
        for _ in 0..20 {
            a.on_precharge_update(RowId::new(2), ActCount::ZERO);
        }
        assert!(a.apply_fault(&EngineFault::FlipCounterBit { slot: 2, bit: 6 }));
        assert_eq!(a.group_count(RowId::new(2)), 20 ^ 64);
        assert!(a.apply_fault(&EngineFault::StuckEntry { slot: 2 }));
        assert_eq!(a.group_count(RowId::new(2)), 0);
        for _ in 0..64 {
            a.on_precharge_update(RowId::new(2), ActCount::ZERO);
        }
        assert!(a.alert_pending());
        assert!(a.apply_fault(&EngineFault::LoseAlert));
        assert!(!a.alert_pending(), "alert dropped and masked");
    }
}
