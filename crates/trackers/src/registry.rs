//! The central engine registry: one table mapping engine names to
//! constructors and per-engine config grids.
//!
//! Every surface that selects engines by name — the `repro faults` and
//! `repro recover` sweeps, the cross-mitigation `repro arena`, and the
//! fleet's heterogeneous shard configs — resolves through this module
//! instead of keeping its own `match` over engine names. Adding an
//! engine is therefore one [`EngineSpec`] entry here (plus the engine
//! itself); every sweep, the arena grid, and the CLI validation pick
//! it up automatically.
//!
//! Constructors are plain `fn` pointers over fixed configurations, so
//! a registry build is deterministic: the same name always yields a
//! bit-identical engine (DSAC's stochastic path is seeded by its
//! config, which is part of the spec).

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::MitigationEngine;

use crate::{
    AbacusConfig, AbacusEngine, CncPracConfig, CncPracEngine, CometConfig, CometEngine, DsacConfig,
    DsacEngine, PanopticonConfig, PanopticonEngine,
};

/// A nullary engine constructor. Plain function pointers keep the
/// registry `const`-constructible and trivially `Send + Sync`.
pub type BuildFn = fn() -> Box<dyn MitigationEngine>;

/// One configuration point of an engine's grid.
#[derive(Debug, Clone, Copy)]
pub struct EngineVariant {
    /// Grid label (unique within the engine), e.g. `"default"`.
    pub label: &'static str,
    /// Constructs the engine at this configuration.
    pub build: BuildFn,
}

/// A registered engine: its selection name, a one-line summary, and
/// its config grid (`variants[0]` is the canonical default).
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    /// The name sweeps and CLIs select this engine by.
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// The config grid; never empty, `variants[0]` is the default.
    pub variants: &'static [EngineVariant],
}

impl EngineSpec {
    /// Builds the engine at its default configuration.
    pub fn build(&self) -> Box<dyn MitigationEngine> {
        (self.variants[0].build)()
    }
}

fn moat_default() -> Box<dyn MitigationEngine> {
    Box::new(MoatEngine::new(MoatConfig::paper_default()))
}
fn moat_ath128() -> Box<dyn MitigationEngine> {
    Box::new(MoatEngine::new(MoatConfig::with_ath(128)))
}
fn panopticon_default() -> Box<dyn MitigationEngine> {
    Box::new(PanopticonEngine::new(PanopticonConfig::paper_default()))
}
fn panopticon_drain() -> Box<dyn MitigationEngine> {
    Box::new(PanopticonEngine::new(PanopticonConfig::drain_variant()))
}
fn abacus_default() -> Box<dyn MitigationEngine> {
    Box::new(AbacusEngine::new(AbacusConfig::paper_default()))
}
fn abacus_small() -> Box<dyn MitigationEngine> {
    Box::new(AbacusEngine::new(AbacusConfig::small_table()))
}
fn comet_default() -> Box<dyn MitigationEngine> {
    Box::new(CometEngine::new(CometConfig::paper_default()))
}
fn comet_narrow() -> Box<dyn MitigationEngine> {
    Box::new(CometEngine::new(CometConfig::narrow()))
}
fn dsac_default() -> Box<dyn MitigationEngine> {
    Box::new(DsacEngine::new(DsacConfig::paper_default()))
}
fn dsac_tiny() -> Box<dyn MitigationEngine> {
    Box::new(DsacEngine::new(DsacConfig::tiny_table()))
}
fn cnc_prac_default() -> Box<dyn MitigationEngine> {
    Box::new(CncPracEngine::new(CncPracConfig::paper_default()))
}
fn cnc_prac_low() -> Box<dyn MitigationEngine> {
    Box::new(CncPracEngine::new(CncPracConfig::low_threshold()))
}

/// Every registered engine, in the canonical comparison order.
pub const ENGINES: &[EngineSpec] = &[
    EngineSpec {
        name: "moat",
        summary: "per-row activation counters with ETH/ATH episodes (the paper)",
        variants: &[
            EngineVariant {
                label: "ath64",
                build: moat_default,
            },
            EngineVariant {
                label: "ath128",
                build: moat_ath128,
            },
        ],
    },
    EngineSpec {
        name: "panopticon",
        summary: "8-entry FIFO of threshold crossings, ALERT on overflow",
        variants: &[
            EngineVariant {
                label: "t128",
                build: panopticon_default,
            },
            EngineVariant {
                label: "drain",
                build: panopticon_drain,
            },
        ],
    },
    EngineSpec {
        name: "abacus",
        summary: "all-bank shared activation counters (RAC table)",
        variants: &[
            EngineVariant {
                label: "512c",
                build: abacus_default,
            },
            EngineVariant {
                label: "128c",
                build: abacus_small,
            },
        ],
    },
    EngineSpec {
        name: "comet",
        summary: "count-min-sketch row tracking with counter reset",
        variants: &[
            EngineVariant {
                label: "4x256",
                build: comet_default,
            },
            EngineVariant {
                label: "4x64",
                build: comet_narrow,
            },
        ],
    },
    EngineSpec {
        name: "dsac",
        summary: "stochastic-replacement approximate counting (seeded)",
        variants: &[
            EngineVariant {
                label: "16e",
                build: dsac_default,
            },
            EngineVariant {
                label: "4e",
                build: dsac_tiny,
            },
        ],
    },
    EngineSpec {
        name: "cnc-prac",
        summary: "coalescing service queue over PRAC counters",
        variants: &[
            EngineVariant {
                label: "t128",
                build: cnc_prac_default,
            },
            EngineVariant {
                label: "t64",
                build: cnc_prac_low,
            },
        ],
    },
];

/// The env var overriding the arena's engine selection (same grammar
/// as `repro arena --engines`: a comma-separated list of names).
pub const ENV_ENGINES: &str = "MOAT_ARENA_ENGINES";

/// All registered engine names, in comparison order.
pub fn names() -> Vec<&'static str> {
    ENGINES.iter().map(|s| s.name).collect()
}

/// Looks up an engine by its selection name.
pub fn spec(name: &str) -> Option<&'static EngineSpec> {
    ENGINES.iter().find(|s| s.name == name)
}

/// Builds an engine by name at its default configuration.
pub fn build(name: &str) -> Option<Box<dyn MitigationEngine>> {
    spec(name).map(EngineSpec::build)
}

/// Parses a comma-separated engine selection (`"moat,comet"`) against
/// the registry. Rejects unknown names, empty items, and duplicates —
/// eagerly, with messages that name the valid choices.
pub fn parse_selection(list: &str) -> Result<Vec<&'static EngineSpec>, String> {
    let mut selected: Vec<&'static EngineSpec> = Vec::new();
    for item in list.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(format!(
                "empty engine name in selection {list:?} (expected a comma-separated subset of: {})",
                names().join(", ")
            ));
        }
        let Some(spec) = spec(item) else {
            return Err(format!(
                "unknown engine {item:?} (known engines: {})",
                names().join(", ")
            ));
        };
        if selected.iter().any(|s| s.name == spec.name) {
            return Err(format!("engine {item:?} selected twice"));
        }
        selected.push(spec);
    }
    Ok(selected)
}

/// Reads the [`ENV_ENGINES`] override: `Ok(None)` when unset,
/// `Ok(Some(selection))` when set and well-formed, `Err` otherwise
/// (including non-unicode values) — the eager-validation surface
/// `repro` checks before doing any work.
pub fn selection_from_env() -> Result<Option<Vec<&'static EngineSpec>>, String> {
    match std::env::var_os(ENV_ENGINES) {
        None => Ok(None),
        Some(raw) => {
            let Some(value) = raw.to_str() else {
                return Err(format!("{ENV_ENGINES} must be valid unicode"));
            };
            parse_selection(value)
                .map(Some)
                .map_err(|e| format!("{ENV_ENGINES}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_spec_builds_every_variant_with_unique_names() {
        let mut seen = Vec::new();
        for spec in ENGINES {
            assert!(!seen.contains(&spec.name), "duplicate name {}", spec.name);
            seen.push(spec.name);
            assert!(!spec.variants.is_empty(), "{}: empty grid", spec.name);
            let mut labels = Vec::new();
            for v in spec.variants {
                assert!(!labels.contains(&v.label), "{}: dup label", spec.name);
                labels.push(v.label);
                let engine = (v.build)();
                assert!(!engine.name().is_empty());
                assert!(
                    engine.min_acts_to_alert() >= 1,
                    "{}: idle engines promise",
                    spec.name
                );
            }
        }
        assert_eq!(seen.len(), 6, "moat + panopticon + four new engines");
    }

    #[test]
    fn registry_builds_are_deterministic() {
        // Same name, same engine — including DSAC's seeded draw stream.
        use moat_dram::{ActCount, RowId};
        for spec in ENGINES {
            let mut a = spec.build();
            let mut b = spec.build();
            for i in 0..3000u32 {
                let row = RowId::new(i % 23);
                let count = ActCount::new(i / 23 + 1);
                a.on_precharge_update(row, count);
                b.on_precharge_update(row, count);
                assert_eq!(a.alert_pending(), b.alert_pending(), "{}", spec.name);
                assert_eq!(
                    a.min_acts_to_alert(),
                    b.min_acts_to_alert(),
                    "{}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn selection_parses_known_subsets() {
        let sel = parse_selection("moat,cnc-prac").unwrap();
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].name, "moat");
        assert_eq!(sel[1].name, "cnc-prac");
        // Whitespace is tolerated around items.
        assert_eq!(parse_selection(" comet , dsac ").unwrap().len(), 2);
    }

    #[test]
    fn selection_rejects_malformed_lists() {
        for bad in ["", "moat,", ",moat", "moat,,comet", "tortuga", "moat,moat"] {
            assert!(parse_selection(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn env_override_is_validated() {
        // The env surface is exercised end-to-end (exit 2) by the
        // `repro` CLI tests; here just the unset fast path.
        if std::env::var_os(ENV_ENGINES).is_none() {
            assert!(selection_from_env().unwrap().is_none());
        }
    }
}
