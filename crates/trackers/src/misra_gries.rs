//! A Misra–Gries frequent-items tracker in the spirit of Graphene (§8),
//! representing the "low-cost SRAM tracker" class of Fig. 1(a).
//!
//! Graphene keeps a small table of (row, count) pairs maintained with the
//! Misra–Gries algorithm: a hit increments the entry, a miss with a free
//! slot inserts, and a miss with a full table decrements every entry
//! (evicting zeros). The table guarantees that any row activated more than
//! `N / (entries + 1)` times is present — but with few entries the bound is
//! weak, and with *very* few entries (TRR-like) the tracker is thrashable,
//! which is how TRRespass and Blacksmith break deployed designs.

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, MitigationEngine, RowId};

/// A Misra–Gries summary tracker for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::MisraGriesTracker;
///
/// let mut t = MisraGriesTracker::new(4, 32);
/// for _ in 0..40 {
///     t.on_precharge_update(RowId::new(9), ActCount::ZERO);
/// }
/// assert_eq!(t.select_ref_mitigation(), Some(RowId::new(9)));
/// ```
#[derive(Debug, Clone)]
pub struct MisraGriesTracker {
    /// Cached display name (`name()` is allocation-free).
    name: String,
    entries: Vec<(RowId, u32)>,
    capacity: usize,
    /// Counts below this are not worth a mitigation slot.
    mitigation_floor: u32,
}

impl MisraGriesTracker {
    /// Creates a tracker with `capacity` table entries; rows are only
    /// selected for mitigation once their tracked count reaches
    /// `mitigation_floor`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, mitigation_floor: u32) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        MisraGriesTracker {
            name: format!("misra-gries-{capacity}e"),
            entries: Vec::with_capacity(capacity),
            capacity,
            mitigation_floor,
        }
    }

    /// Current table contents (row, tracked count).
    pub fn entries(&self) -> &[(RowId, u32)] {
        &self.entries
    }
}

impl MitigationEngine for MisraGriesTracker {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_precharge_update(&mut self, row: RowId, _counter: ActCount) {
        if let Some(e) = self.entries.iter_mut().find(|(r, _)| *r == row) {
            e.1 += 1;
        } else if self.entries.len() < self.capacity {
            self.entries.push((row, 1));
        } else {
            // Decrement-all: the Misra–Gries spillover step.
            for e in &mut self.entries {
                e.1 -= 1;
            }
            self.entries.retain(|&(_, c)| c > 0);
        }
    }

    fn alert_pending(&self) -> bool {
        false
    }

    fn min_acts_to_alert(&self) -> u64 {
        u64::MAX // never alerts: the batching horizon is unbounded.
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        let (idx, _) = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c >= self.mitigation_floor)
            .max_by_key(|(_, (_, c))| *c)?;
        Some(self.entries.swap_remove(idx).0)
    }

    // select_alert_mitigation / on_mitigation_complete: trait defaults.
    // The tracker never alerts, so ALERT-time selection is unreachable,
    // and entries are already removed at selection time.

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        self.entries.retain(|&(r, _)| !rows.contains(&r.index()));
    }

    fn resets_counters_on_refresh(&self) -> bool {
        true
    }

    fn sram_bytes_per_bank(&self) -> usize {
        self.capacity * 3
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_increments_miss_inserts() {
        let mut t = MisraGriesTracker::new(2, 1);
        t.on_precharge_update(RowId::new(1), ActCount::ZERO);
        t.on_precharge_update(RowId::new(1), ActCount::ZERO);
        t.on_precharge_update(RowId::new(2), ActCount::ZERO);
        assert_eq!(t.entries(), &[(RowId::new(1), 2), (RowId::new(2), 1)]);
    }

    #[test]
    fn full_table_decrements_all() {
        let mut t = MisraGriesTracker::new(2, 1);
        t.on_precharge_update(RowId::new(1), ActCount::ZERO);
        t.on_precharge_update(RowId::new(2), ActCount::ZERO);
        t.on_precharge_update(RowId::new(3), ActCount::ZERO);
        // Both entries dropped to 0 and were evicted; row 3 not inserted.
        assert!(t.entries().is_empty());
    }

    #[test]
    fn heavy_hitter_survives_thrashing() {
        let mut t = MisraGriesTracker::new(4, 1);
        for i in 0..200u32 {
            t.on_precharge_update(RowId::new(0), ActCount::ZERO);
            t.on_precharge_update(RowId::new(1 + (i % 50)), ActCount::ZERO);
        }
        assert!(t.entries().iter().any(|&(r, _)| r == RowId::new(0)));
        assert_eq!(t.select_ref_mitigation(), Some(RowId::new(0)));
    }

    #[test]
    fn floor_prevents_premature_mitigation() {
        let mut t = MisraGriesTracker::new(4, 10);
        for _ in 0..9 {
            t.on_precharge_update(RowId::new(5), ActCount::ZERO);
        }
        assert_eq!(t.select_ref_mitigation(), None);
        t.on_precharge_update(RowId::new(5), ActCount::ZERO);
        assert_eq!(t.select_ref_mitigation(), Some(RowId::new(5)));
    }

    #[test]
    fn refresh_drops_covered_entries() {
        let mut t = MisraGriesTracker::new(4, 1);
        t.on_precharge_update(RowId::new(3), ActCount::ZERO);
        t.on_precharge_update(RowId::new(9), ActCount::ZERO);
        t.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        assert_eq!(t.entries(), &[(RowId::new(9), 1)]);
    }
}
