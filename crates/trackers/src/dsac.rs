//! The DSAC stochastic-approximate tracker (PAPERS.md: "DSAC:
//! Low-Cost Rowhammer Mitigation Using In-DRAM Stochastic and
//! Approximate Counting Algorithm", arXiv 2302.03591).
//!
//! DSAC keeps a small table of (row, count) entries like a
//! frequent-items summary, but replaces the deterministic eviction of
//! Misra–Gries/CBT designs with *stochastic replacement*: a miss on a
//! full table replaces the minimum-count entry only with probability
//! `1 / (min + 1)`, and the inserted row inherits `min + 1`. Decoy
//! rows that thrash a deterministic tracker now lose the coin flip
//! almost every time, while a genuinely hot row eventually wins one
//! and then counts deterministically. The draws come from a SplitMix64
//! stream seeded at construction, so a DSAC engine is bit-reproducible
//! from its seed — and its horizon bound holds for *every* draw
//! sequence, so soundness never depends on the randomness.

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, EngineFault, MitigationEngine, RowId};

/// Configuration of a DSAC bank tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DsacConfig {
    /// Table entries per bank.
    pub entries: usize,
    /// Alert threshold: an entry reaching this count raises ALERT.
    pub ath: u32,
    /// Entries at or above this count are worth a REF-time slot.
    pub mitigation_floor: u32,
    /// Seed of the replacement-draw stream.
    pub seed: u64,
}

impl DsacConfig {
    /// A default comparable to MOAT's ATH=64 operating point.
    pub const fn paper_default() -> Self {
        DsacConfig {
            entries: 16,
            ath: 64,
            mitigation_floor: 32,
            seed: 0xD5AC,
        }
    }

    /// A TRR-sized tiny table, thrashable in the deterministic designs
    /// DSAC improves on.
    pub const fn tiny_table() -> Self {
        DsacConfig {
            entries: 4,
            ath: 64,
            mitigation_floor: 32,
            seed: 0xD5AC,
        }
    }

    /// The same table with a different draw stream.
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for DsacConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The DSAC engine for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::{DsacConfig, DsacEngine};
///
/// let mut d = DsacEngine::new(DsacConfig::paper_default());
/// for _ in 0..64 {
///     d.on_precharge_update(RowId::new(9), ActCount::ZERO);
/// }
/// assert!(d.alert_pending());
/// ```
#[derive(Debug, Clone)]
pub struct DsacEngine {
    config: DsacConfig,
    /// Cached display name (`name()` is allocation-free).
    name: String,
    entries: Vec<(RowId, u32)>,
    /// SplitMix64 state of the replacement-draw stream.
    rng_state: u64,
    /// Incrementally maintained maximum entry count.
    max_count: u32,
    alert_pending: bool,
    /// Misses that lost the replacement coin flip (observability).
    rejected_replacements: u64,
}

impl DsacEngine {
    /// Creates a DSAC engine.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `ath` is zero.
    pub fn new(config: DsacConfig) -> Self {
        assert!(config.entries > 0, "table must have entries");
        assert!(config.ath > 0, "alert threshold must be non-zero");
        DsacEngine {
            config,
            name: format!("dsac-{}e-ath{}", config.entries, config.ath),
            entries: Vec::with_capacity(config.entries),
            rng_state: config.seed,
            max_count: 0,
            alert_pending: false,
            rejected_replacements: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DsacConfig {
        &self.config
    }

    /// Current table contents (row, tracked count).
    pub fn entries(&self) -> &[(RowId, u32)] {
        &self.entries
    }

    /// Misses that lost the replacement coin flip so far.
    pub fn rejected_replacements(&self) -> u64 {
        self.rejected_replacements
    }

    /// One SplitMix64 draw.
    fn next_draw(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn recompute(&mut self) {
        self.max_count = self.entries.iter().map(|&(_, c)| c).max().unwrap_or(0);
        self.alert_pending = self.max_count >= self.config.ath;
    }
}

impl MitigationEngine for DsacEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_precharge_update(&mut self, row: RowId, _counter: ActCount) {
        if let Some(e) = self.entries.iter_mut().find(|(r, _)| *r == row) {
            e.1 = e.1.saturating_add(1);
            if e.1 > self.max_count {
                self.max_count = e.1;
            }
            if e.1 >= self.config.ath {
                self.alert_pending = true;
            }
        } else if self.entries.len() < self.config.entries {
            self.entries.push((row, 1));
            self.max_count = self.max_count.max(1);
            if self.config.ath == 1 {
                self.alert_pending = true;
            }
        } else {
            // Stochastic replacement: evict the minimum-count entry with
            // probability 1 / (min + 1); the new row inherits min + 1, so
            // the count an evicted aggressor may have reached stays
            // over-approximated (never forgotten downward).
            let (idx, min) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, c))| c)
                .map(|(i, &(_, c))| (i, c))
                .expect("table is full, hence non-empty");
            let span = u64::from(min) + 1;
            if self.next_draw().is_multiple_of(span) {
                let new_count = min.saturating_add(1);
                self.entries[idx] = (row, new_count);
                if new_count > self.max_count {
                    self.max_count = new_count;
                }
                if new_count >= self.config.ath {
                    self.alert_pending = true;
                }
            } else {
                self.rejected_replacements += 1;
            }
        }
    }

    fn alert_pending(&self) -> bool {
        self.alert_pending
    }

    /// One ACT raises the table's maximum count by at most one — a hit
    /// increments a single entry, an insert starts at one, and a
    /// stochastic replacement inherits `min + 1 <= max + 1` — so with
    /// the maximum at `m`, no entry can reach `ath` for the next
    /// `ath - m` activations, **regardless of how the replacement
    /// draws fall**. The bound is sound for every seed.
    fn min_acts_to_alert(&self) -> u64 {
        if self.alert_pending {
            return 0;
        }
        u64::from(self.config.ath.saturating_sub(self.max_count)).max(1)
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        let (idx, _) = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c >= self.config.mitigation_floor)
            .max_by_key(|(_, (_, c))| *c)?;
        Some(self.entries[idx].0)
    }

    fn on_mitigation_complete(&mut self, row: RowId) {
        self.entries.retain(|&(r, _)| r != row);
        self.recompute();
    }

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        // New tREFW window (the contiguous refresh engine wraps to row
        // 0): mitigated-or-not, last window's pressure is spent.
        if rows.start == 0 {
            self.entries.clear();
            self.recompute();
        }
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        false // the table, not the in-array PRAC counter, is the tracker.
    }

    fn sram_bytes_per_bank(&self) -> usize {
        // 2-byte tag + 2-byte count per entry, plus the 8-byte LFSR/
        // draw state.
        self.config.entries * 4 + 8
    }

    /// Table entries are SRAM: `FlipCounterBit` flips a count bit,
    /// `StuckEntry` clears the slot, `LoseAlert` drops the pending
    /// request (masking counts below the threshold so the cleared flag
    /// sticks). The draw stream is untouched — SEUs hit storage, not
    /// the generator.
    fn apply_fault(&mut self, fault: &EngineFault) -> bool {
        let changed = match *fault {
            EngineFault::FlipCounterBit { slot, bit } => {
                if self.entries.is_empty() {
                    return false;
                }
                let slot = slot % self.entries.len();
                self.entries[slot].1 ^= 1 << (bit % 16);
                true
            }
            EngineFault::LoseAlert => {
                let was = self.alert_pending;
                for e in &mut self.entries {
                    e.1 = e.1.min(self.config.ath - 1);
                }
                self.recompute();
                self.alert_pending = false;
                return was;
            }
            EngineFault::StuckEntry { slot } => {
                if self.entries.is_empty() {
                    return false;
                }
                let slot = slot % self.entries.len();
                let changed = self.entries[slot].1 != 0;
                self.entries[slot].1 = 0;
                changed
            }
        };
        let alert_was = self.alert_pending;
        self.recompute();
        self.alert_pending = alert_was || self.max_count >= self.config.ath;
        changed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::testing::assert_horizon_sound;

    fn engine() -> DsacEngine {
        DsacEngine::new(DsacConfig::paper_default())
    }

    #[test]
    fn hit_counts_deterministically() {
        let mut d = engine();
        for i in 0..64u32 {
            assert!(!d.alert_pending(), "early alert at {i}");
            d.on_precharge_update(RowId::new(9), ActCount::ZERO);
        }
        assert!(d.alert_pending());
        assert_eq!(d.select_ref_mitigation(), Some(RowId::new(9)));
    }

    #[test]
    fn replacement_is_stochastic_but_bounded() {
        let mut d = DsacEngine::new(DsacConfig::tiny_table());
        // Fill the table, then spray misses: some are rejected (the
        // stochastic part), none may push a count past min + 1.
        for r in 0..4u32 {
            d.on_precharge_update(RowId::new(r), ActCount::ZERO);
        }
        for r in 100..600u32 {
            let before = d.entries().iter().map(|&(_, c)| c).max().unwrap();
            d.on_precharge_update(RowId::new(r), ActCount::ZERO);
            let after = d.entries().iter().map(|&(_, c)| c).max().unwrap();
            assert!(after <= before + 1, "max may only creep by 1 per ACT");
        }
        assert!(
            d.rejected_replacements() > 0,
            "coin flips must lose sometimes"
        );
    }

    #[test]
    fn same_seed_same_trajectory_different_seed_diverges() {
        let run = |seed: u64| {
            let mut d = DsacEngine::new(DsacConfig::tiny_table().with_seed(seed));
            for i in 0..2000u32 {
                d.on_precharge_update(RowId::new(i % 37), ActCount::ZERO);
            }
            (d.entries().to_vec(), d.rejected_replacements())
        };
        assert_eq!(run(1), run(1), "seeded stochastic path is deterministic");
        assert_ne!(
            run(1),
            run(2),
            "different seeds must explore different replacements"
        );
    }

    #[test]
    fn mitigation_frees_the_slot() {
        let mut d = engine();
        for _ in 0..40 {
            d.on_precharge_update(RowId::new(3), ActCount::ZERO);
        }
        let row = d.select_ref_mitigation().unwrap();
        d.on_mitigation_complete(row);
        assert!(d.entries().iter().all(|&(r, _)| r != RowId::new(3)));
        assert_eq!(d.select_ref_mitigation(), None);
    }

    #[test]
    fn window_wrap_clears_the_table() {
        let mut d = engine();
        for _ in 0..40 {
            d.on_precharge_update(RowId::new(3), ActCount::ZERO);
        }
        d.on_refresh_group(8..16, &mut |_| ActCount::ZERO);
        assert!(!d.entries().is_empty(), "mid-window REF is inert");
        d.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        assert!(d.entries().is_empty());
        assert_eq!(d.min_acts_to_alert(), 64);
    }

    #[test]
    fn horizon_is_sound_for_every_seed() {
        // The bound must hold regardless of the draw stream: check a
        // thrashing mix under several seeds, including the tiny table
        // where replacements are constant.
        let acts: Vec<RowId> = (0..4000u32)
            .map(|i| {
                if i % 4 == 0 {
                    RowId::new(7)
                } else {
                    RowId::new(50 + i % 131)
                }
            })
            .collect();
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut d = DsacEngine::new(DsacConfig::paper_default().with_seed(seed));
            assert_horizon_sound(&mut d, &acts, 4096);
            let mut tiny = DsacEngine::new(DsacConfig::tiny_table().with_seed(seed));
            assert_horizon_sound(&mut tiny, &acts, 4096);
        }
    }

    #[test]
    fn sram_cost_counts_table_and_draw_state() {
        // 16 entries × 4 B + 8 B = 72 B.
        assert_eq!(engine().sram_bytes_per_bank(), 72);
    }

    #[test]
    fn faults_change_state_and_rederive_invariants() {
        let mut d = engine();
        for _ in 0..64 {
            d.on_precharge_update(RowId::new(2), ActCount::ZERO);
        }
        assert!(d.alert_pending());
        assert!(d.apply_fault(&EngineFault::LoseAlert));
        assert!(!d.alert_pending());
        assert!(d.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 10 }));
        assert!(d.apply_fault(&EngineFault::StuckEntry { slot: 0 }));
        assert_eq!(d.entries()[0].1, 0);
    }
}
