//! The CoMeT count-min-sketch tracker (PAPERS.md: "CoMeT: Count-Min-
//! Sketch-based Row Tracking to Mitigate RowHammer at Low Cost",
//! arXiv 2402.18769).
//!
//! CoMeT replaces per-row counters with a count-min sketch: `depth`
//! hash rows of `width` counters each; an activation increments one
//! counter per hash row, and a row's estimate is the *minimum* of its
//! `depth` counters. The estimate over-approximates the true count
//! (hash collisions only inflate it), so acting on the estimate never
//! misses an aggressor. Crossing the mitigation floor queues the row
//! for proactive mitigation; crossing the alert threshold raises
//! ALERT. Mitigation resets the row's sketch counters (the paper's
//! Counter Reset mechanism).

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, EngineFault, MitigationEngine, RowId};

/// Configuration of a CoMeT bank tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CometConfig {
    /// Hash rows in the sketch (paper: 4).
    pub depth: usize,
    /// Counters per hash row.
    pub width: usize,
    /// Alert threshold on a row's minimum estimate.
    pub ath: u32,
    /// Estimates at or above this enter the proactive mitigation queue.
    pub mitigation_floor: u32,
}

impl CometConfig {
    /// A default comparable to MOAT's ATH=64 operating point.
    pub const fn paper_default() -> Self {
        CometConfig {
            depth: 4,
            width: 256,
            ath: 64,
            mitigation_floor: 32,
        }
    }

    /// A narrow-sketch variant stressing collision inflation.
    pub const fn narrow() -> Self {
        CometConfig {
            depth: 4,
            width: 64,
            ath: 64,
            mitigation_floor: 32,
        }
    }
}

impl Default for CometConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-depth hash seeds (fixed, so sketches are deterministic and two
/// engines with the same config behave identically).
const HASH_SEEDS: [u64; 8] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0x27D4_EB2F_1656_67C5,
    0x85EB_CA6B_27D4_EB4F,
    0x2545_F491_4F6C_DD1D,
    0xFF51_AFD7_ED55_8CCD,
    0xC4CE_B9FE_1A85_EC53,
];

/// The CoMeT engine for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::{CometConfig, CometEngine};
///
/// let mut c = CometEngine::new(CometConfig::paper_default());
/// for _ in 0..64 {
///     c.on_precharge_update(RowId::new(9), ActCount::ZERO);
/// }
/// assert!(c.alert_pending());
/// assert!(c.estimate(RowId::new(9)) >= 64);
/// ```
#[derive(Debug, Clone)]
pub struct CometEngine {
    config: CometConfig,
    /// Cached display name (`name()` is allocation-free).
    name: String,
    /// Row-major sketch: `counters[d * width + w]`.
    counters: Vec<u32>,
    /// Cached per-depth maximum counter. Maintained as an upper bound:
    /// increments keep it exact, resets leave it stale-high (which only
    /// *shrinks* the advertised horizon — conservative, still sound);
    /// window resets restore exactness.
    depth_max: Vec<u32>,
    /// Rows whose estimate crossed the mitigation floor, awaiting a
    /// proactive slot (deduplicated).
    pending: Vec<RowId>,
    /// Rows whose estimate crossed the alert threshold; ALERT is
    /// pending while non-empty.
    alerting: Vec<RowId>,
}

impl CometEngine {
    /// Creates a CoMeT engine.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds the seed pool, if `width`
    /// is zero, or if `ath` is zero.
    pub fn new(config: CometConfig) -> Self {
        assert!(
            config.depth > 0 && config.depth <= HASH_SEEDS.len(),
            "depth must be in 1..={}",
            HASH_SEEDS.len()
        );
        assert!(config.width > 0, "width must be non-zero");
        assert!(config.ath > 0, "alert threshold must be non-zero");
        CometEngine {
            config,
            name: format!("comet-{}x{}-ath{}", config.depth, config.width, config.ath),
            counters: vec![0; config.depth * config.width],
            depth_max: vec![0; config.depth],
            pending: Vec::new(),
            alerting: Vec::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &CometConfig {
        &self.config
    }

    /// The sketch's estimate (minimum over hash rows) for `row`.
    pub fn estimate(&self, row: RowId) -> u32 {
        (0..self.config.depth)
            .map(|d| self.counters[d * self.config.width + self.index(d, row)])
            .min()
            .unwrap_or(0)
    }

    #[inline]
    fn index(&self, depth: usize, row: RowId) -> usize {
        // FNV-1a over the row index, salted per depth.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ HASH_SEEDS[depth];
        for byte in row.index().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (h % self.config.width as u64) as usize
    }

    /// The sketch-wide estimate bound: no row's estimate can exceed the
    /// minimum over depths of that depth's maximum counter.
    fn global_estimate_cap(&self) -> u32 {
        self.depth_max.iter().copied().min().unwrap_or(0)
    }

    /// Zeroes `row`'s counters in every hash row (the Counter Reset a
    /// completed mitigation performs) and drops it from both queues.
    fn reset_row(&mut self, row: RowId) {
        for d in 0..self.config.depth {
            let idx = d * self.config.width + self.index(d, row);
            self.counters[idx] = 0;
            // depth_max deliberately not recomputed: stale-high is a
            // sound (conservative) horizon, and exactness returns at the
            // next window reset.
        }
        self.pending.retain(|&r| r != row);
        self.alerting.retain(|&r| r != row);
    }
}

impl MitigationEngine for CometEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_precharge_update(&mut self, row: RowId, _counter: ActCount) {
        let mut estimate = u32::MAX;
        for d in 0..self.config.depth {
            let idx = d * self.config.width + self.index(d, row);
            self.counters[idx] = self.counters[idx].saturating_add(1);
            if self.counters[idx] > self.depth_max[d] {
                self.depth_max[d] = self.counters[idx];
            }
            estimate = estimate.min(self.counters[idx]);
        }
        if estimate >= self.config.mitigation_floor && !self.pending.contains(&row) {
            self.pending.push(row);
        }
        if estimate >= self.config.ath && !self.alerting.contains(&row) {
            self.alerting.push(row);
        }
    }

    fn alert_pending(&self) -> bool {
        !self.alerting.is_empty()
    }

    /// An ALERT needs some row's estimate to reach `ath`. Every
    /// estimate is bounded by the minimum over depths of that depth's
    /// maximum counter (`m`), and one ACT increments each depth's
    /// counters by at most one, so `m` — and with it any estimate —
    /// grows by at most one per ACT: no alert is possible for the next
    /// `ath - m` activations. The cached per-depth maxima are upper
    /// bounds after resets, which only makes the advertised bound
    /// smaller (conservative), never unsound.
    fn min_acts_to_alert(&self) -> u64 {
        if !self.alerting.is_empty() {
            return 0;
        }
        u64::from(self.config.ath.saturating_sub(self.global_estimate_cap())).max(1)
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        // Serve the hottest queued row first; ALERT-time selection
        // (the trait default delegates here) then always clears the
        // worst offender.
        let (idx, _) = self
            .pending
            .iter()
            .enumerate()
            .max_by_key(|(_, &r)| self.estimate(r))?;
        Some(self.pending[idx])
    }

    fn on_mitigation_complete(&mut self, row: RowId) {
        self.reset_row(row);
    }

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        // New tREFW window (the contiguous refresh engine wraps to row
        // 0): clear the sketch and restore exact per-depth maxima.
        if rows.start == 0 {
            self.counters.fill(0);
            self.depth_max.fill(0);
            self.pending.clear();
            self.alerting.clear();
        }
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        false // the sketch, not the in-array PRAC counter, is the tracker.
    }

    fn sram_bytes_per_bank(&self) -> usize {
        // 2-byte counters plus a 2-byte tag per queue slot (the paper's
        // Recent Aggressor Table analogue, sized at one row per depth).
        self.config.depth * self.config.width * 2 + self.config.depth * 2
    }

    /// Sketch counters are SRAM: `FlipCounterBit` flips one bit of one
    /// counter (slot indexes the flat sketch), `StuckEntry` clears a
    /// counter, `LoseAlert` drops the pending rows that crossed the
    /// threshold. Cached maxima are re-derived; the horizon promise
    /// (deliberately) breaks.
    fn apply_fault(&mut self, fault: &EngineFault) -> bool {
        let changed = match *fault {
            EngineFault::FlipCounterBit { slot, bit } => {
                let slot = slot % self.counters.len();
                self.counters[slot] ^= 1 << (bit % 16);
                true
            }
            EngineFault::LoseAlert => {
                let was = !self.alerting.is_empty();
                self.alerting.clear();
                // Mask the counts so recompute cannot instantly re-raise.
                for c in &mut self.counters {
                    *c = (*c).min(self.config.ath - 1);
                }
                was
            }
            EngineFault::StuckEntry { slot } => {
                let slot = slot % self.counters.len();
                let changed = self.counters[slot] != 0;
                self.counters[slot] = 0;
                changed
            }
        };
        for d in 0..self.config.depth {
            self.depth_max[d] = self.counters[d * self.config.width..(d + 1) * self.config.width]
                .iter()
                .copied()
                .max()
                .unwrap_or(0);
        }
        changed
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::testing::assert_horizon_sound;

    fn engine() -> CometEngine {
        CometEngine::new(CometConfig::paper_default())
    }

    #[test]
    fn estimate_never_underestimates() {
        let mut c = engine();
        for _ in 0..40 {
            c.on_precharge_update(RowId::new(3), ActCount::ZERO);
        }
        for _ in 0..10 {
            c.on_precharge_update(RowId::new(77), ActCount::ZERO);
        }
        assert!(c.estimate(RowId::new(3)) >= 40);
        assert!(c.estimate(RowId::new(77)) >= 10);
    }

    #[test]
    fn alert_on_threshold_and_counter_reset_clears_it() {
        let mut c = engine();
        for i in 0..64u32 {
            assert!(!c.alert_pending(), "early alert at {i}");
            c.on_precharge_update(RowId::new(5), ActCount::ZERO);
        }
        assert!(c.alert_pending());
        let row = c.select_alert_mitigation().expect("hot row queued");
        assert_eq!(row, RowId::new(5));
        c.on_mitigation_complete(row);
        assert!(!c.alert_pending());
        assert_eq!(c.estimate(RowId::new(5)), 0);
    }

    #[test]
    fn floor_queues_for_proactive_mitigation() {
        let mut c = engine();
        for _ in 0..32 {
            c.on_precharge_update(RowId::new(11), ActCount::ZERO);
        }
        assert!(!c.alert_pending());
        assert_eq!(c.select_ref_mitigation(), Some(RowId::new(11)));
    }

    #[test]
    fn hottest_pending_row_is_served_first() {
        let mut c = engine();
        for _ in 0..33 {
            c.on_precharge_update(RowId::new(1), ActCount::ZERO);
        }
        for _ in 0..50 {
            c.on_precharge_update(RowId::new(2), ActCount::ZERO);
        }
        assert_eq!(c.select_ref_mitigation(), Some(RowId::new(2)));
    }

    #[test]
    fn window_wrap_clears_the_sketch() {
        let mut c = engine();
        for _ in 0..50 {
            c.on_precharge_update(RowId::new(9), ActCount::ZERO);
        }
        c.on_refresh_group(64..72, &mut |_| ActCount::ZERO);
        assert!(c.estimate(RowId::new(9)) >= 50, "mid-window REF is inert");
        c.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        assert_eq!(c.estimate(RowId::new(9)), 0);
        assert_eq!(c.min_acts_to_alert(), 64);
    }

    #[test]
    fn horizon_tracks_the_global_estimate_cap() {
        let mut c = engine();
        assert_eq!(c.min_acts_to_alert(), 64);
        for i in 0..20 {
            c.on_precharge_update(RowId::new(4), ActCount::ZERO);
            assert_eq!(c.min_acts_to_alert(), 64 - i - 1);
        }
    }

    #[test]
    fn horizon_is_sound_under_replay() {
        // A few heavily hammered rows plus a spray of colliders.
        let acts: Vec<RowId> = (0..4000u32)
            .map(|i| {
                if i % 3 == 0 {
                    RowId::new(i % 5)
                } else {
                    RowId::new(100 + i % 97)
                }
            })
            .collect();
        assert_horizon_sound(&mut engine(), &acts, 4096);
        assert_horizon_sound(&mut CometEngine::new(CometConfig::narrow()), &acts, 4096);
    }

    #[test]
    fn sram_cost_is_the_sketch() {
        // 4 × 256 counters × 2 B + 4 × 2 B tags = 2056 B.
        assert_eq!(engine().sram_bytes_per_bank(), 2056);
    }

    #[test]
    fn faults_perturb_counters_and_rederive_caps() {
        let mut c = engine();
        for _ in 0..64 {
            c.on_precharge_update(RowId::new(8), ActCount::ZERO);
        }
        assert!(c.alert_pending());
        assert!(c.apply_fault(&EngineFault::LoseAlert));
        assert!(!c.alert_pending());
        assert!(c.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 3 }));
        let _ = c.apply_fault(&EngineFault::StuckEntry { slot: 0 });
        assert_eq!(c.counters[0], 0);
    }
}
