//! The CnC-PRAC coalescing queue (PAPERS.md: "Chronus / Counter-and-
//! Coalesce PRAC", arXiv 2506.11970): a PRAC-based design that fixes
//! Panopticon's queue-pressure problem by *coalescing* repeat
//! enqueues.
//!
//! Like Panopticon, a row whose PRAC counter crosses a multiple of the
//! queueing threshold enters a small per-bank service queue, and ALERT
//! is asserted on overflow. Unlike Panopticon, a crossing by a row
//! that is *already enqueued* merges into its existing entry (a
//! per-entry crossing count), consuming no slot — so a single hot row
//! can never fill the queue by itself, and one mitigation services all
//! of a row's accumulated crossings at once. Mitigation also resets
//! the row's PRAC counter, restarting its threshold climb from zero.

use core::any::Any;

use moat_dram::{ActCount, EngineFault, IntegrityReport, MitigationEngine, RowId};

/// Configuration of a CnC-PRAC bank tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CncPracConfig {
    /// Service-queue entries per bank.
    pub queue_entries: usize,
    /// Queueing threshold: a row enters (or coalesces into) the queue
    /// each time its counter crosses a multiple of this value.
    pub queue_threshold: u32,
}

impl CncPracConfig {
    /// Panopticon-comparable default: 8 entries, threshold 128.
    pub const fn paper_default() -> Self {
        CncPracConfig {
            queue_entries: 8,
            queue_threshold: 128,
        }
    }

    /// A twitchier low-threshold variant (earlier service, more queue
    /// pressure from distinct rows).
    pub const fn low_threshold() -> Self {
        CncPracConfig {
            queue_entries: 8,
            queue_threshold: 64,
        }
    }
}

impl Default for CncPracConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One queue entry: the aggressor row and how many threshold crossings
/// have coalesced into it since it was enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    row: RowId,
    crossings: u32,
}

/// The CnC-PRAC engine for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::{CncPracConfig, CncPracEngine};
///
/// let mut e = CncPracEngine::new(CncPracConfig::paper_default());
/// e.on_precharge_update(RowId::new(3), ActCount::new(128));
/// e.on_precharge_update(RowId::new(3), ActCount::new(256));
/// // Both crossings coalesced into one slot:
/// assert_eq!(e.queue_len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CncPracEngine {
    config: CncPracConfig,
    /// Cached display name (`name()` is allocation-free).
    name: String,
    queue: Vec<QueueEntry>,
    alert_pending: bool,
    /// Crossings that found the queue full with no entry to coalesce
    /// into (each raises ALERT).
    overflow_drops: u64,
    /// Crossings absorbed into existing entries.
    coalesced: u64,
}

impl CncPracEngine {
    /// Creates a CnC-PRAC engine.
    ///
    /// # Panics
    ///
    /// Panics if `queue_entries` or `queue_threshold` is zero.
    pub fn new(config: CncPracConfig) -> Self {
        assert!(config.queue_entries > 0, "queue must have entries");
        assert!(config.queue_threshold > 0, "threshold must be non-zero");
        CncPracEngine {
            config,
            name: format!(
                "cnc-prac-{}e-t{}",
                config.queue_entries, config.queue_threshold
            ),
            queue: Vec::with_capacity(config.queue_entries),
            alert_pending: false,
            overflow_drops: 0,
            coalesced: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &CncPracConfig {
        &self.config
    }

    /// Number of occupied queue slots (distinct rows).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Crossings absorbed by coalescing so far.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Crossings dropped on overflow so far.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    /// Pops the entry with the most coalesced crossings (ties to the
    /// oldest), relieving overflow pressure.
    fn pop_hottest(&mut self) -> Option<RowId> {
        let (idx, _) = self
            .queue
            .iter()
            .enumerate()
            .max_by_key(|(i, e)| (e.crossings, usize::MAX - i))?;
        let entry = self.queue.remove(idx);
        self.alert_pending = false;
        Some(entry.row)
    }
}

impl MitigationEngine for CncPracEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_precharge_update(&mut self, row: RowId, counter: ActCount) {
        let c = counter.get();
        if c == 0 || !c.is_multiple_of(self.config.queue_threshold) {
            return;
        }
        if let Some(entry) = self.queue.iter_mut().find(|e| e.row == row) {
            // The coalescing step: no slot consumed, pressure recorded.
            entry.crossings += 1;
            self.coalesced += 1;
        } else if self.queue.len() < self.config.queue_entries {
            self.queue.push(QueueEntry { row, crossings: 1 });
        } else {
            self.overflow_drops += 1;
            self.alert_pending = true;
        }
    }

    fn alert_pending(&self) -> bool {
        self.alert_pending
    }

    /// Same structure as Panopticon's bound — an ALERT needs a
    /// crossing to find the queue full *and* un-coalesceable, one ACT
    /// causes at most one crossing, and new-row crossings fill free
    /// slots before any can overflow — so with `f` free slots the
    /// earliest ALERT is `f + 1` ACTs out. Coalesced crossings consume
    /// no slot, so in practice the horizon shrinks far slower than
    /// Panopticon's under a concentrated attack.
    fn min_acts_to_alert(&self) -> u64 {
        if self.alert_pending {
            return 0;
        }
        (self.config.queue_entries - self.queue.len()) as u64 + 1
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        self.pop_hottest()
    }

    // select_alert_mitigation: the trait default (same hottest-entry
    // pop) is exactly right here.

    fn resets_counter_on_mitigation(&self) -> bool {
        true // PRAC-based: service restarts the row's threshold climb.
    }

    fn sram_bytes_per_bank(&self) -> usize {
        // 2-byte row tag + 1-byte crossing count per entry.
        self.config.queue_entries * 3
    }

    /// Queue slots are SRAM: `FlipCounterBit` flips a bit of the row
    /// tag at `slot` (the mitigation then services the wrong row),
    /// `StuckEntry` repeats slot 0's entry into `slot` (breaking the
    /// coalescing invariant of one slot per row), `LoseAlert` drops
    /// the pending request.
    fn apply_fault(&mut self, fault: &EngineFault) -> bool {
        match *fault {
            EngineFault::FlipCounterBit { slot, bit } => {
                if self.queue.is_empty() {
                    return false;
                }
                let slot = slot % self.queue.len();
                let tag = self.queue[slot].row.index() ^ (1 << (bit % 16));
                self.queue[slot].row = RowId::new(tag);
                true
            }
            EngineFault::LoseAlert => {
                let was = self.alert_pending;
                self.alert_pending = false;
                was
            }
            EngineFault::StuckEntry { slot } => {
                if self.queue.is_empty() {
                    return false;
                }
                let slot = slot % self.queue.len();
                let front = self.queue[0];
                let changed = self.queue[slot] != front;
                self.queue[slot] = front;
                changed
            }
        }
    }

    /// The queue is small exact state like Panopticon's, so the same
    /// detect-and-restore guard story applies; wiring an exact shadow
    /// is future work, and until then the engine reports unguarded.
    fn integrity_check(&mut self) -> IntegrityReport {
        IntegrityReport::unguarded()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::testing::assert_horizon_sound;

    fn engine() -> CncPracEngine {
        CncPracEngine::new(CncPracConfig::paper_default())
    }

    #[test]
    fn repeat_crossings_coalesce_into_one_slot() {
        let mut e = engine();
        for mult in 1..=5u32 {
            e.on_precharge_update(RowId::new(3), ActCount::new(128 * mult));
        }
        assert_eq!(e.queue_len(), 1);
        assert_eq!(e.coalesced(), 4);
        assert!(!e.alert_pending());
    }

    #[test]
    fn hottest_entry_is_serviced_first() {
        let mut e = engine();
        e.on_precharge_update(RowId::new(1), ActCount::new(128));
        for mult in 1..=3u32 {
            e.on_precharge_update(RowId::new(2), ActCount::new(128 * mult));
        }
        e.on_precharge_update(RowId::new(3), ActCount::new(128));
        assert_eq!(e.select_ref_mitigation(), Some(RowId::new(2)));
        // Ties resolve to the oldest entry (FIFO among equals).
        assert_eq!(e.select_ref_mitigation(), Some(RowId::new(1)));
    }

    #[test]
    fn overflow_needs_distinct_rows_and_alerts() {
        let mut e = engine();
        for r in 0..8u32 {
            e.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert_eq!(e.queue_len(), 8);
        // A repeat crossing still coalesces — full queue, no alert.
        e.on_precharge_update(RowId::new(0), ActCount::new(256));
        assert!(!e.alert_pending());
        // A ninth distinct row overflows.
        e.on_precharge_update(RowId::new(9), ActCount::new(128));
        assert!(e.alert_pending());
        assert_eq!(e.overflow_drops(), 1);
        assert!(e.select_alert_mitigation().is_some());
        assert!(!e.alert_pending());
    }

    #[test]
    fn horizon_is_free_slots_plus_one() {
        let mut e = engine();
        assert_eq!(e.min_acts_to_alert(), 9);
        for r in 0..5u32 {
            e.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert_eq!(e.min_acts_to_alert(), 4);
        // A coalesced crossing does not shrink the horizon.
        e.on_precharge_update(RowId::new(0), ActCount::new(256));
        assert_eq!(e.min_acts_to_alert(), 4);
        assert!(e.select_ref_mitigation().is_some());
        assert_eq!(e.min_acts_to_alert(), 5);
    }

    #[test]
    fn horizon_is_sound_under_replay() {
        // Counters in the replay are real PRAC counts, so crossings
        // happen whenever a hot row's count passes a multiple of the
        // threshold; a spray of distinct rows stresses the slot bound.
        let acts: Vec<RowId> = (0..30_000u32).map(|i| RowId::new(i % 40)).collect();
        assert_horizon_sound(&mut engine(), &acts, 4096);
        let low = CncPracEngine::new(CncPracConfig::low_threshold());
        assert_horizon_sound(&mut { low }, &acts, 4096);
    }

    #[test]
    fn prac_reset_on_service() {
        let e = engine();
        assert!(e.resets_counter_on_mitigation());
        assert_eq!(e.ops_per_mitigation(), 5);
        assert!(!e.resets_counters_on_refresh());
    }

    #[test]
    fn sram_budget() {
        assert_eq!(engine().sram_bytes_per_bank(), 24);
    }

    #[test]
    fn faults_perturb_the_queue() {
        let mut e = engine();
        for r in 0..3u32 {
            e.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert!(e.apply_fault(&EngineFault::FlipCounterBit { slot: 1, bit: 2 }));
        assert!(e.apply_fault(&EngineFault::StuckEntry { slot: 2 }));
        assert!(!e.apply_fault(&EngineFault::LoseAlert), "no alert to lose");
    }
}
