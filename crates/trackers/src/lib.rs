//! # moat-trackers — baseline Rowhammer trackers
//!
//! The mitigation designs the paper compares MOAT against, all implementing
//! [`moat_dram::MitigationEngine`]:
//!
//! * [`PanopticonEngine`] — the 8-entry FIFO queue design that inspired
//!   PRAC+ABO (§3), in both the gradual-mitigation form the paper attacks
//!   with Jailbreak and the Appendix-B drain-on-REF variant; plus
//!   [`randomize_counters`] for the randomized-initialization defense.
//! * [`IdealSramTracker`] — a ProTRR TRR-Ideal-style per-row SRAM tracker,
//!   the "SRAM-optimal" class of Fig. 1(a), bounded by feinting (Table 2).
//! * [`MisraGriesTracker`] — a Graphene-style frequent-items tracker, the
//!   "low-cost SRAM tracker" class of Fig. 1(a).
//!
//! ```
//! use moat_dram::{ActCount, MitigationEngine, RowId};
//! use moat_trackers::{PanopticonConfig, PanopticonEngine};
//!
//! let mut p = PanopticonEngine::new(PanopticonConfig::paper_default());
//! p.on_precharge_update(RowId::new(1), ActCount::new(128));
//! assert_eq!(p.queue_len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ideal;
mod misra_gries;
mod panopticon;

pub use ideal::IdealSramTracker;
pub use misra_gries::MisraGriesTracker;
pub use panopticon::{randomize_counters, PanopticonConfig, PanopticonEngine};
