//! # moat-trackers — the engine zoo
//!
//! The mitigation designs the repo compares MOAT against, all implementing
//! [`moat_dram::MitigationEngine`]:
//!
//! * [`PanopticonEngine`] — the 8-entry FIFO queue design that inspired
//!   PRAC+ABO (§3), in both the gradual-mitigation form the paper attacks
//!   with Jailbreak and the Appendix-B drain-on-REF variant; plus
//!   [`randomize_counters`] for the randomized-initialization defense.
//! * [`AbacusEngine`] — ABACuS-style shared row-activation counters,
//!   amortizing the table across banks (arXiv 2310.09977).
//! * [`CometEngine`] — CoMeT's count-min-sketch row tracking with
//!   counter reset (arXiv 2402.18769).
//! * [`DsacEngine`] — DSAC's stochastic-replacement approximate
//!   counting, bit-reproducible from its seed (arXiv 2302.03591).
//! * [`CncPracEngine`] — a CnC-PRAC coalescing service queue over PRAC
//!   counters (arXiv 2506.11970).
//! * [`IdealSramTracker`] — a ProTRR TRR-Ideal-style per-row SRAM tracker,
//!   the "SRAM-optimal" class of Fig. 1(a), bounded by feinting (Table 2).
//! * [`MisraGriesTracker`] — a Graphene-style frequent-items tracker, the
//!   "low-cost SRAM tracker" class of Fig. 1(a).
//!
//! The [`registry`] module is the single place engines are wired into
//! the sweeps, the cross-mitigation arena, and the fleet: name →
//! constructor × config grid.
//!
//! ```
//! use moat_dram::{ActCount, MitigationEngine, RowId};
//! use moat_trackers::{PanopticonConfig, PanopticonEngine};
//!
//! let mut p = PanopticonEngine::new(PanopticonConfig::paper_default());
//! p.on_precharge_update(RowId::new(1), ActCount::new(128));
//! assert_eq!(p.queue_len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod abacus;
mod cnc_prac;
mod comet;
mod dsac;
mod ideal;
mod misra_gries;
mod panopticon;
pub mod registry;

pub use abacus::{AbacusConfig, AbacusEngine};
pub use cnc_prac::{CncPracConfig, CncPracEngine};
pub use comet::{CometConfig, CometEngine};
pub use dsac::{DsacConfig, DsacEngine};
pub use ideal::IdealSramTracker;
pub use misra_gries::MisraGriesTracker;
pub use panopticon::{randomize_counters, PanopticonConfig, PanopticonEngine};
