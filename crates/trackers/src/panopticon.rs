//! The Panopticon in-DRAM tracker (§3, Appendix B) — the design that
//! inspired the JEDEC PRAC+ABO specifications, and the target of the
//! paper's Jailbreak attack.
//!
//! Each bank has an 8-entry FIFO queue. When a row's free-running PRAC
//! counter toggles the designated threshold bit (every 128 activations for
//! a threshold of 128), the row address — **and only the address, not the
//! counter** — is pushed into the queue. One queue entry is mitigated per
//! mitigation period (4 tREFI at the default rate). ALERT is asserted only
//! on queue overflow.
//!
//! The missing counter in the queue is the design flaw Jailbreak exploits:
//! a row keeps receiving activations *while enqueued*, and Panopticon
//! neither notices nor escalates.

use core::any::Any;
use core::ops::Range;
use std::collections::VecDeque;

use moat_dram::{
    ActCount, Bank, EngineFault, IntegrityReport, MitigationEngine, RefMitigationMode, RowId,
};
use rand::Rng;

/// Configuration of a Panopticon bank tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PanopticonConfig {
    /// Queue entries per bank (paper: 8).
    pub queue_entries: usize,
    /// Queueing threshold: a row enters the queue each time its counter
    /// crosses a multiple of this value (paper: 128, i.e. bit-8 toggles).
    pub queue_threshold: u32,
    /// Appendix-B variant: repurpose each REF to fully drain up to two
    /// queue entries and ALERT until the queue is empty.
    pub drain_on_ref: bool,
}

impl PanopticonConfig {
    /// The paper's default: 8 entries, threshold 128, gradual mitigation.
    pub const fn paper_default() -> Self {
        PanopticonConfig {
            queue_entries: 8,
            queue_threshold: 128,
            drain_on_ref: false,
        }
    }

    /// The Appendix-B "Drain-All-Entries-on-REF" variant.
    pub const fn drain_variant() -> Self {
        PanopticonConfig {
            queue_entries: 8,
            queue_threshold: 128,
            drain_on_ref: true,
        }
    }
}

impl Default for PanopticonConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The armed integrity guard: a full copy of the queue tags plus the
/// ALERT/draining latches. Unlike MOAT's parity-only count shadow, the
/// queue stores bare 2-byte row tags, so the shadow is an exact replica —
/// detected corruption is **restored in place** (ECC-repair semantics)
/// and no row is ever left untrusted. Legitimate mutations re-derive the
/// shadow ([`PanopticonEngine::reguard`]); `apply_fault` deliberately
/// does not.
#[derive(Debug, Clone, Default)]
struct PanopticonGuard {
    queue: Vec<RowId>,
    alert: bool,
    draining: bool,
}

/// The Panopticon engine for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::{PanopticonConfig, PanopticonEngine};
///
/// let mut p = PanopticonEngine::new(PanopticonConfig::paper_default());
/// // A row whose counter crosses a multiple of 128 enters the queue:
/// p.on_precharge_update(RowId::new(3), ActCount::new(128));
/// assert_eq!(p.queue(), &[RowId::new(3)]);
/// // ...but hammering it further while enqueued goes unnoticed:
/// p.on_precharge_update(RowId::new(3), ActCount::new(200));
/// assert!(!p.alert_pending());
/// ```
#[derive(Debug, Clone)]
pub struct PanopticonEngine {
    config: PanopticonConfig,
    /// Cached display name (`name()` is allocation-free).
    name: String,
    queue: VecDeque<RowId>,
    alert_pending: bool,
    /// Whether the drain variant is currently draining via ALERTs.
    draining: bool,
    /// Insertions dropped because the queue was full.
    overflow_drops: u64,
    /// Armed integrity guard (`None` when disarmed — the default).
    guard: Option<PanopticonGuard>,
}

impl PanopticonEngine {
    /// Creates a Panopticon engine.
    ///
    /// # Panics
    ///
    /// Panics if `queue_entries` or `queue_threshold` is zero.
    pub fn new(config: PanopticonConfig) -> Self {
        assert!(config.queue_entries > 0, "queue must have entries");
        assert!(config.queue_threshold > 0, "threshold must be non-zero");
        PanopticonEngine {
            config,
            name: if config.drain_on_ref {
                format!("panopticon-drain-t{}", config.queue_threshold)
            } else {
                format!("panopticon-t{}", config.queue_threshold)
            },
            queue: VecDeque::with_capacity(config.queue_entries),
            alert_pending: false,
            draining: false,
            overflow_drops: 0,
            guard: None,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &PanopticonConfig {
        &self.config
    }

    /// The queue contents in FIFO order (front = next to be mitigated).
    /// Exposed for adaptive attackers per the threat model (§2.1).
    pub fn queue(&self) -> &[RowId] {
        // VecDeque is kept contiguous because we only push_back/pop_front
        // within capacity; make_contiguous is a no-op after the first call.
        self.queue.as_slices().0
    }

    /// Number of enqueued entries.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Insertions dropped on overflow.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    fn pop(&mut self) -> Option<RowId> {
        let row = self.queue.pop_front();
        if self.config.drain_on_ref {
            if self.queue.is_empty() {
                self.draining = false;
            }
            self.alert_pending = self.draining;
        } else {
            // Overflow pressure is relieved once an entry drains.
            self.alert_pending = false;
        }
        self.reguard();
        row
    }

    /// Re-derives the guard shadow from the current queue and latches.
    /// Called at the end of every *legitimate* mutating path — and
    /// pointedly **not** from [`MitigationEngine::apply_fault`], so
    /// injected corruption leaves the shadow stale and detectable. A
    /// no-op while the guard is disarmed.
    #[inline]
    fn reguard(&mut self) {
        if let Some(g) = self.guard.as_mut() {
            g.queue.clear();
            g.queue.extend(self.queue.iter().copied());
            g.alert = self.alert_pending;
            g.draining = self.draining;
        }
    }
}

impl MitigationEngine for PanopticonEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_precharge_update(&mut self, row: RowId, counter: ActCount) {
        // Queue insertion on threshold-bit toggle: counter is a non-zero
        // multiple of the queueing threshold.
        let c = counter.get();
        if c == 0 || !c.is_multiple_of(self.config.queue_threshold) {
            return;
        }
        if self.queue.len() < self.config.queue_entries {
            self.queue.push_back(row);
        } else {
            self.overflow_drops += 1;
            self.alert_pending = true;
        }
        self.reguard();
    }

    fn alert_pending(&self) -> bool {
        self.alert_pending
    }

    /// Panopticon's event horizon is the queue's threshold distance: an
    /// ALERT needs an insertion to overflow a full queue, one ACT causes
    /// at most one threshold crossing (a row's counter crosses at most
    /// one multiple per increment), and crossings fill free slots before
    /// any can overflow — so with `f` free entries the earliest possible
    /// ALERT is `f + 1` activations out. Queue pops only happen at
    /// REF/RFM events, which the batched simulator already treats as
    /// horizon boundaries; likewise the drain variant's REF-time alert
    /// flips inside `on_refresh_group`, behind the REF deadline that
    /// bounds every batched run.
    fn min_acts_to_alert(&self) -> u64 {
        if self.alert_pending {
            return 0;
        }
        (self.config.queue_entries - self.queue.len()) as u64 + 1
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        self.pop()
    }

    fn select_alert_mitigation(&mut self) -> Option<RowId> {
        self.pop()
    }

    fn on_mitigation_complete(&mut self, _row: RowId) {}

    fn on_refresh_group(
        &mut self,
        _rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        if self.config.drain_on_ref && !self.queue.is_empty() {
            // Appendix B: the REF is repurposed for mitigation and ALERTs
            // are issued until the queue drains.
            self.draining = true;
            self.alert_pending = true;
            self.reguard();
        }
    }

    fn resets_counters_on_refresh(&self) -> bool {
        false // Panopticon counters are free-running (§3.1).
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        false // Mitigation refreshes victims; the counter keeps running.
    }

    fn ref_mitigation_mode(&self) -> RefMitigationMode {
        if self.config.drain_on_ref {
            RefMitigationMode::DrainAll
        } else {
            RefMitigationMode::Gradual
        }
    }

    fn sram_bytes_per_bank(&self) -> usize {
        // 8 entries × 2-byte row address.
        self.config.queue_entries * 2
    }

    /// Panopticon's queue stores bare row tags (no counters), so an SEU
    /// lands in an address: `FlipCounterBit` flips one bit of the queued
    /// tag at `slot` — the mitigation then refreshes the wrong row's
    /// victims while the real aggressor keeps hammering. `StuckEntry`
    /// models a stuck FIFO cell by repeating the front entry into `slot`.
    /// The caller picks `bit` low enough that the corrupted tag still
    /// names a real row (see `moat-faults`).
    fn apply_fault(&mut self, fault: &EngineFault) -> bool {
        match *fault {
            EngineFault::FlipCounterBit { slot, bit } => {
                if self.queue.is_empty() {
                    return false;
                }
                let slot = slot % self.queue.len();
                let tag = self.queue[slot].index() ^ (1 << (bit % 16));
                self.queue[slot] = RowId::new(tag);
                true
            }
            EngineFault::LoseAlert => {
                let was = self.alert_pending;
                self.alert_pending = false;
                self.draining = false;
                was
            }
            EngineFault::StuckEntry { slot } => {
                if self.queue.is_empty() {
                    return false;
                }
                let slot = slot % self.queue.len();
                let front = self.queue[0];
                let changed = self.queue[slot] != front;
                self.queue[slot] = front;
                changed
            }
        }
    }

    fn guard_arm(&mut self) -> bool {
        if self.guard.is_none() {
            self.guard = Some(PanopticonGuard::default());
        }
        self.reguard();
        true
    }

    /// Compares the queue and latches against the exact shadow and
    /// **restores** any mismatch in place: a flipped tag is rewritten
    /// from the shadow copy, a lost (or spurious) ALERT/draining latch is
    /// reset to the shadowed value. Everything is repaired, so the
    /// untrusted list stays empty — the caller never needs a conservative
    /// fallback for Panopticon.
    fn integrity_check(&mut self) -> IntegrityReport {
        let Some(guard) = self.guard.take() else {
            return IntegrityReport::unguarded();
        };
        let mut report = IntegrityReport::clean();
        for (i, &shadow_tag) in guard.queue.iter().enumerate() {
            if let Some(slot) = self.queue.get_mut(i) {
                if *slot != shadow_tag {
                    report.detected += 1;
                    report.repaired += 1;
                    *slot = shadow_tag;
                }
            }
        }
        if self.alert_pending != guard.alert || self.draining != guard.draining {
            report.detected += 1;
            report.repaired += 1;
            self.alert_pending = guard.alert;
            self.draining = guard.draining;
        }
        self.guard = Some(guard);
        report
    }

    /// The queue stores no counters, so there is nothing to resync against
    /// the in-array state — the scrub merely re-derives the shadow.
    fn scrub_resync(&mut self, _counter_of: &mut dyn FnMut(RowId) -> ActCount) -> u32 {
        if self.guard.is_none() {
            return 0;
        }
        self.reguard();
        0
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Initializes a bank's PRAC counters uniformly at random in `0..256`
/// (the randomized Panopticon defense of §3.3).
pub fn randomize_counters<R: Rng + ?Sized>(bank: &mut Bank, rng: &mut R) {
    for r in 0..bank.rows() {
        let v: u32 = rng.random_range(0..256);
        bank.set_counter(RowId::new(r), ActCount::new(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::DramConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> PanopticonEngine {
        PanopticonEngine::new(PanopticonConfig::paper_default())
    }

    #[test]
    fn insertion_on_every_multiple_of_threshold() {
        let mut p = engine();
        p.on_precharge_update(RowId::new(1), ActCount::new(127));
        assert_eq!(p.queue_len(), 0);
        p.on_precharge_update(RowId::new(1), ActCount::new(128));
        assert_eq!(p.queue_len(), 1);
        p.on_precharge_update(RowId::new(1), ActCount::new(129));
        assert_eq!(p.queue_len(), 1);
        // A second copy enters at the next multiple (free-running counter).
        p.on_precharge_update(RowId::new(1), ActCount::new(256));
        assert_eq!(p.queue_len(), 2);
        assert_eq!(p.queue(), &[RowId::new(1), RowId::new(1)]);
    }

    #[test]
    fn zero_counter_never_inserts() {
        let mut p = engine();
        p.on_precharge_update(RowId::new(1), ActCount::new(0));
        assert_eq!(p.queue_len(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut p = engine();
        for r in 0..4u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert_eq!(p.select_ref_mitigation(), Some(RowId::new(0)));
        assert_eq!(p.select_ref_mitigation(), Some(RowId::new(1)));
        assert_eq!(p.queue_len(), 2);
    }

    #[test]
    fn overflow_raises_alert_and_drops() {
        let mut p = engine();
        for r in 0..8u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert_eq!(p.queue_len(), 8);
        assert!(!p.alert_pending());
        p.on_precharge_update(RowId::new(9), ActCount::new(128));
        assert!(p.alert_pending());
        assert_eq!(p.overflow_drops(), 1);
        assert_eq!(p.queue_len(), 8, "overflowing entry is dropped");
        // Draining one entry relieves the pressure.
        assert!(p.select_alert_mitigation().is_some());
        assert!(!p.alert_pending());
    }

    #[test]
    fn no_counter_in_queue_means_no_escalation() {
        // The crux of Jailbreak: hammering an enqueued row is invisible.
        let mut p = engine();
        p.on_precharge_update(RowId::new(5), ActCount::new(128));
        for c in 129..256u32 {
            p.on_precharge_update(RowId::new(5), ActCount::new(c));
        }
        assert!(!p.alert_pending());
        assert_eq!(p.queue_len(), 1);
    }

    #[test]
    fn drain_variant_alerts_until_empty() {
        let mut p = PanopticonEngine::new(PanopticonConfig::drain_variant());
        for r in 0..3u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert!(!p.alert_pending(), "drain variant alerts only at REF");
        p.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        assert!(p.alert_pending());
        // Draining: pops until empty, then the alert clears.
        assert!(p.select_ref_mitigation().is_some());
        assert!(p.alert_pending());
        assert!(p.select_ref_mitigation().is_some());
        assert!(p.alert_pending());
        assert!(p.select_alert_mitigation().is_some());
        assert!(!p.alert_pending());
        assert_eq!(p.ref_mitigation_mode(), RefMitigationMode::DrainAll);
    }

    #[test]
    fn randomized_init_is_uniform_0_to_255() {
        let cfg = DramConfig::builder().rows_per_bank(4096).build();
        let mut bank = Bank::new(&cfg);
        let mut rng = StdRng::seed_from_u64(42);
        randomize_counters(&mut bank, &mut rng);
        let counts: Vec<u32> = (0..4096)
            .map(|r| bank.counter(RowId::new(r)).get())
            .collect();
        assert!(counts.iter().all(|&c| c < 256));
        // Roughly a quarter of rows should be "heavy-weight" (192..256).
        let heavy = counts.iter().filter(|&&c| c >= 192).count();
        assert!((800..1250).contains(&heavy), "heavy rows: {heavy}");
    }

    #[test]
    fn sram_budget() {
        assert_eq!(engine().sram_bytes_per_bank(), 16);
    }

    #[test]
    fn horizon_is_queue_threshold_distance() {
        let mut p = engine();
        // Empty queue, 8 entries: 8 fills + 1 overflow = 9 ACTs minimum.
        assert_eq!(p.min_acts_to_alert(), 9);
        for r in 0..5u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
            assert_eq!(p.min_acts_to_alert(), 9 - u64::from(r) - 1);
        }
        // Draining an entry widens the horizon again.
        assert!(p.select_ref_mitigation().is_some());
        assert_eq!(p.min_acts_to_alert(), 5);
        // Overflow: pending alert means no guarantee at all.
        for r in 5..9u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        p.on_precharge_update(RowId::new(99), ActCount::new(128));
        assert!(p.alert_pending());
        assert_eq!(p.min_acts_to_alert(), 0);
    }

    #[test]
    fn horizon_is_sound_under_adversarial_crossings() {
        // The horizon invariant: with `n = min_acts_to_alert()`, the flag
        // stays false for any k < n further ACTs — even when every ACT is
        // a fresh threshold crossing (counters pre-seeded one below a
        // multiple, the randomized-init worst case).
        let mut p = engine();
        loop {
            let n = p.min_acts_to_alert();
            assert!(n >= 1);
            for k in 0..n - 1 {
                p.on_precharge_update(RowId::new(1000 + k as u32), ActCount::new(128));
                assert!(!p.alert_pending(), "alert before the horizon: k={k} n={n}");
            }
            // The horizon's last ACT may (here: does) trip the alert.
            p.on_precharge_update(RowId::new(2000), ActCount::new(128));
            if p.alert_pending() {
                break;
            }
        }
    }

    #[test]
    fn disarmed_guard_is_inert() {
        let mut p = engine();
        p.on_precharge_update(RowId::new(1), ActCount::new(128));
        assert!(!p.integrity_check().guarded);
        assert_eq!(p.scrub_resync(&mut |_| ActCount::ZERO), 0);
    }

    #[test]
    fn guard_restores_flipped_queue_tag() {
        let mut p = engine();
        assert!(p.guard_arm());
        p.on_precharge_update(RowId::new(5), ActCount::new(128));
        assert_eq!(p.integrity_check(), IntegrityReport::clean());
        assert!(p.apply_fault(&EngineFault::FlipCounterBit { slot: 0, bit: 3 }));
        assert_ne!(p.queue()[0], RowId::new(5));
        let report = p.integrity_check();
        assert_eq!(report.detected, 1);
        assert_eq!(report.repaired, 1, "tag shadow is an exact replica");
        assert!(report.untrusted.is_empty());
        assert_eq!(p.queue()[0], RowId::new(5), "tag restored in place");
    }

    #[test]
    fn guard_restores_stuck_entry_and_lost_alert() {
        let mut p = engine();
        p.guard_arm();
        for r in 0..9u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        assert!(p.alert_pending());
        p.apply_fault(&EngineFault::StuckEntry { slot: 3 });
        p.apply_fault(&EngineFault::LoseAlert);
        let report = p.integrity_check();
        assert_eq!(report.detected, 2, "stuck tag + lost latch");
        assert_eq!(report.repaired, 2);
        assert_eq!(p.queue()[3], RowId::new(3));
        assert!(p.alert_pending());
    }

    #[test]
    fn legitimate_mutations_keep_the_shadow_in_sync() {
        let mut p = PanopticonEngine::new(PanopticonConfig::drain_variant());
        p.guard_arm();
        for r in 0..3u32 {
            p.on_precharge_update(RowId::new(r), ActCount::new(128));
        }
        p.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        assert!(p.select_ref_mitigation().is_some());
        assert_eq!(p.integrity_check(), IntegrityReport::clean());
    }

    #[test]
    fn panopticon_does_not_reset_counters() {
        let p = engine();
        assert!(!p.resets_counters_on_refresh());
        assert!(!p.resets_counter_on_mitigation());
        assert_eq!(p.ops_per_mitigation(), 4);
    }
}
