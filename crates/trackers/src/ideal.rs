//! An idealized per-row SRAM tracker in the spirit of ProTRR's TRR-Ideal
//! (§8 "Related Work").
//!
//! The tracker mirrors every row's activation count in SRAM and, at each
//! mitigation opportunity, mitigates the row with the globally highest
//! count. It never uses ALERT. This is the class of design whose tolerated
//! threshold is bounded by the feinting attack (Table 2): with a mitigation
//! rate of one aggressor per 4 tREFI, feinting inflicts ~2195 activations
//! regardless of the tracker's perfection — the motivation for MOAT's
//! reactive ALERT path.
//!
//! The SRAM cost (2 bytes × 64 Ki rows = 128 KiB per bank) is what makes
//! this design impractical (Fig. 1a, "SRAM-optimal").

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, MitigationEngine, RowId};

/// The idealized per-row SRAM tracker for one bank.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::IdealSramTracker;
///
/// let mut t = IdealSramTracker::new(1024);
/// t.on_precharge_update(RowId::new(3), ActCount::new(10));
/// t.on_precharge_update(RowId::new(9), ActCount::new(20));
/// assert_eq!(t.select_ref_mitigation(), Some(RowId::new(9)));
/// ```
#[derive(Debug, Clone)]
pub struct IdealSramTracker {
    counts: Vec<u32>,
    /// Rows whose count dropped to zero are skipped at selection.
    mitigations: u64,
}

impl IdealSramTracker {
    /// Creates a tracker covering `rows` rows.
    pub fn new(rows: u32) -> Self {
        IdealSramTracker {
            counts: vec![0; rows as usize],
            mitigations: 0,
        }
    }

    /// The SRAM count currently attributed to `row`.
    pub fn count(&self, row: RowId) -> u32 {
        self.counts[row.as_usize()]
    }

    /// Total mitigations selected.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    fn argmax(&self) -> Option<RowId> {
        let (idx, &max) = self.counts.iter().enumerate().max_by_key(|(_, &c)| c)?;
        (max > 0).then(|| RowId::new(idx as u32))
    }
}

impl MitigationEngine for IdealSramTracker {
    fn name(&self) -> &str {
        "ideal-sram"
    }

    fn on_precharge_update(&mut self, row: RowId, _counter: ActCount) {
        self.counts[row.as_usize()] += 1;
    }

    fn alert_pending(&self) -> bool {
        false // purely transparent: never asks for more time (§2.5).
    }

    fn min_acts_to_alert(&self) -> u64 {
        u64::MAX // never alerts: the batching horizon is unbounded.
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        let row = self.argmax()?;
        self.mitigations += 1;
        Some(row)
    }

    fn select_alert_mitigation(&mut self) -> Option<RowId> {
        None
    }

    fn on_mitigation_complete(&mut self, row: RowId) {
        self.counts[row.as_usize()] = 0;
    }

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        // Refreshed rows' victims are safe; restart their counts.
        for r in rows {
            self.counts[r as usize] = 0;
        }
    }

    fn resets_counters_on_refresh(&self) -> bool {
        true
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        true
    }

    fn sram_bytes_per_bank(&self) -> usize {
        self.counts.len() * 2
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_every_row_exactly() {
        let mut t = IdealSramTracker::new(16);
        for _ in 0..5 {
            t.on_precharge_update(RowId::new(3), ActCount::ZERO);
        }
        for _ in 0..2 {
            t.on_precharge_update(RowId::new(7), ActCount::ZERO);
        }
        assert_eq!(t.count(RowId::new(3)), 5);
        assert_eq!(t.count(RowId::new(7)), 2);
    }

    #[test]
    fn selects_global_max_and_resets() {
        let mut t = IdealSramTracker::new(16);
        for r in [1u32, 1, 1, 2, 2, 5] {
            t.on_precharge_update(RowId::new(r), ActCount::ZERO);
        }
        let row = t.select_ref_mitigation().unwrap();
        assert_eq!(row, RowId::new(1));
        t.on_mitigation_complete(row);
        assert_eq!(t.count(RowId::new(1)), 0);
        assert_eq!(t.select_ref_mitigation(), Some(RowId::new(2)));
    }

    #[test]
    fn empty_tracker_selects_nothing() {
        let mut t = IdealSramTracker::new(16);
        assert_eq!(t.select_ref_mitigation(), None);
        t.on_precharge_update(RowId::new(0), ActCount::ZERO);
        t.on_mitigation_complete(RowId::new(0));
        assert_eq!(t.select_ref_mitigation(), None);
    }

    #[test]
    fn refresh_clears_group_counts() {
        let mut t = IdealSramTracker::new(16);
        for r in 0..16u32 {
            t.on_precharge_update(RowId::new(r), ActCount::ZERO);
        }
        t.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        for r in 0..8u32 {
            assert_eq!(t.count(RowId::new(r)), 0);
        }
        assert_eq!(t.count(RowId::new(8)), 1);
    }

    #[test]
    fn sram_cost_is_impractical() {
        // 64 Ki rows × 2 bytes = 128 KiB per bank (Fig. 1a).
        let t = IdealSramTracker::new(65536);
        assert_eq!(t.sram_bytes_per_bank(), 128 * 1024);
    }

    #[test]
    fn never_alerts() {
        let mut t = IdealSramTracker::new(4);
        for _ in 0..10_000 {
            t.on_precharge_update(RowId::new(0), ActCount::ZERO);
        }
        assert!(!t.alert_pending());
        assert_eq!(t.select_alert_mitigation(), None);
    }
}
