//! An idealized per-row SRAM tracker in the spirit of ProTRR's TRR-Ideal
//! (§8 "Related Work").
//!
//! The tracker mirrors every row's activation count in SRAM and, at each
//! mitigation opportunity, mitigates the row with the globally highest
//! count. It never uses ALERT. This is the class of design whose tolerated
//! threshold is bounded by the feinting attack (Table 2): with a mitigation
//! rate of one aggressor per 4 tREFI, feinting inflicts ~2195 activations
//! regardless of the tracker's perfection — the motivation for MOAT's
//! reactive ALERT path.
//!
//! The SRAM cost (2 bytes × 64 Ki rows = 128 KiB per bank) is what makes
//! this design impractical (Fig. 1a, "SRAM-optimal").

use core::any::Any;
use core::ops::Range;

use moat_dram::{ActCount, MitigationEngine, RowId};

/// The idealized per-row SRAM tracker for one bank.
///
/// The global argmax is maintained in a tournament tree: every count
/// update re-plays one root-to-leaf path (`O(log rows)`, 16 node visits
/// at 64 Ki rows), and selection reads the root in `O(1)`. The previous
/// implementation rescanned all counts at every mitigation selection —
/// at one selection per mitigation period that scan dominated the
/// Table 2 feinting cells end to end. Ties resolve to the highest row
/// index, bit-identical to the `max_by_key` scan it replaces.
///
/// # Examples
///
/// ```
/// use moat_dram::{ActCount, MitigationEngine, RowId};
/// use moat_trackers::IdealSramTracker;
///
/// let mut t = IdealSramTracker::new(1024);
/// t.on_precharge_update(RowId::new(3), ActCount::new(10));
/// t.on_precharge_update(RowId::new(9), ActCount::new(20));
/// assert_eq!(t.select_ref_mitigation(), Some(RowId::new(9)));
/// ```
#[derive(Debug, Clone)]
pub struct IdealSramTracker {
    counts: Vec<u32>,
    /// Tournament tree over `counts`, padded to a power of two:
    /// `tree[1]` is the root, node `i` holds the index of the maximal
    /// count in its span (ties → highest index). Leaves at `size + i`.
    tree: Vec<u32>,
    /// Leaf span of the tree (next power of two ≥ rows).
    size: usize,
    /// Rows whose count dropped to zero are skipped at selection.
    mitigations: u64,
}

impl IdealSramTracker {
    /// Creates a tracker covering `rows` rows.
    pub fn new(rows: u32) -> Self {
        let size = (rows as usize).next_power_of_two().max(1);
        let mut tree = vec![0u32; 2 * size];
        for i in 0..size {
            tree[size + i] = i as u32;
        }
        for i in (1..size).rev() {
            // All counts start 0: ties resolve right (highest index).
            tree[i] = tree[2 * i + 1];
        }
        IdealSramTracker {
            counts: vec![0; rows as usize],
            tree,
            size,
            mitigations: 0,
        }
    }

    /// The SRAM count currently attributed to `row`.
    pub fn count(&self, row: RowId) -> u32 {
        self.counts[row.as_usize()]
    }

    /// Total mitigations selected.
    pub fn mitigations(&self) -> u64 {
        self.mitigations
    }

    /// The count at a (possibly padded) leaf index.
    #[inline]
    fn count_at(&self, idx: u32) -> u32 {
        self.counts.get(idx as usize).copied().unwrap_or(0)
    }

    /// Re-plays the tournament along `row`'s root path after its count
    /// changed.
    #[inline]
    fn reseed(&mut self, row: usize) {
        let mut i = (self.size + row) / 2;
        while i >= 1 {
            let left = self.tree[2 * i];
            let right = self.tree[2 * i + 1];
            // `>=` resolves ties to the right child — the highest index —
            // matching the `max_by_key` scan this tree replaces.
            self.tree[i] = if self.count_at(right) >= self.count_at(left) {
                right
            } else {
                left
            };
            i /= 2;
        }
    }

    fn argmax(&self) -> Option<RowId> {
        let idx = self.tree[1];
        (self.count_at(idx) > 0).then(|| RowId::new(idx))
    }
}

impl MitigationEngine for IdealSramTracker {
    fn name(&self) -> &str {
        "ideal-sram"
    }

    fn on_precharge_update(&mut self, row: RowId, _counter: ActCount) {
        self.counts[row.as_usize()] += 1;
        self.reseed(row.as_usize());
    }

    fn alert_pending(&self) -> bool {
        false // purely transparent: never asks for more time (§2.5).
    }

    fn min_acts_to_alert(&self) -> u64 {
        u64::MAX // never alerts: the batching horizon is unbounded.
    }

    fn select_ref_mitigation(&mut self) -> Option<RowId> {
        let row = self.argmax()?;
        self.mitigations += 1;
        Some(row)
    }

    fn select_alert_mitigation(&mut self) -> Option<RowId> {
        None
    }

    fn on_mitigation_complete(&mut self, row: RowId) {
        self.counts[row.as_usize()] = 0;
        self.reseed(row.as_usize());
    }

    fn on_refresh_group(
        &mut self,
        rows: Range<u32>,
        _counter_of: &mut dyn FnMut(RowId) -> ActCount,
    ) {
        // Refreshed rows' victims are safe; restart their counts.
        for r in rows {
            if self.counts[r as usize] != 0 {
                self.counts[r as usize] = 0;
                self.reseed(r as usize);
            }
        }
    }

    fn resets_counters_on_refresh(&self) -> bool {
        true
    }

    fn resets_counter_on_mitigation(&self) -> bool {
        true
    }

    fn sram_bytes_per_bank(&self) -> usize {
        self.counts.len() * 2
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_every_row_exactly() {
        let mut t = IdealSramTracker::new(16);
        for _ in 0..5 {
            t.on_precharge_update(RowId::new(3), ActCount::ZERO);
        }
        for _ in 0..2 {
            t.on_precharge_update(RowId::new(7), ActCount::ZERO);
        }
        assert_eq!(t.count(RowId::new(3)), 5);
        assert_eq!(t.count(RowId::new(7)), 2);
    }

    #[test]
    fn selects_global_max_and_resets() {
        let mut t = IdealSramTracker::new(16);
        for r in [1u32, 1, 1, 2, 2, 5] {
            t.on_precharge_update(RowId::new(r), ActCount::ZERO);
        }
        let row = t.select_ref_mitigation().unwrap();
        assert_eq!(row, RowId::new(1));
        t.on_mitigation_complete(row);
        assert_eq!(t.count(RowId::new(1)), 0);
        assert_eq!(t.select_ref_mitigation(), Some(RowId::new(2)));
    }

    #[test]
    fn empty_tracker_selects_nothing() {
        let mut t = IdealSramTracker::new(16);
        assert_eq!(t.select_ref_mitigation(), None);
        t.on_precharge_update(RowId::new(0), ActCount::ZERO);
        t.on_mitigation_complete(RowId::new(0));
        assert_eq!(t.select_ref_mitigation(), None);
    }

    #[test]
    fn refresh_clears_group_counts() {
        let mut t = IdealSramTracker::new(16);
        for r in 0..16u32 {
            t.on_precharge_update(RowId::new(r), ActCount::ZERO);
        }
        t.on_refresh_group(0..8, &mut |_| ActCount::ZERO);
        for r in 0..8u32 {
            assert_eq!(t.count(RowId::new(r)), 0);
        }
        assert_eq!(t.count(RowId::new(8)), 1);
    }

    #[test]
    fn sram_cost_is_impractical() {
        // 64 Ki rows × 2 bytes = 128 KiB per bank (Fig. 1a).
        let t = IdealSramTracker::new(65536);
        assert_eq!(t.sram_bytes_per_bank(), 128 * 1024);
    }

    #[test]
    fn tree_argmax_matches_scan_reference() {
        // The tournament tree must select exactly what the old full scan
        // selected — including the last-index tie-breaking of
        // `max_by_key` — across a randomized op mix of activations,
        // refresh resets, and mitigation completions (incl. a non-power-
        // of-two row count exercising the padded leaves).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rows = 100u32;
        let mut t = IdealSramTracker::new(rows);
        let mut rng = StdRng::seed_from_u64(0xA11);
        for step in 0..20_000u32 {
            match rng.random_range(0..10u32) {
                0 => {
                    let start = rng.random_range(0..rows / 8) * 8;
                    t.on_refresh_group(start..start + 8, &mut |_| ActCount::ZERO);
                }
                1 => {
                    if let Some(row) = t.select_ref_mitigation() {
                        t.on_mitigation_complete(row);
                    }
                }
                _ => {
                    // Zipf-ish hot rows so ties and displacements happen.
                    let row = rng.random_range(0..rows) / rng.random_range(1u32..4);
                    t.on_precharge_update(RowId::new(row), ActCount::ZERO);
                }
            }
            let scan = t
                .counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .filter(|(_, &max)| max > 0)
                .map(|(i, _)| RowId::new(i as u32));
            assert_eq!(t.argmax(), scan, "diverged at step {step}");
        }
    }

    #[test]
    fn never_alerts() {
        let mut t = IdealSramTracker::new(4);
        for _ in 0..10_000 {
            t.on_precharge_update(RowId::new(0), ActCount::ZERO);
        }
        assert!(!t.alert_pending());
        assert_eq!(t.select_alert_mitigation(), None);
    }
}
