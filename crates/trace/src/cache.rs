//! The content-addressed on-disk trace cache.
//!
//! A cache entry is one sealed v2 trace whose file name encodes its
//! content address: `<label>-<fingerprint:016x>.mtrace`, where the
//! fingerprint hashes everything the recorded stream depends on (for
//! workload streams: profile, `DramConfig`, generator seed, and length —
//! see `moat_workloads::trace_key`). Same inputs → same file → recorded
//! once, replayed forever; any input change → different address → a miss,
//! never a stale hit.
//!
//! The cache directory defaults to `.trace-cache/v2` under the current
//! directory (override with `MOAT_TRACE_DIR`); the format version is part
//! of the path so a future v3 starts from an empty cache instead of
//! tripping over v2 files. Writers record into a process-unique `.tmp`
//! file and publish with an atomic rename, so concurrent recorders (sweep
//! workers, parallel CI jobs on a shared cache volume) never observe a
//! half-written entry.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use moat_sim::RequestStream;

use crate::format::record_stream;
use crate::reader::TraceFile;

/// Disambiguates concurrent recordings from one process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The content address of one cached trace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Human-readable label (e.g. the workload name); sanitized into the
    /// file name.
    pub label: String,
    /// Fingerprint of everything the stream depends on.
    pub fingerprint: u64,
}

impl TraceKey {
    /// Creates a key.
    pub fn new(label: impl Into<String>, fingerprint: u64) -> TraceKey {
        TraceKey {
            label: label.into(),
            fingerprint,
        }
    }

    /// The cache file name for this key. The label is sanitized to
    /// `[A-Za-z0-9._-]`; identity lives in the fingerprint.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}-{:016x}.mtrace", self.fingerprint)
    }
}

/// A directory of content-addressed traces.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// The format tag in the default directory (and the recommended CI
    /// cache key component): bump when [`crate::VERSION`] bumps.
    pub const FORMAT_TAG: &'static str = "v2";

    /// The environment variable overriding the cache directory.
    pub const ENV_VAR: &'static str = "MOAT_TRACE_DIR";

    /// The default cache directory: `$MOAT_TRACE_DIR`, or
    /// `.trace-cache/v2` under the current directory.
    pub fn default_dir() -> PathBuf {
        match Self::env_dir() {
            Ok(Some(dir)) => dir,
            Ok(None) => Path::new(".trace-cache").join(Self::FORMAT_TAG),
            // Library callers degrade to the default (with a warning);
            // the repro binary validates eagerly at startup and turns
            // the same error into a clean exit.
            Err(e) => {
                moat_telemetry::log::warn(
                    "moat-trace",
                    format_args!("{e}; using the default cache directory"),
                );
                Path::new(".trace-cache").join(Self::FORMAT_TAG)
            }
        }
    }

    /// The cache directory override from [`Self::ENV_VAR`], validated:
    /// `None` when unset, an error when set to something unusable (empty
    /// — which previously fell back silently, hiding a misconfigured CI
    /// variable — or not valid Unicode).
    ///
    /// # Errors
    ///
    /// Describes the malformed value.
    pub fn env_dir() -> Result<Option<PathBuf>, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(dir) if dir.trim().is_empty() => Err(format!(
                "{} is set but empty (unset it to use the default directory)",
                Self::ENV_VAR
            )),
            Ok(dir) => Ok(Some(PathBuf::from(dir))),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{} is set but not valid Unicode", Self::ENV_VAR))
            }
        }
    }

    /// Opens (creating if needed) a cache at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<TraceCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceCache { dir })
    }

    /// Opens the default cache (see [`default_dir`](Self::default_dir)).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation errors.
    pub fn open_default() -> io::Result<TraceCache> {
        Self::open(Self::default_dir())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of `key`'s entry (whether or not it exists).
    pub fn path_of(&self, key: &TraceKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Opens the cached trace for `key`, or `None` on a miss. A failure
    /// to *validate* — truncation, checksum corruption, a fingerprint
    /// that does not match the key — counts as a miss and evicts the
    /// entry so the next [`record`](Self::record) replaces it. Transient
    /// resource errors (fd exhaustion, `mmap` out of address space)
    /// also miss, but leave the entry on disk: the recording is fine,
    /// only this open attempt failed.
    pub fn lookup(&self, key: &TraceKey) -> Option<TraceFile> {
        let path = self.path_of(key);
        if !path.exists() {
            return None;
        }
        match TraceFile::open(&path) {
            Ok(trace) if trace.fingerprint() == key.fingerprint => Some(trace),
            Ok(_) => {
                // Mislabeled (file name does not match its content
                // address): evict so it gets re-recorded.
                let _ = std::fs::remove_file(&path);
                crate::reader::clear_marker(&path);
                None
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Corrupt or truncated: evict (marker included) so it
                // gets re-recorded.
                let _ = std::fs::remove_file(&path);
                crate::reader::clear_marker(&path);
                None
            }
            Err(_) => None,
        }
    }

    /// Records `stream` as `key`'s entry and opens it back. The recording
    /// lands in a process-unique temporary file first and is published
    /// with an atomic rename. Since the writer computed the checksum
    /// over the very bytes it just wrote, the entry is marked verified
    /// immediately — the open that follows (and every later one, until
    /// the file changes) skips the checksum re-walk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the temporary file is cleaned up on error.
    pub fn record<S: RequestStream>(&self, key: &TraceKey, stream: S) -> io::Result<TraceFile> {
        let path = self.path_of(key);
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            key.file_name(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let header = record_stream(&tmp, key.fingerprint, stream)?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        crate::reader::mark_verified(&path, header.checksum);
        TraceFile::open(&path)
    }

    /// The cache's one-line workflow: a [`lookup`](Self::lookup) hit
    /// replays from the map; a miss generates the stream **once** (via
    /// `make_stream`), spills it to disk, and replays that.
    ///
    /// # Errors
    ///
    /// Propagates recording I/O errors on the miss path.
    pub fn open_or_record<S, F>(&self, key: &TraceKey, make_stream: F) -> io::Result<TraceFile>
    where
        S: RequestStream,
        F: FnOnce() -> S,
    {
        if let Some(hit) = self.lookup(key) {
            return Ok(hit);
        }
        self.record(key, make_stream())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::{BankId, Nanos, RowId};
    use moat_sim::Request;

    fn temp_cache(name: &str) -> TraceCache {
        let dir =
            std::env::temp_dir().join(format!("moat-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TraceCache::open(dir).unwrap()
    }

    fn stream(n: u32, salt: u32) -> impl Iterator<Item = Request> + Clone {
        (0..n).map(move |i| Request {
            gap: Nanos::new(u64::from(i % 97)),
            bank: BankId::new(0),
            row: RowId::new(i.wrapping_mul(31).wrapping_add(salt) % 512),
        })
    }

    #[test]
    fn env_dir_validates_the_override() {
        // One serial test owns the env var; the other cache tests use
        // explicit directories and never consult it.
        std::env::set_var(TraceCache::ENV_VAR, "");
        assert!(
            TraceCache::env_dir().is_err(),
            "set-but-empty must error, not silently fall back"
        );
        std::env::set_var(TraceCache::ENV_VAR, "   ");
        assert!(TraceCache::env_dir().is_err(), "whitespace-only is empty");
        std::env::set_var(TraceCache::ENV_VAR, "/tmp/moat-custom-cache");
        assert_eq!(
            TraceCache::env_dir().unwrap(),
            Some(PathBuf::from("/tmp/moat-custom-cache"))
        );
        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStringExt;
            let bogus = std::ffi::OsString::from_vec(vec![0x2F, 0xFF]);
            std::env::set_var(TraceCache::ENV_VAR, &bogus);
            assert!(TraceCache::env_dir().is_err(), "non-Unicode must error");
        }
        std::env::remove_var(TraceCache::ENV_VAR);
        assert_eq!(TraceCache::env_dir(), Ok(None), "unset means no override");
    }

    #[test]
    fn miss_records_once_then_hits() {
        let cache = temp_cache("hit");
        let key = TraceKey::new("unit", 0x1234);
        assert!(cache.lookup(&key).is_none());

        let mut generations = 0u32;
        let t1 = cache
            .open_or_record(&key, || {
                generations += 1;
                stream(1000, 5)
            })
            .unwrap();
        assert_eq!(t1.len(), 1000);
        assert_eq!(generations, 1);

        let t2 = cache
            .open_or_record(&key, || {
                generations += 1;
                stream(1000, 5)
            })
            .unwrap();
        assert_eq!(generations, 1, "second open is a pure cache hit");
        assert_eq!(t2.len(), 1000);
        // No temporary files left behind.
        let stray: Vec<_> = std::fs::read_dir(cache.dir())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .collect();
        assert!(stray.is_empty());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corrupt_entry_is_evicted_and_rerecorded() {
        let cache = temp_cache("corrupt");
        let key = TraceKey::new("unit", 9);
        cache.record(&key, stream(500, 1)).unwrap();
        // Flip one record byte: checksum validation must reject it. The
        // mtime is pushed explicitly so the verified-once marker goes
        // stale even on filesystems with coarse timestamps (a real
        // corrupting write moves the mtime the same way).
        let path = cache.path_of(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_times(std::fs::FileTimes::new().set_modified(
            std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000),
        ))
        .unwrap();
        drop(file);

        assert!(cache.lookup(&key).is_none(), "corruption is a miss");
        assert!(!path.exists(), "corrupt entry evicted");
        assert!(
            !crate::reader::has_marker(&path),
            "the stale marker is evicted with the entry"
        );
        let again = cache.open_or_record(&key, || stream(500, 1)).unwrap();
        assert_eq!(again.len(), 500);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn record_marks_the_entry_verified() {
        // The recording pass computes the checksum over the bytes it
        // writes, so the published entry carries a verified-once marker
        // from the start — the reopen per experiment skips the re-walk.
        let cache = temp_cache("marker");
        let key = TraceKey::new("unit", 44);
        cache.record(&key, stream(200, 3)).unwrap();
        let path = cache.path_of(&key);
        assert!(
            crate::reader::has_marker(&path),
            "record() must publish the marker with the entry"
        );
        // A later lookup still opens (fast path) and fully verifies on
        // demand.
        let hit = cache.lookup(&key).expect("hit");
        hit.verify().expect("marked entry passes the full walk");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let cache = temp_cache("fpr");
        let a = TraceKey::new("same-label", 1);
        cache.record(&a, stream(10, 0)).unwrap();
        // Same label, different fingerprint: different file, so a miss.
        let b = TraceKey::new("same-label", 2);
        assert!(cache.lookup(&b).is_none());
        assert!(cache.lookup(&a).is_some(), "a unaffected");
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn labels_are_sanitized() {
        let key = TraceKey::new("sp ace/../evil", 0xAB);
        assert_eq!(key.file_name(), "sp_ace_.._evil-00000000000000ab.mtrace");
    }
}
