//! # moat-trace — the mmap-backed binary trace store
//!
//! Trace-driven evaluation is the standard methodology for Rowhammer
//! trackers (ABACuS and CoMeT both replay recorded activation traces),
//! and MOAT's sweep experiments (Fig. 11, Tables 5–7, Fig. 17) re-run
//! identical request streams across dozens of configuration cells. This
//! crate records those streams **once** into a compact binary format and
//! replays them **zero-copy** out of a memory map forever after:
//!
//! * [`format`] — trace format v2: a 48-byte header (magic, version,
//!   config/seed fingerprint, record count, checksum) plus 16-byte
//!   fixed-width records, with the streaming [`TraceWriter`].
//! * [`reader`] — the validated [`TraceFile`] (mmap-backed) and its
//!   [`TraceReplay`] cursor, a
//!   [`RequestStream`](moat_sim::RequestStream) whose `next_chunk`
//!   decodes records straight out of the mapped file — no per-request
//!   heap traffic.
//! * [`cache`] — the content-addressed [`TraceCache`]: entries are keyed
//!   by a fingerprint of everything the stream depends on, so a hit
//!   replays flat bytes and a miss records while generating.
//!
//! ```
//! use moat_dram::{BankId, Nanos, RowId};
//! use moat_sim::{Request, RequestStream};
//! use moat_trace::{TraceCache, TraceKey};
//!
//! let dir = std::env::temp_dir().join(format!("moat-trace-doc-{}", std::process::id()));
//! let cache = TraceCache::open(&dir)?;
//! let key = TraceKey::new("doctest", 0xD0C);
//! // Miss: generates once, spilling to disk. Hit: replays the map.
//! let trace = cache.open_or_record(&key, || {
//!     (0..100u32).map(|i| Request {
//!         gap: Nanos::new(52),
//!         bank: BankId::new(0),
//!         row: RowId::new(i),
//!     })
//! })?;
//! let mut replay = trace.replay();
//! assert_eq!(replay.next_request().unwrap().row, RowId::new(0));
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod failpoint;
pub mod format;
mod mmap;
pub mod reader;

pub use cache::{TraceCache, TraceKey};
pub use format::{
    decode_record, encode_record, record_stream, Fingerprint, TraceHeader, TraceWriter,
    HEADER_BYTES, MAGIC, RECORD_BYTES, VERSION,
};
pub use mmap::Mmap;
pub use reader::{TraceFile, TraceInfo, TraceReplay};
