//! The mmap-backed trace reader and its zero-copy replay stream.
//!
//! Opening a trace fully validates it — header, length, checksum — but a
//! full checksum pass over a multi-gigabyte cache entry on *every* open
//! is wasted work when the same process (or a previous run) already
//! verified the identical bytes: a `--full` `repro all` opens each trace
//! once per experiment. [`TraceFile::open`] therefore keeps a
//! *verified-once marker*, a tiny `<file>.ok` sidecar recording the
//! trace's size, mtime, and header checksum at the moment a full
//! verification succeeded. While the metadata still matches, later opens
//! skip the re-walk; any mismatch (or a missing/garbled marker) falls
//! back to the full pass and rewrites the marker.
//!
//! The marker is a metadata-trust fast path, not a cryptographic seal: a
//! writer that forges the sidecar (or corrupts the records without
//! touching size or mtime) can slip past `open`. The ground truth stays
//! [`TraceFile::verify`], which always re-walks the bytes — `repro trace
//! verify` uses it, and the error-path tests pin that a
//! corrupted-after-marking file is still rejected there.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

use moat_sim::{Request, RequestStream, DEFAULT_CHUNK};

use crate::format::{
    decode_record, fold_checksum, TraceHeader, CHECKSUM_SEED, HEADER_BYTES, RECORD_BYTES,
};
use crate::mmap::Mmap;

/// Header-level facts about a trace file, read without walking the
/// records (the `repro trace info` view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// The validated header.
    pub header: TraceHeader,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// The file inspected.
    pub path: PathBuf,
}

impl TraceInfo {
    /// Reads and validates the header (magic, version, record size, and
    /// that the file length matches the record count) without touching
    /// the record bytes.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on malformed or truncated
    /// headers and propagates I/O errors.
    pub fn read(path: &Path) -> io::Result<TraceInfo> {
        use std::io::Read;

        let mut file = File::open(path)?;
        let file_bytes = file.metadata()?.len();
        let mut head = [0u8; HEADER_BYTES];
        // An injected short read takes the same wrap as a real one below.
        crate::failpoint::check_read()
            .and_then(|()| file.read_exact(&mut head))
            .map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("trace truncated: {file_bytes} bytes, header needs {HEADER_BYTES}"),
                    )
                } else {
                    e
                }
            })?;
        let header = TraceHeader::decode(&head)?;
        let expect = HEADER_BYTES as u64 + header.count * RECORD_BYTES as u64;
        if file_bytes != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace truncated or padded: {file_bytes} bytes, header promises {expect} \
                     ({} records)",
                    header.count
                ),
            ));
        }
        Ok(TraceInfo {
            header,
            file_bytes,
            path: path.to_path_buf(),
        })
    }
}

/// The sidecar extension of the verified-once marker (appended to the
/// trace's file name: `foo.mtrace` → `foo.mtrace.ok`).
const MARKER_SUFFIX: &str = "ok";

/// The identity a verified-once marker records: everything that must
/// still match for a previous full verification to vouch for the bytes
/// on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VerifiedStamp {
    /// Total file size in bytes.
    bytes: u64,
    /// Modification time, seconds + nanos since the epoch.
    mtime_secs: u64,
    mtime_nanos: u32,
    /// The header checksum the verification confirmed.
    checksum: u64,
}

impl VerifiedStamp {
    /// Reads the trace's current identity from the filesystem.
    fn of(path: &Path, checksum: u64) -> io::Result<VerifiedStamp> {
        let meta = std::fs::metadata(path)?;
        let mtime = meta
            .modified()?
            .duration_since(UNIX_EPOCH)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "mtime before the epoch"))?;
        Ok(VerifiedStamp {
            bytes: meta.len(),
            mtime_secs: mtime.as_secs(),
            mtime_nanos: mtime.subsec_nanos(),
            checksum,
        })
    }

    /// The marker path for `path`.
    fn marker_path(path: &Path) -> PathBuf {
        let mut name = path.as_os_str().to_os_string();
        name.push(".");
        name.push(MARKER_SUFFIX);
        PathBuf::from(name)
    }

    /// Serializes the marker file body.
    fn encode(&self) -> String {
        format!(
            "moat-trace-verified v1\nbytes {}\nmtime {}.{:09}\nchecksum {:016x}\n",
            self.bytes, self.mtime_secs, self.mtime_nanos, self.checksum
        )
    }

    /// Parses a marker file body; `None` on any malformation (a garbled
    /// marker simply misses, forcing a full verification).
    fn decode(text: &str) -> Option<VerifiedStamp> {
        let mut lines = text.lines();
        if lines.next()? != "moat-trace-verified v1" {
            return None;
        }
        let bytes = lines.next()?.strip_prefix("bytes ")?.parse().ok()?;
        let (secs, nanos) = lines.next()?.strip_prefix("mtime ")?.split_once('.')?;
        let checksum = lines.next()?.strip_prefix("checksum ")?;
        Some(VerifiedStamp {
            bytes,
            mtime_secs: secs.parse().ok()?,
            mtime_nanos: nanos.parse().ok()?,
            checksum: u64::from_str_radix(checksum, 16).ok()?,
        })
    }

    /// Whether a matching marker exists for `path`.
    fn matches_marker(&self, path: &Path) -> bool {
        std::fs::read_to_string(Self::marker_path(path))
            .ok()
            .and_then(|text| Self::decode(&text))
            .is_some_and(|stored| stored == *self)
    }

    /// Best-effort marker publication (tmp + rename so a concurrent
    /// reader never sees a torn marker; failures are ignored — the worst
    /// case is a future full re-verification).
    fn write_marker(&self, path: &Path) {
        let marker = Self::marker_path(path);
        let tmp = marker.with_extension(format!("{MARKER_SUFFIX}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, self.encode()).is_ok() && std::fs::rename(&tmp, &marker).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Records a verified-once marker for `path`, vouching that its current
/// on-disk bytes were fully validated against `checksum`. Used by
/// [`TraceFile::open`] after a successful verification and by the trace
/// cache right after it seals a recording (the writer just computed the
/// checksum over the very bytes it wrote). Best-effort: failures only
/// cost a future re-verification.
pub(crate) fn mark_verified(path: &Path, checksum: u64) {
    if let Ok(stamp) = VerifiedStamp::of(path, checksum) {
        stamp.write_marker(path);
    }
}

/// Removes the verified-once marker alongside `path`, if any (used when
/// the cache evicts a corrupt entry).
pub(crate) fn clear_marker(path: &Path) {
    let _ = std::fs::remove_file(VerifiedStamp::marker_path(path));
}

/// Whether a verified-once marker file exists alongside `path` (test
/// support; says nothing about whether it still matches).
#[cfg(test)]
pub(crate) fn has_marker(path: &Path) -> bool {
    VerifiedStamp::marker_path(path).exists()
}

/// A validated, memory-mapped v2 trace.
///
/// Opening verifies the header, the length, and the checksum — a
/// corrupted cache entry surfaces as an [`io::Error`] here, never as a
/// wrong replay. The one sequential verification pass doubles as a page
/// warm-up, so first replay runs at memory speed. A verified-once
/// sidecar marker (see the module docs) lets re-opens of bytes this
/// library already validated skip the checksum re-walk.
///
/// `TraceFile` is `Send + Sync`: replays borrow the map immutably, so one
/// open trace serves every sweep worker at once, each with its own
/// [`replay`](Self::replay) cursor.
#[derive(Debug)]
pub struct TraceFile {
    map: Mmap,
    header: TraceHeader,
    path: PathBuf,
}

impl TraceFile {
    /// Opens, maps, and validates a trace.
    ///
    /// The header and length are always checked. The checksum re-walk is
    /// skipped when a verified-once marker (size + mtime + checksum
    /// recorded by a previous successful verification — see the module
    /// docs) still matches the file; otherwise the full pass runs and,
    /// on success, refreshes the marker so the next open is cheap.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on bad magic, version or
    /// record-size mismatch, truncation, or checksum mismatch, and
    /// propagates open/map errors.
    pub fn open(path: &Path) -> io::Result<TraceFile> {
        let info = TraceInfo::read(path)?;
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        if map.len() as u64 != info.file_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace changed size while opening",
            ));
        }
        let trace = TraceFile {
            map,
            header: info.header,
            path: path.to_path_buf(),
        };
        let stamp = VerifiedStamp::of(path, info.header.checksum).ok();
        if stamp.is_some_and(|s| s.matches_marker(path)) {
            // Verified once already, and neither size nor mtime moved:
            // trust the earlier full pass.
            return Ok(trace);
        }
        trace.verify()?;
        if let Some(stamp) = stamp {
            stamp.write_marker(path);
        }
        Ok(trace)
    }

    /// Opens, maps, and *unconditionally* re-walks the full checksum,
    /// ignoring any verified-once marker — exactly one validation pass
    /// (the marker fast path of [`open`](Self::open) would make a
    /// subsequent explicit [`verify`](Self::verify) call a second full
    /// walk on unmarked files). The ground-truth entry point of
    /// `repro trace verify`; refreshes the marker on success like
    /// `open`.
    ///
    /// # Errors
    ///
    /// Same as [`open`](Self::open).
    pub fn open_strict(path: &Path) -> io::Result<TraceFile> {
        let info = TraceInfo::read(path)?;
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        if map.len() as u64 != info.file_bytes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trace changed size while opening",
            ));
        }
        let trace = TraceFile {
            map,
            header: info.header,
            path: path.to_path_buf(),
        };
        trace.verify()?;
        mark_verified(path, info.header.checksum);
        Ok(trace)
    }

    /// Re-walks the record region and checks it against the header
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a mismatch.
    pub fn verify(&self) -> io::Result<()> {
        let mut hash = CHECKSUM_SEED;
        for record in self.records().chunks_exact(RECORD_BYTES) {
            hash = fold_checksum(hash, record.try_into().unwrap());
        }
        if hash != self.header.checksum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace checksum mismatch: computed {hash:#018x}, header says {:#018x}",
                    self.header.checksum
                ),
            ));
        }
        Ok(())
    }

    /// The validated header.
    pub fn header(&self) -> TraceHeader {
        self.header
    }

    /// The content fingerprint recorded at write time.
    pub fn fingerprint(&self) -> u64 {
        self.header.fingerprint
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> u64 {
        self.header.count
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.header.count == 0
    }

    /// The file this trace was mapped from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The raw record region.
    pub fn records(&self) -> &[u8] {
        &self.map[HEADER_BYTES..]
    }

    /// A fresh zero-copy replay cursor over the whole trace. Cursors are
    /// independent; any number can be live at once.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            data: self.records(),
            pos: 0,
        }
    }
}

/// A [`RequestStream`] decoding requests straight out of the mapped
/// record region — the replay side of the trace store. `next_chunk`
/// decodes a chunk of fixed-width records into the caller's reusable
/// buffer; no per-request heap traffic, no parsing state.
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    data: &'a [u8],
    /// Byte offset of the next record within `data`.
    pos: usize,
}

impl TraceReplay<'_> {
    /// Requests not yet replayed.
    pub fn remaining(&self) -> u64 {
        ((self.data.len() - self.pos) / RECORD_BYTES) as u64
    }
}

impl RequestStream for TraceReplay<'_> {
    fn next_request(&mut self) -> Option<Request> {
        let record = self.data.get(self.pos..self.pos + RECORD_BYTES)?;
        self.pos += RECORD_BYTES;
        Some(decode_record(record.try_into().unwrap()))
    }

    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> usize {
        buf.clear();
        if buf.capacity() == 0 {
            buf.reserve(DEFAULT_CHUNK);
        }
        let n = buf
            .capacity()
            .min((self.data.len() - self.pos) / RECORD_BYTES);
        let end = self.pos + n * RECORD_BYTES;
        for record in self.data[self.pos..end].chunks_exact(RECORD_BYTES) {
            buf.push(decode_record(record.try_into().unwrap()));
        }
        self.pos = end;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{record_stream, TraceWriter};
    use moat_dram::{BankId, Nanos, RowId};

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "moat-reader-test-{}-{name}.mtrace",
            std::process::id()
        ))
    }

    fn sample(n: u32) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                gap: Nanos::new(u64::from(i) * 3),
                bank: BankId::new((i % 4) as u16),
                row: RowId::new(i.wrapping_mul(2654435761) % 1024),
            })
            .collect()
    }

    #[test]
    fn roundtrip_through_disk_is_lossless() {
        let path = temp_path("roundtrip");
        let reqs = sample(5000);
        let header = record_stream(&path, 42, reqs.iter().copied()).unwrap();
        assert_eq!(header.count, 5000);

        let trace = TraceFile::open(&path).unwrap();
        assert_eq!(trace.len(), 5000);
        assert_eq!(trace.fingerprint(), 42);
        // Per-request and chunked replay both reproduce the sequence.
        let mut one_by_one = trace.replay();
        for (i, &r) in reqs.iter().enumerate() {
            assert_eq!(one_by_one.next_request(), Some(r), "at {i}");
        }
        assert_eq!(one_by_one.next_request(), None);

        let mut chunked = trace.replay();
        let mut buf = Vec::with_capacity(333);
        let mut seen = Vec::new();
        while chunked.next_chunk(&mut buf) > 0 {
            seen.extend_from_slice(&buf);
        }
        assert_eq!(seen, reqs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_is_valid_and_ends_immediately() {
        let path = temp_path("empty");
        let header = record_stream(&path, 7, std::iter::empty::<Request>()).unwrap();
        assert_eq!(header.count, 0);
        let trace = TraceFile::open(&path).unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.replay().next_request(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_trace_never_validates() {
        let path = temp_path("unfinished");
        {
            let mut w = TraceWriter::create(&path, 1).unwrap();
            for r in sample(10) {
                w.push(r).unwrap();
            }
            // Dropped without finish(): header stays zeroed.
        }
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_cursors_are_independent() {
        let path = temp_path("cursors");
        let reqs = sample(100);
        record_stream(&path, 0, reqs.iter().copied()).unwrap();
        let trace = TraceFile::open(&path).unwrap();
        let mut a = trace.replay();
        let mut b = trace.replay();
        assert_eq!(a.next_request(), Some(reqs[0]));
        assert_eq!(a.next_request(), Some(reqs[1]));
        assert_eq!(b.next_request(), Some(reqs[0]), "b has its own cursor");
        assert_eq!(a.remaining(), 98);
        assert_eq!(b.remaining(), 99);
        std::fs::remove_file(&path).unwrap();
    }
}
