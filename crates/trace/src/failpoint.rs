//! Deterministic I/O failpoints for chaos-testing the trace store.
//!
//! The trace cache's promise is *graceful degradation*: any disk failure
//! — a full volume at record time, an `mmap` that cannot be established
//! at replay time, a short read of a truncated file — must surface as an
//! `io::Error` the callers already handle by falling back to live stream
//! generation, never as a panic. This module makes those failures
//! reproducible: each failpoint site counts its calls and starts failing
//! after a configured number of successes.
//!
//! Disarmed (the default), every check is a single relaxed atomic load —
//! recording and replay pay nothing. Arm programmatically with
//! [`arm`]/[`disarm`] (tests), or via the [`ENV_VAR`] environment
//! variable (`MOAT_IO_FAULTS=write=0,mmap=2,read=0`: writes fail from
//! the first call, mmaps from the third), which is read once on the
//! first check.
//!
//! Injected errors are shaped like the real thing: writes fail with
//! `ENOSPC`, reads with `UnexpectedEof` (a short read), mmaps with a
//! generic OS-style error — so callers exercise the exact match arms a
//! production failure would.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};

/// The environment variable that arms the failpoints process-wide.
pub const ENV_VAR: &str = "MOAT_IO_FAULTS";

/// Which I/O operations fail, after how many successes. `None` leaves an
/// operation untouched; `Some(n)` lets the first `n` calls through and
/// fails every call after that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultConfig {
    /// Trace-record writes (`TraceWriter::push`/`finish`) fail with
    /// `ENOSPC` after this many successes.
    pub fail_writes_after: Option<u64>,
    /// Memory maps fail after this many successes.
    pub fail_mmaps_after: Option<u64>,
    /// Header reads fail with `UnexpectedEof` (a short read) after this
    /// many successes.
    pub fail_reads_after: Option<u64>,
}

impl IoFaultConfig {
    /// The config armed via [`ENV_VAR`]: `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors, and rejects a value
    /// that is not valid Unicode instead of silently ignoring it. The
    /// repro binary calls this eagerly at startup so a malformed spec
    /// fails the invocation with a clear message; the lazy in-library
    /// arming path degrades with a warning instead (chaos tooling must
    /// never turn a production run into a panic).
    pub fn from_env() -> Result<Option<IoFaultConfig>, String> {
        match std::env::var(ENV_VAR) {
            Ok(spec) if spec.trim().is_empty() => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{ENV_VAR} is set but not valid Unicode"))
            }
        }
    }

    /// Parses a `key=value` list, e.g. `write=0,mmap=2,read=1`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending token.
    pub fn parse(spec: &str) -> Result<IoFaultConfig, String> {
        let mut config = IoFaultConfig::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("I/O fault token `{token}` is not key=value"))?;
            let after: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("I/O fault count `{token}`: {e}"))?;
            match key.trim() {
                "write" => config.fail_writes_after = Some(after),
                "mmap" => config.fail_mmaps_after = Some(after),
                "read" => config.fail_reads_after = Some(after),
                other => return Err(format!("unknown I/O fault key `{other}`")),
            }
        }
        Ok(config)
    }
}

/// Mutable failpoint state: the armed config plus per-site call counts.
#[derive(Debug, Default)]
struct State {
    config: IoFaultConfig,
    writes: u64,
    mmaps: u64,
    reads: u64,
    injected: u64,
}

/// Fast disarmed-path guard: a relaxed load is all a check costs until
/// someone arms the failpoints.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State {
    config: IoFaultConfig {
        fail_writes_after: None,
        fail_mmaps_after: None,
        fail_reads_after: None,
    },
    writes: 0,
    mmaps: 0,
    reads: 0,
    injected: 0,
});
static ENV_INIT: Once = Once::new();

/// Arms the failpoints with `config`, resetting all call counts.
pub fn arm(config: IoFaultConfig) {
    let mut state = STATE.lock().unwrap();
    *state = State {
        config,
        ..State::default()
    };
    ARMED.store(config != IoFaultConfig::default(), Ordering::SeqCst);
}

/// Disarms all failpoints.
pub fn disarm() {
    arm(IoFaultConfig::default());
}

/// How many errors have been injected since the last [`arm`].
pub fn injected() -> u64 {
    STATE.lock().unwrap().injected
}

/// Reads [`ENV_VAR`] once per process (called lazily by the first
/// check). A malformed value is reported loudly and left disarmed —
/// this path sits under arbitrary library I/O, so it cannot fail-fast;
/// binaries that want a hard error call [`IoFaultConfig::from_env`]
/// eagerly at startup (as `repro` does) before any check runs.
fn init_from_env() {
    ENV_INIT.call_once(|| match IoFaultConfig::from_env() {
        Ok(Some(config)) => arm(config),
        Ok(None) => {}
        Err(e) => moat_telemetry::log::warn(
            "moat-trace",
            format_args!("malformed {ENV_VAR} ignored (failpoints disarmed): {e}"),
        ),
    });
}

/// Consults one failpoint site: counts the call and decides failure.
fn check(
    site: fn(&mut State) -> (&mut u64, Option<u64>),
    error: fn() -> io::Error,
) -> io::Result<()> {
    init_from_env();
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let mut state = STATE.lock().unwrap();
    let (calls, limit) = site(&mut state);
    let Some(after) = limit else { return Ok(()) };
    *calls += 1;
    if *calls > after {
        state.injected += 1;
        return Err(error());
    }
    Ok(())
}

/// ENOSPC for the trace-record write path.
pub(crate) fn check_write() -> io::Result<()> {
    check(
        |s| {
            let limit = s.config.fail_writes_after;
            (&mut s.writes, limit)
        },
        || io::Error::from_raw_os_error(28), // ENOSPC
    )
}

/// Failure to establish a memory map.
pub(crate) fn check_mmap() -> io::Result<()> {
    check(
        |s| {
            let limit = s.config.fail_mmaps_after;
            (&mut s.mmaps, limit)
        },
        || io::Error::other("injected mmap failure"),
    )
}

/// A short read of the trace header.
pub(crate) fn check_read() -> io::Result<()> {
    check(
        |s| {
            let limit = s.config.fail_reads_after;
            (&mut s.reads, limit)
        },
        || io::Error::new(io::ErrorKind::UnexpectedEof, "injected short read"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_env_surfaces_malformed_values_as_errors() {
        // Malformed and empty values only: a *valid* value here could
        // race the lazy `init_from_env` latch of a concurrently running
        // I/O test and arm the failpoints process-wide. Valid parsing
        // is covered by `parse_accepts_the_documented_form`.
        let check = |value: &str, expect_err: bool| {
            std::env::set_var(ENV_VAR, value);
            let result = IoFaultConfig::from_env();
            std::env::remove_var(ENV_VAR);
            assert_eq!(
                result.is_err(),
                expect_err,
                "{ENV_VAR}={value:?} -> {result:?}"
            );
        };
        check("write", true); // missing =
        check("write=x", true); // non-numeric count
        check("scribble=1", true); // unknown key
        check("", false); // empty means disarmed, not an error
        check("  ", false);
        assert_eq!(IoFaultConfig::from_env(), Ok(None), "unset means disarmed");

        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStringExt;
            let bogus = std::ffi::OsString::from_vec(vec![0x77, 0xFE]);
            std::env::set_var(ENV_VAR, &bogus);
            let result = IoFaultConfig::from_env();
            std::env::remove_var(ENV_VAR);
            assert!(result.is_err(), "non-Unicode must error: {result:?}");
        }
    }

    #[test]
    fn parse_accepts_the_documented_form() {
        let c = IoFaultConfig::parse("write=0, mmap=2,read=1").unwrap();
        assert_eq!(c.fail_writes_after, Some(0));
        assert_eq!(c.fail_mmaps_after, Some(2));
        assert_eq!(c.fail_reads_after, Some(1));
        assert_eq!(IoFaultConfig::parse("").unwrap(), IoFaultConfig::default());
        assert!(IoFaultConfig::parse("write").is_err());
        assert!(IoFaultConfig::parse("write=x").is_err());
        assert!(IoFaultConfig::parse("scribble=1").is_err());
    }
}
