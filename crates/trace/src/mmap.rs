//! A minimal read-only memory mapping.
//!
//! The build environment has no crates.io access, so instead of the usual
//! `memmap2` this module declares the two libc symbols it needs directly
//! (`std` already links the platform C library on Unix). On non-Unix
//! targets the "map" degrades to reading the file into an owned buffer —
//! same API, no zero-copy.

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        /// POSIX `mmap`. `offset` is `off_t`; this crate only ever maps
        /// from offset 0, which is representable under every `off_t`
        /// width.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only mapping of an entire file.
///
/// Dereferences to `&[u8]`. The mapping is private to this process's view
/// in the sense that the file is never written through it (`PROT_READ`),
/// so sharing across threads is sound.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: *const u8,
    #[cfg(unix)]
    len: usize,
    #[cfg(not(unix))]
    buf: Vec<u8>,
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ and
// no public mutation), so concurrent shared access from any thread is a
// plain immutable-bytes read.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all of `file` read-only.
    ///
    /// # Errors
    ///
    /// Propagates metadata and `mmap(2)` failures.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        crate::failpoint::check_mmap()?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length maps; an empty file needs none.
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        // SAFETY: a fresh read-only shared mapping of a file descriptor we
        // own for the duration of the call; the result is checked against
        // MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr.cast_const().cast::<u8>(),
            len,
        })
    }

    /// Fallback for targets without `mmap`: reads the file into memory.
    ///
    /// # Errors
    ///
    /// Propagates read errors.
    #[cfg(not(unix))]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::io::Read;

        crate::failpoint::check_mmap()?;
        let mut buf = Vec::new();
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mmap { buf })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        #[cfg(unix)]
        // SAFETY: `ptr` points at a live `len`-byte mapping (or is a
        // dangling-but-aligned pointer with len 0, which from_raw_parts
        // permits); the mapping outlives `self` and is never mutated.
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
        #[cfg(not(unix))]
        &self.buf
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: unmapping the exact region map() created; the slice
            // handed out by as_slice cannot outlive self.
            unsafe {
                sys::munmap(self.ptr.cast_mut().cast(), self.len);
            }
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("moat-mmap-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, &payload[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[7u8; 4096])
            .unwrap();
        let map = std::sync::Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = map.clone();
                std::thread::spawn(move || m.iter().map(|&b| u64::from(b)).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
