//! The binary activation-trace format **v2** and its streaming writer.
//!
//! A trace is one fixed-width header followed by fixed-width records, all
//! integers little-endian, so a reader can decode any record straight out
//! of a byte slice (or a memory map) without parsing state:
//!
//! ```text
//! offset  size  field
//! ------  ----  ------------------------------------------------------
//!      0     8  magic  b"MOATTRC2"
//!      8     4  format version (u32, currently 2)
//!     12     4  record size in bytes (u32, currently 16)
//!     16     8  content fingerprint (u64; generator/config hash, 0 when
//!               imported from an external source)
//!     24     8  record count (u64)
//!     32     8  checksum (u64, FNV-1a over the record region read as
//!               little-endian u64 words)
//!     40     8  reserved (zero)
//!     48   16n  records
//! ```
//!
//! A record is one activation request:
//!
//! ```text
//! offset  size  field
//! ------  ----  ----------------------------------------
//!      0     8  inter-arrival gap in nanoseconds (u64)
//!      8     4  row index (u32)
//!     12     2  bank index (u16)
//!     14     2  padding (zero)
//! ```
//!
//! Version 1 is the plain-text `gap_ns bank row` format of
//! `moat_workloads::write_trace`; the two are losslessly interconvertible
//! (`repro trace convert`).

use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::{Request, RequestStream, DEFAULT_CHUNK};

/// The eight magic bytes opening every v2 trace.
pub const MAGIC: [u8; 8] = *b"MOATTRC2";

/// The format version this crate reads and writes.
pub const VERSION: u32 = 2;

/// Header size in bytes.
pub const HEADER_BYTES: usize = 48;

/// Record size in bytes.
pub const RECORD_BYTES: usize = 16;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// The decoded fixed-width header of a v2 trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Content fingerprint of the stream (generator/config hash; `0` for
    /// traces imported from an external source).
    pub fingerprint: u64,
    /// Number of records that follow the header.
    pub count: u64,
    /// FNV-1a checksum over the record region (little-endian u64 words).
    pub checksum: u64,
}

impl TraceHeader {
    /// Encodes the header into its 48-byte on-disk form.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&(RECORD_BYTES as u32).to_le_bytes());
        out[16..24].copy_from_slice(&self.fingerprint.to_le_bytes());
        out[24..32].copy_from_slice(&self.count.to_le_bytes());
        out[32..40].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Decodes and validates a header.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on a short buffer, wrong
    /// magic, unsupported version, or unexpected record size.
    pub fn decode(bytes: &[u8]) -> io::Result<TraceHeader> {
        let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        if bytes.len() < HEADER_BYTES {
            return Err(bad(format!(
                "trace header truncated: {} bytes, need {HEADER_BYTES}",
                bytes.len()
            )));
        }
        if bytes[0..8] != MAGIC {
            return Err(bad("not a MOAT v2 trace (bad magic)".into()));
        }
        let le32 = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let le64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = le32(8);
        if version != VERSION {
            return Err(bad(format!(
                "unsupported trace version {version} (this build reads v{VERSION})"
            )));
        }
        let record_bytes = le32(12);
        if record_bytes as usize != RECORD_BYTES {
            return Err(bad(format!(
                "unexpected record size {record_bytes} (expected {RECORD_BYTES})"
            )));
        }
        Ok(TraceHeader {
            fingerprint: le64(16),
            count: le64(24),
            checksum: le64(32),
        })
    }
}

/// Encodes one request into its 16-byte record form.
#[inline]
pub fn encode_record(r: Request) -> [u8; RECORD_BYTES] {
    let mut out = [0u8; RECORD_BYTES];
    out[0..8].copy_from_slice(&r.gap.as_u64().to_le_bytes());
    out[8..12].copy_from_slice(&r.row.index().to_le_bytes());
    out[12..14].copy_from_slice(&r.bank.index().to_le_bytes());
    out
}

/// Decodes one 16-byte record. Infallible: every bit pattern is a legal
/// request (padding bytes are ignored); integrity is the checksum's job.
#[inline]
pub fn decode_record(bytes: &[u8; RECORD_BYTES]) -> Request {
    Request {
        gap: Nanos::new(u64::from_le_bytes(bytes[0..8].try_into().unwrap())),
        row: RowId::new(u32::from_le_bytes(bytes[8..12].try_into().unwrap())),
        bank: BankId::new(u16::from_le_bytes(bytes[12..14].try_into().unwrap())),
    }
}

/// Folds one record into a running FNV-1a checksum (two u64 words).
#[inline]
pub fn fold_checksum(hash: u64, record: &[u8; RECORD_BYTES]) -> u64 {
    let lo = u64::from_le_bytes(record[0..8].try_into().unwrap());
    let hi = u64::from_le_bytes(record[8..16].try_into().unwrap());
    let hash = (hash ^ lo).wrapping_mul(FNV_PRIME);
    (hash ^ hi).wrapping_mul(FNV_PRIME)
}

/// The empty-region checksum seed.
pub const CHECKSUM_SEED: u64 = FNV_OFFSET;

/// An order-sensitive FNV-1a fingerprint builder, used to derive the
/// content address of a trace from the generator inputs that produced it
/// (profile, DRAM configuration, seed, length).
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts a fresh fingerprint.
    pub const fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    /// Folds raw bytes in.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a string in, including its length (so `("ab", "c")` and
    /// `("a", "bc")` fingerprint differently).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write_bytes(s.as_bytes())
    }

    /// Folds a u64 in.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// The final 64-bit fingerprint.
    pub const fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// A streaming v2 trace writer: records append through a buffered file
/// handle while the count and checksum accumulate, and
/// [`finish`](Self::finish) seals the header. A trace that was not
/// finished (crash, early drop) is left with a zeroed magic field and will
/// never validate as a trace.
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    path: PathBuf,
    fingerprint: u64,
    count: u64,
    checksum: u64,
}

impl TraceWriter {
    /// Creates (truncating) `path` and writes the placeholder header.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn create(path: &Path, fingerprint: u64) -> io::Result<TraceWriter> {
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        // Placeholder: all zeroes, so a partial file has no magic and can
        // never be mistaken for a complete trace.
        out.write_all(&[0u8; HEADER_BYTES])?;
        Ok(TraceWriter {
            out,
            path: path.to_path_buf(),
            fingerprint,
            count: 0,
            checksum: CHECKSUM_SEED,
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Appends one request.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    #[inline]
    pub fn push(&mut self, request: Request) -> io::Result<()> {
        crate::failpoint::check_write()?;
        let record = encode_record(request);
        self.checksum = fold_checksum(self.checksum, &record);
        self.count += 1;
        self.out.write_all(&record)
    }

    /// Drains an entire request stream into the trace in chunk-sized
    /// passes and returns how many requests were written.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_stream<S: RequestStream>(&mut self, mut stream: S) -> io::Result<u64> {
        let mut chunk: Vec<Request> = Vec::with_capacity(DEFAULT_CHUNK);
        let mut written = 0u64;
        while stream.next_chunk(&mut chunk) > 0 {
            for &r in &chunk {
                self.push(r)?;
            }
            written += chunk.len() as u64;
        }
        Ok(written)
    }

    /// Seals the trace: flushes the records, rewrites the header with the
    /// final count and checksum, and syncs the file. Returns the header.
    ///
    /// # Errors
    ///
    /// Propagates flush/seek/write/sync errors.
    pub fn finish(mut self) -> io::Result<TraceHeader> {
        crate::failpoint::check_write()?;
        let header = TraceHeader {
            fingerprint: self.fingerprint,
            count: self.count,
            checksum: self.checksum,
        };
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        Ok(header)
    }
}

/// Records `stream` into a v2 trace at `path` in one pass and returns the
/// sealed header.
///
/// # Errors
///
/// Propagates I/O errors; on error the partial file is removed.
pub fn record_stream<S: RequestStream>(
    path: &Path,
    fingerprint: u64,
    stream: S,
) -> io::Result<TraceHeader> {
    let result = (|| {
        let mut writer = TraceWriter::create(path, fingerprint)?;
        writer.append_stream(stream)?;
        writer.finish()
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(gap: u64, bank: u16, row: u32) -> Request {
        Request {
            gap: Nanos::new(gap),
            bank: BankId::new(bank),
            row: RowId::new(row),
        }
    }

    #[test]
    fn record_roundtrip_is_lossless() {
        for r in [
            req(0, 0, 0),
            req(52, 31, 65_535),
            req(u64::MAX, u16::MAX, u32::MAX),
        ] {
            assert_eq!(decode_record(&encode_record(r)), r);
        }
        // Padding bytes are zero on encode and ignored on decode.
        let mut bytes = encode_record(req(7, 3, 9));
        assert_eq!(&bytes[14..16], &[0, 0]);
        bytes[14] = 0xAB;
        assert_eq!(decode_record(&bytes), req(7, 3, 9));
    }

    #[test]
    fn header_roundtrip_and_validation() {
        let h = TraceHeader {
            fingerprint: 0xDEAD_BEEF,
            count: 12345,
            checksum: 77,
        };
        let bytes = h.encode();
        assert_eq!(TraceHeader::decode(&bytes).unwrap(), h);

        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert_eq!(
            TraceHeader::decode(&bad_magic).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );

        let mut bad_version = bytes;
        bad_version[8..12].copy_from_slice(&9u32.to_le_bytes());
        let err = TraceHeader::decode(&bad_version).unwrap_err();
        assert!(err.to_string().contains("version 9"), "{err}");

        let mut bad_record = bytes;
        bad_record[12..16].copy_from_slice(&24u32.to_le_bytes());
        assert!(TraceHeader::decode(&bad_record).is_err());

        assert!(TraceHeader::decode(&bytes[..20]).is_err(), "short buffer");
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = encode_record(req(1, 0, 2));
        let b = encode_record(req(3, 1, 4));
        let ab = fold_checksum(fold_checksum(CHECKSUM_SEED, &a), &b);
        let ba = fold_checksum(fold_checksum(CHECKSUM_SEED, &b), &a);
        assert_ne!(ab, ba);
    }

    #[test]
    fn fingerprint_separates_field_boundaries() {
        let mut a = Fingerprint::new();
        a.write_str("ab").write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a").write_str("bc");
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.write_str("ab").write_str("c");
        assert_eq!(a.finish(), c.finish(), "deterministic");
    }
}
