//! Error-path coverage for the trace store: truncated files, bad magic,
//! version mismatches, and checksum corruption must all surface as
//! `io::Error` — never a panic, never a silent wrong replay.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::Request;
use moat_trace::{record_stream, TraceFile, TraceInfo, HEADER_BYTES, RECORD_BYTES};

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moat-errpath-{}-{name}.mtrace", std::process::id()))
}

/// Writes a small valid trace and returns its path and bytes.
fn valid_trace(name: &str, n: u32) -> (PathBuf, Vec<u8>) {
    let path = temp(name);
    let stream = (0..n).map(|i| Request {
        gap: Nanos::new(u64::from(i)),
        bank: BankId::new((i % 2) as u16),
        row: RowId::new(i * 3),
    });
    record_stream(&path, 0xFEED, stream).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

fn expect_invalid(path: &Path, what: &str) {
    let err = TraceFile::open(path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{what}: {err}");
}

#[test]
fn truncated_header_is_invalid_data() {
    let (path, bytes) = valid_trace("short-header", 10);
    for keep in [0usize, 1, 7, HEADER_BYTES - 1] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        expect_invalid(&path, &format!("header cut to {keep} bytes"));
        assert!(TraceInfo::read(&path).is_err());
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_records_are_invalid_data() {
    let (path, bytes) = valid_trace("short-records", 10);
    // Whole records missing, and a ragged partial record.
    for cut in [RECORD_BYTES, 5] {
        std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
        expect_invalid(&path, &format!("cut {cut} trailing bytes"));
    }
    // Extra trailing garbage is rejected too (count no longer matches).
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 16]);
    std::fs::write(&path, &padded).unwrap();
    expect_invalid(&path, "trailing garbage");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bad_magic_is_invalid_data() {
    let (path, mut bytes) = valid_trace("magic", 10);
    bytes[0..8].copy_from_slice(b"NOTATRCE");
    std::fs::write(&path, &bytes).unwrap();
    expect_invalid(&path, "bad magic");
    // A text (v1) trace is not a v2 trace.
    std::fs::write(&path, "# moat activation trace v1\n52 0 7\n").unwrap();
    expect_invalid(&path, "text trace under .mtrace");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn version_mismatch_is_invalid_data() {
    let (path, mut bytes) = valid_trace("version", 10);
    for version in [0u32, 1, 3, u32::MAX] {
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn record_size_mismatch_is_invalid_data() {
    let (path, mut bytes) = valid_trace("recsize", 10);
    bytes[12..16].copy_from_slice(&8u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    expect_invalid(&path, "record size 8");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checksum_corruption_is_invalid_data() {
    let (path, bytes) = valid_trace("checksum", 64);
    // Flip a single bit in every record position class: first record,
    // middle, last.
    for flip_at in [
        HEADER_BYTES,
        HEADER_BYTES + 32 * RECORD_BYTES + 3,
        bytes.len() - 1,
    ] {
        let mut corrupt = bytes.clone();
        corrupt[flip_at] ^= 0x80;
        std::fs::write(&path, &corrupt).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        // Header-only inspection still works: the checksum walk is the
        // open/verify path's job.
        assert!(TraceInfo::read(&path).is_ok());
    }
    // And a corrupted *header checksum field* fails against good records.
    let mut corrupt = bytes.clone();
    corrupt[32] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    expect_invalid(&path, "corrupt checksum field");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn missing_file_is_not_found() {
    let path = temp("does-not-exist");
    let err = TraceFile::open(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NotFound);
}

#[test]
fn empty_file_is_invalid_data() {
    let path = temp("empty-file");
    std::fs::File::create(&path).unwrap();
    expect_invalid(&path, "zero-byte file");
    std::fs::remove_file(&path).unwrap();
}
