//! Error-path coverage for the trace store: truncated files, bad magic,
//! version mismatches, and checksum corruption must all surface as
//! `io::Error` — never a panic, never a silent wrong replay.

use std::io::ErrorKind;
use std::path::{Path, PathBuf};

use moat_dram::{BankId, Nanos, RowId};
use moat_sim::Request;
use moat_trace::{record_stream, TraceFile, TraceInfo, HEADER_BYTES, RECORD_BYTES};

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("moat-errpath-{}-{name}.mtrace", std::process::id()))
}

/// Writes a small valid trace and returns its path and bytes.
fn valid_trace(name: &str, n: u32) -> (PathBuf, Vec<u8>) {
    let path = temp(name);
    let stream = (0..n).map(|i| Request {
        gap: Nanos::new(u64::from(i)),
        bank: BankId::new((i % 2) as u16),
        row: RowId::new(i * 3),
    });
    record_stream(&path, 0xFEED, stream).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

fn expect_invalid(path: &Path, what: &str) {
    let err = TraceFile::open(path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{what}: {err}");
}

#[test]
fn truncated_header_is_invalid_data() {
    let (path, bytes) = valid_trace("short-header", 10);
    for keep in [0usize, 1, 7, HEADER_BYTES - 1] {
        std::fs::write(&path, &bytes[..keep]).unwrap();
        expect_invalid(&path, &format!("header cut to {keep} bytes"));
        assert!(TraceInfo::read(&path).is_err());
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_records_are_invalid_data() {
    let (path, bytes) = valid_trace("short-records", 10);
    // Whole records missing, and a ragged partial record.
    for cut in [RECORD_BYTES, 5] {
        std::fs::write(&path, &bytes[..bytes.len() - cut]).unwrap();
        expect_invalid(&path, &format!("cut {cut} trailing bytes"));
    }
    // Extra trailing garbage is rejected too (count no longer matches).
    let mut padded = bytes.clone();
    padded.extend_from_slice(&[0u8; 16]);
    std::fs::write(&path, &padded).unwrap();
    expect_invalid(&path, "trailing garbage");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn bad_magic_is_invalid_data() {
    let (path, mut bytes) = valid_trace("magic", 10);
    bytes[0..8].copy_from_slice(b"NOTATRCE");
    std::fs::write(&path, &bytes).unwrap();
    expect_invalid(&path, "bad magic");
    // A text (v1) trace is not a v2 trace.
    std::fs::write(&path, "# moat activation trace v1\n52 0 7\n").unwrap();
    expect_invalid(&path, "text trace under .mtrace");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn version_mismatch_is_invalid_data() {
    let (path, mut bytes) = valid_trace("version", 10);
    for version in [0u32, 1, 3, u32::MAX] {
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"), "{err}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn record_size_mismatch_is_invalid_data() {
    let (path, mut bytes) = valid_trace("recsize", 10);
    bytes[12..16].copy_from_slice(&8u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    expect_invalid(&path, "record size 8");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checksum_corruption_is_invalid_data() {
    let (path, bytes) = valid_trace("checksum", 64);
    // Flip a single bit in every record position class: first record,
    // middle, last.
    for flip_at in [
        HEADER_BYTES,
        HEADER_BYTES + 32 * RECORD_BYTES + 3,
        bytes.len() - 1,
    ] {
        let mut corrupt = bytes.clone();
        corrupt[flip_at] ^= 0x80;
        std::fs::write(&path, &corrupt).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        // Header-only inspection still works: the checksum walk is the
        // open/verify path's job.
        assert!(TraceInfo::read(&path).is_ok());
    }
    // And a corrupted *header checksum field* fails against good records.
    let mut corrupt = bytes.clone();
    corrupt[32] ^= 0x01;
    std::fs::write(&path, &corrupt).unwrap();
    expect_invalid(&path, "corrupt checksum field");
    std::fs::remove_file(&path).unwrap();
}

/// The verified-once sidecar path for a trace (format pinned by the
/// reader's docs: `<file>.ok`).
fn marker_of(path: &Path) -> PathBuf {
    PathBuf::from(format!("{}.ok", path.display()))
}

/// Pushes the trace's mtime to a fixed distinct value, the way any
/// real later write would, so marker staleness does not depend on the
/// filesystem's timestamp granularity.
fn push_mtime(path: &Path) {
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_times(std::fs::FileTimes::new().set_modified(
        std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_234_567),
    ))
    .unwrap();
}

#[test]
fn corruption_after_marking_is_rejected() {
    // Opening writes the verified-once marker; a file corrupted *after*
    // that (size intact, mtime moved, as any real write does) must still
    // be rejected by the next open — the stale marker cannot vouch for
    // the new bytes.
    let (path, bytes) = valid_trace("post-marker", 64);
    TraceFile::open(&path).expect("valid trace opens");
    assert!(marker_of(&path).exists(), "open must publish the marker");

    let mut corrupt = bytes.clone();
    corrupt[HEADER_BYTES + 17] ^= 0x40;
    std::fs::write(&path, &corrupt).unwrap();
    push_mtime(&path);
    let err = TraceFile::open(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");

    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(marker_of(&path));
}

#[test]
fn verify_rejects_corruption_even_when_the_marker_is_forged() {
    // The marker is metadata trust, not a seal: if an adversarial (or
    // byzantine-filesystem) writer forges a marker matching the
    // corrupted file's metadata, open() takes the fast path — but
    // verify() is the ground truth and must still reject the bytes.
    let (path, bytes) = valid_trace("forged-marker", 64);
    TraceFile::open(&path).expect("valid trace opens");

    let mut corrupt = bytes.clone();
    corrupt[HEADER_BYTES + 5] ^= 0x08;
    std::fs::write(&path, &corrupt).unwrap();
    // Forge the marker against the corrupted file's current metadata and
    // the (untouched) header checksum field.
    let meta = std::fs::metadata(&path).unwrap();
    let mtime = meta
        .modified()
        .unwrap()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .unwrap();
    let checksum = u64::from_le_bytes(corrupt[32..40].try_into().unwrap());
    std::fs::write(
        marker_of(&path),
        format!(
            "moat-trace-verified v1\nbytes {}\nmtime {}.{:09}\nchecksum {checksum:016x}\n",
            meta.len(),
            mtime.as_secs(),
            mtime.subsec_nanos()
        ),
    )
    .unwrap();

    let trace = TraceFile::open(&path).expect("forged marker rides the fast path");
    let err = trace.verify().unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");

    // open_strict ignores the marker entirely: the ground-truth opener
    // (and `repro trace verify`) rejects the same bytes outright.
    let err = TraceFile::open_strict(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("checksum"), "{err}");

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(marker_of(&path)).unwrap();
}

#[test]
fn garbled_marker_falls_back_to_full_verification() {
    let (path, _bytes) = valid_trace("garbled-marker", 32);
    std::fs::write(marker_of(&path), "not a marker at all\n").unwrap();
    // Valid bytes still open (full verify) and the marker is repaired.
    TraceFile::open(&path).expect("garbled marker is ignored");
    let repaired = std::fs::read_to_string(marker_of(&path)).unwrap();
    assert!(repaired.starts_with("moat-trace-verified v1"), "{repaired}");

    // A garbled marker on a *corrupted* file rejects like no marker.
    let mut corrupt = std::fs::read(&path).unwrap();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    std::fs::write(&path, &corrupt).unwrap();
    push_mtime(&path);
    std::fs::write(marker_of(&path), "junk").unwrap();
    expect_invalid(&path, "corrupt bytes behind a garbled marker");

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(marker_of(&path)).unwrap();
}

#[test]
fn missing_file_is_not_found() {
    let path = temp("does-not-exist");
    let err = TraceFile::open(&path).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NotFound);
}

#[test]
fn empty_file_is_invalid_data() {
    let path = temp("empty-file");
    std::fs::File::create(&path).unwrap();
    expect_invalid(&path, "zero-byte file");
    std::fs::remove_file(&path).unwrap();
}
