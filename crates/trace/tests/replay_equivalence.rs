//! Property tests pinning the trace store's core contract: a recorded
//! stream replayed from the memory map is **bit-identical** to fresh
//! generation — request for request, and through both simulators
//! (`PerfReport` and `SecurityReport` equality).

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{AboLevel, DramConfig, Nanos, RowId};
use moat_sim::{
    PerfConfig, PerfSim, Request, RequestStream, ScriptedAttacker, SecurityConfig, SecuritySim,
    SlotBudget, DEFAULT_CHUNK,
};
use moat_trace::{TraceCache, TraceFile, TraceReplay};
use moat_workloads::{trace_key, GeneratorConfig, WorkloadStream, PROFILES};
use proptest::prelude::*;

fn temp_cache(tag: &str) -> TraceCache {
    let dir = std::env::temp_dir().join(format!("moat-replay-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    TraceCache::open(dir).unwrap()
}

/// Records a profile's stream into `cache` and returns the mapped trace.
fn record(cache: &TraceCache, profile_idx: usize, cfg: GeneratorConfig) -> TraceFile {
    let profile = &PROFILES[profile_idx];
    let dram = DramConfig::paper_baseline();
    let key = trace_key(profile, &dram, cfg);
    cache
        .open_or_record(&key, || WorkloadStream::new(profile, &dram, cfg))
        .unwrap()
}

/// Drives a single-bank trace replay as a scripted attack: the rows, in
/// order, with gaps and banks dropped — the shape `run_batched` accepts.
#[derive(Debug)]
struct TraceScript<'a> {
    replay: TraceReplay<'a>,
    chunk: Vec<Request>,
    /// Unconsumed tail of the current chunk.
    pending: std::vec::IntoIter<RowId>,
}

impl<'a> TraceScript<'a> {
    fn new(trace: &'a TraceFile) -> Self {
        TraceScript {
            replay: trace.replay(),
            chunk: Vec::with_capacity(DEFAULT_CHUNK),
            pending: Vec::new().into_iter(),
        }
    }
}

impl ScriptedAttacker for TraceScript<'_> {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            if let Some(row) = self.pending.next() {
                buf.push(row);
                n += 1;
                continue;
            }
            if self.replay.next_chunk(&mut self.chunk) == 0 {
                break;
            }
            let rows: Vec<RowId> = self.chunk.iter().map(|r| r.row).collect();
            self.pending = rows.into_iter();
        }
        n
    }
}

/// The generator-side equivalent of [`TraceScript`].
#[derive(Debug)]
struct StreamScript {
    stream: WorkloadStream,
}

impl ScriptedAttacker for StreamScript {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.stream.next_request() {
                Some(r) => {
                    buf.push(r.row);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Request-level equivalence: the mmap replay yields exactly the
    /// sequence the live generator emits, under any chunk capacity.
    #[test]
    fn replayed_requests_match_generation(
        profile_idx in 0usize..PROFILES.len(),
        seed in 0u64..1_000,
        banks in 1u16..3,
        chunk_cap in 1usize..3000,
    ) {
        let cfg = GeneratorConfig { banks, windows: 1, seed };
        let cache = temp_cache("requests");
        let trace = record(&cache, profile_idx, cfg);

        let mut live = WorkloadStream::new(
            &PROFILES[profile_idx],
            &DramConfig::paper_baseline(),
            cfg,
        );
        let mut replay = trace.replay();
        let mut buf = Vec::with_capacity(chunk_cap);
        let mut replayed = 0u64;
        loop {
            let n = replay.next_chunk(&mut buf);
            if n == 0 {
                break;
            }
            for &r in &buf {
                prop_assert_eq!(Some(r), live.next_request());
            }
            replayed += n as u64;
        }
        prop_assert_eq!(live.next_request(), None, "replay covers the whole stream");
        prop_assert_eq!(replayed, trace.len());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    /// Simulator-level equivalence: a `PerfSim` fed from the map reports
    /// bit-identically to one fed from the live generator, across MOAT
    /// configurations.
    #[test]
    fn perf_report_matches_generation(
        profile_idx in 0usize..PROFILES.len(),
        seed in 0u64..1_000,
        ath_idx in 0usize..3,
        level_idx in 0usize..3,
    ) {
        let gen_cfg = GeneratorConfig { banks: 2, windows: 1, seed };
        let cache = temp_cache("perf");
        let trace = record(&cache, profile_idx, gen_cfg);

        let level = AboLevel::ALL[level_idx];
        let perf_cfg = PerfConfig {
            dram: DramConfig::paper_baseline(),
            banks: 2,
            abo_level: level,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        };
        let moat = MoatConfig::with_ath([32, 64, 128][ath_idx]).level(level);
        let from_map = PerfSim::new(perf_cfg, || MoatEngine::new(moat)).run(trace.replay());
        let from_gen = PerfSim::new(perf_cfg, || MoatEngine::new(moat)).run(WorkloadStream::new(
            &PROFILES[profile_idx],
            &DramConfig::paper_baseline(),
            gen_cfg,
        ));
        prop_assert_eq!(from_map, from_gen);
        prop_assert_eq!(from_map.total_acts, trace.len());
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }

    /// Security-simulator equivalence: replaying a single-bank trace's
    /// rows as a scripted attack produces a `SecurityReport`
    /// bit-identical to scripting the generator directly.
    #[test]
    fn security_report_matches_generation(
        profile_idx in 0usize..PROFILES.len(),
        seed in 0u64..1_000,
        millis in 1u64..4,
    ) {
        let gen_cfg = GeneratorConfig { banks: 1, windows: 1, seed };
        let cache = temp_cache("security");
        let trace = record(&cache, profile_idx, gen_cfg);

        let mk = || SecuritySim::new(
            SecurityConfig::paper_default(),
            MoatEngine::new(MoatConfig::paper_default()),
        );
        let duration = Nanos::from_millis(millis);
        let from_map = mk().run_batched(&mut TraceScript::new(&trace), duration);
        let from_gen = mk().run_batched(
            &mut StreamScript {
                stream: WorkloadStream::new(
                    &PROFILES[profile_idx],
                    &DramConfig::paper_baseline(),
                    gen_cfg,
                ),
            },
            duration,
        );
        prop_assert_eq!(from_map, from_gen);
        std::fs::remove_dir_all(cache.dir()).unwrap();
    }
}
