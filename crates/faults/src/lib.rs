//! # moat-faults — deterministic fault injection for the MOAT reproduction
//!
//! MOAT's security argument (escaped ACTs < ATH) silently assumes the
//! per-row activation counters, the Panopticon-style queue, and the
//! ALERT/RFM signalling are themselves fault-free — but a real in-DRAM
//! tracker is SRAM/DRAM state subject to single-event upsets. This crate
//! turns "is the horizon hint still sound under corruption" into a
//! measured quantity:
//!
//! * [`FaultPlan`] — a seeded description of *what* can go wrong and how
//!   often: SEU bit-flips in tracker state, dropped RFMs, lost ALERT
//!   assertions, stuck-at tracking entries. Armable from the
//!   [`MOAT_FAULTS`](FaultPlan::ENV_VAR) environment variable for CI
//!   chaos runs.
//! * [`FaultInjector`] — the [`FaultHook`] implementation the security
//!   simulator threads through its loops. All randomness comes from a
//!   SplitMix64 stream seeded by the plan, so a faulted run is
//!   bit-deterministic and replayable from `(plan, simulation inputs)`.
//! * [`FaultStats`] — what actually happened: injection counts, how many
//!   engine-promised horizons proved unsound, and when the first one
//!   broke.
//!
//! Injection fires at *event-horizon boundaries* (each iteration of the
//! simulator's batched loops; every ACT slot of the per-step reference),
//! so rates are per-boundary probabilities. With every rate at zero the
//! injector consumes **no** randomness and mutates nothing — the armed
//! loops stay bit-identical to the disarmed build (pinned by proptest in
//! `moat-bench`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use moat_dram::{EngineFault, MitigationEngine, Nanos};
use moat_sim::FaultHook;

/// A tiny deterministic PRNG (SplitMix64): one `u64` of state, full
/// 2^64 period, identical output on every platform. Vendored here rather
/// than taken from the `rand` shim so the fault stream is pinned by this
/// crate alone — fault replays must survive a `rand` shim change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `0..bound` (`bound == 0` returns 0). Uses the
    /// widening-multiply trick; the slight modulo bias is irrelevant at
    /// the tiny bounds used here and keeps the draw one multiplication.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A Bernoulli draw at probability `rate` (clamped to `[0, 1]`).
    /// Compares 64 random bits against a fixed-point threshold, so equal
    /// seeds and rates give identical decision streams everywhere.
    /// `rate <= 0` consumes **no** randomness.
    pub fn chance(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            self.next_u64();
            return true;
        }
        let threshold = (rate * (u64::MAX as f64)) as u64;
        self.next_u64() < threshold
    }
}

/// A seeded description of the faults to inject into one simulation.
///
/// All rates are per event-horizon-boundary probabilities in `[0, 1]`
/// (`drop_rfm` is per RFM, `lose_alert` per assertion attempt). The plan
/// is pure data: two simulations armed with equal plans (and equal
/// simulation inputs) produce bit-identical trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the SplitMix64 fault stream.
    pub seed: u64,
    /// Probability of an SEU bit-flip in tracker state per boundary.
    pub seu_rate: f64,
    /// Probability that an issued RFM performs no mitigation.
    pub drop_rfm_rate: f64,
    /// Probability that an ALERT assertion is lost in flight.
    pub lose_alert_rate: f64,
    /// Probability of a stuck-at tracking entry per boundary.
    pub stuck_rate: f64,
}

impl FaultPlan {
    /// The environment variable [`from_env`](Self::from_env) reads.
    pub const ENV_VAR: &'static str = "MOAT_FAULTS";

    /// An armed-but-empty plan: every rate zero. Arming it changes
    /// nothing — the simulation stays bit-identical to the disarmed
    /// build (the rate-0 no-op property pinned in `moat-bench`).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            seu_rate: 0.0,
            drop_rfm_rate: 0.0,
            lose_alert_rate: 0.0,
            stuck_rate: 0.0,
        }
    }

    /// A plan injecting only SEU bit-flips at `rate` — the knob the
    /// fault-sensitivity sweep ladders.
    pub fn seu(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seu_rate: rate,
            ..Self::none(seed)
        }
    }

    /// Whether every rate is zero.
    pub fn is_empty(&self) -> bool {
        self.seu_rate <= 0.0
            && self.drop_rfm_rate <= 0.0
            && self.lose_alert_rate <= 0.0
            && self.stuck_rate <= 0.0
    }

    /// Parses a plan from a `key=value` list, e.g.
    /// `seed=42,seu=1e-3,drop-rfm=1e-4,lose-alert=1e-4,stuck=1e-5`.
    /// Unspecified fields default to seed 0 / rate 0; underscores and
    /// dashes in keys are interchangeable.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending token.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none(0);
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault spec token `{token}` is not key=value"))?;
            let key = key.trim().replace('-', "_");
            let value = value.trim();
            match key.as_str() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|e| format!("fault seed `{value}`: {e}"))?;
                }
                "seu" | "drop_rfm" | "lose_alert" | "stuck" => {
                    let rate: f64 = value
                        .parse()
                        .map_err(|e| format!("fault rate `{key}={value}`: {e}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("fault rate `{key}={value}` outside [0, 1]"));
                    }
                    match key.as_str() {
                        "seu" => plan.seu_rate = rate,
                        "drop_rfm" => plan.drop_rfm_rate = rate,
                        "lose_alert" => plan.lose_alert_rate = rate,
                        _ => plan.stuck_rate = rate,
                    }
                }
                _ => return Err(format!("unknown fault spec key `{key}`")),
            }
        }
        Ok(plan)
    }

    /// The plan armed via the [`MOAT_FAULTS`](Self::ENV_VAR) environment
    /// variable: `None` when unset or empty.
    ///
    /// # Errors
    ///
    /// Propagates [`parse`](Self::parse) errors on a malformed value.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(Self::ENV_VAR) {
            Ok(spec) if spec.trim().is_empty() => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
            Err(std::env::VarError::NotPresent) => Ok(None),
            // Previously swallowed by a catch-all arm: a non-Unicode
            // value now surfaces instead of silently disarming the plan.
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{} is set but not valid Unicode", Self::ENV_VAR))
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={},seu={},drop-rfm={},lose-alert={},stuck={}",
            self.seed, self.seu_rate, self.drop_rfm_rate, self.lose_alert_rate, self.stuck_rate
        )
    }
}

/// When the engine's promised horizon first proved unsound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FirstUnsound {
    /// Simulation time of the violating ACT.
    pub at: Nanos,
    /// The engine-guaranteed horizon that was in force.
    pub promised: u64,
    /// How many of the promised ACTs had completed when `alert_pending`
    /// flipped.
    pub done: u64,
}

/// What a [`FaultInjector`] actually did to a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Event-horizon boundaries observed.
    pub boundaries: u64,
    /// SEU bit-flips applied (attempts that changed engine state).
    pub seu_flips: u64,
    /// Stuck-at entry faults applied.
    pub stuck_entries: u64,
    /// RFMs whose mitigation was dropped.
    pub dropped_rfms: u64,
    /// ALERT assertions lost in flight.
    pub lost_alerts: u64,
    /// Engine-promised horizons that proved unsound.
    pub unsound_horizons: u64,
    /// ACTs that executed past a pending alert inside already-granted
    /// runs, summed over every unsound horizon — the measured damage of
    /// the injected corruption.
    pub escaped_acts: u64,
    /// The first unsound horizon, if any.
    pub first_unsound: Option<FirstUnsound>,
}

/// The [`FaultHook`] implementation: draws from a seeded SplitMix64
/// stream, corrupts the engine through
/// [`MitigationEngine::apply_fault`], and records [`FaultStats`].
///
/// SEU flips target one bit of one tracking slot. The bit position is
/// confined to the low `log2(rows_per_bank)` bits so a flipped
/// Panopticon row tag still names a real row — a flip into a nonexistent
/// row would be a detectable addressing error, not the silent corruption
/// this layer models. (All shipped configurations have power-of-two row
/// counts, making the confinement exact.) For MOAT the same bits land in
/// the tracked *count*, which is precisely the state whose corruption
/// can break the `min_acts_to_alert` bound.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Tracking slots to aim at (engines take the index modulo their own
    /// structure size; 8 covers every shipped design).
    slots: u64,
    /// Bit positions an SEU may flip: `floor(log2(rows_per_bank))`.
    bits: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for `plan` against banks of `rows_per_bank`
    /// rows.
    pub fn new(plan: FaultPlan, rows_per_bank: u32) -> Self {
        let bits = u64::from(32 - rows_per_bank.max(2).leading_zeros() - 1);
        FaultInjector {
            plan,
            rng: SplitMix64::new(plan.seed),
            slots: 8,
            bits,
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

impl FaultHook for FaultInjector {
    const ARMED: bool = true;

    fn at_boundary(&mut self, _now: Nanos, engine: &mut dyn MitigationEngine) {
        self.stats.boundaries += 1;
        if self.rng.chance(self.plan.seu_rate) {
            let fault = EngineFault::FlipCounterBit {
                slot: self.rng.below(self.slots) as usize,
                bit: self.rng.below(self.bits) as u32,
            };
            if engine.apply_fault(&fault) {
                self.stats.seu_flips += 1;
            }
        }
        if self.rng.chance(self.plan.stuck_rate) {
            let fault = EngineFault::StuckEntry {
                slot: self.rng.below(self.slots) as usize,
            };
            if engine.apply_fault(&fault) {
                self.stats.stuck_entries += 1;
            }
        }
    }

    fn drop_rfm(&mut self, _now: Nanos) -> bool {
        let dropped = self.rng.chance(self.plan.drop_rfm_rate);
        self.stats.dropped_rfms += u64::from(dropped);
        dropped
    }

    fn lose_alert(&mut self, _now: Nanos) -> bool {
        let lost = self.rng.chance(self.plan.lose_alert_rate);
        self.stats.lost_alerts += u64::from(lost);
        lost
    }

    fn on_unsound_horizon(&mut self, now: Nanos, promised: u64, done: u64) {
        self.stats.unsound_horizons += 1;
        self.stats.escaped_acts += promised.saturating_sub(done);
        if self.stats.first_unsound.is_none() {
            self.stats.first_unsound = Some(FirstUnsound {
                at: now,
                promised,
                done,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        let mut c = SplitMix64::new(8);
        assert_ne!(xs[0], c.next_u64());
        // below() respects its bound.
        let mut d = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(d.below(8) < 8);
        }
        assert_eq!(d.below(0), 0);
    }

    #[test]
    fn chance_matches_rate_roughly_and_zero_is_free() {
        let mut rng = SplitMix64::new(1);
        let hits = (0..10_000).filter(|_| rng.chance(0.1)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
        // rate 0 consumes no randomness: the stream is untouched.
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        assert!(!a.chance(0.0));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn plan_parses_round_trip() {
        let plan =
            FaultPlan::parse("seed=42, seu=1e-3, drop-rfm=0.25, lose_alert=0.5, stuck=0").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.seu_rate, 1e-3);
        assert_eq!(plan.drop_rfm_rate, 0.25);
        assert_eq!(plan.lose_alert_rate, 0.5);
        assert!(plan.stuck_rate == 0.0);
        assert!(!plan.is_empty());
        // Display round-trips through parse.
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(again, plan);
    }

    #[test]
    fn plan_rejects_garbage() {
        assert!(FaultPlan::parse("seu").is_err(), "missing =");
        assert!(FaultPlan::parse("seu=2.0").is_err(), "rate > 1");
        assert!(FaultPlan::parse("seu=-0.1").is_err(), "negative rate");
        assert!(FaultPlan::parse("warp=0.1").is_err(), "unknown key");
        assert!(FaultPlan::parse("seed=abc").is_err(), "bad seed");
        assert!(
            FaultPlan::parse("").unwrap().is_empty(),
            "empty spec is the empty plan"
        );
    }

    #[test]
    fn from_env_surfaces_malformed_values_as_errors() {
        // One serial test owns the env var: parallel sub-tests would
        // race on the process-global environment.
        let check = |value: &str, expect_err: bool| {
            std::env::set_var(FaultPlan::ENV_VAR, value);
            let result = FaultPlan::from_env();
            std::env::remove_var(FaultPlan::ENV_VAR);
            assert_eq!(
                result.is_err(),
                expect_err,
                "MOAT_FAULTS={value:?} -> {result:?}"
            );
        };
        check("seu", true); // missing =
        check("seu=2.0", true); // rate out of range
        check("warp=0.1", true); // unknown key
        check("seed=abc", true); // non-numeric seed
        check("", false); // empty means unarmed, not an error
        check("   ", false);
        check("seed=7,seu=0.5", false);
        assert_eq!(FaultPlan::from_env(), Ok(None), "unset means unarmed");

        #[cfg(unix)]
        {
            use std::os::unix::ffi::OsStringExt;
            let bogus = std::ffi::OsString::from_vec(vec![0x66, 0xFF, 0x67]);
            std::env::set_var(FaultPlan::ENV_VAR, &bogus);
            let result = FaultPlan::from_env();
            std::env::remove_var(FaultPlan::ENV_VAR);
            assert!(
                result.is_err(),
                "a non-Unicode value must error, not silently disarm: {result:?}"
            );
        }
    }

    #[test]
    fn empty_plan_injector_is_inert() {
        use moat_dram::NullEngine;
        let mut inj = FaultInjector::new(FaultPlan::none(3), 65_536);
        let mut engine = NullEngine::new();
        for i in 0..100u64 {
            inj.at_boundary(Nanos::new(i), &mut engine);
            assert!(!inj.drop_rfm(Nanos::new(i)));
            assert!(!inj.lose_alert(Nanos::new(i)));
        }
        let stats = inj.stats();
        assert_eq!(stats.boundaries, 100);
        assert_eq!(stats.seu_flips, 0);
        assert_eq!(stats.dropped_rfms, 0);
        assert_eq!(stats.lost_alerts, 0);
        assert!(stats.first_unsound.is_none());
    }

    #[test]
    fn injector_bit_range_tracks_rows() {
        let inj = FaultInjector::new(FaultPlan::seu(1, 0.5), 65_536);
        assert_eq!(inj.bits, 16);
        let inj = FaultInjector::new(FaultPlan::seu(1, 0.5), 1024);
        assert_eq!(inj.bits, 10);
    }

    #[test]
    fn first_unsound_records_only_the_first() {
        let mut inj = FaultInjector::new(FaultPlan::none(3), 1024);
        inj.on_unsound_horizon(Nanos::new(100), 10, 4);
        inj.on_unsound_horizon(Nanos::new(200), 8, 2);
        let stats = inj.stats();
        assert_eq!(stats.unsound_horizons, 2);
        assert_eq!(stats.escaped_acts, (10 - 4) + (8 - 2));
        assert_eq!(
            stats.first_unsound,
            Some(FirstUnsound {
                at: Nanos::new(100),
                promised: 10,
                done: 4,
            })
        );
    }
}
