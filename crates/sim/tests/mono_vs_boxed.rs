//! Regression tests: the monomorphized `PerfSim<MoatEngine>` and the
//! type-erased `PerfSim<Box<dyn MitigationEngine>>` must produce
//! bit-identical reports on the same request stream — the dispatch
//! strategy is a pure performance choice and must never change the
//! simulation.

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{AboLevel, BankId, DramConfig, MitigationEngine, Nanos, RowId};
use moat_sim::{PerfConfig, PerfReport, PerfSim, Request, SecurityConfig, SecuritySim, SlotBudget};

fn cfg(banks: u16, alerts: bool) -> PerfConfig {
    PerfConfig {
        dram: DramConfig::builder().rows_per_bank(4096).build(),
        banks,
        abo_level: AboLevel::L1,
        budget: SlotBudget::paper_default(),
        alerts_enabled: alerts,
    }
}

fn run_both<S>(config: PerfConfig, stream: S) -> (PerfReport, PerfReport)
where
    S: Iterator<Item = Request> + Clone,
{
    let mono =
        PerfSim::new(config, || MoatEngine::new(MoatConfig::paper_default())).run(stream.clone());
    let boxed = PerfSim::new(config, || {
        Box::new(MoatEngine::new(MoatConfig::paper_default())) as Box<dyn MitigationEngine>
    })
    .run(stream);
    (mono, boxed)
}

/// Exact equality including the f64-derived fields: both runs must take
/// the same code path through the same arithmetic.
fn assert_bit_identical(mono: &PerfReport, boxed: &PerfReport) {
    assert_eq!(mono, boxed);
    assert_eq!(
        mono.alerts_per_trefi.to_bits(),
        boxed.alerts_per_trefi.to_bits(),
        "alerts_per_trefi differs at the bit level"
    );
    assert_eq!(
        mono.mitigations_per_bank_per_trefw.to_bits(),
        boxed.mitigations_per_bank_per_trefw.to_bits(),
        "mitigations_per_bank_per_trefw differs at the bit level"
    );
}

#[test]
fn uniform_stream_reports_are_bit_identical() {
    let stream = (0..50_000u32).map(|i| Request {
        gap: Nanos::new(20),
        bank: BankId::new((i % 4) as u16),
        row: RowId::new(i.wrapping_mul(37) % 4096),
    });
    let (mono, boxed) = run_both(cfg(4, true), stream);
    assert_eq!(mono.total_acts, 50_000);
    assert_bit_identical(&mono, &boxed);
}

#[test]
fn alert_heavy_hammer_reports_are_bit_identical() {
    // Single row, single bank: an ALERT roughly every 65 ACTs exercises
    // the whole ABO/RFM path on both dispatch strategies.
    let stream = (0..30_000u32).map(|_| Request {
        gap: Nanos::new(52),
        bank: BankId::new(0),
        row: RowId::new(9),
    });
    let (mono, boxed) = run_both(cfg(1, true), stream);
    assert!(mono.alerts > 100, "hammer must alert ({})", mono.alerts);
    assert_bit_identical(&mono, &boxed);
}

#[test]
fn alert_disabled_baseline_reports_are_bit_identical() {
    let stream = (0..30_000u32).map(|_| Request {
        gap: Nanos::ZERO,
        bank: BankId::new(0),
        row: RowId::new(9),
    });
    let (mono, boxed) = run_both(cfg(1, false), stream);
    assert_eq!(mono.alerts, 0);
    assert_bit_identical(&mono, &boxed);
}

#[test]
fn security_sim_is_dispatch_agnostic_too() {
    let config = SecurityConfig::paper_default();
    let duration = Nanos::from_millis(2);

    let mut mono_sim = SecuritySim::new(config, MoatEngine::new(MoatConfig::paper_default()));
    let mono = mono_sim.run(&mut moat_sim::hammer_attacker(10_000), duration);

    let mut boxed_sim = SecuritySim::new(
        config,
        Box::new(MoatEngine::new(MoatConfig::paper_default())) as Box<dyn MitigationEngine>,
    );
    let boxed = boxed_sim.run(&mut moat_sim::hammer_attacker(10_000), duration);

    assert_eq!(mono, boxed);
}
