//! Property-based tests of the simulators: conservation laws and the
//! MOAT security invariant under randomized adaptive attackers.

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{BankId, Nanos, RowId};
use moat_sim::{
    AttackStep, Attacker, DefenseView, PerfConfig, PerfSim, Request, SecurityConfig, SecuritySim,
    SlotBudget,
};
use proptest::prelude::*;

/// A randomized attacker that replays a fixed decision tape: act on one
/// of a few rows, idle, or postpone.
struct TapeAttacker {
    tape: Vec<u8>,
    pos: usize,
    rows: Vec<RowId>,
}

impl Attacker for TapeAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        if self.pos >= self.tape.len() {
            // Loop the tape; the duration bounds the run.
            self.pos = 0;
        }
        let op = self.tape[self.pos];
        self.pos += 1;
        match op % 10 {
            8 => AttackStep::Idle,
            9 => AttackStep::PostponeRef,
            r => AttackStep::Act(self.rows[usize::from(r) % self.rows.len()]),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The MOAT security invariant holds under arbitrary attacker tapes:
    /// no row's epoch ever exceeds the Appendix-A tolerated threshold.
    #[test]
    fn moat_invariant_under_random_tapes(
        tape in prop::collection::vec(0u8..10, 50..400),
        base in 1000u32..60_000
    ) {
        let mut sim = SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        );
        let rows: Vec<RowId> = (0..8).map(|i| RowId::new(base % 60_000 + i * 6)).collect();
        let mut attacker = TapeAttacker { tape, pos: 0, rows };
        let report = sim.run(&mut attacker, Nanos::from_millis(2));
        prop_assert!(
            report.max_epoch <= 99,
            "epoch {} exceeded the tolerated threshold",
            report.max_epoch
        );
        prop_assert!(report.max_pressure <= 2 * 99, "pressure {}", report.max_pressure);
    }

    /// Conservation: the security report's activation count equals the
    /// tape's act steps (modulo the run horizon), and REFs never stop.
    #[test]
    fn security_sim_counts_are_consistent(
        tape in prop::collection::vec(0u8..10, 50..200)
    ) {
        let mut sim = SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        );
        let rows: Vec<RowId> = (0..4).map(|i| RowId::new(30_000 + i * 6)).collect();
        let mut attacker = TapeAttacker { tape, pos: 0, rows };
        let report = sim.run(&mut attacker, Nanos::from_micros(500));
        prop_assert!(report.elapsed >= Nanos::from_micros(500));
        // 500 µs / 3900 ns ≈ 128 REFs.
        prop_assert!((120..=132).contains(&report.refs), "refs {}", report.refs);
        // Level 1 issues one RFM per ALERT; an ALERT asserted right at the
        // horizon may end the run before its RFM executes.
        prop_assert!(
            report.alerts - report.rfms <= 1,
            "alerts {} vs rfms {}",
            report.alerts,
            report.rfms
        );
    }

    /// The performance simulator executes every request exactly once and
    /// time never runs backwards, for arbitrary gap/bank/row streams.
    #[test]
    fn perf_sim_executes_all_requests(
        reqs in prop::collection::vec((0u64..500, 0u16..4, 0u32..4096), 1..2000)
    ) {
        let dram = moat_dram::DramConfig::builder().rows_per_bank(4096).build();
        let cfg = PerfConfig {
            dram,
            banks: 4,
            abo_level: moat_dram::AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        };
        let n = reqs.len() as u64;
        let stream = reqs.into_iter().map(|(gap, bank, row)| Request {
            gap: Nanos::new(gap),
            bank: BankId::new(bank),
            row: RowId::new(row),
        });
        let mut sim = PerfSim::new(cfg, || {
            Box::new(MoatEngine::new(MoatConfig::paper_default()))
        });
        let report = sim.run(stream);
        prop_assert_eq!(report.total_acts, n);
        prop_assert!(report.completion_time > Nanos::ZERO);
        // Level-1 accounting: RFMs equal ALERTs.
        prop_assert_eq!(report.rfms, report.alerts);
    }

    /// ALERT-disabled runs are never slower than ALERT-enabled runs of
    /// the same stream (stalls only add time).
    #[test]
    fn alerts_never_speed_things_up(
        seed_rows in prop::collection::vec(0u32..64, 10..50)
    ) {
        let dram = moat_dram::DramConfig::builder().rows_per_bank(4096).build();
        let mk = |alerts: bool| PerfConfig {
            dram,
            banks: 1,
            abo_level: moat_dram::AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: alerts,
        };
        // A hammering stream guaranteed to trigger ALERTs.
        let stream = |_| {
            let rows = seed_rows.clone();
            (0..8000usize).map(move |i| Request {
                gap: Nanos::ZERO,
                bank: BankId::new(0),
                row: RowId::new(2048 + rows[i % rows.len()] % 8),
            })
        };
        let with = PerfSim::new(mk(true), || {
            Box::new(MoatEngine::new(MoatConfig::paper_default()))
        })
        .run(stream(0));
        let without = PerfSim::new(mk(false), || {
            Box::new(MoatEngine::new(MoatConfig::paper_default()))
        })
        .run(stream(0));
        prop_assert!(with.completion_time >= without.completion_time);
    }
}
