//! Property-based tests of the simulators: conservation laws, the MOAT
//! security invariant under randomized adaptive attackers, and the
//! equivalence of the event-horizon batched security path with the
//! per-step reference.

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::{AboLevel, BankId, Nanos, RowId};
use moat_sim::{
    AttackStep, Attacker, DefenseView, PerfConfig, PerfSim, Request, Scripted, ScriptedAttacker,
    SecurityConfig, SecuritySim, SlotBudget,
};
use proptest::prelude::*;

/// A finite scripted kernel: cycle over a row pattern for a fixed number
/// of activations — the non-adaptive shape `run_batched` accelerates.
#[derive(Debug, Clone)]
struct PatternScript {
    rows: Vec<RowId>,
    pos: usize,
    remaining: u64,
}

impl ScriptedAttacker for PatternScript {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        let n = (max as u64).min(self.remaining) as usize;
        for _ in 0..n {
            buf.push(self.rows[self.pos]);
            self.pos += 1;
            if self.pos == self.rows.len() {
                self.pos = 0;
            }
        }
        self.remaining -= n as u64;
        n
    }
}

/// A randomized attacker that replays a fixed decision tape: act on one
/// of a few rows, idle, or postpone.
struct TapeAttacker {
    tape: Vec<u8>,
    pos: usize,
    rows: Vec<RowId>,
}

impl Attacker for TapeAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        if self.pos >= self.tape.len() {
            // Loop the tape; the duration bounds the run.
            self.pos = 0;
        }
        let op = self.tape[self.pos];
        self.pos += 1;
        match op % 10 {
            8 => AttackStep::Idle,
            9 => AttackStep::PostponeRef,
            r => AttackStep::Act(self.rows[usize::from(r) % self.rows.len()]),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The MOAT security invariant holds under arbitrary attacker tapes:
    /// no row's epoch ever exceeds the Appendix-A tolerated threshold.
    #[test]
    fn moat_invariant_under_random_tapes(
        tape in prop::collection::vec(0u8..10, 50..400),
        base in 1000u32..60_000
    ) {
        let mut sim = SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        );
        let rows: Vec<RowId> = (0..8).map(|i| RowId::new(base % 60_000 + i * 6)).collect();
        let mut attacker = TapeAttacker { tape, pos: 0, rows };
        let report = sim.run(&mut attacker, Nanos::from_millis(2));
        prop_assert!(
            report.max_epoch <= 99,
            "epoch {} exceeded the tolerated threshold",
            report.max_epoch
        );
        prop_assert!(report.max_pressure <= 2 * 99, "pressure {}", report.max_pressure);
    }

    /// Conservation: the security report's activation count equals the
    /// tape's act steps (modulo the run horizon), and REFs never stop.
    #[test]
    fn security_sim_counts_are_consistent(
        tape in prop::collection::vec(0u8..10, 50..200)
    ) {
        let mut sim = SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        );
        let rows: Vec<RowId> = (0..4).map(|i| RowId::new(30_000 + i * 6)).collect();
        let mut attacker = TapeAttacker { tape, pos: 0, rows };
        let report = sim.run(&mut attacker, Nanos::from_micros(500));
        prop_assert!(report.elapsed >= Nanos::from_micros(500));
        // 500 µs / 3900 ns ≈ 128 REFs.
        prop_assert!((120..=132).contains(&report.refs), "refs {}", report.refs);
        // Level 1 issues one RFM per ALERT; an ALERT asserted right at the
        // horizon may end the run before its RFM executes.
        prop_assert!(
            report.alerts - report.rfms <= 1,
            "alerts {} vs rfms {}",
            report.alerts,
            report.rfms
        );
    }

    /// The performance simulator executes every request exactly once and
    /// time never runs backwards, for arbitrary gap/bank/row streams.
    #[test]
    fn perf_sim_executes_all_requests(
        reqs in prop::collection::vec((0u64..500, 0u16..4, 0u32..4096), 1..2000)
    ) {
        let dram = moat_dram::DramConfig::builder().rows_per_bank(4096).build();
        let cfg = PerfConfig {
            dram,
            banks: 4,
            abo_level: moat_dram::AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        };
        let n = reqs.len() as u64;
        let stream = reqs.into_iter().map(|(gap, bank, row)| Request {
            gap: Nanos::new(gap),
            bank: BankId::new(bank),
            row: RowId::new(row),
        });
        let mut sim = PerfSim::new(cfg, || {
            Box::new(MoatEngine::new(MoatConfig::paper_default()))
        });
        let report = sim.run(stream);
        prop_assert_eq!(report.total_acts, n);
        prop_assert!(report.completion_time > Nanos::ZERO);
        // Level-1 accounting: RFMs equal ALERTs.
        prop_assert_eq!(report.rfms, report.alerts);
    }

    /// ALERT-disabled runs are never slower than ALERT-enabled runs of
    /// the same stream (stalls only add time).
    #[test]
    fn alerts_never_speed_things_up(
        seed_rows in prop::collection::vec(0u32..64, 10..50)
    ) {
        let dram = moat_dram::DramConfig::builder().rows_per_bank(4096).build();
        let mk = |alerts: bool| PerfConfig {
            dram,
            banks: 1,
            abo_level: moat_dram::AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: alerts,
        };
        // A hammering stream guaranteed to trigger ALERTs.
        let stream = |_| {
            let rows = seed_rows.clone();
            (0..8000usize).map(move |i| Request {
                gap: Nanos::ZERO,
                bank: BankId::new(0),
                row: RowId::new(2048 + rows[i % rows.len()] % 8),
            })
        };
        let with = PerfSim::new(mk(true), || {
            Box::new(MoatEngine::new(MoatConfig::paper_default()))
        })
        .run(stream(0));
        let without = PerfSim::new(mk(false), || {
            Box::new(MoatEngine::new(MoatConfig::paper_default()))
        })
        .run(stream(0));
        prop_assert!(with.completion_time >= without.completion_time);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SecuritySim analogue of `chunk_equivalence`: for random
    /// kernels, ABO levels, mitigation budgets, thresholds, and horizons,
    /// the event-horizon batched path produces a `SecurityReport`
    /// bit-identical to the per-step reference over the same script.
    #[test]
    fn batched_matches_per_step(
        base in 100u32..60_000,
        spacings in prop::collection::vec(1u32..12, 1..6),
        total in 500u64..6_000,
        level_idx in 0usize..3,
        budget_kind in 0u8..3,
        budget_trefi in 1u32..10,
        ath_idx in 0usize..3,
        alerts_coin in 0u8..2,
        micros in 100u64..1500,
    ) {
        let level = AboLevel::ALL[level_idx];
        let ath = [32u32, 64, 128][ath_idx];
        let budget = match budget_kind {
            0 => SlotBudget::paper_default(),
            1 => SlotBudget::disabled(),
            _ => SlotBudget::per_aggressor(5, budget_trefi),
        };
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = level;
        cfg.budget = budget;
        cfg.alerts_enabled = alerts_coin == 1;

        // Clustered rows (cumulative small spacings) stress the ledger's
        // blast radius and the tracker's displacement paths.
        let mut rows = Vec::new();
        let mut row = base;
        for s in &spacings {
            rows.push(RowId::new(row));
            row += s;
        }
        let script = PatternScript { rows, pos: 0, remaining: total };
        let duration = Nanos::from_micros(micros);

        let engine = || MoatEngine::new(MoatConfig::with_ath(ath).level(level));
        let mut per_step = SecuritySim::new(cfg, engine());
        let expect = per_step.run(&mut Scripted::new(script.clone()), duration);
        let mut batched = SecuritySim::new(cfg, engine());
        let got = batched.run_batched(&mut script.clone(), duration);
        prop_assert_eq!(got, expect);
    }

    /// Batched ≡ per-step holds for the Panopticon family too — the
    /// engines whose `min_acts_to_alert` is the queue's threshold
    /// distance. Small queues and thresholds make overflow ALERTs (and,
    /// for the drain variant, REF-triggered drain ALERTs) frequent inside
    /// the run.
    #[test]
    fn batched_matches_per_step_for_panopticon(
        base in 100u32..60_000,
        spacings in prop::collection::vec(1u32..12, 1..8),
        total in 500u64..6_000,
        level_idx in 0usize..3,
        entries in 1usize..5,
        threshold in 4u32..40,
        drain_coin in 0u8..2,
        micros in 100u64..1500,
    ) {
        use moat_trackers::{PanopticonConfig, PanopticonEngine};

        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = AboLevel::ALL[level_idx];

        let mut rows = Vec::new();
        let mut row = base;
        for s in &spacings {
            rows.push(RowId::new(row));
            row += s;
        }
        let script = PatternScript { rows, pos: 0, remaining: total };
        let duration = Nanos::from_micros(micros);
        let pano = PanopticonConfig {
            queue_entries: entries,
            queue_threshold: threshold,
            drain_on_ref: drain_coin == 1,
        };

        let mut per_step = SecuritySim::new(cfg, PanopticonEngine::new(pano));
        let expect = per_step.run(&mut Scripted::new(script.clone()), duration);
        let mut batched = SecuritySim::new(cfg, PanopticonEngine::new(pano));
        let got = batched.run_batched(&mut script.clone(), duration);
        prop_assert_eq!(got, expect);
    }

    /// Batched ≡ per-step for *every* engine in the registry zoo. The
    /// batched path trusts each engine's `min_acts_to_alert` horizon to
    /// skip per-ACT polling; any unsound bound (ABACuS's shared RACs,
    /// CoMeT's stale sketch maxima, DSAC's stochastic counters,
    /// CnC-PRAC's coalesced queue) would surface here as report drift
    /// on clustered random scripts.
    #[test]
    fn batched_matches_per_step_for_the_zoo(
        base in 100u32..60_000,
        spacings in prop::collection::vec(1u32..12, 1..6),
        total in 500u64..4_000,
        level_idx in 0usize..3,
        micros in 100u64..900,
    ) {
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = AboLevel::ALL[level_idx];

        let mut rows = Vec::new();
        let mut row = base;
        for s in &spacings {
            rows.push(RowId::new(row));
            row += s;
        }
        let script = PatternScript { rows, pos: 0, remaining: total };
        let duration = Nanos::from_micros(micros);

        for spec in moat_trackers::registry::ENGINES {
            for variant in spec.variants {
                let mut per_step = SecuritySim::new(cfg, (variant.build)());
                let expect = per_step.run(&mut Scripted::new(script.clone()), duration);
                let mut batched = SecuritySim::new(cfg, (variant.build)());
                let got = batched.run_batched(&mut script.clone(), duration);
                prop_assert_eq!(got, expect, "{}/{}", spec.name, variant.label);
            }
        }
    }
}
