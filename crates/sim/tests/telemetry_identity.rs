//! Telemetry's read-only contract, pinned: arming a [`Tracer`] on any
//! simulation path — per-step, batched, or semi-scripted, on either
//! engine family — must not change a single bit of the report the
//! disarmed path produces, and two armed runs of the same cell must
//! render the same telemetry artifact byte for byte.

use moat_core::{MoatConfig, MoatEngine};
use moat_dram::Nanos;
use moat_sim::{
    hammer_attacker, NoFaults, NoGuard, PerfConfig, PerfSim, Request, Scripted, SecurityConfig,
    SecuritySim,
};
use moat_telemetry::{TelemetryLevel, TelemetrySink, Tracer};
use moat_trackers::{PanopticonConfig, PanopticonEngine};

fn moat_sim() -> SecuritySim<MoatEngine> {
    SecuritySim::new(
        SecurityConfig::paper_default(),
        MoatEngine::new(MoatConfig::paper_default()),
    )
}

fn pano_sim() -> SecuritySim<PanopticonEngine> {
    SecuritySim::new(
        SecurityConfig::paper_default(),
        PanopticonEngine::new(PanopticonConfig::paper_default()),
    )
}

const DURATION: Nanos = Nanos::from_millis(2);

/// Every (protocol × engine) cell: the armed-tracer report equals the
/// disarmed report bit for bit, and the tracer saw real boundaries.
#[test]
fn armed_tracer_never_changes_the_security_report() {
    // Per-step, MOAT and Panopticon.
    let baseline = moat_sim().run(&mut Scripted::new(hammer_attacker(30_000)), DURATION);
    let mut tracer = Tracer::full();
    let traced = moat_sim().run_traced(
        &mut Scripted::new(hammer_attacker(30_000)),
        DURATION,
        &mut NoFaults,
        &mut NoGuard,
        &mut tracer,
    );
    assert_eq!(
        baseline, traced,
        "per-step/moat report changed under tracing"
    );
    assert!(tracer.boundaries() > 0, "armed tracer saw no boundaries");
    assert!(tracer.profile().total_ns() > 0, "no time was attributed");

    let baseline = pano_sim().run(&mut Scripted::new(hammer_attacker(30_000)), DURATION);
    let traced = pano_sim().run_traced(
        &mut Scripted::new(hammer_attacker(30_000)),
        DURATION,
        &mut NoFaults,
        &mut NoGuard,
        &mut Tracer::full(),
    );
    assert_eq!(
        baseline, traced,
        "per-step/pano report changed under tracing"
    );

    // Batched, both engines.
    let baseline = moat_sim().run_batched(&mut hammer_attacker(30_000), DURATION);
    let traced = moat_sim().run_batched_traced(
        &mut hammer_attacker(30_000),
        DURATION,
        &mut NoFaults,
        &mut NoGuard,
        &mut Tracer::full(),
    );
    assert_eq!(
        baseline, traced,
        "batched/moat report changed under tracing"
    );

    let baseline = pano_sim().run_batched(&mut hammer_attacker(30_000), DURATION);
    let traced = pano_sim().run_batched_traced(
        &mut hammer_attacker(30_000),
        DURATION,
        &mut NoFaults,
        &mut NoGuard,
        &mut Tracer::full(),
    );
    assert_eq!(
        baseline, traced,
        "batched/pano report changed under tracing"
    );

    // Semi-scripted (scripted attackers ride the blanket impl), both
    // engines.
    let baseline = moat_sim().run_semi_scripted(&mut hammer_attacker(30_000), DURATION);
    let traced = moat_sim().run_semi_scripted_traced(
        &mut hammer_attacker(30_000),
        DURATION,
        &mut NoFaults,
        &mut NoGuard,
        &mut Tracer::full(),
    );
    assert_eq!(baseline, traced, "semi/moat report changed under tracing");

    let baseline = pano_sim().run_semi_scripted(&mut hammer_attacker(30_000), DURATION);
    let traced = pano_sim().run_semi_scripted_traced(
        &mut hammer_attacker(30_000),
        DURATION,
        &mut NoFaults,
        &mut NoGuard,
        &mut Tracer::full(),
    );
    assert_eq!(baseline, traced, "semi/pano report changed under tracing");
}

/// The perf simulator: tracing the chunked stream path leaves the
/// report bit-identical too.
#[test]
fn armed_tracer_never_changes_the_perf_report() {
    let stream = || {
        (0..50_000u32).map(|i| Request {
            gap: Nanos::new(2),
            bank: moat_dram::BankId::new((i % 8) as u16),
            row: moat_dram::RowId::new(i.wrapping_mul(2654435761) % 65_536),
        })
    };
    let config = PerfConfig {
        banks: 8,
        ..PerfConfig::paper_default()
    };
    let baseline =
        PerfSim::new(config, || MoatEngine::new(MoatConfig::paper_default())).run(stream());
    let mut tracer = Tracer::full();
    let traced = PerfSim::new(config, || MoatEngine::new(MoatConfig::paper_default()))
        .run_traced(stream(), &mut tracer);
    assert_eq!(baseline, traced, "perf report changed under tracing");
    assert!(tracer.boundaries() > 0);
    assert!(tracer.profile().total_ns() > 0);
}

/// Two armed runs of the same cell render the same telemetry artifact
/// byte for byte, on every sink — telemetry is keyed to sim time, never
/// the host clock.
#[test]
fn armed_renders_are_bit_identical_across_runs() {
    let trace_once = || {
        let mut tracer = Tracer::new(TelemetryLevel::Full);
        moat_sim().run_batched_traced(
            &mut hammer_attacker(30_000),
            DURATION,
            &mut NoFaults,
            &mut NoGuard,
            &mut tracer,
        );
        tracer
    };
    let first = trace_once();
    let second = trace_once();
    for sink in [
        TelemetrySink::Text,
        TelemetrySink::Json,
        TelemetrySink::Chrome,
    ] {
        assert_eq!(
            first.render(sink),
            second.render(sink),
            "armed render drifted across runs ({sink:?})"
        );
    }
}
