//! The bank-level security simulator: an adaptive attacker versus one bank
//! unit under full DDR5/PRAC/ABO timing.
//!
//! The simulator is the referee for every security experiment in the paper
//! (Figs. 5, 7, 10, 15, 16): it enforces tRC spacing, schedules REFs,
//! drives the ABO protocol, and maintains the ground-truth
//! [`SecurityLedger`](moat_dram::SecurityLedger) outside the reach of the
//! defense. The attacker sees the complete defense state each step (threat
//! model §2.1) and decides the next activation.
//!
//! Two execution modes share the same state machine:
//!
//! * [`SecuritySim::run`] steps an adaptive [`Attacker`] one ACT slot at a
//!   time — the bit-identical reference every experiment can fall back to.
//! * [`SecuritySim::run_batched`] drives a non-adaptive
//!   [`ScriptedAttacker`] between *event horizons*: between two
//!   state-changing events (next REF deadline, ABO activity-window close,
//!   earliest possible ALERT per
//!   [`MitigationEngine::min_acts_to_alert`]) the defense is inert, so a
//!   whole run of scripted ACTs issues as one batched pass through the
//!   bank unit instead of re-entering the four-way priority match per
//!   slot.

use std::borrow::Cow;

use moat_dram::{AboLevel, AboPhase, AboProtocol, DramConfig, MitigationEngine, Nanos, RowId};

use crate::budget::SlotBudget;
use crate::unit::{BankUnit, BankUnitView};

/// Upper bound on the rows fetched per scripted run. The REF cadence caps
/// useful runs near tREFI/tRC (~75 ACTs) anyway; this only bounds the
/// reusable buffer.
const MAX_RUN: usize = 1024;

/// What the attacker does with its next ACT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStep {
    /// Activate this row.
    Act(RowId),
    /// Let the slot pass unused.
    Idle,
    /// Postpone the next REF (the threat model lets the attacker choose
    /// the memory-system policy, §2.1 / Appendix B). Costs no time; if
    /// the postponement budget is exhausted the step degrades to `Idle`.
    PostponeRef,
    /// End the attack (the simulation stops).
    Stop,
}

/// Read-only view of the complete defense state, handed to the attacker
/// each step.
///
/// The view is type-erased (see [`BankUnitView`]) so attackers stay
/// independent of the engine type the simulator was monomorphized with.
#[derive(Debug)]
pub struct DefenseView<'a> {
    /// Current simulation time.
    pub now: Nanos,
    /// The bank unit under attack (bank counters, engine state, ledger,
    /// refresh pointer are all inspectable).
    pub unit: BankUnitView<'a>,
    /// The ABO protocol state.
    pub abo: &'a AboProtocol,
}

impl<'a> DefenseView<'a> {
    /// Convenience: the mitigation engine, for downcasting to a concrete
    /// design (`view.engine().as_any().downcast_ref::<PanopticonEngine>()`).
    pub fn engine(&self) -> &'a dyn MitigationEngine {
        self.unit.engine()
    }
}

/// An adaptive single-bank attacker.
pub trait Attacker {
    /// Chooses the next step given full visibility of the defense.
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep;

    /// A short name for reports. Returned as a [`Cow`] so implementations
    /// with a fixed or construction-time-cached name hand out a borrow —
    /// report formatting no longer allocates a `String` per cell.
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("attacker")
    }
}

/// A non-adaptive single-bank attacker: a script of activations that does
/// not depend on the defense state.
///
/// Scripted attackers are what [`SecuritySim::run_batched`] drives: the
/// simulator asks for a run of upcoming rows sized to the current event
/// horizon and issues the whole run through the bank unit in one batched
/// pass. Wrapping the same script in [`Scripted`] yields the equivalent
/// adaptive [`Attacker`] (one [`AttackStep::Act`] per step,
/// [`AttackStep::Stop`] at exhaustion), which is how the per-step
/// reference path executes it — both produce bit-identical
/// [`SecurityReport`]s.
pub trait ScriptedAttacker {
    /// Appends up to `max` upcoming activations to `buf` (the caller
    /// clears it) and returns how many were appended. `0` means the
    /// script is exhausted and the attack stops. Rows handed out are
    /// consumed: a row the simulator has to drop at an ALERT stall point
    /// is *not* replayed, matching the per-step semantics where a step's
    /// decision is spent whether or not its ACT lands.
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize;

    /// A short name for reports.
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("scripted")
    }
}

/// Adapter running a [`ScriptedAttacker`] as an adaptive [`Attacker`]:
/// one scripted row per step, [`AttackStep::Stop`] at exhaustion. This is
/// the per-step reference form of a script — the equivalence oracle the
/// batched path is regression-tested against.
#[derive(Debug)]
pub struct Scripted<A> {
    inner: A,
    buf: Vec<RowId>,
}

impl<A: ScriptedAttacker> Scripted<A> {
    /// Wraps a script.
    pub fn new(inner: A) -> Self {
        Scripted {
            inner,
            buf: Vec::with_capacity(1),
        }
    }

    /// Returns the wrapped script.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: ScriptedAttacker> Attacker for Scripted<A> {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        self.buf.clear();
        if self.inner.next_run(&mut self.buf, 1) == 0 {
            AttackStep::Stop
        } else {
            AttackStep::Act(self.buf[0])
        }
    }

    fn name(&self) -> Cow<'_, str> {
        self.inner.name()
    }
}

/// Configuration of a security simulation.
#[derive(Debug, Clone, Copy)]
pub struct SecurityConfig {
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// ABO mitigation level.
    pub abo_level: AboLevel,
    /// REF-time mitigation budget.
    pub budget: SlotBudget,
    /// Whether the DRAM may assert ALERT (disable to measure raw feinting
    /// bounds of purely transparent schemes).
    pub alerts_enabled: bool,
}

impl SecurityConfig {
    /// The paper's defaults: baseline DRAM, ABO level 1, one victim-op
    /// slot per REF, ALERTs enabled.
    pub fn paper_default() -> Self {
        SecurityConfig {
            dram: DramConfig::paper_baseline(),
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        }
    }
}

impl Default for SecurityConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of a security simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityReport {
    /// Highest hammer pressure any victim row ever absorbed — the metric
    /// plotted in Figs. 5 and 10. A defense tolerates Rowhammer threshold
    /// `T` iff this stays ≤ `T`.
    pub max_pressure: u32,
    /// The victim row that absorbed it.
    pub max_pressure_row: RowId,
    /// Highest per-aggressor epoch (the paper's §2.1 metric: activations
    /// on one row without intervening mitigation or neighborhood refresh).
    pub max_epoch: u32,
    /// Total attacker activations performed.
    pub total_acts: u64,
    /// ALERTs asserted.
    pub alerts: u64,
    /// RFMs issued.
    pub rfms: u64,
    /// REFs performed.
    pub refs: u64,
    /// Aggressor mitigations completed during REF.
    pub proactive_mitigations: u64,
    /// Aggressor mitigations completed during RFM.
    pub reactive_mitigations: u64,
    /// Virtual time elapsed.
    pub elapsed: Nanos,
}

/// The single-bank security simulator.
///
/// Generic over the mitigation engine like
/// [`PerfSim`](crate::PerfSim): a concrete `E` statically dispatches
/// every per-ACT engine call, while the default `Box<dyn
/// MitigationEngine>` parameter keeps the original boxed construction
/// working unchanged.
///
/// # Examples
///
/// ```
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::Nanos;
/// use moat_sim::{hammer_attacker, SecurityConfig, SecuritySim};
///
/// let mut sim = SecuritySim::new(
///     SecurityConfig::paper_default(),
///     Box::new(MoatEngine::new(MoatConfig::paper_default())),
/// );
/// // Hammer one row continuously for a millisecond of DRAM time:
/// let report = sim.run(&mut hammer_attacker(5), Nanos::from_millis(1));
/// // MOAT keeps the pressure bounded near ATH despite ~19k activations:
/// assert!(report.total_acts > 15_000);
/// assert!(report.max_pressure < 99);
/// ```
#[derive(Debug)]
pub struct SecuritySim<E: MitigationEngine = Box<dyn MitigationEngine>> {
    config: SecurityConfig,
    unit: BankUnit<E>,
    abo: AboProtocol,
    now: Nanos,
}

impl<E: MitigationEngine> SecuritySim<E> {
    /// Creates a simulator for `engine` under `config`.
    pub fn new(config: SecurityConfig, engine: E) -> Self {
        let unit = BankUnit::new(&config.dram, engine, config.budget);
        let abo = AboProtocol::new(config.abo_level, config.dram.timing);
        SecuritySim {
            config,
            unit,
            abo,
            now: Nanos::ZERO,
        }
    }

    /// The bank unit (for pre-run setup such as randomized counter
    /// initialization, and post-run inspection).
    pub fn unit(&self) -> &BankUnit<E> {
        &self.unit
    }

    /// Mutable bank unit access.
    pub fn unit_mut(&mut self) -> &mut BankUnit<E> {
        &mut self.unit
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Runs `attacker` for `duration` of virtual time (or until it stops)
    /// and reports the outcome. Can be called repeatedly; time continues.
    pub fn run(&mut self, attacker: &mut dyn Attacker, duration: Nanos) -> SecurityReport {
        let end = self.now + duration;
        let t_rc = self.config.dram.timing.t_rc;
        let t_rfc = self.config.dram.timing.t_rfc;

        while self.now < end {
            // 1. ABO RFM phase has priority once the activity window closes.
            match self.abo.phase() {
                AboPhase::ActWindow { stall_at } if self.now >= stall_at => {
                    let done = self.abo.start_rfm(self.now).expect("rfm after window");
                    self.unit.rfm_mitigate();
                    self.now = done;
                    continue;
                }
                AboPhase::Rfm { busy_until, .. } => {
                    let t = self.now.max(busy_until);
                    let done = self.abo.start_rfm(t).expect("chained rfm");
                    self.unit.rfm_mitigate();
                    self.now = done;
                    continue;
                }
                _ => {}
            }

            // 2. REF when due and the sub-channel is not in an ALERT.
            if matches!(self.abo.phase(), AboPhase::Idle) && self.unit.refresh().is_due(self.now) {
                self.unit.perform_ref(self.now);
                self.now += t_rfc;
                continue;
            }

            // 3. Assert ALERT as soon as requested and permitted.
            if self.config.alerts_enabled && self.unit.alert_pending() && self.abo.can_assert() {
                self.abo.assert_alert(self.now).expect("can_assert checked");
                // Normal operation continues inside the 180 ns window.
            }

            // 4. The attacker takes the next ACT slot.
            let step = {
                let view = DefenseView {
                    now: self.now,
                    unit: self.unit.as_view(),
                    abo: &self.abo,
                };
                attacker.step(&view)
            };
            match step {
                AttackStep::Stop => break,
                AttackStep::Idle => {
                    self.now += t_rc;
                }
                AttackStep::PostponeRef => {
                    if self.unit.refresh_mut().postpone().is_err() {
                        // Budget exhausted: burn the slot instead.
                        self.now += t_rc;
                    }
                }
                AttackStep::Act(row) => {
                    // Inside an ALERT activity window, an ACT must finish
                    // before the stall point.
                    if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                        if self.now + t_rc > stall_at {
                            self.now = stall_at;
                            continue;
                        }
                    }
                    let t = self.now.max(self.unit.bank().next_ready());
                    match self.unit.activate(row, t) {
                        Ok(_) => {
                            self.abo.on_act();
                            self.now = t + t_rc;
                        }
                        Err(_) => {
                            // Timing said no; advance to the bank's ready
                            // time and retry next iteration.
                            self.now = self.unit.bank().next_ready();
                        }
                    }
                }
            }
        }

        self.report()
    }

    /// Runs a non-adaptive `attacker` for `duration` of virtual time (or
    /// until its script ends) — the event-horizon batched fast path.
    ///
    /// Between two state-changing events the defense is inert, so instead
    /// of re-entering the per-slot priority match of [`run`](Self::run),
    /// the simulator computes how many ACTs are provably event-free — the
    /// minimum over the next REF deadline, the remaining duration, and
    /// the engine's [`MitigationEngine::min_acts_to_alert`] horizon — and
    /// issues that whole run through the bank unit in one batched,
    /// prefetching pass. ALERT episodes resolve against the pre-resolved
    /// [`EpisodeSchedule`](moat_dram::EpisodeSchedule) (assert → stall →
    /// `L` RFMs as one arithmetic step) instead of per-RFM protocol
    /// round-trips, the episode's ~3 in-window ACTs batch against the
    /// precomputed stall point, and a spacing-stalled ALERT batches the
    /// exact run of ACTs the inter-ALERT rule still owes.
    ///
    /// Purely a host-side optimization: the report is bit-identical to
    /// `run` over [`Scripted::new`] of the same script (pinned by the
    /// `batched_matches_per_step` proptest). Like `run`, it can be called
    /// repeatedly and time continues.
    pub fn run_batched<A: ScriptedAttacker + ?Sized>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
    ) -> SecurityReport {
        let end = self.now + duration;
        let t_rc = self.config.dram.timing.t_rc;
        let t_rfc = self.config.dram.timing.t_rfc;
        let mut run: Vec<RowId> = Vec::with_capacity(MAX_RUN);

        while self.now < end {
            // 1. ABO RFM phase has priority once the activity window
            //    closes — flattened into one arithmetic step when the
            //    whole phase runs before `end`. When `end` falls inside
            //    the phase, the reference loop truncates mid-phase (RFM
            //    `i` only issues while `now < end`), so drain per-RFM to
            //    stop at the identical point.
            match self.abo.phase() {
                AboPhase::ActWindow { stall_at } if self.now >= stall_at => {
                    let rfms = u64::from(self.abo.level().as_u8());
                    let last_start = self.now + self.config.dram.timing.t_rfm * (rfms - 1);
                    if last_start < end {
                        let done = self
                            .abo
                            .complete_episode(self.now)
                            .expect("episode after window");
                        for _ in 0..rfms {
                            self.unit.rfm_mitigate();
                        }
                        self.now = done;
                    } else {
                        let done = self.abo.start_rfm(self.now).expect("rfm after window");
                        self.unit.rfm_mitigate();
                        self.now = done;
                    }
                    continue;
                }
                AboPhase::Rfm { busy_until, .. } => {
                    // Only reachable when a per-step `run` left off inside
                    // an episode; drain it per-step.
                    let t = self.now.max(busy_until);
                    let done = self.abo.start_rfm(t).expect("chained rfm");
                    self.unit.rfm_mitigate();
                    self.now = done;
                    continue;
                }
                _ => {}
            }

            // 2. REF when due and the sub-channel is not in an ALERT.
            if matches!(self.abo.phase(), AboPhase::Idle) && self.unit.refresh().is_due(self.now) {
                self.unit.perform_ref(self.now);
                self.now += t_rfc;
                continue;
            }

            // 3. Assert ALERT as soon as requested and permitted.
            if self.config.alerts_enabled && self.unit.alert_pending() && self.abo.can_assert() {
                self.abo.assert_alert(self.now).expect("can_assert checked");
            }

            // 4. Issue the next event-free run (or a single guarded step).
            let horizon = self.act_horizon(end, t_rc);
            run.clear();
            if horizon > 1 {
                let n = attacker.next_run(&mut run, horizon);
                if n == 0 {
                    break;
                }
                self.unit.activate_run(&run[..n], self.now, t_rc);
                self.abo.on_acts(n as u64);
                self.now += t_rc * (n as u64);
            } else {
                // Per-step fallback: inside an ALERT window, under a
                // spacing-stalled ALERT, or with no engine guarantee.
                if attacker.next_run(&mut run, 1) == 0 {
                    break;
                }
                let row = run[0];
                // Inside an ALERT activity window, an ACT must finish
                // before the stall point; the slot (and its row) is
                // otherwise dropped, as in the per-step reference.
                if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                    if self.now + t_rc > stall_at {
                        self.now = stall_at;
                        continue;
                    }
                }
                let t = self.now.max(self.unit.bank().next_ready());
                self.unit
                    .activate(row, t)
                    .expect("scripted row within the bank");
                self.abo.on_act();
                self.now = t + t_rc;
            }
        }

        self.report()
    }

    /// How many ACTs are provably free of state-changing events from
    /// `self.now`. `1` (or `0`) means "no batching guarantee — step one
    /// slot".
    ///
    /// * **Idle** — the defense is inert until the next REF deadline, the
    ///   end of the run, and the earliest possible ALERT assertion. The
    ///   ALERT bound is the engine's
    ///   [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert) hint
    ///   while no ALERT is requested; once one is pending but stalled on
    ///   the inter-ALERT spacing rule, it is the exact number of ACTs
    ///   still owed (`L − acts_since_episode`) — the flag cannot clear
    ///   (mitigations only happen at REF/RFM events) and the assertion
    ///   fires precisely when the spacing is met, so the whole stalled
    ///   run batches instead of stepping one slot at a time.
    /// * **ALERT activity window** — the episode's in-window ACT count is
    ///   precomputed from the stall point: no REF, no assertion, and no
    ///   mitigation can occur before `stall_at`, so the
    ///   ⌊(stall_at − now)/tRC⌋ ACTs that fit the window (~3 at DDR5
    ///   timings) issue as one batched run.
    fn act_horizon(&self, end: Nanos, t_rc: Nanos) -> usize {
        let now = self.now;
        if self.unit.bank().next_ready() > now {
            return 1;
        }
        // Acts land at now + i·tRC; each bound counts the slots strictly
        // before its deadline (the per-step loop re-checks at ≥).
        let ceil_div = |d: Nanos| d.as_u64().div_ceil(t_rc.as_u64());
        let n_end = ceil_div(end.saturating_sub(now));
        match self.abo.phase() {
            AboPhase::Idle => {
                let n_ref = ceil_div(self.unit.refresh().next_due().saturating_sub(now));
                let n_alert = if !self.config.alerts_enabled {
                    u64::MAX
                } else if self.unit.alert_pending() {
                    // Spacing-stalled ALERT: can_assert() was false at
                    // step 3 (else the phase would be ActWindow), so
                    // exactly this many ACTs are owed before assertion.
                    u64::from(self.abo.level().as_u8())
                        .saturating_sub(self.abo.acts_since_episode())
                } else {
                    self.unit.min_acts_to_alert()
                };
                n_ref.min(n_end).min(n_alert).min(MAX_RUN as u64) as usize
            }
            // An ACT must *finish* before the stall point (floor, not
            // ceil). A full window is ~3 ACTs; 0 falls through to the
            // per-step path, which advances to the stall point.
            AboPhase::ActWindow { stall_at } => {
                let n_window = stall_at.saturating_sub(now).as_u64() / t_rc.as_u64();
                n_window.min(n_end).min(MAX_RUN as u64) as usize
            }
            AboPhase::Rfm { .. } => 1,
        }
    }

    /// The report for everything simulated so far.
    pub fn report(&self) -> SecurityReport {
        let stats = self.unit.stats();
        SecurityReport {
            max_pressure: self.unit.ledger().max_pressure_ever(),
            max_pressure_row: self.unit.ledger().max_pressure_row(),
            max_epoch: self.unit.ledger().max_epoch_ever(),
            total_acts: stats.acts,
            alerts: self.abo.alerts(),
            rfms: self.abo.rfms(),
            refs: stats.refs,
            proactive_mitigations: stats.proactive_mitigations,
            reactive_mitigations: stats.reactive_mitigations,
            elapsed: self.now,
        }
    }
}

/// A trivial attacker that hammers a single row forever — the
/// single-row kernel of Fig. 13(a). Implements both [`Attacker`] (one
/// ACT per step) and [`ScriptedAttacker`] (whole event-horizon runs).
#[derive(Debug, Clone)]
pub struct HammerAttacker {
    row: RowId,
    /// Cached display name (formatted once — `name()` is allocation-free).
    name: String,
}

impl Attacker for HammerAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        AttackStep::Act(self.row)
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

impl ScriptedAttacker for HammerAttacker {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        buf.extend(std::iter::repeat_n(self.row, max));
        max
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

/// Builds a [`HammerAttacker`] on `row`.
pub fn hammer_attacker(row: u32) -> HammerAttacker {
    HammerAttacker {
        row: RowId::new(row),
        name: format!("hammer({row})"),
    }
}

/// An attacker that cycles through a fixed set of rows — the multi-row
/// kernel of Fig. 13(b). Implements both [`Attacker`] and
/// [`ScriptedAttacker`].
#[derive(Debug, Clone)]
pub struct RoundRobinAttacker {
    rows: Vec<RowId>,
    next: usize,
    /// Cached display name (formatted once — `name()` is allocation-free).
    name: String,
}

impl RoundRobinAttacker {
    /// Advances the cursor with a branchless wrap (a compare/select
    /// instead of the integer division a `%` would cost per step).
    #[inline]
    fn advance(&mut self) -> RowId {
        let row = self.rows[self.next];
        let next = self.next + 1;
        self.next = if next == self.rows.len() { 0 } else { next };
        row
    }
}

impl Attacker for RoundRobinAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        AttackStep::Act(self.advance())
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

impl ScriptedAttacker for RoundRobinAttacker {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        for _ in 0..max {
            let row = self.advance();
            buf.push(row);
        }
        max
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

/// Builds a [`RoundRobinAttacker`] over `rows`.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn round_robin_attacker(rows: Vec<u32>) -> RoundRobinAttacker {
    assert!(!rows.is_empty(), "need at least one row");
    RoundRobinAttacker {
        name: format!("round-robin({} rows)", rows.len()),
        rows: rows.into_iter().map(RowId::new).collect(),
        next: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::NullEngine;

    fn moat_sim() -> SecuritySim {
        SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        )
    }

    #[test]
    fn unmitigated_hammer_grows_without_bound() {
        let mut sim =
            SecuritySim::new(SecurityConfig::paper_default(), Box::new(NullEngine::new()));
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_micros(200));
        // 200 µs ≈ 51 tREFI ≈ 3400 ACT slots; no mitigation, and the
        // refresh pointer is far from row 100.
        assert!(
            report.max_pressure > 3000,
            "pressure {}",
            report.max_pressure
        );
        assert_eq!(report.alerts, 0);
    }

    #[test]
    fn moat_bounds_single_row_hammer_near_ath() {
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_millis(2));
        assert!(report.alerts > 0, "hammering past ATH must alert");
        // §4.4: with instantaneous ALERTs the bound is ATH+2; a lone
        // hammered row gains at most the 3 in-window ACTs on top.
        assert!(
            report.max_pressure <= 64 + 5,
            "pressure {} exceeds ATH plus the in-window slack",
            report.max_pressure
        );
    }

    #[test]
    fn moat_alert_rate_matches_ath_for_single_row() {
        // §7.2: one ALERT per ~65 activations of a single row (plus the
        // handful of in-window ACTs folded into each episode).
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_millis(4));
        let acts_per_alert = report.total_acts as f64 / report.alerts as f64;
        assert!(
            (60.0..90.0).contains(&acts_per_alert),
            "acts per alert: {acts_per_alert}"
        );
    }

    #[test]
    fn refs_happen_on_schedule() {
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(0), Nanos::from_millis(1));
        // 1 ms / 3900 ns ≈ 256 REFs (a few may slip past the horizon).
        assert!((250..=258).contains(&report.refs), "refs: {}", report.refs);
    }

    #[test]
    fn idle_attacker_advances_time() {
        struct Lazy;
        impl Attacker for Lazy {
            fn step(&mut self, _v: &DefenseView<'_>) -> AttackStep {
                AttackStep::Idle
            }
        }
        let mut sim = moat_sim();
        let report = sim.run(&mut Lazy, Nanos::from_micros(50));
        assert_eq!(report.total_acts, 0);
        assert!(report.elapsed >= Nanos::from_micros(50));
    }

    #[test]
    fn stop_ends_early() {
        struct OneShot(bool);
        impl Attacker for OneShot {
            fn step(&mut self, _v: &DefenseView<'_>) -> AttackStep {
                if self.0 {
                    AttackStep::Stop
                } else {
                    self.0 = true;
                    AttackStep::Act(RowId::new(3))
                }
            }
        }
        let mut sim = moat_sim();
        let report = sim.run(&mut OneShot(false), Nanos::from_millis(10));
        assert_eq!(report.total_acts, 1);
        assert!(report.elapsed < Nanos::from_millis(1));
    }

    #[test]
    fn round_robin_spreads_pressure() {
        let mut sim = moat_sim();
        let report = sim.run(
            &mut round_robin_attacker(vec![10_010, 10_020, 10_030, 10_040, 10_050]),
            Nanos::from_millis(1),
        );
        assert!(report.total_acts > 10_000);
        assert!(
            report.max_pressure <= 99,
            "pressure {}",
            report.max_pressure
        );
    }

    #[test]
    fn batched_hammer_matches_per_step() {
        // The event-horizon batched path is a host-side optimization
        // only: bit-identical reports to the per-step reference.
        for millis in [1u64, 4] {
            let mut per_step = moat_sim();
            let expect = per_step.run(
                &mut Scripted::new(hammer_attacker(10_000)),
                Nanos::from_millis(millis),
            );
            let mut batched = moat_sim();
            let got = batched.run_batched(&mut hammer_attacker(10_000), Nanos::from_millis(millis));
            assert_eq!(got, expect, "{millis} ms");
            assert!(got.alerts > 0, "the comparison must exercise episodes");
        }
    }

    #[test]
    fn batched_round_robin_matches_per_step() {
        let rows = vec![20_000, 20_006, 20_012, 20_018, 20_024];
        let mut per_step = moat_sim();
        let expect = per_step.run(
            &mut Scripted::new(round_robin_attacker(rows.clone())),
            Nanos::from_millis(2),
        );
        let mut batched = moat_sim();
        let got = batched.run_batched(&mut round_robin_attacker(rows), Nanos::from_millis(2));
        assert_eq!(got, expect);
        assert!(expect.refs > 0 && expect.alerts > 0);
    }

    #[test]
    fn batched_run_continues_across_calls() {
        // Time continues across calls exactly like the per-step mode:
        // splitting at the same instants, a batched pair of runs matches
        // a per-step pair, and the two modes can trade off mid-attack.
        let mut batched = moat_sim();
        batched.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let batched_report = batched.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let mut per_step = moat_sim();
        per_step.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        let per_step_report = per_step.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        assert_eq!(batched_report, per_step_report);
        // And a mode switch mid-attack stays on the same trajectory.
        let mut mixed = moat_sim();
        mixed.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let mixed_report = mixed.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        assert_eq!(mixed_report, per_step_report);
    }

    #[test]
    fn batched_run_stops_at_script_end() {
        // A finite script ends the batched run early, exactly like an
        // adaptive attacker returning Stop.
        #[derive(Debug)]
        struct Finite(u64, RowId);
        impl ScriptedAttacker for Finite {
            fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
                let n = (max as u64).min(self.0) as usize;
                buf.extend(std::iter::repeat_n(self.1, n));
                self.0 -= n as u64;
                n
            }
        }
        let mut batched = moat_sim();
        let got = batched.run_batched(&mut Finite(1000, RowId::new(9)), Nanos::from_millis(50));
        let mut per_step = moat_sim();
        let expect = per_step.run(
            &mut Scripted::new(Finite(1000, RowId::new(9))),
            Nanos::from_millis(50),
        );
        assert_eq!(got, expect);
        // The script hands out exactly 1000 rows; a handful are dropped
        // at ALERT stall points (consumed without landing) in both modes.
        assert!(
            (900..=1000).contains(&got.total_acts),
            "acts {}",
            got.total_acts
        );
        assert!(got.elapsed < Nanos::from_millis(1));
    }

    #[test]
    fn batched_hammer_matches_per_step_for_panopticon() {
        // The Panopticon-family horizon (queue threshold distance) keeps
        // the batched path exact for both variants, including overflow
        // ALERTs and drain-on-REF episodes.
        use moat_trackers::{PanopticonConfig, PanopticonEngine};
        for pano in [
            PanopticonConfig::paper_default(),
            PanopticonConfig::drain_variant(),
        ] {
            let mk =
                || SecuritySim::new(SecurityConfig::paper_default(), PanopticonEngine::new(pano));
            let mut per_step = mk();
            let expect = per_step.run(
                &mut Scripted::new(hammer_attacker(20_000)),
                Nanos::from_millis(4),
            );
            let mut batched = mk();
            let got = batched.run_batched(&mut hammer_attacker(20_000), Nanos::from_millis(4));
            assert_eq!(got, expect, "drain_on_ref={}", pano.drain_on_ref);
            assert!(expect.refs > 0);
        }
    }

    #[test]
    fn moat_horizon_batches_spacing_and_window_acts() {
        // With a level-4 protocol the spacing rule owes 4 ACTs after each
        // episode and each 180 ns window fits 3 ACTs; both now batch.
        // This pins the arithmetic against the per-step reference on a
        // run dense with episodes.
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = moat_dram::AboLevel::L4;
        let mk = || {
            SecuritySim::new(
                cfg,
                Box::new(MoatEngine::new(MoatConfig::paper_default()))
                    as Box<dyn moat_dram::MitigationEngine>,
            )
        };
        let mut per_step = mk();
        let expect = per_step.run(
            &mut Scripted::new(hammer_attacker(10_000)),
            Nanos::from_millis(3),
        );
        let mut batched = mk();
        let got = batched.run_batched(&mut hammer_attacker(10_000), Nanos::from_millis(3));
        assert_eq!(got, expect);
        assert!(got.alerts > 10, "episodes must be exercised");
    }

    #[test]
    fn batched_moat_bound_matches_per_step_invariant() {
        let mut sim = moat_sim();
        let report = sim.run_batched(&mut hammer_attacker(10_000), Nanos::from_millis(2));
        assert!(report.alerts > 0);
        assert!(
            report.max_pressure <= 64 + 5,
            "pressure {} exceeds ATH plus the in-window slack",
            report.max_pressure
        );
    }

    #[test]
    fn attacker_names_are_cached_borrows() {
        let h = hammer_attacker(5);
        assert_eq!(Attacker::name(&h), "hammer(5)");
        assert!(
            matches!(Attacker::name(&h), Cow::Borrowed(_)),
            "name() must not allocate per call"
        );
        let rr = round_robin_attacker(vec![1, 2, 3]);
        assert_eq!(ScriptedAttacker::name(&rr), "round-robin(3 rows)");
        assert!(matches!(ScriptedAttacker::name(&rr), Cow::Borrowed(_)));
        let wrapped = Scripted::new(hammer_attacker(9));
        assert_eq!(wrapped.name(), "hammer(9)");
    }

    #[test]
    fn round_robin_wrap_matches_modulo() {
        let mut a = round_robin_attacker(vec![7, 8, 9]);
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        // Mix single steps and runs to cross the wrap both ways.
        for chunk in [1usize, 4, 2, 7, 3] {
            buf.clear();
            assert_eq!(ScriptedAttacker::next_run(&mut a, &mut buf, chunk), chunk);
            seen.extend(buf.iter().map(|r| r.index()));
        }
        let expect: Vec<u32> = (0..17).map(|i| 7 + i % 3).collect();
        assert_eq!(seen, expect);
    }
}
