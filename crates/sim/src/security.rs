//! The bank-level security simulator: an adaptive attacker versus one bank
//! unit under full DDR5/PRAC/ABO timing.
//!
//! The simulator is the referee for every security experiment in the paper
//! (Figs. 5, 7, 10, 15, 16): it enforces tRC spacing, schedules REFs,
//! drives the ABO protocol, and maintains the ground-truth
//! [`SecurityLedger`](moat_dram::SecurityLedger) outside the reach of the
//! defense. The attacker sees the complete defense state each step (threat
//! model §2.1) and decides the next activation.
//!
//! Three execution modes share the same state machine:
//!
//! * [`SecuritySim::run`] steps an adaptive [`Attacker`] one ACT slot at a
//!   time — the bit-identical reference every experiment can fall back to.
//! * [`SecuritySim::run_batched`] drives a non-adaptive
//!   [`ScriptedAttacker`] between *event horizons*: between two
//!   state-changing events (next REF deadline, ABO activity-window close,
//!   earliest possible ALERT per
//!   [`MitigationEngine::min_acts_to_alert`]) the defense is inert, so a
//!   whole run of scripted ACTs issues as one batched pass through the
//!   bank unit instead of re-entering the four-way priority match per
//!   slot.
//! * [`SecuritySim::run_semi_scripted`] extends the same batching to
//!   *adaptive* attackers via the [`SemiScriptedAttacker`] protocol: the
//!   attacker observes one [`DefenseView`] snapshot per horizon and
//!   publishes its next run — a burst of activations, an idle stretch, a
//!   REF postponement, or a stop — valid until the published length or
//!   the next event horizon, whichever comes first.

use std::borrow::Cow;

use moat_dram::{
    AboLevel, AboPhase, AboProtocol, DramConfig, EngineFault, MitigationEngine, Nanos, RowId,
};

use moat_telemetry::{NoTelemetry, SimEvent, SimPhase, TelemetryHook};

use crate::budget::SlotBudget;
use crate::fault_hook::{FaultHook, NoFaults};
use crate::guard_hook::{GuardHook, NoGuard};
use crate::unit::{BankUnit, BankUnitView};

/// Upper bound on the rows fetched per scripted run. The REF cadence caps
/// useful runs near tREFI/tRC (~75 ACTs) anyway; this only bounds the
/// reusable buffer.
const MAX_RUN: usize = 1024;

/// What the attacker does with its next ACT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStep {
    /// Activate this row.
    Act(RowId),
    /// Let the slot pass unused.
    Idle,
    /// Postpone the next REF (the threat model lets the attacker choose
    /// the memory-system policy, §2.1 / Appendix B). Costs no time; if
    /// the postponement budget is exhausted the step degrades to `Idle`.
    PostponeRef,
    /// End the attack (the simulation stops).
    Stop,
}

/// Read-only view of the complete defense state, handed to the attacker
/// each step.
///
/// The view is type-erased (see [`BankUnitView`]) so attackers stay
/// independent of the engine type the simulator was monomorphized with.
#[derive(Debug)]
pub struct DefenseView<'a> {
    /// Current simulation time.
    pub now: Nanos,
    /// The bank unit under attack (bank counters, engine state, ledger,
    /// refresh pointer are all inspectable).
    pub unit: BankUnitView<'a>,
    /// The ABO protocol state.
    pub abo: &'a AboProtocol,
}

impl<'a> DefenseView<'a> {
    /// Convenience: the mitigation engine, for downcasting to a concrete
    /// design (`view.engine().as_any().downcast_ref::<PanopticonEngine>()`).
    pub fn engine(&self) -> &'a dyn MitigationEngine {
        self.unit.engine()
    }
}

/// An adaptive single-bank attacker.
pub trait Attacker {
    /// Chooses the next step given full visibility of the defense.
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep;

    /// A short name for reports. Returned as a [`Cow`] so implementations
    /// with a fixed or construction-time-cached name hand out a borrow —
    /// report formatting no longer allocates a `String` per cell.
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("attacker")
    }
}

/// A non-adaptive single-bank attacker: a script of activations that does
/// not depend on the defense state.
///
/// Scripted attackers are what [`SecuritySim::run_batched`] drives: the
/// simulator asks for a run of upcoming rows sized to the current event
/// horizon and issues the whole run through the bank unit in one batched
/// pass. Wrapping the same script in [`Scripted`] yields the equivalent
/// adaptive [`Attacker`] (one [`AttackStep::Act`] per step,
/// [`AttackStep::Stop`] at exhaustion), which is how the per-step
/// reference path executes it — both produce bit-identical
/// [`SecurityReport`]s.
pub trait ScriptedAttacker {
    /// Appends up to `max` upcoming activations to `buf` (the caller
    /// clears it) and returns how many were appended. `0` means the
    /// script is exhausted and the attack stops. Rows handed out are
    /// consumed: a row the simulator has to drop at an ALERT stall point
    /// is *not* replayed, matching the per-step semantics where a step's
    /// decision is spent whether or not its ACT lands.
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize;

    /// A short name for reports.
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("scripted")
    }
}

/// Adapter running a [`ScriptedAttacker`] as an adaptive [`Attacker`]:
/// one scripted row per step, [`AttackStep::Stop`] at exhaustion. This is
/// the per-step reference form of a script — the equivalence oracle the
/// batched path is regression-tested against.
#[derive(Debug)]
pub struct Scripted<A> {
    inner: A,
    buf: Vec<RowId>,
}

impl<A: ScriptedAttacker> Scripted<A> {
    /// Wraps a script.
    pub fn new(inner: A) -> Self {
        Scripted {
            inner,
            buf: Vec::with_capacity(1),
        }
    }

    /// Returns the wrapped script.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: ScriptedAttacker> Attacker for Scripted<A> {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        self.buf.clear();
        if self.inner.next_run(&mut self.buf, 1) == 0 {
            AttackStep::Stop
        } else {
            AttackStep::Act(self.buf[0])
        }
    }

    fn name(&self) -> Cow<'_, str> {
        self.inner.name()
    }
}

/// The grant handed to a [`SemiScriptedAttacker`] at each observation
/// point: how many back-to-back ACT slots the next published run may
/// cover, at two confidence tiers.
///
/// * [`max`](RunGrant::max) — the *hard event cap*: the number of slots
///   before the next simulator-side event (REF deadline, ALERT
///   activity-window stall point, a spacing-stalled ALERT becoming
///   assertable, end of the run). No published run may exceed it.
/// * [`alert_safe`](RunGrant::alert_safe) — the engine-guaranteed prefix
///   of `max`: within this many ACTs the engine's
///   [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert) bound
///   proves `alert_pending` cannot flip, whatever rows are activated.
///
/// A conservative attacker publishes at most `alert_safe` rows and never
/// needs to reason about the defense. An *engine-aware* attacker (the
/// threat model gives it full visibility, §2.1) may publish up to `max`
/// rows, provided it ends the run at the first ACT that could set
/// `alert_pending` — the paper's adaptive attacks know their own
/// threshold crossings exactly, which is what lets Jailbreak publish
/// whole tREFI-sized hammer bursts through a queue its pacing keeps
/// permanently full (where the engine's conservative bound is a single
/// slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunGrant {
    /// Hard event cap: no published run may exceed this many ACTs.
    pub max: usize,
    /// Prefix of `max` within which the engine guarantees no ALERT can
    /// become pending (`alert_safe ≤ max`).
    pub alert_safe: usize,
}

impl RunGrant {
    /// A single-slot grant (the per-step reference form).
    pub const SINGLE: RunGrant = RunGrant {
        max: 1,
        alert_safe: 1,
    };
}

/// What a semi-scripted attacker publishes for its next grant of ACT
/// slots (see [`SemiScriptedAttacker`] — the batched analogue of
/// [`AttackStep`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemiRun {
    /// Activate the first `n` rows appended to the publish buffer,
    /// back-to-back at tRC spacing (`1 ≤ n ≤ grant.max`).
    Acts(usize),
    /// Let up to `n` slots pass unused. The simulator may truncate the
    /// idle stretch at the next event horizon and re-observe; publishing
    /// `u64::MAX` means "idle until something changes".
    Idle(u64),
    /// Postpone the next REF (one slot, like [`AttackStep::PostponeRef`]:
    /// costs no time, degrades to one idle slot when the postponement
    /// budget is exhausted).
    PostponeRef,
    /// End the attack.
    Stop,
}

/// A *semi-scripted* attacker: adaptive between event horizons, scripted
/// within one.
///
/// This is the protocol that lets [`SecuritySim::run_semi_scripted`]
/// extend event-horizon batching to the paper's adaptive attacks
/// (Jailbreak, Ratchet, refresh postponement, Feinting): the attacker
/// observes the complete defense state once per horizon and publishes its
/// next run conditional on it — the same observe-then-burst structure
/// real Rowhammer tooling uses.
///
/// # The publish contract
///
/// The simulator guarantees that no simulator-side event — REF, ALERT
/// assertion, episode phase change, mitigation — occurs inside a grant
/// of [`RunGrant::max`] slots. In return the published run must equal,
/// slot for slot, what the equivalent per-step [`Attacker`] would decide
/// at each of the granted slots: any state the decision depends on that
/// *does* evolve inside the grant (the attacker's own counters, its
/// per-tREFI pacing budget) must be modeled by the attacker when it
/// vectorizes, and a run longer than [`RunGrant::alert_safe`] must end
/// at the first ACT that could set the engine's `alert_pending` flag
/// (the per-step loop would assert the ALERT at the very next slot).
/// Rows handed out are consumed whether or not they land (an ACT
/// published into a closing ALERT window is dropped, exactly like the
/// per-step decision it replaces).
pub trait SemiScriptedAttacker {
    /// Observes `view` and publishes the next run: appends up to
    /// `grant.max` rows to `buf` (the caller clears it) for
    /// [`SemiRun::Acts`], or returns an idle/postpone/stop decision.
    fn publish(&mut self, view: &DefenseView<'_>, buf: &mut Vec<RowId>, grant: RunGrant)
        -> SemiRun;

    /// A short name for reports.
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed("semi-scripted")
    }
}

/// Every non-adaptive script is trivially semi-scripted: it publishes its
/// next `alert_safe` rows (a script models nothing about the defense, so
/// it stays within the engine-guaranteed tier) and never looks at the
/// view.
impl<A: ScriptedAttacker> SemiScriptedAttacker for A {
    fn publish(
        &mut self,
        _view: &DefenseView<'_>,
        buf: &mut Vec<RowId>,
        grant: RunGrant,
    ) -> SemiRun {
        match self.next_run(buf, grant.alert_safe) {
            0 => SemiRun::Stop,
            n => SemiRun::Acts(n),
        }
    }

    fn name(&self) -> Cow<'_, str> {
        ScriptedAttacker::name(self)
    }
}

/// Adapter running a [`SemiScriptedAttacker`] as a per-step [`Attacker`]:
/// every step is a grant of exactly one slot. This is the per-step
/// reference form of a semi-script — handy for equivalence tests and for
/// mixing a semi-scripted attacker into [`SecuritySim::run`].
#[derive(Debug)]
pub struct SemiStepped<A> {
    inner: A,
    buf: Vec<RowId>,
}

impl<A: SemiScriptedAttacker> SemiStepped<A> {
    /// Wraps a semi-scripted attacker.
    pub fn new(inner: A) -> Self {
        SemiStepped {
            inner,
            buf: Vec::with_capacity(1),
        }
    }

    /// Returns the wrapped attacker.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: SemiScriptedAttacker> Attacker for SemiStepped<A> {
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep {
        self.buf.clear();
        match self.inner.publish(view, &mut self.buf, RunGrant::SINGLE) {
            SemiRun::Acts(_) => AttackStep::Act(self.buf[0]),
            SemiRun::Idle(_) => AttackStep::Idle,
            SemiRun::PostponeRef => AttackStep::PostponeRef,
            SemiRun::Stop => AttackStep::Stop,
        }
    }

    fn name(&self) -> Cow<'_, str> {
        self.inner.name()
    }
}

/// Configuration of a security simulation.
#[derive(Debug, Clone, Copy)]
pub struct SecurityConfig {
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// ABO mitigation level.
    pub abo_level: AboLevel,
    /// REF-time mitigation budget.
    pub budget: SlotBudget,
    /// Whether the DRAM may assert ALERT (disable to measure raw feinting
    /// bounds of purely transparent schemes).
    pub alerts_enabled: bool,
}

impl SecurityConfig {
    /// The paper's defaults: baseline DRAM, ABO level 1, one victim-op
    /// slot per REF, ALERTs enabled.
    pub fn paper_default() -> Self {
        SecurityConfig {
            dram: DramConfig::paper_baseline(),
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        }
    }
}

impl Default for SecurityConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of a security simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityReport {
    /// Highest hammer pressure any victim row ever absorbed — the metric
    /// plotted in Figs. 5 and 10. A defense tolerates Rowhammer threshold
    /// `T` iff this stays ≤ `T`.
    pub max_pressure: u32,
    /// The victim row that absorbed it.
    pub max_pressure_row: RowId,
    /// Highest per-aggressor epoch (the paper's §2.1 metric: activations
    /// on one row without intervening mitigation or neighborhood refresh).
    pub max_epoch: u32,
    /// Total attacker activations performed.
    pub total_acts: u64,
    /// ALERTs asserted.
    pub alerts: u64,
    /// RFMs issued.
    pub rfms: u64,
    /// REFs performed.
    pub refs: u64,
    /// Aggressor mitigations completed during REF.
    pub proactive_mitigations: u64,
    /// Aggressor mitigations completed during RFM.
    pub reactive_mitigations: u64,
    /// Virtual time elapsed.
    pub elapsed: Nanos,
}

/// The single-bank security simulator.
///
/// Generic over the mitigation engine like
/// [`PerfSim`](crate::PerfSim): a concrete `E` statically dispatches
/// every per-ACT engine call, while the default `Box<dyn
/// MitigationEngine>` parameter keeps the original boxed construction
/// working unchanged.
///
/// # Examples
///
/// ```
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::Nanos;
/// use moat_sim::{hammer_attacker, SecurityConfig, SecuritySim};
///
/// let mut sim = SecuritySim::new(
///     SecurityConfig::paper_default(),
///     Box::new(MoatEngine::new(MoatConfig::paper_default())),
/// );
/// // Hammer one row continuously for a millisecond of DRAM time:
/// let report = sim.run(&mut hammer_attacker(5), Nanos::from_millis(1));
/// // MOAT keeps the pressure bounded near ATH despite ~19k activations:
/// assert!(report.total_acts > 15_000);
/// assert!(report.max_pressure < 99);
/// ```
#[derive(Debug)]
pub struct SecuritySim<E: MitigationEngine = Box<dyn MitigationEngine>> {
    config: SecurityConfig,
    unit: BankUnit<E>,
    abo: AboProtocol,
    now: Nanos,
}

impl<E: MitigationEngine> SecuritySim<E> {
    /// Creates a simulator for `engine` under `config`.
    pub fn new(config: SecurityConfig, engine: E) -> Self {
        let unit = BankUnit::new(&config.dram, engine, config.budget);
        let abo = AboProtocol::new(config.abo_level, config.dram.timing);
        SecuritySim {
            config,
            unit,
            abo,
            now: Nanos::ZERO,
        }
    }

    /// The bank unit (for pre-run setup such as randomized counter
    /// initialization, and post-run inspection).
    pub fn unit(&self) -> &BankUnit<E> {
        &self.unit
    }

    /// Mutable bank unit access.
    pub fn unit_mut(&mut self) -> &mut BankUnit<E> {
        &mut self.unit
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Runs `attacker` for `duration` of virtual time (or until it stops)
    /// and reports the outcome. Can be called repeatedly; time continues.
    pub fn run(&mut self, attacker: &mut dyn Attacker, duration: Nanos) -> SecurityReport {
        self.run_with_faults(attacker, duration, &mut NoFaults)
    }

    /// [`run`](Self::run) with a [`FaultHook`] threaded through: the hook
    /// sees every ACT slot as a boundary and may corrupt the engine,
    /// drop RFMs, or lose ALERT assertions. With the disarmed
    /// [`NoFaults`] hook (what [`run`](Self::run) passes) every fault
    /// branch constant-folds away and this *is* the fault-free loop.
    pub fn run_with_faults<F: FaultHook>(
        &mut self,
        attacker: &mut dyn Attacker,
        duration: Nanos,
        faults: &mut F,
    ) -> SecurityReport {
        self.run_guarded(attacker, duration, faults, &mut NoGuard)
    }

    /// [`run_with_faults`](Self::run_with_faults) with a [`GuardHook`]
    /// threaded through as well: the guard observes every boundary
    /// immediately *after* the fault hook's injection point (inject →
    /// detect/repair → act), so boundary-injected corruption never
    /// reaches the defense priority match unchecked. With the disarmed
    /// [`NoGuard`] hook every guard branch constant-folds away and this
    /// *is* [`run_with_faults`](Self::run_with_faults).
    pub fn run_guarded<F: FaultHook, G: GuardHook>(
        &mut self,
        attacker: &mut dyn Attacker,
        duration: Nanos,
        faults: &mut F,
        guard: &mut G,
    ) -> SecurityReport {
        self.run_traced(attacker, duration, faults, guard, &mut NoTelemetry)
    }

    /// [`run_guarded`](Self::run_guarded) with a [`TelemetryHook`]
    /// threaded through as well — the outermost layer of the hook
    /// stack, observing each boundary *after* the fault hook has
    /// injected and the guard has detected/repaired (inject →
    /// detect/repair → observe). Telemetry is read-only: everything it
    /// records derives from sim time and ACT counts, and with the
    /// disarmed [`NoTelemetry`] hook every instrumentation branch
    /// constant-folds away — this *is*
    /// [`run_guarded`](Self::run_guarded).
    pub fn run_traced<F: FaultHook, G: GuardHook, T: TelemetryHook>(
        &mut self,
        attacker: &mut dyn Attacker,
        duration: Nanos,
        faults: &mut F,
        guard: &mut G,
        tel: &mut T,
    ) -> SecurityReport {
        let end = self.now + duration;
        let t_rc = self.config.dram.timing.t_rc;
        let t_rfc = self.config.dram.timing.t_rfc;

        while self.now < end {
            if F::ARMED {
                faults.at_boundary(self.now, self.unit.engine_mut());
            }
            if G::ARMED {
                guard.at_boundary(self.now, &mut self.unit);
            }
            if T::ARMED {
                tel.on_boundary(self.now);
            }

            // 1. ABO RFM phase has priority once the activity window closes.
            match self.abo.phase() {
                AboPhase::ActWindow { stall_at } if self.now >= stall_at => {
                    let t0 = self.now;
                    let done = self.abo.start_rfm(self.now).expect("rfm after window");
                    if !(F::ARMED && faults.drop_rfm(self.now)) {
                        self.unit.rfm_mitigate();
                    }
                    self.now = done;
                    if T::ARMED {
                        tel.on_phase(SimPhase::EpisodeChurn, t0, self.now, 1);
                    }
                    continue;
                }
                AboPhase::Rfm { busy_until, .. } => {
                    let t0 = self.now;
                    let t = self.now.max(busy_until);
                    let done = self.abo.start_rfm(t).expect("chained rfm");
                    if !(F::ARMED && faults.drop_rfm(self.now)) {
                        self.unit.rfm_mitigate();
                    }
                    self.now = done;
                    if T::ARMED {
                        tel.on_phase(SimPhase::EpisodeChurn, t0, self.now, 1);
                    }
                    continue;
                }
                _ => {}
            }

            // 2. REF when due and the sub-channel is not in an ALERT.
            if matches!(self.abo.phase(), AboPhase::Idle) && self.unit.refresh().is_due(self.now) {
                let t0 = self.now;
                self.unit.perform_ref(self.now);
                self.now += t_rfc;
                if T::ARMED {
                    tel.on_event(t0, SimEvent::Ref);
                    tel.on_phase(SimPhase::Refresh, t0, self.now, 1);
                }
                continue;
            }

            // 3. Assert ALERT as soon as requested and permitted.
            if self.config.alerts_enabled && self.unit.alert_pending() && self.abo.can_assert() {
                if F::ARMED && faults.lose_alert(self.now) {
                    // The assertion is lost in flight: clear the request
                    // latch; it re-arms when a counter next crosses ATH.
                    self.unit.engine_mut().apply_fault(&EngineFault::LoseAlert);
                } else {
                    self.abo.assert_alert(self.now).expect("can_assert checked");
                    if T::ARMED {
                        tel.on_event(self.now, SimEvent::Alert);
                    }
                    // Normal operation continues inside the 180 ns window.
                }
            }

            // 4. The attacker takes the next ACT slot.
            let step = {
                let view = DefenseView {
                    now: self.now,
                    unit: self.unit.as_view(),
                    abo: &self.abo,
                };
                attacker.step(&view)
            };
            match step {
                AttackStep::Stop => break,
                AttackStep::Idle => {
                    if T::ARMED {
                        tel.on_phase(SimPhase::Idle, self.now, self.now + t_rc, 1);
                    }
                    self.now += t_rc;
                }
                AttackStep::PostponeRef => {
                    if self.unit.refresh_mut().postpone().is_err() {
                        // Budget exhausted: burn the slot instead.
                        if T::ARMED {
                            tel.on_phase(SimPhase::Idle, self.now, self.now + t_rc, 1);
                        }
                        self.now += t_rc;
                    }
                }
                AttackStep::Act(row) => {
                    // Inside an ALERT activity window, an ACT must finish
                    // before the stall point.
                    if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                        if self.now + t_rc > stall_at {
                            if T::ARMED {
                                tel.on_phase(SimPhase::Idle, self.now, stall_at, 0);
                            }
                            self.now = stall_at;
                            continue;
                        }
                    }
                    let t0 = self.now;
                    let t = self.now.max(self.unit.bank().next_ready());
                    match self.unit.activate(row, t) {
                        Ok(_) => {
                            self.abo.on_act();
                            self.now = t + t_rc;
                            if T::ARMED {
                                tel.on_phase(SimPhase::EngineUpdate, t0, self.now, 1);
                            }
                        }
                        Err(_) => {
                            // Timing said no; advance to the bank's ready
                            // time and retry next iteration.
                            self.now = self.unit.bank().next_ready();
                            if T::ARMED {
                                tel.on_phase(SimPhase::Idle, t0, self.now, 0);
                            }
                        }
                    }
                }
            }
        }

        self.report()
    }

    /// Runs a non-adaptive `attacker` for `duration` of virtual time (or
    /// until its script ends) — the event-horizon batched fast path.
    ///
    /// Between two state-changing events the defense is inert, so instead
    /// of re-entering the per-slot priority match of [`run`](Self::run),
    /// the simulator computes how many ACTs are provably event-free — the
    /// minimum over the next REF deadline, the remaining duration, and
    /// the engine's [`MitigationEngine::min_acts_to_alert`] horizon — and
    /// issues that whole run through the bank unit in one batched,
    /// prefetching pass. ALERT episodes resolve against the pre-resolved
    /// [`EpisodeSchedule`](moat_dram::EpisodeSchedule) (assert → stall →
    /// `L` RFMs as one arithmetic step) instead of per-RFM protocol
    /// round-trips, the episode's ~3 in-window ACTs batch against the
    /// precomputed stall point, and a spacing-stalled ALERT batches the
    /// exact run of ACTs the inter-ALERT rule still owes.
    ///
    /// Purely a host-side optimization: the report is bit-identical to
    /// `run` over [`Scripted::new`] of the same script (pinned by the
    /// `batched_matches_per_step` proptest). Like `run`, it can be called
    /// repeatedly and time continues.
    pub fn run_batched<A: ScriptedAttacker + ?Sized>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
    ) -> SecurityReport {
        self.run_batched_with_faults(attacker, duration, &mut NoFaults)
    }

    /// [`run_batched`](Self::run_batched) with a [`FaultHook`] threaded
    /// through: the hook sees every event-horizon boundary and may
    /// corrupt the engine there. When armed, granted runs issue one ACT
    /// at a time with the engine's promised horizon checked after each —
    /// a fault that breaks the
    /// [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert)
    /// invariant is reported via [`FaultHook::on_unsound_horizon`] and
    /// the remainder of the grant still executes (the controller already
    /// committed to the burst; the escaped ACTs are the measured damage).
    /// With the disarmed [`NoFaults`] hook every fault branch
    /// constant-folds away and the batched hot path is byte-for-byte the
    /// fault-free one.
    pub fn run_batched_with_faults<A: ScriptedAttacker + ?Sized, F: FaultHook>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
        faults: &mut F,
    ) -> SecurityReport {
        self.run_batched_guarded(attacker, duration, faults, &mut NoGuard)
    }

    /// [`run_batched_with_faults`](Self::run_batched_with_faults) with a
    /// [`GuardHook`] threaded through as well: the guard observes every
    /// event-horizon boundary immediately *after* the fault hook's
    /// injection point, so the engine's promise for the upcoming grant is
    /// computed on checked (and possibly repaired) state — an armed guard
    /// with the conservative fallback closes boundary-injected unsound
    /// horizons entirely. With the disarmed [`NoGuard`] hook this *is*
    /// [`run_batched_with_faults`](Self::run_batched_with_faults).
    pub fn run_batched_guarded<A: ScriptedAttacker + ?Sized, F: FaultHook, G: GuardHook>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
        faults: &mut F,
        guard: &mut G,
    ) -> SecurityReport {
        self.run_batched_traced(attacker, duration, faults, guard, &mut NoTelemetry)
    }

    /// [`run_batched_guarded`](Self::run_batched_guarded) with a
    /// [`TelemetryHook`] threaded through as well — the outermost hook
    /// layer (inject → detect/repair → observe), recording each
    /// event-horizon boundary, ALERT episode, REF, and granted run as
    /// sim-time spans. With the disarmed [`NoTelemetry`] hook every
    /// instrumentation branch constant-folds away and this *is*
    /// [`run_batched_guarded`](Self::run_batched_guarded).
    pub fn run_batched_traced<A, F, G, T>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
        faults: &mut F,
        guard: &mut G,
        tel: &mut T,
    ) -> SecurityReport
    where
        A: ScriptedAttacker + ?Sized,
        F: FaultHook,
        G: GuardHook,
        T: TelemetryHook,
    {
        let end = self.now + duration;
        let t_rc = self.config.dram.timing.t_rc;
        let t_rfc = self.config.dram.timing.t_rfc;
        let mut run: Vec<RowId> = Vec::with_capacity(MAX_RUN);

        while self.now < end {
            if F::ARMED {
                faults.at_boundary(self.now, self.unit.engine_mut());
            }
            if G::ARMED {
                guard.at_boundary(self.now, &mut self.unit);
            }
            if T::ARMED {
                tel.on_boundary(self.now);
            }
            if self.advance_defense(end, t_rfc, faults, tel) {
                continue;
            }

            // 4. Issue the next event-free run (or a single guarded step).
            // A script models nothing about the defense, so it runs in
            // the engine-guaranteed tier of the grant.
            let horizon = self.act_grant(end, t_rc).alert_safe;
            run.clear();
            if horizon > 1 {
                let n = attacker.next_run(&mut run, horizon);
                if n == 0 {
                    break;
                }
                let t0 = self.now;
                if F::ARMED {
                    let promised = self.engine_promise(horizon);
                    self.issue_run_checked(&run[..n], promised, t_rc, faults);
                } else {
                    self.unit.activate_run(&run[..n], self.now, t_rc);
                    self.abo.on_acts(n as u64);
                    self.now += t_rc * (n as u64);
                }
                if T::ARMED {
                    tel.on_phase(SimPhase::EngineUpdate, t0, self.now, n as u64);
                }
            } else {
                // Per-step fallback: inside an ALERT window, under a
                // spacing-stalled ALERT, or with no engine guarantee.
                if attacker.next_run(&mut run, 1) == 0 {
                    break;
                }
                let row = run[0];
                // Inside an ALERT activity window, an ACT must finish
                // before the stall point; the slot (and its row) is
                // otherwise dropped, as in the per-step reference.
                if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                    if self.now + t_rc > stall_at {
                        if T::ARMED {
                            tel.on_phase(SimPhase::Idle, self.now, stall_at, 0);
                        }
                        self.now = stall_at;
                        continue;
                    }
                }
                let t0 = self.now;
                let t = self.now.max(self.unit.bank().next_ready());
                self.unit
                    .activate(row, t)
                    .expect("scripted row within the bank");
                self.abo.on_act();
                self.now = t + t_rc;
                if T::ARMED {
                    tel.on_phase(SimPhase::EngineUpdate, t0, self.now, 1);
                }
            }
        }

        self.report()
    }

    /// Steps 1–3 shared by both batched execution modes
    /// ([`run_batched`](Self::run_batched) and
    /// [`run_semi_scripted`](Self::run_semi_scripted)); returns `true`
    /// when it advanced the defense (an RFM phase step or a REF) and the
    /// caller must re-enter its loop to re-evaluate priorities.
    ///
    /// The RFM phase flattens into one arithmetic step via
    /// [`AboProtocol::complete_episode`] when the whole phase runs before
    /// `end`. When `end` falls inside the phase, the per-step reference
    /// loop truncates mid-phase (RFM `i` only issues while `now < end`),
    /// so the episode drains per-RFM to stop at the identical point — a
    /// published run whose horizon lands inside an ALERT episode resumes
    /// through the same per-RFM path on the next call.
    fn advance_defense<F: FaultHook, T: TelemetryHook>(
        &mut self,
        end: Nanos,
        t_rfc: Nanos,
        faults: &mut F,
        tel: &mut T,
    ) -> bool {
        // 1. ABO RFM phase has priority once the activity window closes.
        match self.abo.phase() {
            AboPhase::ActWindow { stall_at } if self.now >= stall_at => {
                let rfms = u64::from(self.abo.level().as_u8());
                let last_start = self.now + self.config.dram.timing.t_rfm * (rfms - 1);
                let t0 = self.now;
                if last_start < end {
                    let done = self
                        .abo
                        .complete_episode(self.now)
                        .expect("episode after window");
                    for _ in 0..rfms {
                        if !(F::ARMED && faults.drop_rfm(self.now)) {
                            self.unit.rfm_mitigate();
                        }
                    }
                    self.now = done;
                    if T::ARMED {
                        tel.on_event(t0, SimEvent::Episode { rfms });
                        tel.on_phase(SimPhase::EpisodeChurn, t0, self.now, rfms);
                    }
                } else {
                    let done = self.abo.start_rfm(self.now).expect("rfm after window");
                    if !(F::ARMED && faults.drop_rfm(self.now)) {
                        self.unit.rfm_mitigate();
                    }
                    self.now = done;
                    if T::ARMED {
                        tel.on_phase(SimPhase::EpisodeChurn, t0, self.now, 1);
                    }
                }
                return true;
            }
            AboPhase::Rfm { busy_until, .. } => {
                // Only reachable when an earlier run (per-step, or a
                // batched run whose `end` fell mid-phase) left off inside
                // an episode; drain it per-RFM.
                let t0 = self.now;
                let t = self.now.max(busy_until);
                let done = self.abo.start_rfm(t).expect("chained rfm");
                if !(F::ARMED && faults.drop_rfm(self.now)) {
                    self.unit.rfm_mitigate();
                }
                self.now = done;
                if T::ARMED {
                    tel.on_phase(SimPhase::EpisodeChurn, t0, self.now, 1);
                }
                return true;
            }
            _ => {}
        }

        // 2. REF when due and the sub-channel is not in an ALERT.
        if matches!(self.abo.phase(), AboPhase::Idle) && self.unit.refresh().is_due(self.now) {
            let t0 = self.now;
            self.unit.perform_ref(self.now);
            self.now += t_rfc;
            if T::ARMED {
                tel.on_event(t0, SimEvent::Ref);
                tel.on_phase(SimPhase::Refresh, t0, self.now, 1);
            }
            return true;
        }

        // 3. Assert ALERT as soon as requested and permitted.
        if self.config.alerts_enabled && self.unit.alert_pending() && self.abo.can_assert() {
            if F::ARMED && faults.lose_alert(self.now) {
                // The assertion is lost in flight: clear the request
                // latch; it re-arms when a counter next crosses ATH.
                self.unit.engine_mut().apply_fault(&EngineFault::LoseAlert);
            } else {
                self.abo.assert_alert(self.now).expect("can_assert checked");
                if T::ARMED {
                    tel.on_event(self.now, SimEvent::Alert);
                }
            }
        }
        false
    }

    /// The engine-guaranteed ACT count behind a grant's `alert_safe`
    /// tier, or `u64::MAX` when the grant carries no engine promise.
    /// Only the idle-phase, no-pending-ALERT grant derives its
    /// `alert_safe` from
    /// [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert);
    /// inside an ALERT activity window (and under a spacing-stalled
    /// ALERT) the flag legitimately flips mid-run without an assertion,
    /// so flagging those as unsound would be a false positive.
    fn engine_promise(&self, alert_safe: usize) -> u64 {
        if self.config.alerts_enabled
            && matches!(self.abo.phase(), AboPhase::Idle)
            && !self.unit.alert_pending()
        {
            alert_safe as u64
        } else {
            u64::MAX
        }
    }

    /// Issues a granted run one ACT at a time, checking the engine's
    /// promise after each: with faults armed, `alert_pending` flipping
    /// strictly inside the `promised` engine-guaranteed ACTs means a
    /// fault corrupted state out from under the horizon invariant. Only
    /// the first violation per run is reported (the flag stays set until
    /// the next boundary). Called only on armed paths — the disarmed
    /// build issues the whole run through the batched
    /// [`BankUnit::activate_run`] pass.
    fn issue_run_checked<F: FaultHook>(
        &mut self,
        run: &[RowId],
        promised: u64,
        t_rc: Nanos,
        faults: &mut F,
    ) {
        // `u64::MAX` marks a promise-free grant (see `engine_promise`):
        // the flag may flip mid-run legitimately, so nothing to check.
        let mut reported = promised == u64::MAX;
        for (i, &row) in run.iter().enumerate() {
            self.unit
                .activate(row, self.now)
                .expect("event-free run respects bank timing");
            self.abo.on_act();
            self.now += t_rc;
            let done = (i + 1) as u64;
            if !reported && done < promised && self.unit.alert_pending() {
                faults.on_unsound_horizon(self.now, promised, done);
                reported = true;
            }
        }
    }

    /// Runs a [`SemiScriptedAttacker`] for `duration` of virtual time (or
    /// until it stops) — event-horizon batching for *adaptive* attackers.
    ///
    /// Each loop iteration hands the attacker one fresh [`DefenseView`]
    /// snapshot and a two-tier [`RunGrant`] (the same
    /// [`act_grant`](Self::act_grant) computation whose engine-safe tier
    /// drives the scripted batched path); the attacker publishes its
    /// next run against that snapshot and is only re-consulted at the
    /// next horizon boundary. Published idle stretches batch the same
    /// way, capped at the next REF deadline or ALERT stall point.
    ///
    /// Purely a host-side optimization: under the publish contract on
    /// [`SemiScriptedAttacker`], the report is bit-identical to
    /// [`run`](Self::run) over the equivalent per-step attacker (pinned
    /// by the `semi_equivalence` proptests in `moat-attacks`). Like the
    /// other modes, it can be called repeatedly and time continues.
    pub fn run_semi_scripted<A: SemiScriptedAttacker + ?Sized>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
    ) -> SecurityReport {
        self.run_semi_scripted_with_faults(attacker, duration, &mut NoFaults)
    }

    /// [`run_semi_scripted`](Self::run_semi_scripted) with a
    /// [`FaultHook`] threaded through — the same injection points and
    /// armed-run horizon checking as
    /// [`run_batched_with_faults`](Self::run_batched_with_faults), with
    /// the engine-guaranteed tier ([`RunGrant::alert_safe`]) as the
    /// checked promise (engine-aware attackers may legitimately publish
    /// past it). Disarmed ([`NoFaults`]), this is byte-for-byte the
    /// fault-free loop.
    pub fn run_semi_scripted_with_faults<A: SemiScriptedAttacker + ?Sized, F: FaultHook>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
        faults: &mut F,
    ) -> SecurityReport {
        self.run_semi_scripted_guarded(attacker, duration, faults, &mut NoGuard)
    }

    /// [`run_semi_scripted_with_faults`](Self::run_semi_scripted_with_faults)
    /// with a [`GuardHook`] threaded through as well — the same
    /// inject-then-check boundary ordering as
    /// [`run_batched_guarded`](Self::run_batched_guarded). With the
    /// disarmed [`NoGuard`] hook this *is* the `_with_faults` loop.
    pub fn run_semi_scripted_guarded<A, F, G>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
        faults: &mut F,
        guard: &mut G,
    ) -> SecurityReport
    where
        A: SemiScriptedAttacker + ?Sized,
        F: FaultHook,
        G: GuardHook,
    {
        self.run_semi_scripted_traced(attacker, duration, faults, guard, &mut NoTelemetry)
    }

    /// [`run_semi_scripted_guarded`](Self::run_semi_scripted_guarded)
    /// with a [`TelemetryHook`] threaded through as well — the
    /// outermost hook layer (inject → detect/repair → observe), with
    /// the same span vocabulary as
    /// [`run_batched_traced`](Self::run_batched_traced). With the
    /// disarmed [`NoTelemetry`] hook this *is* the `_guarded` loop.
    pub fn run_semi_scripted_traced<A, F, G, T>(
        &mut self,
        attacker: &mut A,
        duration: Nanos,
        faults: &mut F,
        guard: &mut G,
        tel: &mut T,
    ) -> SecurityReport
    where
        A: SemiScriptedAttacker + ?Sized,
        F: FaultHook,
        G: GuardHook,
        T: TelemetryHook,
    {
        let end = self.now + duration;
        let t_rc = self.config.dram.timing.t_rc;
        let t_rfc = self.config.dram.timing.t_rfc;
        let mut run: Vec<RowId> = Vec::with_capacity(MAX_RUN);

        while self.now < end {
            if F::ARMED {
                faults.at_boundary(self.now, self.unit.engine_mut());
            }
            if G::ARMED {
                guard.at_boundary(self.now, &mut self.unit);
            }
            if T::ARMED {
                tel.on_boundary(self.now);
            }
            if self.advance_defense(end, t_rfc, faults, tel) {
                continue;
            }

            // Publish the next run against a fresh snapshot.
            let grant = self.act_grant(end, t_rc);
            run.clear();
            let step = {
                let view = DefenseView {
                    now: self.now,
                    unit: self.unit.as_view(),
                    abo: &self.abo,
                };
                attacker.publish(&view, &mut run, grant)
            };
            match step {
                SemiRun::Stop => break,
                SemiRun::PostponeRef => {
                    if self.unit.refresh_mut().postpone().is_err() {
                        // Budget exhausted: burn the slot instead.
                        if T::ARMED {
                            tel.on_phase(SimPhase::Idle, self.now, self.now + t_rc, 1);
                        }
                        self.now += t_rc;
                    }
                }
                SemiRun::Idle(want) => {
                    let n = self.idle_horizon(end, t_rc).min(want.max(1));
                    if T::ARMED {
                        tel.on_phase(SimPhase::Idle, self.now, self.now + t_rc * n, n);
                    }
                    self.now += t_rc * n;
                }
                SemiRun::Acts(n) => {
                    let n = n.min(run.len()).min(grant.max);
                    if n == 0 {
                        break;
                    }
                    if grant.max > 1 {
                        let t0 = self.now;
                        if F::ARMED {
                            let promised = self.engine_promise(grant.alert_safe);
                            self.issue_run_checked(&run[..n], promised, t_rc, faults);
                        } else {
                            self.unit.activate_run(&run[..n], self.now, t_rc);
                            self.abo.on_acts(n as u64);
                            self.now += t_rc * (n as u64);
                        }
                        if T::ARMED {
                            tel.on_phase(SimPhase::EngineUpdate, t0, self.now, n as u64);
                        }
                    } else {
                        // Single guarded step: inside an ALERT window,
                        // under a spacing-stalled ALERT, or with no
                        // engine guarantee. An ACT that cannot finish
                        // before the stall point is dropped (consumed
                        // without landing), as in the per-step reference.
                        let row = run[0];
                        if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                            if self.now + t_rc > stall_at {
                                if T::ARMED {
                                    tel.on_phase(SimPhase::Idle, self.now, stall_at, 0);
                                }
                                self.now = stall_at;
                                continue;
                            }
                        }
                        let t0 = self.now;
                        let t = self.now.max(self.unit.bank().next_ready());
                        self.unit
                            .activate(row, t)
                            .expect("published row within the bank");
                        self.abo.on_act();
                        self.now = t + t_rc;
                        if T::ARMED {
                            tel.on_phase(SimPhase::EngineUpdate, t0, self.now, 1);
                        }
                    }
                }
            }
        }

        self.report()
    }

    /// How many idle slots (tRC each) are provably event-free from
    /// `self.now`: capped at the end of the run, the next REF deadline
    /// (REFs only fire while the ABO protocol is idle), and the stall
    /// point inside an ALERT activity window. Idle slots perform no ACTs,
    /// so neither the engine's alert horizon nor the inter-ALERT spacing
    /// rule can fire inside the stretch; the cap lands the clock on
    /// exactly the slot where the per-step loop would next act on the
    /// event (REFs are performed at the first slot at or past their
    /// deadline; an idling attacker overshoots the stall point by the
    /// same sub-tRC remainder in both modes).
    fn idle_horizon(&self, end: Nanos, t_rc: Nanos) -> u64 {
        let ceil_div = |d: Nanos| d.as_u64().div_ceil(t_rc.as_u64()).max(1);
        let n_end = ceil_div(end.saturating_sub(self.now));
        match self.abo.phase() {
            AboPhase::Idle => {
                let n_ref = ceil_div(self.unit.refresh().next_due().saturating_sub(self.now));
                n_ref.min(n_end)
            }
            AboPhase::ActWindow { stall_at } => {
                ceil_div(stall_at.saturating_sub(self.now)).min(n_end)
            }
            AboPhase::Rfm { .. } => 1,
        }
    }

    /// The two-tier run grant from `self.now` (see [`RunGrant`]).
    /// `max == 1` (or a zero-slot ALERT window) means "no batching
    /// guarantee — step one slot".
    ///
    /// * **Idle** — no simulator-side event before the next REF deadline
    ///   and the end of the run, so the hard cap is their minimum — with
    ///   one exception: once an ALERT is pending but stalled on the
    ///   inter-ALERT spacing rule, the assertion fires after exactly the
    ///   ACTs still owed (`L − acts_since_episode`; the flag cannot clear
    ///   — mitigations only happen at REF/RFM events), so that count
    ///   hard-caps the run. The `alert_safe` tier additionally applies
    ///   the engine's
    ///   [`min_acts_to_alert`](MitigationEngine::min_acts_to_alert)
    ///   bound while no ALERT is requested: within it, `alert_pending`
    ///   provably stays false whatever rows are activated. Engine-aware
    ///   attackers may publish past it (up to `max`) under the publish
    ///   contract's end-at-the-tripping-ACT rule.
    /// * **ALERT activity window** — the episode's in-window ACT count is
    ///   precomputed from the stall point: no REF, no assertion, and no
    ///   mitigation can occur before `stall_at`, so the
    ///   ⌊(stall_at − now)/tRC⌋ ACTs that fit the window (~3 at DDR5
    ///   timings) issue as one batched run; the flag may flip inside the
    ///   window in both modes without an assertion, so the two tiers
    ///   coincide.
    fn act_grant(&self, end: Nanos, t_rc: Nanos) -> RunGrant {
        let now = self.now;
        if self.unit.bank().next_ready() > now {
            return RunGrant::SINGLE;
        }
        // Acts land at now + i·tRC; each bound counts the slots strictly
        // before its deadline (the per-step loop re-checks at ≥).
        let ceil_div = |d: Nanos| d.as_u64().div_ceil(t_rc.as_u64());
        let n_end = ceil_div(end.saturating_sub(now));
        match self.abo.phase() {
            AboPhase::Idle => {
                let n_ref = ceil_div(self.unit.refresh().next_due().saturating_sub(now));
                let pending = self.config.alerts_enabled && self.unit.alert_pending();
                let n_hard = if pending {
                    // Spacing-stalled ALERT: can_assert() was false at
                    // step 3 (else the phase would be ActWindow), so the
                    // assertion fires after exactly this many owed ACTs —
                    // a simulator-side event that hard-caps every run.
                    u64::from(self.abo.level().as_u8())
                        .saturating_sub(self.abo.acts_since_episode())
                } else {
                    u64::MAX
                };
                let max = (n_ref.min(n_end).min(n_hard).min(MAX_RUN as u64) as usize).max(1);
                let n_alert = if !self.config.alerts_enabled || pending {
                    u64::MAX
                } else {
                    self.unit.min_acts_to_alert()
                };
                RunGrant {
                    max,
                    alert_safe: ((max as u64).min(n_alert) as usize).max(1),
                }
            }
            // An ACT must *finish* before the stall point (floor, not
            // ceil). A full window is ~3 ACTs; 0 falls through to the
            // per-step path, which advances to the stall point.
            AboPhase::ActWindow { stall_at } => {
                // A zero-slot window clamps to a single-slot grant: the
                // guarded step drops the published ACT at the stall
                // point, exactly like the per-step reference.
                let n_window = stall_at.saturating_sub(now).as_u64() / t_rc.as_u64();
                let max = (n_window.min(n_end).min(MAX_RUN as u64) as usize).max(1);
                RunGrant {
                    max,
                    alert_safe: max,
                }
            }
            AboPhase::Rfm { .. } => RunGrant::SINGLE,
        }
    }

    /// The report for everything simulated so far.
    pub fn report(&self) -> SecurityReport {
        let stats = self.unit.stats();
        SecurityReport {
            max_pressure: self.unit.ledger().max_pressure_ever(),
            max_pressure_row: self.unit.ledger().max_pressure_row(),
            max_epoch: self.unit.ledger().max_epoch_ever(),
            total_acts: stats.acts,
            alerts: self.abo.alerts(),
            rfms: self.abo.rfms(),
            refs: stats.refs,
            proactive_mitigations: stats.proactive_mitigations,
            reactive_mitigations: stats.reactive_mitigations,
            elapsed: self.now,
        }
    }
}

/// A trivial attacker that hammers a single row forever — the
/// single-row kernel of Fig. 13(a). Implements both [`Attacker`] (one
/// ACT per step) and [`ScriptedAttacker`] (whole event-horizon runs).
#[derive(Debug, Clone)]
pub struct HammerAttacker {
    row: RowId,
    /// Cached display name (formatted once — `name()` is allocation-free).
    name: String,
}

impl Attacker for HammerAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        AttackStep::Act(self.row)
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

impl ScriptedAttacker for HammerAttacker {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        buf.extend(std::iter::repeat_n(self.row, max));
        max
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

/// Builds a [`HammerAttacker`] on `row`.
pub fn hammer_attacker(row: u32) -> HammerAttacker {
    HammerAttacker {
        row: RowId::new(row),
        name: format!("hammer({row})"),
    }
}

/// An attacker that cycles through a fixed set of rows — the multi-row
/// kernel of Fig. 13(b). Implements both [`Attacker`] and
/// [`ScriptedAttacker`].
#[derive(Debug, Clone)]
pub struct RoundRobinAttacker {
    rows: Vec<RowId>,
    next: usize,
    /// Cached display name (formatted once — `name()` is allocation-free).
    name: String,
}

impl RoundRobinAttacker {
    /// Advances the cursor with a branchless wrap (a compare/select
    /// instead of the integer division a `%` would cost per step).
    #[inline]
    fn advance(&mut self) -> RowId {
        let row = self.rows[self.next];
        let next = self.next + 1;
        self.next = if next == self.rows.len() { 0 } else { next };
        row
    }
}

impl Attacker for RoundRobinAttacker {
    fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
        AttackStep::Act(self.advance())
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

impl ScriptedAttacker for RoundRobinAttacker {
    fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
        for _ in 0..max {
            let row = self.advance();
            buf.push(row);
        }
        max
    }

    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(&self.name)
    }
}

/// Builds a [`RoundRobinAttacker`] over `rows`.
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn round_robin_attacker(rows: Vec<u32>) -> RoundRobinAttacker {
    assert!(!rows.is_empty(), "need at least one row");
    RoundRobinAttacker {
        name: format!("round-robin({} rows)", rows.len()),
        rows: rows.into_iter().map(RowId::new).collect(),
        next: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::NullEngine;

    fn moat_sim() -> SecuritySim {
        SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        )
    }

    #[test]
    fn unmitigated_hammer_grows_without_bound() {
        let mut sim =
            SecuritySim::new(SecurityConfig::paper_default(), Box::new(NullEngine::new()));
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_micros(200));
        // 200 µs ≈ 51 tREFI ≈ 3400 ACT slots; no mitigation, and the
        // refresh pointer is far from row 100.
        assert!(
            report.max_pressure > 3000,
            "pressure {}",
            report.max_pressure
        );
        assert_eq!(report.alerts, 0);
    }

    #[test]
    fn moat_bounds_single_row_hammer_near_ath() {
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_millis(2));
        assert!(report.alerts > 0, "hammering past ATH must alert");
        // §4.4: with instantaneous ALERTs the bound is ATH+2; a lone
        // hammered row gains at most the 3 in-window ACTs on top.
        assert!(
            report.max_pressure <= 64 + 5,
            "pressure {} exceeds ATH plus the in-window slack",
            report.max_pressure
        );
    }

    #[test]
    fn moat_alert_rate_matches_ath_for_single_row() {
        // §7.2: one ALERT per ~65 activations of a single row (plus the
        // handful of in-window ACTs folded into each episode).
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_millis(4));
        let acts_per_alert = report.total_acts as f64 / report.alerts as f64;
        assert!(
            (60.0..90.0).contains(&acts_per_alert),
            "acts per alert: {acts_per_alert}"
        );
    }

    #[test]
    fn refs_happen_on_schedule() {
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(0), Nanos::from_millis(1));
        // 1 ms / 3900 ns ≈ 256 REFs (a few may slip past the horizon).
        assert!((250..=258).contains(&report.refs), "refs: {}", report.refs);
    }

    #[test]
    fn idle_attacker_advances_time() {
        struct Lazy;
        impl Attacker for Lazy {
            fn step(&mut self, _v: &DefenseView<'_>) -> AttackStep {
                AttackStep::Idle
            }
        }
        let mut sim = moat_sim();
        let report = sim.run(&mut Lazy, Nanos::from_micros(50));
        assert_eq!(report.total_acts, 0);
        assert!(report.elapsed >= Nanos::from_micros(50));
    }

    #[test]
    fn stop_ends_early() {
        struct OneShot(bool);
        impl Attacker for OneShot {
            fn step(&mut self, _v: &DefenseView<'_>) -> AttackStep {
                if self.0 {
                    AttackStep::Stop
                } else {
                    self.0 = true;
                    AttackStep::Act(RowId::new(3))
                }
            }
        }
        let mut sim = moat_sim();
        let report = sim.run(&mut OneShot(false), Nanos::from_millis(10));
        assert_eq!(report.total_acts, 1);
        assert!(report.elapsed < Nanos::from_millis(1));
    }

    #[test]
    fn round_robin_spreads_pressure() {
        let mut sim = moat_sim();
        let report = sim.run(
            &mut round_robin_attacker(vec![10_010, 10_020, 10_030, 10_040, 10_050]),
            Nanos::from_millis(1),
        );
        assert!(report.total_acts > 10_000);
        assert!(
            report.max_pressure <= 99,
            "pressure {}",
            report.max_pressure
        );
    }

    #[test]
    fn batched_hammer_matches_per_step() {
        // The event-horizon batched path is a host-side optimization
        // only: bit-identical reports to the per-step reference.
        for millis in [1u64, 4] {
            let mut per_step = moat_sim();
            let expect = per_step.run(
                &mut Scripted::new(hammer_attacker(10_000)),
                Nanos::from_millis(millis),
            );
            let mut batched = moat_sim();
            let got = batched.run_batched(&mut hammer_attacker(10_000), Nanos::from_millis(millis));
            assert_eq!(got, expect, "{millis} ms");
            assert!(got.alerts > 0, "the comparison must exercise episodes");
        }
    }

    #[test]
    fn batched_round_robin_matches_per_step() {
        let rows = vec![20_000, 20_006, 20_012, 20_018, 20_024];
        let mut per_step = moat_sim();
        let expect = per_step.run(
            &mut Scripted::new(round_robin_attacker(rows.clone())),
            Nanos::from_millis(2),
        );
        let mut batched = moat_sim();
        let got = batched.run_batched(&mut round_robin_attacker(rows), Nanos::from_millis(2));
        assert_eq!(got, expect);
        assert!(expect.refs > 0 && expect.alerts > 0);
    }

    #[test]
    fn batched_run_continues_across_calls() {
        // Time continues across calls exactly like the per-step mode:
        // splitting at the same instants, a batched pair of runs matches
        // a per-step pair, and the two modes can trade off mid-attack.
        let mut batched = moat_sim();
        batched.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let batched_report = batched.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let mut per_step = moat_sim();
        per_step.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        let per_step_report = per_step.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        assert_eq!(batched_report, per_step_report);
        // And a mode switch mid-attack stays on the same trajectory.
        let mut mixed = moat_sim();
        mixed.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let mixed_report = mixed.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        assert_eq!(mixed_report, per_step_report);
    }

    #[test]
    fn batched_run_stops_at_script_end() {
        // A finite script ends the batched run early, exactly like an
        // adaptive attacker returning Stop.
        #[derive(Debug)]
        struct Finite(u64, RowId);
        impl ScriptedAttacker for Finite {
            fn next_run(&mut self, buf: &mut Vec<RowId>, max: usize) -> usize {
                let n = (max as u64).min(self.0) as usize;
                buf.extend(std::iter::repeat_n(self.1, n));
                self.0 -= n as u64;
                n
            }
        }
        let mut batched = moat_sim();
        let got = batched.run_batched(&mut Finite(1000, RowId::new(9)), Nanos::from_millis(50));
        let mut per_step = moat_sim();
        let expect = per_step.run(
            &mut Scripted::new(Finite(1000, RowId::new(9))),
            Nanos::from_millis(50),
        );
        assert_eq!(got, expect);
        // The script hands out exactly 1000 rows; a handful are dropped
        // at ALERT stall points (consumed without landing) in both modes.
        assert!(
            (900..=1000).contains(&got.total_acts),
            "acts {}",
            got.total_acts
        );
        assert!(got.elapsed < Nanos::from_millis(1));
    }

    #[test]
    fn batched_hammer_matches_per_step_for_panopticon() {
        // The Panopticon-family horizon (queue threshold distance) keeps
        // the batched path exact for both variants, including overflow
        // ALERTs and drain-on-REF episodes.
        use moat_trackers::{PanopticonConfig, PanopticonEngine};
        for pano in [
            PanopticonConfig::paper_default(),
            PanopticonConfig::drain_variant(),
        ] {
            let mk =
                || SecuritySim::new(SecurityConfig::paper_default(), PanopticonEngine::new(pano));
            let mut per_step = mk();
            let expect = per_step.run(
                &mut Scripted::new(hammer_attacker(20_000)),
                Nanos::from_millis(4),
            );
            let mut batched = mk();
            let got = batched.run_batched(&mut hammer_attacker(20_000), Nanos::from_millis(4));
            assert_eq!(got, expect, "drain_on_ref={}", pano.drain_on_ref);
            assert!(expect.refs > 0);
        }
    }

    #[test]
    fn moat_horizon_batches_spacing_and_window_acts() {
        // With a level-4 protocol the spacing rule owes 4 ACTs after each
        // episode and each 180 ns window fits 3 ACTs; both now batch.
        // This pins the arithmetic against the per-step reference on a
        // run dense with episodes.
        let mut cfg = SecurityConfig::paper_default();
        cfg.abo_level = moat_dram::AboLevel::L4;
        let mk = || {
            SecuritySim::new(
                cfg,
                Box::new(MoatEngine::new(MoatConfig::paper_default()))
                    as Box<dyn moat_dram::MitigationEngine>,
            )
        };
        let mut per_step = mk();
        let expect = per_step.run(
            &mut Scripted::new(hammer_attacker(10_000)),
            Nanos::from_millis(3),
        );
        let mut batched = mk();
        let got = batched.run_batched(&mut hammer_attacker(10_000), Nanos::from_millis(3));
        assert_eq!(got, expect);
        assert!(got.alerts > 10, "episodes must be exercised");
    }

    #[test]
    fn batched_moat_bound_matches_per_step_invariant() {
        let mut sim = moat_sim();
        let report = sim.run_batched(&mut hammer_attacker(10_000), Nanos::from_millis(2));
        assert!(report.alerts > 0);
        assert!(
            report.max_pressure <= 64 + 5,
            "pressure {} exceeds ATH plus the in-window slack",
            report.max_pressure
        );
    }

    #[test]
    fn semi_scripted_matches_per_step_for_scripts() {
        // Every ScriptedAttacker is trivially semi-scripted; the semi
        // loop must land on the identical trajectory, including ALERT
        // episodes and REFs.
        for millis in [1u64, 4] {
            let mut per_step = moat_sim();
            let expect = per_step.run(
                &mut Scripted::new(hammer_attacker(10_000)),
                Nanos::from_millis(millis),
            );
            let mut semi = moat_sim();
            let got =
                semi.run_semi_scripted(&mut hammer_attacker(10_000), Nanos::from_millis(millis));
            assert_eq!(got, expect, "{millis} ms");
            assert!(got.alerts > 0, "the comparison must exercise episodes");
        }
        let rows = vec![20_000, 20_006, 20_012, 20_018, 20_024];
        let mut per_step = moat_sim();
        let expect = per_step.run(
            &mut Scripted::new(round_robin_attacker(rows.clone())),
            Nanos::from_millis(2),
        );
        let mut semi = moat_sim();
        let got = semi.run_semi_scripted(&mut round_robin_attacker(rows), Nanos::from_millis(2));
        assert_eq!(got, expect);
    }

    #[test]
    fn semi_scripted_alert_at_published_run_boundary() {
        // A single-row hammer against MOAT makes min_acts_to_alert exact:
        // the granted run ends on precisely the ACT that trips the ALERT,
        // so every episode in this run asserts at a published run
        // boundary. The semi path must stay bit-identical through all of
        // them, for every ABO level.
        for level in moat_dram::AboLevel::ALL {
            let mut cfg = SecurityConfig::paper_default();
            cfg.abo_level = level;
            let mk = || {
                SecuritySim::new(
                    cfg,
                    Box::new(MoatEngine::new(MoatConfig::paper_default()))
                        as Box<dyn moat_dram::MitigationEngine>,
                )
            };
            let mut per_step = mk();
            let expect = per_step.run(
                &mut Scripted::new(hammer_attacker(10_000)),
                Nanos::from_millis(3),
            );
            let mut semi = mk();
            let got = semi.run_semi_scripted(&mut hammer_attacker(10_000), Nanos::from_millis(3));
            assert_eq!(got, expect, "{level}");
            assert!(got.alerts > 10, "episodes must be exercised at {level}");
        }
    }

    #[test]
    fn semi_scripted_idle_batches_to_the_same_trajectory() {
        // A semi-scripted attacker that alternates bursts with long
        // published idles: the batched idle stretch must land the clock
        // exactly where per-step idling does, across REF boundaries.
        #[derive(Debug, Clone)]
        struct BurstyIdler {
            row: RowId,
            burst: u64,
            left: u64,
        }
        impl SemiScriptedAttacker for BurstyIdler {
            fn publish(
                &mut self,
                view: &DefenseView<'_>,
                buf: &mut Vec<RowId>,
                grant: RunGrant,
            ) -> SemiRun {
                let max = grant.alert_safe;
                if self.left == 0 {
                    return SemiRun::Stop;
                }
                // Idle through the second half of every tREFI. The
                // half-tREFI point is an attacker-internal decision
                // boundary, so published bursts must be capped at it —
                // that is the publish contract.
                let t_refi = view.unit.config().timing.t_refi.as_u64();
                let t_rc = view.unit.config().timing.t_rc.as_u64();
                let into = view.now.as_u64() % t_refi;
                let half = t_refi.div_ceil(2);
                if into >= half {
                    let slots = (t_refi - into).div_ceil(t_rc).max(1);
                    return SemiRun::Idle(slots);
                }
                let to_half = (half - into).div_ceil(t_rc).max(1);
                let n = (max as u64).min(self.burst).min(self.left).min(to_half) as usize;
                buf.extend(std::iter::repeat_n(self.row, n));
                self.left -= n as u64;
                SemiRun::Acts(n)
            }
        }
        let attacker = BurstyIdler {
            row: RowId::new(40_000),
            burst: 17,
            left: 5_000,
        };
        let mut per_step = moat_sim();
        let expect = per_step.run(
            &mut SemiStepped::new(attacker.clone()),
            Nanos::from_millis(4),
        );
        let mut semi = moat_sim();
        let got = semi.run_semi_scripted(&mut attacker.clone(), Nanos::from_millis(4));
        assert_eq!(got, expect);
        assert!(expect.refs > 0 && expect.total_acts > 1_000);
    }

    #[test]
    fn semi_scripted_postpone_matches_per_step() {
        // PostponeRef flows through the semi loop one slot at a time,
        // including budget-exhausted degradation to an idle slot.
        #[derive(Debug, Clone)]
        struct PostponeThenHammer {
            row: RowId,
            left: u64,
        }
        impl SemiScriptedAttacker for PostponeThenHammer {
            fn publish(
                &mut self,
                view: &DefenseView<'_>,
                buf: &mut Vec<RowId>,
                grant: RunGrant,
            ) -> SemiRun {
                if self.left == 0 {
                    return SemiRun::Stop;
                }
                if view.unit.refresh().owed() < view.unit.config().max_postponed_refs {
                    return SemiRun::PostponeRef;
                }
                let n = (grant.alert_safe as u64).min(self.left) as usize;
                buf.extend(std::iter::repeat_n(self.row, n));
                self.left -= n as u64;
                SemiRun::Acts(n)
            }
        }
        let mut cfg = SecurityConfig::paper_default();
        cfg.dram = moat_dram::DramConfig::builder()
            .max_postponed_refs(2)
            .build();
        let mk = || {
            SecuritySim::new(
                cfg,
                Box::new(MoatEngine::new(MoatConfig::paper_default()))
                    as Box<dyn moat_dram::MitigationEngine>,
            )
        };
        let attacker = PostponeThenHammer {
            row: RowId::new(30_000),
            left: 3_000,
        };
        let mut per_step = mk();
        let expect = per_step.run(
            &mut SemiStepped::new(attacker.clone()),
            Nanos::from_millis(2),
        );
        let mut semi = mk();
        let got = semi.run_semi_scripted(&mut attacker.clone(), Nanos::from_millis(2));
        assert_eq!(got, expect);
        assert!(expect.refs > 0);
    }

    #[test]
    fn semi_scripted_continues_across_calls_and_modes() {
        let mut semi = moat_sim();
        semi.run_semi_scripted(&mut hammer_attacker(77), Nanos::from_millis(1));
        let semi_report = semi.run_semi_scripted(&mut hammer_attacker(77), Nanos::from_millis(1));
        let mut per_step = moat_sim();
        per_step.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        let per_step_report = per_step.run(
            &mut Scripted::new(hammer_attacker(77)),
            Nanos::from_millis(1),
        );
        assert_eq!(semi_report, per_step_report);
        // All three modes interleave on the same trajectory.
        let mut mixed = moat_sim();
        mixed.run_batched(&mut hammer_attacker(77), Nanos::from_millis(1));
        let mixed_report = mixed.run_semi_scripted(&mut hammer_attacker(77), Nanos::from_millis(1));
        assert_eq!(mixed_report, per_step_report);
    }

    #[test]
    fn attacker_names_are_cached_borrows() {
        let h = hammer_attacker(5);
        assert_eq!(Attacker::name(&h), "hammer(5)");
        assert!(
            matches!(Attacker::name(&h), Cow::Borrowed(_)),
            "name() must not allocate per call"
        );
        let rr = round_robin_attacker(vec![1, 2, 3]);
        assert_eq!(ScriptedAttacker::name(&rr), "round-robin(3 rows)");
        assert!(matches!(ScriptedAttacker::name(&rr), Cow::Borrowed(_)));
        let wrapped = Scripted::new(hammer_attacker(9));
        assert_eq!(wrapped.name(), "hammer(9)");
    }

    #[test]
    fn round_robin_wrap_matches_modulo() {
        let mut a = round_robin_attacker(vec![7, 8, 9]);
        let mut seen = Vec::new();
        let mut buf = Vec::new();
        // Mix single steps and runs to cross the wrap both ways.
        for chunk in [1usize, 4, 2, 7, 3] {
            buf.clear();
            assert_eq!(ScriptedAttacker::next_run(&mut a, &mut buf, chunk), chunk);
            seen.extend(buf.iter().map(|r| r.index()));
        }
        let expect: Vec<u32> = (0..17).map(|i| 7 + i % 3).collect();
        assert_eq!(seen, expect);
    }
}
