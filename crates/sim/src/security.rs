//! The bank-level security simulator: an adaptive attacker versus one bank
//! unit under full DDR5/PRAC/ABO timing.
//!
//! The simulator is the referee for every security experiment in the paper
//! (Figs. 5, 7, 10, 15, 16): it enforces tRC spacing, schedules REFs,
//! drives the ABO protocol, and maintains the ground-truth
//! [`SecurityLedger`](moat_dram::SecurityLedger) outside the reach of the
//! defense. The attacker sees the complete defense state each step (threat
//! model §2.1) and decides the next activation.

use moat_dram::{AboLevel, AboPhase, AboProtocol, DramConfig, MitigationEngine, Nanos, RowId};

use crate::budget::SlotBudget;
use crate::unit::{BankUnit, BankUnitView};

/// What the attacker does with its next ACT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStep {
    /// Activate this row.
    Act(RowId),
    /// Let the slot pass unused.
    Idle,
    /// Postpone the next REF (the threat model lets the attacker choose
    /// the memory-system policy, §2.1 / Appendix B). Costs no time; if
    /// the postponement budget is exhausted the step degrades to `Idle`.
    PostponeRef,
    /// End the attack (the simulation stops).
    Stop,
}

/// Read-only view of the complete defense state, handed to the attacker
/// each step.
///
/// The view is type-erased (see [`BankUnitView`]) so attackers stay
/// independent of the engine type the simulator was monomorphized with.
#[derive(Debug)]
pub struct DefenseView<'a> {
    /// Current simulation time.
    pub now: Nanos,
    /// The bank unit under attack (bank counters, engine state, ledger,
    /// refresh pointer are all inspectable).
    pub unit: BankUnitView<'a>,
    /// The ABO protocol state.
    pub abo: &'a AboProtocol,
}

impl<'a> DefenseView<'a> {
    /// Convenience: the mitigation engine, for downcasting to a concrete
    /// design (`view.engine().as_any().downcast_ref::<PanopticonEngine>()`).
    pub fn engine(&self) -> &'a dyn MitigationEngine {
        self.unit.engine()
    }
}

/// An adaptive single-bank attacker.
pub trait Attacker {
    /// Chooses the next step given full visibility of the defense.
    fn step(&mut self, view: &DefenseView<'_>) -> AttackStep;

    /// A short name for reports.
    fn name(&self) -> String {
        "attacker".to_string()
    }
}

/// Configuration of a security simulation.
#[derive(Debug, Clone, Copy)]
pub struct SecurityConfig {
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// ABO mitigation level.
    pub abo_level: AboLevel,
    /// REF-time mitigation budget.
    pub budget: SlotBudget,
    /// Whether the DRAM may assert ALERT (disable to measure raw feinting
    /// bounds of purely transparent schemes).
    pub alerts_enabled: bool,
}

impl SecurityConfig {
    /// The paper's defaults: baseline DRAM, ABO level 1, one victim-op
    /// slot per REF, ALERTs enabled.
    pub fn paper_default() -> Self {
        SecurityConfig {
            dram: DramConfig::paper_baseline(),
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        }
    }
}

impl Default for SecurityConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Outcome of a security simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityReport {
    /// Highest hammer pressure any victim row ever absorbed — the metric
    /// plotted in Figs. 5 and 10. A defense tolerates Rowhammer threshold
    /// `T` iff this stays ≤ `T`.
    pub max_pressure: u32,
    /// The victim row that absorbed it.
    pub max_pressure_row: RowId,
    /// Highest per-aggressor epoch (the paper's §2.1 metric: activations
    /// on one row without intervening mitigation or neighborhood refresh).
    pub max_epoch: u32,
    /// Total attacker activations performed.
    pub total_acts: u64,
    /// ALERTs asserted.
    pub alerts: u64,
    /// RFMs issued.
    pub rfms: u64,
    /// REFs performed.
    pub refs: u64,
    /// Aggressor mitigations completed during REF.
    pub proactive_mitigations: u64,
    /// Aggressor mitigations completed during RFM.
    pub reactive_mitigations: u64,
    /// Virtual time elapsed.
    pub elapsed: Nanos,
}

/// The single-bank security simulator.
///
/// Generic over the mitigation engine like
/// [`PerfSim`](crate::PerfSim): a concrete `E` statically dispatches
/// every per-ACT engine call, while the default `Box<dyn
/// MitigationEngine>` parameter keeps the original boxed construction
/// working unchanged.
///
/// # Examples
///
/// ```
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::Nanos;
/// use moat_sim::{hammer_attacker, SecurityConfig, SecuritySim};
///
/// let mut sim = SecuritySim::new(
///     SecurityConfig::paper_default(),
///     Box::new(MoatEngine::new(MoatConfig::paper_default())),
/// );
/// // Hammer one row continuously for a millisecond of DRAM time:
/// let report = sim.run(&mut hammer_attacker(5), Nanos::from_millis(1));
/// // MOAT keeps the pressure bounded near ATH despite ~19k activations:
/// assert!(report.total_acts > 15_000);
/// assert!(report.max_pressure < 99);
/// ```
#[derive(Debug)]
pub struct SecuritySim<E: MitigationEngine = Box<dyn MitigationEngine>> {
    config: SecurityConfig,
    unit: BankUnit<E>,
    abo: AboProtocol,
    now: Nanos,
}

impl<E: MitigationEngine> SecuritySim<E> {
    /// Creates a simulator for `engine` under `config`.
    pub fn new(config: SecurityConfig, engine: E) -> Self {
        let unit = BankUnit::new(&config.dram, engine, config.budget);
        let abo = AboProtocol::new(config.abo_level, config.dram.timing);
        SecuritySim {
            config,
            unit,
            abo,
            now: Nanos::ZERO,
        }
    }

    /// The bank unit (for pre-run setup such as randomized counter
    /// initialization, and post-run inspection).
    pub fn unit(&self) -> &BankUnit<E> {
        &self.unit
    }

    /// Mutable bank unit access.
    pub fn unit_mut(&mut self) -> &mut BankUnit<E> {
        &mut self.unit
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Runs `attacker` for `duration` of virtual time (or until it stops)
    /// and reports the outcome. Can be called repeatedly; time continues.
    pub fn run(&mut self, attacker: &mut dyn Attacker, duration: Nanos) -> SecurityReport {
        let end = self.now + duration;
        let t_rc = self.config.dram.timing.t_rc;
        let t_rfc = self.config.dram.timing.t_rfc;

        while self.now < end {
            // 1. ABO RFM phase has priority once the activity window closes.
            match self.abo.phase() {
                AboPhase::ActWindow { stall_at } if self.now >= stall_at => {
                    let done = self.abo.start_rfm(self.now).expect("rfm after window");
                    self.unit.rfm_mitigate();
                    self.now = done;
                    continue;
                }
                AboPhase::Rfm { busy_until, .. } => {
                    let t = self.now.max(busy_until);
                    let done = self.abo.start_rfm(t).expect("chained rfm");
                    self.unit.rfm_mitigate();
                    self.now = done;
                    continue;
                }
                _ => {}
            }

            // 2. REF when due and the sub-channel is not in an ALERT.
            if matches!(self.abo.phase(), AboPhase::Idle) && self.unit.refresh().is_due(self.now) {
                self.unit.perform_ref(self.now);
                self.now += t_rfc;
                continue;
            }

            // 3. Assert ALERT as soon as requested and permitted.
            if self.config.alerts_enabled && self.unit.alert_pending() && self.abo.can_assert() {
                self.abo.assert_alert(self.now).expect("can_assert checked");
                // Normal operation continues inside the 180 ns window.
            }

            // 4. The attacker takes the next ACT slot.
            let step = {
                let view = DefenseView {
                    now: self.now,
                    unit: self.unit.as_view(),
                    abo: &self.abo,
                };
                attacker.step(&view)
            };
            match step {
                AttackStep::Stop => break,
                AttackStep::Idle => {
                    self.now += t_rc;
                }
                AttackStep::PostponeRef => {
                    if self.unit.refresh_mut().postpone().is_err() {
                        // Budget exhausted: burn the slot instead.
                        self.now += t_rc;
                    }
                }
                AttackStep::Act(row) => {
                    // Inside an ALERT activity window, an ACT must finish
                    // before the stall point.
                    if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                        if self.now + t_rc > stall_at {
                            self.now = stall_at;
                            continue;
                        }
                    }
                    let t = self.now.max(self.unit.bank().next_ready());
                    match self.unit.activate(row, t) {
                        Ok(_) => {
                            self.abo.on_act();
                            self.now = t + t_rc;
                        }
                        Err(_) => {
                            // Timing said no; advance to the bank's ready
                            // time and retry next iteration.
                            self.now = self.unit.bank().next_ready();
                        }
                    }
                }
            }
        }

        self.report()
    }

    /// The report for everything simulated so far.
    pub fn report(&self) -> SecurityReport {
        let stats = self.unit.stats();
        SecurityReport {
            max_pressure: self.unit.ledger().max_pressure_ever(),
            max_pressure_row: self.unit.ledger().max_pressure_row(),
            max_epoch: self.unit.ledger().max_epoch_ever(),
            total_acts: stats.acts,
            alerts: self.abo.alerts(),
            rfms: self.abo.rfms(),
            refs: stats.refs,
            proactive_mitigations: stats.proactive_mitigations,
            reactive_mitigations: stats.reactive_mitigations,
            elapsed: self.now,
        }
    }
}

/// A trivial attacker that hammers a single row forever — the
/// single-row kernel of Fig. 13(a).
pub fn hammer_attacker(row: u32) -> impl Attacker {
    struct Hammer(RowId);
    impl Attacker for Hammer {
        fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
            AttackStep::Act(self.0)
        }
        fn name(&self) -> String {
            format!("hammer({})", self.0)
        }
    }
    Hammer(RowId::new(row))
}

/// An attacker that cycles through a fixed set of rows — the multi-row
/// kernel of Fig. 13(b).
pub fn round_robin_attacker(rows: Vec<u32>) -> impl Attacker {
    struct RoundRobin {
        rows: Vec<RowId>,
        next: usize,
    }
    impl Attacker for RoundRobin {
        fn step(&mut self, _view: &DefenseView<'_>) -> AttackStep {
            let row = self.rows[self.next];
            self.next = (self.next + 1) % self.rows.len();
            AttackStep::Act(row)
        }
        fn name(&self) -> String {
            format!("round-robin({} rows)", self.rows.len())
        }
    }
    assert!(!rows.is_empty(), "need at least one row");
    RoundRobin {
        rows: rows.into_iter().map(RowId::new).collect(),
        next: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_dram::NullEngine;

    fn moat_sim() -> SecuritySim {
        SecuritySim::new(
            SecurityConfig::paper_default(),
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
        )
    }

    #[test]
    fn unmitigated_hammer_grows_without_bound() {
        let mut sim =
            SecuritySim::new(SecurityConfig::paper_default(), Box::new(NullEngine::new()));
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_micros(200));
        // 200 µs ≈ 51 tREFI ≈ 3400 ACT slots; no mitigation, and the
        // refresh pointer is far from row 100.
        assert!(
            report.max_pressure > 3000,
            "pressure {}",
            report.max_pressure
        );
        assert_eq!(report.alerts, 0);
    }

    #[test]
    fn moat_bounds_single_row_hammer_near_ath() {
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_millis(2));
        assert!(report.alerts > 0, "hammering past ATH must alert");
        // §4.4: with instantaneous ALERTs the bound is ATH+2; a lone
        // hammered row gains at most the 3 in-window ACTs on top.
        assert!(
            report.max_pressure <= 64 + 5,
            "pressure {} exceeds ATH plus the in-window slack",
            report.max_pressure
        );
    }

    #[test]
    fn moat_alert_rate_matches_ath_for_single_row() {
        // §7.2: one ALERT per ~65 activations of a single row (plus the
        // handful of in-window ACTs folded into each episode).
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(10_000), Nanos::from_millis(4));
        let acts_per_alert = report.total_acts as f64 / report.alerts as f64;
        assert!(
            (60.0..90.0).contains(&acts_per_alert),
            "acts per alert: {acts_per_alert}"
        );
    }

    #[test]
    fn refs_happen_on_schedule() {
        let mut sim = moat_sim();
        let report = sim.run(&mut hammer_attacker(0), Nanos::from_millis(1));
        // 1 ms / 3900 ns ≈ 256 REFs (a few may slip past the horizon).
        assert!((250..=258).contains(&report.refs), "refs: {}", report.refs);
    }

    #[test]
    fn idle_attacker_advances_time() {
        struct Lazy;
        impl Attacker for Lazy {
            fn step(&mut self, _v: &DefenseView<'_>) -> AttackStep {
                AttackStep::Idle
            }
        }
        let mut sim = moat_sim();
        let report = sim.run(&mut Lazy, Nanos::from_micros(50));
        assert_eq!(report.total_acts, 0);
        assert!(report.elapsed >= Nanos::from_micros(50));
    }

    #[test]
    fn stop_ends_early() {
        struct OneShot(bool);
        impl Attacker for OneShot {
            fn step(&mut self, _v: &DefenseView<'_>) -> AttackStep {
                if self.0 {
                    AttackStep::Stop
                } else {
                    self.0 = true;
                    AttackStep::Act(RowId::new(3))
                }
            }
        }
        let mut sim = moat_sim();
        let report = sim.run(&mut OneShot(false), Nanos::from_millis(10));
        assert_eq!(report.total_acts, 1);
        assert!(report.elapsed < Nanos::from_millis(1));
    }

    #[test]
    fn round_robin_spreads_pressure() {
        let mut sim = moat_sim();
        let report = sim.run(
            &mut round_robin_attacker(vec![10_010, 10_020, 10_030, 10_040, 10_050]),
            Nanos::from_millis(1),
        );
        assert!(report.total_acts > 10_000);
        assert!(
            report.max_pressure <= 99,
            "pressure {}",
            report.max_pressure
        );
    }
}
