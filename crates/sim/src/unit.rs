//! A *bank unit*: one DRAM bank composed with its mitigation engine,
//! refresh engine, ground-truth security ledger, and the REF-time
//! mitigation scheduler. Both the security simulator and the performance
//! simulator are built out of bank units.

use moat_dram::{
    ActCount, Bank, DramConfig, DramError, IntegrityReport, MitigationEngine, Nanos,
    RefMitigationMode, RefreshEngine, RowId, SecurityLedger,
};

use crate::budget::SlotBudget;

/// How many requests ahead of the issue point the batched loops start
/// loading counter/ledger state. At ~4 cache lines per request this keeps
/// well under the outstanding-miss budget of current cores while covering
/// several hundred nanoseconds of issue work. Shared by the performance
/// simulator's chunked issue loop and [`BankUnit::activate_run`].
pub(crate) const PREFETCH_DISTANCE: usize = 12;

/// An aggressor mitigation in flight under gradual REF-time mitigation:
/// one REF slot is consumed per victim row (plus one for the counter
/// reset), and the full effect — victim refreshes and counter reset —
/// is applied atomically when the last slot completes (§2.2, §4.1).
///
/// Applying the effect at completion rather than slot-by-slot keeps the
/// `PRAC counter ≥ victim pressure` invariant exact: the counter and the
/// pressure reset at the same instant. Physically the victims are
/// refreshed during earlier slots, so the modeled pressure is an upper
/// bound on the real pressure — conservative in the safe direction, and
/// the accounting the paper's Jailbreak arithmetic uses (row H accrues
/// activations until its queue entry's mitigation period finishes).
#[derive(Debug, Clone)]
struct InflightMitigation {
    row: RowId,
    ops_left: u32,
}

/// Counters a bank unit accumulates while simulating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankUnitStats {
    /// REF commands performed.
    pub refs: u64,
    /// Aggressor mitigations completed via REF-time (proactive) slots.
    pub proactive_mitigations: u64,
    /// Aggressor mitigations completed via RFM (reactive, during ALERT).
    pub reactive_mitigations: u64,
    /// Activations performed.
    pub acts: u64,
}

/// One bank with everything attached to it.
///
/// `BankUnit` is generic over its mitigation engine. With a concrete
/// engine type (`BankUnit<MoatEngine>`) every per-ACT engine call is
/// statically dispatched and inlined into the simulation loop; the
/// default parameter `Box<dyn MitigationEngine>` preserves the original
/// fully type-erased behaviour for heterogeneous-engine experiments.
///
/// # Examples
///
/// ```
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::{DramConfig, Nanos, RowId};
/// use moat_sim::{BankUnit, SlotBudget};
///
/// let cfg = DramConfig::builder().rows_per_bank(1024).build();
/// // Monomorphized (static dispatch):
/// let engine = MoatEngine::new(MoatConfig::paper_default());
/// let mut unit = BankUnit::new(&cfg, engine, SlotBudget::paper_default());
/// unit.activate(RowId::new(5), Nanos::ZERO)?;
/// assert_eq!(unit.stats().acts, 1);
/// # Ok::<(), moat_dram::DramError>(())
/// ```
#[derive(Debug)]
pub struct BankUnit<E: MitigationEngine = Box<dyn MitigationEngine>> {
    config: DramConfig,
    bank: Bank,
    engine: E,
    ledger: SecurityLedger,
    refresh: RefreshEngine,
    inflight: Option<InflightMitigation>,
    budget: SlotBudget,
    stats: BankUnitStats,
}

impl<E: MitigationEngine> BankUnit<E> {
    /// Composes a bank unit from a configuration, an engine, and a
    /// REF-time mitigation budget.
    pub fn new(config: &DramConfig, engine: E, budget: SlotBudget) -> Self {
        BankUnit {
            config: *config,
            bank: Bank::new(config),
            engine,
            ledger: SecurityLedger::new(config),
            refresh: RefreshEngine::new(config),
            inflight: None,
            budget,
            stats: BankUnitStats::default(),
        }
    }

    /// The DRAM configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Immutable access to the bank (attacker inspection, counter reads).
    pub fn bank(&self) -> &Bank {
        &self.bank
    }

    /// Mutable access to the bank (randomized counter initialization).
    pub fn bank_mut(&mut self) -> &mut Bank {
        &mut self.bank
    }

    /// The mitigation engine (attackers may downcast via
    /// [`MitigationEngine::as_any`], per the threat model).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable engine access, for fault injection
    /// ([`MitigationEngine::apply_fault`]). Out-of-band engine mutation
    /// voids the [`MitigationEngine::min_acts_to_alert`] horizon
    /// guarantee — which is exactly what the fault layer measures.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// A type-erased read-only view of this unit, used to hand the full
    /// defense state to adaptive attackers without making them generic
    /// over the engine type.
    ///
    /// The engine is erased via [`MitigationEngine::as_dyn`], so even when
    /// `E` is itself `Box<dyn MitigationEngine>` the view dispatches
    /// through a single vtable — not through the forwarding `Box` impl.
    pub fn as_view(&self) -> BankUnitView<'_> {
        BankUnitView {
            config: &self.config,
            bank: &self.bank,
            engine: self.engine.as_dyn(),
            ledger: &self.ledger,
            refresh: &self.refresh,
            inflight: self.inflight.as_ref().map(|m| m.row),
            stats: self.stats,
        }
    }

    /// The ground-truth security ledger.
    pub fn ledger(&self) -> &SecurityLedger {
        &self.ledger
    }

    /// The refresh engine.
    pub fn refresh(&self) -> &RefreshEngine {
        &self.refresh
    }

    /// Mutable refresh access (postponement attacks).
    pub fn refresh_mut(&mut self) -> &mut RefreshEngine {
        &mut self.refresh
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BankUnitStats {
        self.stats
    }

    /// The row currently being mitigated gradually, if any.
    pub fn inflight_row(&self) -> Option<RowId> {
        self.inflight.as_ref().map(|m| m.row)
    }

    /// Activates `row` at `now`: bank timing + counter update, ledger
    /// update, and the engine's precharge hook.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from the bank (tRC violation, bad row).
    #[inline]
    pub fn activate(&mut self, row: RowId, now: Nanos) -> Result<ActCount, DramError> {
        let counter = self.bank.activate(row, now)?;
        self.ledger.on_activate(row);
        self.engine.on_precharge_update(row, counter);
        self.stats.acts += 1;
        Ok(counter)
    }

    /// Whether this unit's engine wants an ALERT.
    #[inline]
    pub fn alert_pending(&self) -> bool {
        self.engine.alert_pending()
    }

    /// The engine's event-horizon hint: a sound lower bound on how many
    /// further activations this bank absorbs before
    /// [`alert_pending`](Self::alert_pending) could become true (see
    /// [`MitigationEngine::min_acts_to_alert`]).
    #[inline]
    pub fn min_acts_to_alert(&self) -> u64 {
        self.engine.min_acts_to_alert()
    }

    /// Activates an event-free run of rows back-to-back: `rows[i]` issues
    /// at `start + i·tRC`, with the chunk-prefetch scheme of the batched
    /// performance pipeline overlapping the counter/ledger cache misses of
    /// upcoming rows with the current activation's work. The caller
    /// guarantees the bank is ready at `start` and that no REF, ALERT, or
    /// episode boundary falls inside the run — exactly what the security
    /// simulator's event-horizon computation establishes.
    ///
    /// # Panics
    ///
    /// Panics if a row is outside the bank or the bank is not ready at
    /// `start` (the caller's horizon contract was violated).
    pub fn activate_run(&mut self, rows: &[RowId], start: Nanos, t_rc: Nanos) {
        let mut last_hint: Option<RowId> = None;
        let mut t = start;
        for (i, &row) in rows.iter().enumerate() {
            // Consecutive duplicates (hammer runs revisiting one row) are
            // skipped — their lines are already inbound.
            if let Some(&ahead) = rows.get(i + PREFETCH_DISTANCE) {
                if last_hint != Some(ahead) {
                    self.prefetch_activate(ahead);
                }
                last_hint = Some(ahead);
            }
            self.activate(row, t)
                .expect("event-free run respects bank timing");
            t += t_rc;
        }
    }

    /// Hints the cache to load the row-indexed state a future
    /// [`activate`](Self::activate) of `row` will touch — the PRAC
    /// counter and the ledger's victim/epoch cells. The batched issue
    /// pipeline calls this a few requests ahead so the (otherwise
    /// serialized) cache misses of consecutive activations overlap.
    /// Purely a hint: no simulation state changes.
    #[inline]
    pub fn prefetch_activate(&self, row: RowId) {
        self.bank.prefetch_counter(row);
        self.ledger.prefetch(row);
    }

    /// Performs one REF at `now`: refreshes the due group, runs the
    /// engine's refresh hook and counter resets, and spends the REF-time
    /// mitigation budget.
    pub fn perform_ref(&mut self, now: Nanos) {
        let group = self.refresh.perform(now);
        // Engine snapshot hook runs before any counter reset (§4.3).
        let (engine, bank) = (&mut self.engine, &self.bank);
        engine.on_refresh_group(group.rows.clone(), &mut |r: RowId| bank.counter(r));
        if self.engine.resets_counters_on_refresh() {
            self.bank.reset_counters_in(group.rows.clone());
        }
        self.ledger.on_refresh_rows(group.rows.clone());
        self.stats.refs += 1;

        match self.engine.ref_mitigation_mode() {
            RefMitigationMode::Gradual => {
                let slots = self.budget.on_ref();
                for _ in 0..slots {
                    self.mitigation_slot();
                }
            }
            RefMitigationMode::DrainAll => {
                // Appendix B: a REF can fully mitigate up to two aggressors.
                for _ in 0..2 {
                    if let Some(row) = self.engine.select_ref_mitigation() {
                        self.complete_mitigation(row);
                        self.stats.proactive_mitigations += 1;
                    }
                }
            }
        }
    }

    /// One RFM opportunity during an ALERT: the engine picks a row and it
    /// is mitigated in full (an RFM is worth five row refreshes, §2.6).
    pub fn rfm_mitigate(&mut self) {
        if let Some(row) = self.engine.select_alert_mitigation() {
            self.complete_mitigation(row);
            self.stats.reactive_mitigations += 1;
        }
    }

    /// Runs the engine's
    /// [`integrity_check`](MitigationEngine::integrity_check) against its
    /// parity/ECC shadow. A no-op report (`guarded == false`) when the
    /// engine's guard is disarmed.
    #[inline]
    pub fn integrity_check(&mut self) -> IntegrityReport {
        self.engine.integrity_check()
    }

    /// Scrubs the engine's tracker against the authoritative in-array
    /// counters (see [`MitigationEngine::scrub_resync`]), returning the
    /// number of corrected slots. Zero when the engine's guard is
    /// disarmed.
    pub fn scrub_resync(&mut self) -> u32 {
        let (engine, bank) = (&mut self.engine, &self.bank);
        engine.scrub_resync(&mut |r: RowId| bank.counter(r))
    }

    /// Forces a full, immediate mitigation of `row` — the integrity
    /// guard's conservative fallback for a row whose tracked count is
    /// untrusted: victims refreshed, counter reset to a trusted zero,
    /// engine notified. Counted as a proactive mitigation (it spends
    /// defense-side work, not attacker time).
    pub fn force_mitigate(&mut self, row: RowId) {
        self.complete_mitigation(row);
        self.stats.proactive_mitigations += 1;
    }

    /// Spends one gradual mitigation slot: starts a new in-flight
    /// aggressor if none, and applies the full mitigation when the last
    /// slot completes (see [`InflightMitigation`]).
    fn mitigation_slot(&mut self) {
        if self.inflight.is_none() {
            let Some(row) = self.engine.select_ref_mitigation() else {
                return;
            };
            self.inflight = Some(InflightMitigation {
                row,
                ops_left: self.engine.ops_per_mitigation(),
            });
            // The selection itself is free; fall through to spend this
            // slot on the first op.
        }
        let Some(m) = self.inflight.as_mut() else {
            return;
        };
        m.ops_left = m.ops_left.saturating_sub(1);
        if m.ops_left == 0 {
            let row = m.row;
            self.inflight = None;
            self.complete_mitigation(row);
            self.stats.proactive_mitigations += 1;
        }
    }

    /// Finalizes an instantaneous (RFM or drain-on-REF) mitigation of
    /// `row`: all victims refreshed, counter reset, engine notified.
    fn complete_mitigation(&mut self, row: RowId) {
        self.ledger.on_victim_refresh(row);
        if self.engine.resets_counter_on_mitigation() {
            self.bank.reset_counter(row);
        }
        self.engine.on_mitigation_complete(row);
    }
}

/// A type-erased, read-only snapshot view of a [`BankUnit`].
///
/// Attackers receive this through
/// [`DefenseView`](crate::DefenseView) so the `Attacker` trait stays
/// independent of the engine type the simulator was monomorphized with.
/// The accessors mirror the ones on `BankUnit`, so attacker code written
/// against `view.unit.bank()` etc. works unchanged.
#[derive(Debug, Clone, Copy)]
pub struct BankUnitView<'a> {
    config: &'a DramConfig,
    bank: &'a Bank,
    engine: &'a dyn MitigationEngine,
    ledger: &'a SecurityLedger,
    refresh: &'a RefreshEngine,
    inflight: Option<RowId>,
    stats: BankUnitStats,
}

impl<'a> BankUnitView<'a> {
    /// The DRAM configuration.
    pub fn config(&self) -> &'a DramConfig {
        self.config
    }

    /// The bank (counters, timing state).
    pub fn bank(&self) -> &'a Bank {
        self.bank
    }

    /// The mitigation engine, type-erased (downcast via
    /// [`MitigationEngine::as_any`] for design-specific inspection).
    pub fn engine(&self) -> &'a dyn MitigationEngine {
        self.engine
    }

    /// The ground-truth security ledger.
    pub fn ledger(&self) -> &'a SecurityLedger {
        self.ledger
    }

    /// The refresh engine.
    pub fn refresh(&self) -> &'a RefreshEngine {
        self.refresh
    }

    /// The row currently being mitigated gradually, if any.
    pub fn inflight_row(&self) -> Option<RowId> {
        self.inflight
    }

    /// Accumulated statistics at the time the view was taken.
    pub fn stats(&self) -> BankUnitStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};
    use moat_trackers::{PanopticonConfig, PanopticonEngine};

    fn moat_unit() -> BankUnit {
        let cfg = DramConfig::builder().rows_per_bank(1024).build();
        BankUnit::new(
            &cfg,
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
            SlotBudget::paper_default(),
        )
    }

    fn hammer<E: MitigationEngine>(unit: &mut BankUnit<E>, row: u32, times: u32, now: &mut Nanos) {
        for _ in 0..times {
            unit.activate(RowId::new(row), *now).unwrap();
            *now += unit.config().timing.t_rc;
        }
    }

    #[test]
    fn activation_flows_through_all_layers() {
        let mut u = moat_unit();
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 40, &mut now);
        assert_eq!(u.bank().counter(RowId::new(10)).get(), 40);
        assert_eq!(u.ledger().pressure(RowId::new(11)), 40);
        assert_eq!(u.stats().acts, 40);
        // 40 ≥ ETH(32): tracked by the engine.
        assert!(!u.alert_pending());
        hammer(&mut u, 10, 25, &mut now);
        assert!(u.alert_pending(), "65 > ATH(64)");
    }

    #[test]
    fn gradual_mitigation_takes_five_refs_for_moat() {
        let mut u = moat_unit();
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 40, &mut now);
        // 5 REFs at 1 slot each: 4 victims + counter reset.
        for i in 0..5u64 {
            now += u.config().timing.t_refi;
            u.perform_ref(now);
            assert_eq!(
                u.stats().proactive_mitigations,
                u64::from(i == 4),
                "completes exactly at the fifth REF"
            );
        }
        assert_eq!(u.bank().counter(RowId::new(10)).get(), 0, "counter reset");
        assert_eq!(u.ledger().pressure(RowId::new(11)), 0, "victims refreshed");
    }

    #[test]
    fn rfm_mitigates_in_full_immediately() {
        let mut u = moat_unit();
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 70, &mut now);
        assert!(u.alert_pending());
        u.rfm_mitigate();
        assert!(!u.alert_pending());
        assert_eq!(u.stats().reactive_mitigations, 1);
        assert_eq!(u.bank().counter(RowId::new(10)).get(), 0);
        assert_eq!(u.ledger().pressure(RowId::new(11)), 0);
    }

    #[test]
    fn panopticon_mitigation_takes_four_refs() {
        let cfg = DramConfig::builder().rows_per_bank(1024).build();
        let mut u = BankUnit::new(
            &cfg,
            Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
            SlotBudget::paper_default(),
        );
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 128, &mut now);
        for i in 0..4u64 {
            now += cfg.timing.t_refi;
            u.perform_ref(now);
            assert_eq!(u.stats().proactive_mitigations, u64::from(i == 3));
        }
        // Panopticon does not reset the counter on mitigation.
        assert_eq!(u.bank().counter(RowId::new(10)).get(), 128);
        assert_eq!(u.ledger().pressure(RowId::new(11)), 0);
    }

    #[test]
    fn refresh_resets_counters_for_moat_only() {
        let cfg = DramConfig::builder().rows_per_bank(1024).build();
        let mut moat = BankUnit::new(
            &cfg,
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
            SlotBudget::paper_default(),
        );
        let mut pano = BankUnit::new(
            &cfg,
            Box::new(PanopticonEngine::new(PanopticonConfig::paper_default())),
            SlotBudget::paper_default(),
        );
        let mut now = Nanos::ZERO;
        hammer(&mut moat, 3, 10, &mut now);
        let mut now2 = Nanos::ZERO;
        hammer(&mut pano, 3, 10, &mut now2);
        // First REF refreshes group 0 (rows 0..8), containing row 3.
        moat.perform_ref(cfg.timing.t_refi);
        pano.perform_ref(cfg.timing.t_refi);
        assert_eq!(moat.bank().counter(RowId::new(3)).get(), 0);
        assert_eq!(pano.bank().counter(RowId::new(3)).get(), 10);
    }

    #[test]
    fn disabled_budget_never_mitigates_proactively() {
        let cfg = DramConfig::builder().rows_per_bank(1024).build();
        let mut u = BankUnit::new(
            &cfg,
            Box::new(MoatEngine::new(MoatConfig::paper_default())),
            SlotBudget::disabled(),
        );
        let mut now = Nanos::ZERO;
        hammer(&mut u, 10, 40, &mut now);
        for _ in 0..20 {
            now += cfg.timing.t_refi;
            u.perform_ref(now);
        }
        assert_eq!(u.stats().proactive_mitigations, 0);
    }
}
