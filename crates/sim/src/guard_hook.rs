//! The integrity-guard hook the security simulator threads through its
//! three execution modes — the recovery-side twin of
//! [`FaultHook`](crate::FaultHook).
//!
//! Where a [`FaultHook`](crate::FaultHook) *corrupts* the engine at
//! event-horizon boundaries, a [`GuardHook`] *inspects and repairs* it:
//! at each boundary it may run the engine's
//! [`integrity_check`](moat_dram::MitigationEngine::integrity_check),
//! force conservative mitigations for untrusted rows, and periodically
//! [`scrub_resync`](moat_dram::MitigationEngine::scrub_resync) the
//! tracker against the authoritative in-array counters (see the
//! `moat-guard` crate for the concrete policy).
//!
//! The hook follows the same *compile-time* switch discipline:
//! [`GuardHook::ARMED`] is an associated `const`, every call site in the
//! simulator is guarded by `if G::ARMED`, and the default [`NoGuard`]
//! hook (`ARMED = false`) constant-folds every guard branch away — the
//! public `run`/`run_batched`/`run_semi_scripted` entry points (and the
//! `_with_faults` variants) delegate through `NoGuard` and are unchanged
//! in behaviour and cost.
//!
//! Ordering contract: the simulator calls the guard **after** the fault
//! hook at each boundary (inject → detect/repair → promise). Corruption
//! injected at a boundary is therefore visible to the guard before the
//! engine's [`min_acts_to_alert`](moat_dram::MitigationEngine::min_acts_to_alert)
//! promise for that boundary is computed — which is what lets an armed
//! guard with the conservative fallback close every SEU-induced unsound
//! horizon.

use moat_dram::{MitigationEngine, Nanos};

use crate::unit::BankUnit;

/// A recovery policy consulted once per event-horizon boundary.
///
/// Unlike [`FaultHook`](crate::FaultHook), the hook receives the whole
/// [`BankUnit`] — detection lives in the engine, but repair needs the
/// bank too: the conservative fallback issues forced mitigations
/// ([`BankUnit::force_mitigate`]) and the scrub reads the authoritative
/// in-array counters ([`BankUnit::scrub_resync`]). The method is generic
/// over the engine type (the hook is monomorphized into the simulation
/// loop, never boxed), so `GuardHook` is not object-safe — by design.
///
/// Repair decisions must be deterministic functions of the hook's own
/// state and the observed reports — never of wall-clock time — so a
/// guarded run replays bit-identically.
pub trait GuardHook {
    /// Whether this hook does anything at all. `false` removes every
    /// guard branch from the monomorphized simulation loops.
    const ARMED: bool;

    /// An event-horizon boundary at `now`, observed immediately after
    /// the fault hook's injection point; the hook may check, repair, and
    /// scrub the unit.
    fn at_boundary<E: MitigationEngine>(&mut self, _now: Nanos, _unit: &mut BankUnit<E>) {}
}

/// The disarmed hook: checks nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGuard;

impl GuardHook for NoGuard {
    const ARMED: bool = false;
}
