//! Physical-address front-end: adapts address-based access streams into
//! the bank/row requests the performance simulator consumes, through the
//! CoffeeLake-style XOR mapping of Table 3.
//!
//! This is the layer an attacker must invert to colocate aggressor rows in
//! one bank (as real Rowhammer exploits do), and the layer a downstream
//! user plugs real address traces into.

use moat_dram::{AddressMapping, DramAddress, Nanos, RowId};

use crate::perf::{Request, RequestStream};

/// One memory access by physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressAccess {
    /// Gap from the previous access's intent time.
    pub gap: Nanos,
    /// Physical address.
    pub addr: u64,
}

/// Adapts an [`AddressAccess`] stream to bank/row [`Request`]s for one
/// sub-channel, dropping accesses that map elsewhere.
///
/// # Examples
///
/// ```
/// use moat_dram::{AddressMapping, DramConfig, Nanos};
/// use moat_sim::{AddressAccess, AddressStream, RequestStream};
///
/// let map = AddressMapping::new(&DramConfig::paper_baseline());
/// let accesses = vec![AddressAccess { gap: Nanos::new(52), addr: 0x1234_0000 }];
/// let mut stream = AddressStream::new(map, 0, accesses.into_iter());
/// let req = stream.next_request();
/// assert!(req.is_some() || req.is_none()); // depends on the subchannel bit
/// ```
#[derive(Debug)]
pub struct AddressStream<I> {
    mapping: AddressMapping,
    subchannel: u16,
    inner: I,
    /// Gap carried over from accesses filtered out (other sub-channel).
    carried_gap: Nanos,
}

impl<I: Iterator<Item = AddressAccess>> AddressStream<I> {
    /// Creates the adapter for the given `subchannel`.
    pub fn new(mapping: AddressMapping, subchannel: u16, inner: I) -> Self {
        AddressStream {
            mapping,
            subchannel,
            inner,
            carried_gap: Nanos::ZERO,
        }
    }
}

impl<I: Iterator<Item = AddressAccess>> RequestStream for AddressStream<I> {
    fn next_request(&mut self) -> Option<Request> {
        loop {
            let access = self.inner.next()?;
            let gap = self.carried_gap + access.gap;
            let coord = self.mapping.decode(access.addr);
            if coord.subchannel != self.subchannel {
                // Time still passes for accesses we do not simulate.
                self.carried_gap = gap;
                continue;
            }
            self.carried_gap = Nanos::ZERO;
            return Some(Request {
                gap,
                bank: coord.bank,
                row: coord.row,
            });
        }
    }
}

/// Computes the physical addresses that hammer `row` of a given bank and
/// sub-channel — the mapping inversion an attacker performs to colocate
/// aggressors (one address per activation; any column works under the
/// closed-page policy).
pub fn hammer_address(
    mapping: &AddressMapping,
    subchannel: u16,
    bank: moat_dram::BankId,
    row: RowId,
) -> u64 {
    mapping.encode(DramAddress {
        subchannel,
        bank,
        row,
        column: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_dram::{BankId, DramConfig};

    fn mapping() -> AddressMapping {
        AddressMapping::new(&DramConfig::paper_baseline())
    }

    #[test]
    fn hammer_address_round_trips() {
        let m = mapping();
        let addr = hammer_address(&m, 1, BankId::new(13), RowId::new(0xABCD));
        let coord = m.decode(addr);
        assert_eq!(coord.subchannel, 1);
        assert_eq!(coord.bank, BankId::new(13));
        assert_eq!(coord.row, RowId::new(0xABCD));
    }

    #[test]
    fn stream_filters_other_subchannel_and_carries_gaps() {
        let m = mapping();
        let target = hammer_address(&m, 0, BankId::new(2), RowId::new(77));
        let other = hammer_address(&m, 1, BankId::new(2), RowId::new(77));
        let accesses = vec![
            AddressAccess {
                gap: Nanos::new(10),
                addr: other,
            },
            AddressAccess {
                gap: Nanos::new(20),
                addr: target,
            },
            AddressAccess {
                gap: Nanos::new(5),
                addr: target,
            },
        ];
        let mut s = AddressStream::new(m, 0, accesses.into_iter());
        let r1 = s.next_request().unwrap();
        // The filtered access's gap is carried into the next request.
        assert_eq!(r1.gap, Nanos::new(30));
        assert_eq!(r1.bank, BankId::new(2));
        assert_eq!(r1.row, RowId::new(77));
        let r2 = s.next_request().unwrap();
        assert_eq!(r2.gap, Nanos::new(5));
        assert!(s.next_request().is_none());
    }

    #[test]
    fn same_bank_rows_differ_in_raw_bank_bits() {
        // The XOR hash means hammering rows r and r+1 of the SAME bank
        // requires different raw bank bits in the address.
        let m = mapping();
        let a = hammer_address(&m, 0, BankId::new(5), RowId::new(100));
        let b = hammer_address(&m, 0, BankId::new(5), RowId::new(101));
        assert_ne!(a, b);
        assert_eq!(m.decode(a).bank, m.decode(b).bank);
    }
}
