//! # moat-sim — security and performance simulators
//!
//! Two simulators drive every experiment in the reproduction:
//!
//! * [`SecuritySim`] — a single bank under attack by an adaptive
//!   [`Attacker`] with full defense visibility (threat model §2.1). Used
//!   for Jailbreak (Fig. 5), Ratchet (Fig. 10/15), the reset-policy study
//!   (Fig. 7), and the refresh-postponement attack (Fig. 16).
//! * [`PerfSim`] — a DDR5 sub-channel of banks fed by a request stream,
//!   measuring completion time, ALERT rates, and mitigation counts. Used
//!   for Fig. 11, Tables 5–7, Fig. 17, and the performance attacks of §7.
//!
//! Both are assembled from [`BankUnit`]s: a bank + mitigation engine +
//! refresh engine + ground-truth security ledger.
//!
//! ```
//! use moat_core::{MoatConfig, MoatEngine};
//! use moat_dram::Nanos;
//! use moat_sim::{hammer_attacker, SecurityConfig, SecuritySim};
//!
//! let mut sim = SecuritySim::new(
//!     SecurityConfig::paper_default(),
//!     Box::new(MoatEngine::new(MoatConfig::paper_default())),
//! );
//! let report = sim.run(&mut hammer_attacker(7), Nanos::from_millis(1));
//! assert!(report.max_pressure <= 99); // MOAT's tolerated threshold
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod fault_hook;
mod faw;
mod frontend;
mod guard_hook;
mod perf;
mod security;
mod unit;

pub use budget::SlotBudget;
pub use fault_hook::{FaultHook, NoFaults};
// The telemetry seam lives in `moat-telemetry` (it needs nothing from
// the simulators); re-exported here so the hook stack — fault, guard,
// telemetry — is importable from one place.
pub use faw::FawTracker;
pub use frontend::{hammer_address, AddressAccess, AddressStream};
pub use guard_hook::{GuardHook, NoGuard};
pub use moat_telemetry::{NoTelemetry, SimEvent, SimPhase, TelemetryHook};
pub use perf::{PerfConfig, PerfReport, PerfSim, Request, RequestStream, DEFAULT_CHUNK};
pub use security::{
    hammer_attacker, round_robin_attacker, AttackStep, Attacker, DefenseView, HammerAttacker,
    RoundRobinAttacker, RunGrant, Scripted, ScriptedAttacker, SecurityConfig, SecurityReport,
    SecuritySim, SemiRun, SemiScriptedAttacker, SemiStepped,
};
pub use unit::{BankUnit, BankUnitStats, BankUnitView};
