//! Rational slot budgeting for REF-time mitigation.
//!
//! The paper's default mitigation rate is one victim-row refresh per REF
//! (§2.2); Table 6 sweeps the rate from one aggressor per tREFI (five
//! victim-ops per REF for MOAT) down to one per 10 tREFI (half a victim-op
//! per REF). A rational accumulator keeps fractional rates exact.

/// An exact rational per-REF budget of mitigation slots.
///
/// # Examples
///
/// ```
/// use moat_sim::SlotBudget;
///
/// // Half a slot per REF: a slot fires every second REF.
/// let mut b = SlotBudget::new(1, 2);
/// assert_eq!(b.on_ref(), 0);
/// assert_eq!(b.on_ref(), 1);
/// assert_eq!(b.on_ref(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBudget {
    num: u32,
    den: u32,
    acc: u32,
}

impl SlotBudget {
    /// Creates a budget of `num / den` slots per REF.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(den > 0, "denominator must be non-zero");
        SlotBudget { num, den, acc: 0 }
    }

    /// A budget of zero slots (mitigation disabled; "none" row of Table 6).
    pub const fn disabled() -> Self {
        SlotBudget {
            num: 0,
            den: 1,
            acc: 0,
        }
    }

    /// The paper's default: one victim-op slot per REF.
    pub const fn paper_default() -> Self {
        SlotBudget {
            num: 1,
            den: 1,
            acc: 0,
        }
    }

    /// The budget that mitigates one aggressor (costing `ops` REF slots)
    /// every `trefi` REF intervals — the parameterization of Table 6.
    pub fn per_aggressor(ops: u32, trefi: u32) -> Self {
        Self::new(ops, trefi.max(1))
    }

    /// Whether the budget is zero.
    pub fn is_disabled(&self) -> bool {
        self.num == 0
    }

    /// Accrues one REF worth of budget and returns the number of whole
    /// slots now available.
    pub fn on_ref(&mut self) -> u32 {
        self.acc += self.num;
        let slots = self.acc / self.den;
        self.acc %= self.den;
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_one_per_ref() {
        let mut b = SlotBudget::paper_default();
        for _ in 0..5 {
            assert_eq!(b.on_ref(), 1);
        }
    }

    #[test]
    fn five_per_ref_for_one_aggressor_per_trefi() {
        // MOAT (5 ops) at one aggressor per tREFI.
        let mut b = SlotBudget::per_aggressor(5, 1);
        assert_eq!(b.on_ref(), 5);
    }

    #[test]
    fn fractional_rates_average_exactly() {
        // One aggressor (5 ops) per 3 tREFI = 5/3 slots per REF.
        let mut b = SlotBudget::per_aggressor(5, 3);
        let total: u32 = (0..30).map(|_| b.on_ref()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn disabled_yields_nothing() {
        let mut b = SlotBudget::disabled();
        assert!(b.is_disabled());
        for _ in 0..10 {
            assert_eq!(b.on_ref(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        let _ = SlotBudget::new(1, 0);
    }
}
