//! The fault-injection hook the security simulator threads through its
//! three execution modes.
//!
//! Real in-DRAM trackers are SRAM subject to single-event upsets, and the
//! ALERT/RFM signalling can glitch; the [`FaultHook`] trait lets a plan
//! (see the `moat-faults` crate) corrupt the engine at event-horizon
//! boundaries, drop RFMs, and lose ALERT assertions — while measuring
//! when the engine's promised
//! [`min_acts_to_alert`](moat_dram::MitigationEngine::min_acts_to_alert)
//! horizon goes unsound.
//!
//! The hook is a *compile-time* switch: [`FaultHook::ARMED`] is an
//! associated `const`, and every injection site in the simulator is
//! guarded by `if F::ARMED`. Monomorphized with the default [`NoFaults`]
//! hook (`ARMED = false`), all fault branches constant-fold away and the
//! batched hot paths compile to exactly the fault-free code — the public
//! `run`/`run_batched`/`run_semi_scripted` entry points delegate through
//! `NoFaults` and are unchanged in behaviour and cost.

use moat_dram::{MitigationEngine, Nanos};

/// A source of injected faults for one security simulation.
///
/// The simulator consults the hook at well-defined points:
///
/// * [`at_boundary`](Self::at_boundary) — once per event-horizon
///   boundary (each iteration of a batched loop; each ACT slot of the
///   per-step reference), *before* the defense priority match. This is
///   where SEU bit-flips land, via
///   [`MitigationEngine::apply_fault`].
/// * [`drop_rfm`](Self::drop_rfm) — once per RFM about to issue inside
///   an ALERT episode; returning `true` spends the RFM's time without
///   performing its mitigation.
/// * [`lose_alert`](Self::lose_alert) — once per ALERT assertion about
///   to fire; returning `true` silently clears the engine's request
///   latch (via [`moat_dram::EngineFault::LoseAlert`]) instead of
///   asserting, so the episode never starts.
/// * [`on_unsound_horizon`](Self::on_unsound_horizon) — reported when an
///   armed batched run observes `alert_pending` flip strictly inside an
///   engine-guaranteed grant: the fault corrupted state out from under
///   the horizon invariant, and the attacker got `promised - done` free
///   ACTs the fault-free design would have stalled.
///
/// Injection decisions must be deterministic functions of the hook's own
/// state (seeded PRNG, counters) — never of wall-clock time — so a
/// faulted run replays bit-identically from its seed.
pub trait FaultHook {
    /// Whether this hook can inject anything at all. `false` removes
    /// every fault branch from the monomorphized simulation loops.
    const ARMED: bool;

    /// An event-horizon boundary at `now`; the hook may corrupt the
    /// engine through [`MitigationEngine::apply_fault`].
    fn at_boundary(&mut self, _now: Nanos, _engine: &mut dyn MitigationEngine) {}

    /// Whether the RFM about to issue at `now` is dropped (its time
    /// passes, its mitigation is lost).
    fn drop_rfm(&mut self, _now: Nanos) -> bool {
        false
    }

    /// Whether the ALERT assertion about to fire at `now` is lost.
    fn lose_alert(&mut self, _now: Nanos) -> bool {
        false
    }

    /// A promised horizon of `promised` event-free ACTs proved unsound:
    /// `alert_pending` flipped after only `done < promised` of them.
    fn on_unsound_horizon(&mut self, _now: Nanos, _promised: u64, _done: u64) {}
}

/// The disarmed hook: injects nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    const ARMED: bool = false;
}
