//! The sub-channel performance simulator (§6, §7).
//!
//! A DDR5 sub-channel of banks executes a stream of activation requests
//! under the full REF + ABO timing. ALERT stalls the entire sub-channel
//! (180 ns of permitted activity, then `L` × 350 ns of RFM), exactly like
//! the paper's model, so the performance effects of MOAT's design
//! parameters (ATH, ETH, level, mitigation rate) fall out of the same
//! machinery the security simulator uses.
//!
//! Slowdown is measured by running the identical request stream with
//! ALERTs enabled and disabled and comparing completion times — the
//! paper's "normalized to a system that does not incur any ALERTs".

use moat_dram::{
    AboLevel, AboPhase, AboProtocol, BankId, DramConfig, MitigationEngine, Nanos, RowId,
};

use moat_telemetry::{NoTelemetry, SimEvent, SimPhase, TelemetryHook};

use crate::budget::SlotBudget;
use crate::unit::{BankUnit, PREFETCH_DISTANCE};

/// One activation request: issue `gap` after the previous request's
/// intended issue point, to `bank`/`row`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Inter-arrival gap from the previous request's intent time.
    pub gap: Nanos,
    /// Target bank.
    pub bank: BankId,
    /// Target row.
    pub row: RowId,
}

/// Default number of requests per batch of the chunked front-end (the
/// chunk-size knob; see [`PerfSim::set_chunk_size`]).
///
/// Large enough to amortize the per-chunk bookkeeping and give the issue
/// loop a deep prefetch window, small enough that a chunk of `Request`s
/// (12 bytes each) stays within L1.
pub const DEFAULT_CHUNK: usize = 1024;

/// A source of requests (workload generators implement this).
pub trait RequestStream {
    /// The next request, or `None` when the workload is complete.
    fn next_request(&mut self) -> Option<Request>;

    /// Refills `buf` with the next batch of requests and returns how many
    /// were written; `0` means the stream is exhausted.
    ///
    /// `buf` is cleared and filled up to its *capacity* — the caller
    /// chooses the chunk size by pre-reserving (an unallocated buffer
    /// gets [`DEFAULT_CHUNK`]) and reuses the same buffer across calls,
    /// so a steady-state simulation allocates nothing per batch.
    ///
    /// The concatenation of all chunks is exactly the sequence repeated
    /// [`next_request`](Self::next_request) calls would produce, for any
    /// buffer capacity. Implementations override the default only to
    /// amortize per-request overhead (hoisting RNG state, heap handles,
    /// or dispatch out of the per-request path) — never to change the
    /// sequence.
    fn next_chunk(&mut self, buf: &mut Vec<Request>) -> usize {
        buf.clear();
        if buf.capacity() == 0 {
            buf.reserve(DEFAULT_CHUNK);
        }
        while buf.len() < buf.capacity() {
            match self.next_request() {
                Some(r) => buf.push(r),
                None => break,
            }
        }
        buf.len()
    }
}

impl<I: Iterator<Item = Request>> RequestStream for I {
    fn next_request(&mut self) -> Option<Request> {
        self.next()
    }
}

/// Configuration of a performance simulation.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// Number of banks simulated in the sub-channel (32 at paper scale;
    /// experiments may scale down and extrapolate).
    pub banks: u16,
    /// ABO mitigation level.
    pub abo_level: AboLevel,
    /// REF-time mitigation budget per bank.
    pub budget: SlotBudget,
    /// Whether ALERT assertion is honoured (disable for the baseline).
    pub alerts_enabled: bool,
}

impl PerfConfig {
    /// Paper-scale defaults: 32 banks, level 1, one victim-op per REF.
    pub fn paper_default() -> Self {
        PerfConfig {
            dram: DramConfig::paper_baseline(),
            banks: 32,
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: true,
        }
    }

    /// Sets the number of banks.
    #[must_use]
    pub fn banks(mut self, banks: u16) -> Self {
        self.banks = banks;
        self
    }

    /// Enables or disables ALERT.
    #[must_use]
    pub fn alerts(mut self, enabled: bool) -> Self {
        self.alerts_enabled = enabled;
        self
    }
}

/// Outcome of a performance simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Time at which the last request completed.
    pub completion_time: Nanos,
    /// Requests executed.
    pub total_acts: u64,
    /// ALERTs asserted on the sub-channel.
    pub alerts: u64,
    /// RFMs issued.
    pub rfms: u64,
    /// REF commands performed on the sub-channel.
    ///
    /// REF is an *all-bank* command: every [`BankUnit`] performs the same
    /// REFs at the same instants and therefore carries an identical
    /// per-unit `refs` counter. This field is that shared per-bank count
    /// — **not** a sum over banks, unlike `total_acts` and the mitigation
    /// counters, which genuinely differ per bank and are summed.
    pub refs: u64,
    /// Aggressor mitigations completed during REF, summed over banks.
    pub proactive_mitigations: u64,
    /// Aggressor mitigations completed during RFM, summed over banks.
    pub reactive_mitigations: u64,
    /// ALERTs per tREFI interval (the Fig. 11b metric).
    pub alerts_per_trefi: f64,
    /// Mitigations + ALERT mitigations per bank per tREFW (Table 5).
    pub mitigations_per_bank_per_trefw: f64,
    /// Highest hammer pressure observed on any row of any bank.
    pub max_pressure: u32,
    /// Highest per-aggressor epoch observed (the paper's §2.1 metric).
    pub max_epoch: u32,
}

impl PerfReport {
    /// Slowdown of `self` relative to a baseline run of the same stream:
    /// `completion_time / baseline.completion_time − 1`.
    pub fn slowdown_vs(&self, baseline: &PerfReport) -> f64 {
        self.completion_time.as_u64() as f64 / baseline.completion_time.as_u64() as f64 - 1.0
    }
}

/// The sub-channel performance simulator.
///
/// `PerfSim` is generic over the mitigation-engine type. Instantiating it
/// with a concrete engine (`PerfSim<MoatEngine>`, as the experiment
/// harness does) monomorphizes the per-ACT loop — the engine's precharge
/// hook inlines straight into [`run`](Self::run). The default parameter
/// `Box<dyn MitigationEngine>` keeps the original dynamic-dispatch form
/// available for heterogeneous-engine sweeps; both forms produce
/// bit-identical reports on the same stream.
///
/// # Examples
///
/// ```
/// use moat_core::{MoatConfig, MoatEngine};
/// use moat_dram::{BankId, Nanos, RowId};
/// use moat_sim::{PerfConfig, PerfSim, Request};
///
/// let cfg = PerfConfig::paper_default().banks(2);
/// // Monomorphized over MoatEngine — the fast path:
/// let mut sim = PerfSim::new(cfg, || MoatEngine::new(MoatConfig::paper_default()));
/// let stream = (0..1000u32).map(|i| Request {
///     gap: Nanos::new(60),
///     bank: BankId::new((i % 2) as u16),
///     row: RowId::new(i % 64),
/// });
/// let report = sim.run(stream);
/// assert_eq!(report.total_acts, 1000);
/// ```
#[derive(Debug)]
pub struct PerfSim<E: MitigationEngine = Box<dyn MitigationEngine>> {
    config: PerfConfig,
    units: Vec<BankUnit<E>>,
    abo: AboProtocol,
    /// Sub-channel unavailable before this time (REF / RFM stall).
    stall_until: Nanos,
    last_end: Nanos,
    /// Number of banks whose engine currently requests an ALERT,
    /// maintained incrementally so the per-ACT loop never rescans all
    /// banks.
    pending_alerts: usize,
    /// Requests fetched per batch by [`run`](Self::run).
    chunk_size: usize,
}

/// Issue-loop state that persists across request chunks: the closed-loop
/// arrival clock plus the pre-resolved next-REF deadline (which only
/// moves when a REF is performed).
#[derive(Debug, Clone, Copy)]
struct IssueState {
    intent: Nanos,
    shift: Nanos,
    ref_due: Nanos,
}

/// Folds the change in a unit's `alert_pending` across `op` into the
/// sub-channel's pending-alert count.
#[inline]
fn track_alert<E: MitigationEngine>(
    unit: &mut BankUnit<E>,
    pending: &mut usize,
    op: impl FnOnce(&mut BankUnit<E>),
) {
    let was = unit.alert_pending();
    op(unit);
    let now = unit.alert_pending();
    if now != was {
        if now {
            *pending += 1;
        } else {
            *pending -= 1;
        }
    }
}

impl<E: MitigationEngine> PerfSim<E> {
    /// Creates a simulator; `engine_factory` builds one engine per bank.
    pub fn new<F>(config: PerfConfig, mut engine_factory: F) -> Self
    where
        F: FnMut() -> E,
    {
        let units = (0..config.banks)
            .map(|_| BankUnit::new(&config.dram, engine_factory(), config.budget))
            .collect();
        PerfSim {
            config,
            units,
            abo: AboProtocol::new(config.abo_level, config.dram.timing),
            stall_until: Nanos::ZERO,
            last_end: Nanos::ZERO,
            pending_alerts: 0,
            chunk_size: DEFAULT_CHUNK,
        }
    }

    /// The simulated bank units.
    pub fn units(&self) -> &[BankUnit<E>] {
        &self.units
    }

    /// Sets the number of requests [`run`](Self::run) fetches per batch
    /// (default [`DEFAULT_CHUNK`]). The chunk size is a pure host-side
    /// performance knob: reports are bit-identical for every value,
    /// including `1`.
    pub fn set_chunk_size(&mut self, requests: usize) {
        self.chunk_size = requests.max(1);
    }

    /// Runs the stream to completion and reports.
    ///
    /// The arrival process is closed-loop: when a request is delayed past
    /// its intended issue time (by a REF, an ALERT stall, or a bank
    /// conflict), every subsequent intent shifts by that delay — the
    /// rate-mode cores slip together when the memory system falls behind.
    /// This is what makes ALERT stalls visible in the completion-time
    /// ratio the paper reports as slowdown.
    ///
    /// Requests are pulled in batches of
    /// [`set_chunk_size`](Self::set_chunk_size) through
    /// [`RequestStream::next_chunk`] into one reusable buffer, and the
    /// issue loop uses the chunk as a lookahead window: the counter and
    /// ledger cache lines of upcoming requests are prefetched while the
    /// current request is scheduled, and the REF/ALERT retry loop is only
    /// entered for requests that actually straddle an episode boundary.
    /// The batching is purely host-side: reports are bit-identical to
    /// [`run_per_request`](Self::run_per_request) on the same stream.
    pub fn run<S: RequestStream>(&mut self, stream: S) -> PerfReport {
        self.run_traced(stream, &mut NoTelemetry)
    }

    /// [`run`](Self::run) with a [`TelemetryHook`] observing the stream
    /// at *chunk granularity*: each chunk is one telemetry boundary, and
    /// the phase attribution is derived from counter deltas across the
    /// chunk (ACTs × tRC → [`SimPhase::EngineUpdate`], REFs × tRFC →
    /// [`SimPhase::Refresh`], RFMs × tRFM → [`SimPhase::EpisodeChurn`],
    /// the unattributed remainder of the chunk's elapsed sim time →
    /// [`SimPhase::Idle`]). [`SimPhase::StreamDecode`] and
    /// [`SimPhase::Prefetch`] carry unit counts only (requests decoded,
    /// prefetch hints issued) — they are host-side work with no
    /// simulated duration. Nothing is sampled inside the per-request
    /// hot path, so the armed run's report stays bit-identical to the
    /// disarmed one and the disarmed ([`NoTelemetry`]) build
    /// constant-folds back to [`run`](Self::run) exactly.
    pub fn run_traced<S: RequestStream, T: TelemetryHook>(
        &mut self,
        mut stream: S,
        tel: &mut T,
    ) -> PerfReport {
        let mut st = IssueState {
            intent: Nanos::ZERO,
            shift: Nanos::ZERO,
            // Hoisted out of the issue loop: the next REF deadline only
            // moves when a REF is performed.
            ref_due: self.units[0].refresh().next_due(),
        };
        let mut chunk: Vec<Request> = Vec::with_capacity(self.chunk_size);
        loop {
            let n = stream.next_chunk(&mut chunk);
            if n == 0 {
                break;
            }
            if T::ARMED {
                let t0 = self.last_end;
                let refs0 = self.units[0].stats().refs;
                let alerts0 = self.abo.alerts();
                let rfms0 = self.abo.rfms();
                let hints = Self::prefetch_hint_count(&chunk, self.units.len());
                self.issue_chunk(&chunk, &mut st);
                tel.on_boundary(self.last_end);

                let timing = self.config.dram.timing;
                let refs_d = self.units[0].stats().refs - refs0;
                let alerts_d = self.abo.alerts() - alerts0;
                let rfms_d = self.abo.rfms() - rfms0;
                let act_ns = timing.t_rc.as_u64() * n as u64;
                let ref_ns = timing.t_rfc.as_u64() * refs_d;
                let rfm_ns = timing.t_rfm.as_u64() * rfms_d;
                let elapsed = self.last_end.as_u64().saturating_sub(t0.as_u64());
                let idle_ns = elapsed.saturating_sub(act_ns + ref_ns + rfm_ns);

                // Attribution spans tile the chunk's elapsed window in a
                // fixed order (engine, refresh, episode, idle) — the sum
                // is exact even though the true interleaving is finer.
                let mut cursor = t0;
                let mut span = |tel: &mut T, phase, ns: u64, units: u64| {
                    let end = Nanos::new(cursor.as_u64() + ns);
                    tel.on_phase(phase, cursor, end, units);
                    cursor = end;
                };
                span(tel, SimPhase::EngineUpdate, act_ns, n as u64);
                span(tel, SimPhase::Refresh, ref_ns, refs_d);
                span(tel, SimPhase::EpisodeChurn, rfm_ns, rfms_d);
                span(tel, SimPhase::Idle, idle_ns, 0);
                tel.on_phase(SimPhase::StreamDecode, t0, t0, n as u64);
                tel.on_phase(SimPhase::Prefetch, t0, t0, hints);
                for _ in 0..refs_d {
                    tel.on_event(self.last_end, SimEvent::Ref);
                }
                for _ in 0..alerts_d {
                    tel.on_event(self.last_end, SimEvent::Alert);
                    tel.on_event(
                        self.last_end,
                        SimEvent::Episode {
                            rfms: u64::from(self.config.abo_level.as_u8()),
                        },
                    );
                }
            } else {
                self.issue_chunk(&chunk, &mut st);
            }
        }
        self.drain_trailing_alert();
        self.report()
    }

    /// The per-request reference implementation of [`run`](Self::run):
    /// one `next_request` pull and one full scheduling pass per request,
    /// no batching, no prefetch. Kept as the semantic baseline the
    /// batched pipeline is regression-tested against (and measured
    /// against in the throughput benchmark).
    pub fn run_per_request<S: RequestStream>(&mut self, mut stream: S) -> PerfReport {
        let mut st = IssueState {
            intent: Nanos::ZERO,
            shift: Nanos::ZERO,
            ref_due: self.units[0].refresh().next_due(),
        };
        while let Some(req) = stream.next_request() {
            self.issue_request(&req, &mut st);
        }
        self.drain_trailing_alert();
        self.report()
    }

    /// Counts the prefetch hints [`issue_chunk`](Self::issue_chunk) will
    /// emit for `chunk` — the same lookahead, duplicate-skip, and
    /// bank-range rules, evaluated without touching the units. Only run
    /// when telemetry is armed; keeps the hint accounting out of the
    /// issue loop.
    fn prefetch_hint_count(chunk: &[Request], n_units: usize) -> u64 {
        let mut last_hint: Option<(BankId, RowId)> = None;
        let mut hints = 0u64;
        for i in 0..chunk.len() {
            if let Some(ahead) = chunk.get(i + PREFETCH_DISTANCE) {
                let hint = (ahead.bank, ahead.row);
                if last_hint != Some(hint) && ahead.bank.as_usize() < n_units {
                    hints += 1;
                }
                last_hint = Some(hint);
            }
        }
        hints
    }

    /// Issues one chunk of requests. The fast path — no REF due, no ALERT
    /// activity window closing — is a straight line; requests that
    /// straddle an episode boundary drop into
    /// [`resolve_straddle`](Self::resolve_straddle).
    fn issue_chunk(&mut self, chunk: &[Request], st: &mut IssueState) {
        let n_units = self.units.len();
        let mut last_hint: Option<(BankId, RowId)> = None;
        for (i, req) in chunk.iter().enumerate() {
            // The chunk is the lookahead window: start loading the
            // row-indexed state of a request several positions ahead so
            // its cache misses overlap with the scheduling work in
            // between. Consecutive duplicates (hammer kernels revisiting
            // one row) are skipped — their lines are already inbound.
            // Out-of-range banks are skipped too; the issue itself still
            // panics on them below.
            if let Some(ahead) = chunk.get(i + PREFETCH_DISTANCE) {
                let hint = (ahead.bank, ahead.row);
                let b = ahead.bank.as_usize();
                if last_hint != Some(hint) && b < n_units {
                    self.units[b].prefetch_activate(ahead.row);
                }
                last_hint = Some(hint);
            }
            self.issue_request(req, st);
        }
    }

    /// Schedules and performs one activation request.
    #[inline]
    fn issue_request(&mut self, req: &Request, st: &mut IssueState) {
        let t_rc = self.config.dram.timing.t_rc;
        st.intent += req.gap;
        let eff_intent = st.intent + st.shift;
        let bank_idx = req.bank.as_usize();
        assert!(bank_idx < self.units.len(), "request to unknown bank");
        let bank_ready = self.units[bank_idx].bank().next_ready();

        let t_cand = eff_intent.max(self.stall_until).max(bank_ready);
        // Pre-resolved episode boundaries: a candidate slot that stays
        // before the next REF deadline (Idle) or finishes inside the
        // ALERT activity window needs no retry.
        let fast = match self.abo.phase() {
            AboPhase::Idle => t_cand < st.ref_due,
            AboPhase::ActWindow { stall_at } => t_cand + t_rc <= stall_at,
            _ => false,
        };
        let t = if fast {
            t_cand
        } else {
            self.resolve_straddle(bank_idx, eff_intent, st)
        };

        track_alert(&mut self.units[bank_idx], &mut self.pending_alerts, |u| {
            u.activate(req.row, t)
                .expect("issue time respects bank timing");
        });
        self.abo.on_act();
        st.shift += t - eff_intent;
        self.last_end = t + t_rc;

        // Assert ALERT at the precharge that crossed the threshold.
        if self.config.alerts_enabled && self.pending_alerts > 0 && self.abo.can_assert() {
            self.abo
                .assert_alert(self.last_end)
                .expect("can_assert checked");
        }
    }

    /// The retry loop for requests that straddle an episode boundary:
    /// performs due REFs and closing ALERT episodes until a clean issue
    /// slot exists, and returns it. Cold by construction — benign streams
    /// enter it roughly once per tREFI.
    #[cold]
    fn resolve_straddle(
        &mut self,
        bank_idx: usize,
        eff_intent: Nanos,
        st: &mut IssueState,
    ) -> Nanos {
        let t_rc = self.config.dram.timing.t_rc;
        let mut bank_ready = self.units[bank_idx].bank().next_ready();
        loop {
            let t_cand = eff_intent.max(self.stall_until).max(bank_ready);

            // All-bank REF when due (and no ALERT episode in flight).
            if matches!(self.abo.phase(), AboPhase::Idle) && st.ref_due <= t_cand {
                self.do_ref(st.ref_due.max(self.stall_until));
                st.ref_due = self.units[0].refresh().next_due();
                bank_ready = self.units[bank_idx].bank().next_ready();
                continue;
            }

            // If the ALERT activity window closes before this request
            // could finish, the RFMs run first.
            if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
                if t_cand + t_rc > stall_at {
                    self.do_rfms(stall_at);
                    bank_ready = self.units[bank_idx].bank().next_ready();
                    continue;
                }
            }
            break t_cand;
        }
    }

    /// Drains a trailing ALERT episode after the stream ends.
    fn drain_trailing_alert(&mut self) {
        if let AboPhase::ActWindow { stall_at } = self.abo.phase() {
            self.do_rfms(stall_at);
            self.last_end = self.last_end.max(self.stall_until);
        }
    }

    fn do_ref(&mut self, start: Nanos) {
        for u in &mut self.units {
            track_alert(u, &mut self.pending_alerts, |u| u.perform_ref(start));
        }
        let end = start + self.config.dram.timing.t_rfc;
        self.stall_until = self.stall_until.max(end);
        for u in &mut self.units {
            u.bank_mut().occupy_until(end);
        }
    }

    fn do_rfms(&mut self, stall_at: Nanos) {
        // The whole RFM phase is one arithmetic step against the
        // pre-resolved episode schedule instead of per-RFM protocol
        // round-trips; completion time and state are identical.
        let start = stall_at.max(self.stall_until);
        let t = self.abo.complete_episode(start).expect("rfm sequencing");
        for _ in 0..self.config.abo_level.as_u8() {
            // Each RFM mitigates one row from every bank (§7.2).
            for u in &mut self.units {
                track_alert(u, &mut self.pending_alerts, BankUnit::rfm_mitigate);
            }
        }
        self.stall_until = self.stall_until.max(t);
        for u in &mut self.units {
            u.bank_mut().occupy_until(t);
        }
    }

    /// The report for everything simulated so far.
    pub fn report(&self) -> PerfReport {
        let elapsed = self.last_end.max(Nanos::new(1));
        let t_refi = self.config.dram.timing.t_refi.as_u64() as f64;
        let t_refw = self.config.dram.timing.t_refw.as_u64() as f64;
        let trefi_intervals = (elapsed.as_u64() as f64 / t_refi).max(1.0);
        let trefw_windows = (elapsed.as_u64() as f64 / t_refw).max(1e-12);

        let mut acts = 0;
        let mut refs = 0;
        let mut proactive = 0;
        let mut reactive = 0;
        let mut max_pressure = 0;
        let mut max_epoch = 0;
        for u in &self.units {
            let s = u.stats();
            acts += s.acts;
            // REF is an all-bank command, so every unit's `refs` counter
            // is identical; `max` here selects that shared per-bank count
            // rather than summing it `banks` times over (acts and the
            // mitigation counters, by contrast, differ per bank and are
            // summed). Pinned by the `refs_are_per_bank_not_summed` test.
            debug_assert!(
                refs == 0 || s.refs == refs,
                "all-bank REF invariant violated: {} vs {refs}",
                s.refs
            );
            refs = refs.max(s.refs);
            proactive += s.proactive_mitigations;
            reactive += s.reactive_mitigations;
            max_pressure = max_pressure.max(u.ledger().max_pressure_ever());
            max_epoch = max_epoch.max(u.ledger().max_epoch_ever());
        }
        let banks = self.units.len() as f64;
        PerfReport {
            completion_time: self.last_end,
            total_acts: acts,
            alerts: self.abo.alerts(),
            rfms: self.abo.rfms(),
            refs,
            proactive_mitigations: proactive,
            reactive_mitigations: reactive,
            alerts_per_trefi: self.abo.alerts() as f64 / trefi_intervals,
            mitigations_per_bank_per_trefw: (proactive + reactive) as f64 / banks / trefw_windows,
            max_pressure,
            max_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moat_core::{MoatConfig, MoatEngine};

    fn small_cfg(banks: u16, alerts: bool) -> PerfConfig {
        let dram = DramConfig::builder().rows_per_bank(4096).build();
        PerfConfig {
            dram,
            banks,
            abo_level: AboLevel::L1,
            budget: SlotBudget::paper_default(),
            alerts_enabled: alerts,
        }
    }

    fn moat_factory() -> Box<dyn MitigationEngine> {
        Box::new(MoatEngine::new(MoatConfig::paper_default()))
    }

    fn uniform_stream(n: u32, banks: u16, gap: u64) -> impl Iterator<Item = Request> {
        (0..n).map(move |i| Request {
            gap: Nanos::new(gap),
            bank: BankId::new((i % u32::from(banks)) as u16),
            row: RowId::new((i * 37) % 4096),
        })
    }

    #[test]
    fn completes_all_requests() {
        let mut sim = PerfSim::new(small_cfg(4, true), moat_factory);
        let r = sim.run(uniform_stream(5000, 4, 20));
        assert_eq!(r.total_acts, 5000);
        assert!(r.completion_time > Nanos::ZERO);
    }

    #[test]
    fn benign_uniform_traffic_never_alerts() {
        let mut sim = PerfSim::new(small_cfg(4, true), moat_factory);
        let r = sim.run(uniform_stream(20_000, 4, 30));
        assert_eq!(r.alerts, 0, "uniform traffic stays below ATH");
        assert!(r.refs > 0, "REFs happen during the run");
    }

    #[test]
    fn hammering_stream_alerts_and_slows_down() {
        // All requests to one bank, one row: ALERT every ~65 ACTs.
        let hot = |n: u32| {
            (0..n).map(|_| Request {
                gap: Nanos::new(52),
                bank: BankId::new(0),
                row: RowId::new(9),
            })
        };
        let mut with = PerfSim::new(small_cfg(1, true), moat_factory);
        let with_alerts = with.run(hot(10_000));
        let mut without = PerfSim::new(small_cfg(1, false), moat_factory);
        let baseline = without.run(hot(10_000));
        assert!(with_alerts.alerts > 100);
        let slowdown = with_alerts.slowdown_vs(&baseline);
        // Fig. 13a: single-row hammering loses ~10% throughput.
        assert!(
            (0.02..0.30).contains(&slowdown),
            "slowdown {slowdown} out of range"
        );
        // Security holds while performance degrades.
        assert!(with_alerts.max_pressure < 99);
    }

    #[test]
    fn refs_occur_roughly_every_trefi() {
        let mut sim = PerfSim::new(small_cfg(2, true), moat_factory);
        let r = sim.run(uniform_stream(50_000, 2, 60));
        let expected = r.completion_time.as_u64() / 3900;
        assert!(
            (r.refs as i64 - expected as i64).abs() <= 2,
            "refs {} vs expected {expected}",
            r.refs
        );
    }

    #[test]
    fn disabled_alerts_never_assert() {
        let hot = (0..5000u32).map(|_| Request {
            gap: Nanos::new(52),
            bank: BankId::new(0),
            row: RowId::new(9),
        });
        let mut sim = PerfSim::new(small_cfg(1, false), moat_factory);
        let r = sim.run(hot);
        assert_eq!(r.alerts, 0);
        assert_eq!(r.rfms, 0);
    }

    #[test]
    fn refs_are_per_bank_not_summed() {
        // REF is all-bank: every unit performs the same REFs, and the
        // report exposes that shared per-bank count (while acts are
        // summed across banks). This test pins the intended semantics of
        // the acts-sum / refs-max asymmetry in `report`.
        let mut sim = PerfSim::new(small_cfg(4, true), moat_factory);
        let r = sim.run(uniform_stream(40_000, 4, 60));
        assert!(r.refs > 0);
        for u in sim.units() {
            assert_eq!(
                u.stats().refs,
                r.refs,
                "every bank performs the same all-bank REFs"
            );
        }
        assert_eq!(
            r.total_acts,
            sim.units().iter().map(|u| u.stats().acts).sum::<u64>(),
            "acts genuinely differ per bank and are summed"
        );
    }

    #[test]
    fn batched_run_matches_per_request_run() {
        // The chunked pipeline is a host-side optimization only: for any
        // chunk size (including degenerate ones), the report must be
        // bit-identical to the unbatched reference loop.
        let streams: [&dyn Fn() -> Box<dyn Iterator<Item = Request>>; 2] =
            [&|| Box::new(uniform_stream(30_000, 4, 25)), &|| {
                Box::new((0..20_000u32).map(|_| Request {
                    gap: Nanos::new(52),
                    bank: BankId::new(0),
                    row: RowId::new(9),
                }))
            }];
        for (si, mk) in streams.iter().enumerate() {
            let banks = if si == 0 { 4 } else { 1 };
            let mut reference = PerfSim::new(small_cfg(banks, true), moat_factory);
            let expect = reference.run_per_request(mk());
            for chunk in [1usize, 7, 256, DEFAULT_CHUNK] {
                let mut sim = PerfSim::new(small_cfg(banks, true), moat_factory);
                sim.set_chunk_size(chunk);
                let got = sim.run(mk());
                assert_eq!(got, expect, "stream {si}, chunk {chunk}");
            }
        }
    }

    #[test]
    fn default_next_chunk_respects_capacity_and_order() {
        let mut s = uniform_stream(100, 2, 10);
        let mut buf = Vec::with_capacity(32);
        let mut seen = Vec::new();
        loop {
            // UFCS: on iterator streams the method name would otherwise
            // collide with the unstable `Iterator::next_chunk`.
            let n = RequestStream::next_chunk(&mut s, &mut buf);
            if n == 0 {
                break;
            }
            assert!(n <= buf.capacity());
            seen.extend_from_slice(&buf);
        }
        let all: Vec<Request> = uniform_stream(100, 2, 10).collect();
        assert_eq!(seen, all);
        // An unallocated buffer gets the default chunk capacity.
        let mut empty_buf = Vec::new();
        let mut s2 = uniform_stream(10, 2, 10);
        assert_eq!(RequestStream::next_chunk(&mut s2, &mut empty_buf), 10);
        assert!(empty_buf.capacity() >= DEFAULT_CHUNK);
    }

    #[test]
    #[should_panic(expected = "unknown bank")]
    fn request_to_missing_bank_panics() {
        let mut sim = PerfSim::new(small_cfg(1, true), moat_factory);
        let bad = std::iter::once(Request {
            gap: Nanos::ZERO,
            bank: BankId::new(5),
            row: RowId::new(0),
        });
        let _ = sim.run(bad);
    }
}
