//! tFAW enforcement: the DDR rolling four-activation window.
//!
//! DDR5 permits at most four ACTs to a rank within any tFAW window. The
//! paper invokes this limit only to cap the TSA attack at 17 concurrently
//! staggered banks (§7.3); tFAW is not part of Table 1, so the default
//! simulators do not enforce it (see DESIGN.md §7) and this tracker is
//! provided for users who want rank-level fidelity.

use std::collections::VecDeque;

use moat_dram::Nanos;

/// A rolling-window tracker for the four-activation rule.
///
/// # Examples
///
/// ```
/// use moat_dram::Nanos;
/// use moat_sim::FawTracker;
///
/// let mut faw = FawTracker::new(Nanos::new(708)); // 4-ACT window
/// for i in 0..4 {
///     let t = faw.earliest(Nanos::new(i * 52));
///     faw.record(t);
/// }
/// // The fifth ACT must wait for the window to roll past the first:
/// assert_eq!(faw.earliest(Nanos::new(208)), Nanos::new(708));
/// ```
#[derive(Debug, Clone)]
pub struct FawTracker {
    t_faw: Nanos,
    /// Times of the most recent activations (at most four retained).
    recent: VecDeque<Nanos>,
}

impl FawTracker {
    /// A representative DDR5 tFAW for 8 KiB rows: 35 ns.
    pub fn ddr5_default() -> Self {
        Self::new(Nanos::new(35))
    }

    /// Creates a tracker with the given window.
    pub fn new(t_faw: Nanos) -> Self {
        FawTracker {
            t_faw,
            recent: VecDeque::with_capacity(4),
        }
    }

    /// The earliest time an ACT may issue at or after `now`.
    pub fn earliest(&self, now: Nanos) -> Nanos {
        if self.recent.len() < 4 {
            return now;
        }
        let oldest = self.recent[0];
        now.max(oldest + self.t_faw)
    }

    /// Records an ACT at `t` (must respect [`earliest`](Self::earliest)).
    pub fn record(&mut self, t: Nanos) {
        debug_assert!(t >= self.earliest(t), "tFAW violated");
        if self.recent.len() == 4 {
            self.recent.pop_front();
        }
        self.recent.push_back(t);
    }

    /// The maximum sustained activation rate in ACTs per second.
    pub fn max_rate_per_sec(&self) -> f64 {
        4.0 / self.t_faw.as_u64() as f64 * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_acts_pass_freely() {
        let mut f = FawTracker::new(Nanos::new(708));
        for i in 0..4u64 {
            let t = Nanos::new(i * 52);
            assert_eq!(f.earliest(t), t);
            f.record(t);
        }
    }

    #[test]
    fn fifth_act_waits_for_window() {
        let mut f = FawTracker::new(Nanos::new(708));
        for i in 0..4u64 {
            f.record(Nanos::new(i * 52));
        }
        assert_eq!(f.earliest(Nanos::new(208)), Nanos::new(708));
        f.record(Nanos::new(708));
        // Window now anchored at t=52.
        assert_eq!(f.earliest(Nanos::new(709)), Nanos::new(52 + 708));
    }

    #[test]
    fn sparse_traffic_never_blocked() {
        let mut f = FawTracker::ddr5_default();
        let mut t = Nanos::ZERO;
        for _ in 0..20 {
            assert_eq!(f.earliest(t), t);
            f.record(t);
            t += Nanos::new(1000);
        }
    }

    #[test]
    fn rate_math() {
        let f = FawTracker::ddr5_default();
        // 4 ACTs per 35 ns ≈ 114 M ACT/s per rank.
        assert!((1.1e8..1.2e8).contains(&f.max_rate_per_sec()));
        // Single-bank hammering (1/tRC ≈ 19.2 M/s) never trips it.
        assert!(f.max_rate_per_sec() > 1e9 / 52.0);
    }
}
