//! Demonstrates the trace store's paper-scale win: the same 6-cell
//! `--full` sweep (3 moderate workloads × 2 ATH configurations) run with
//! live per-cell stream regeneration versus mmap-backed trace replay.
//!
//! ```sh
//! cargo run --release -p moat-bench --example fullsweep_compare
//! ```
//!
//! The first invocation records the three traces (once, content-addressed
//! under `.trace-cache/v2`); subsequent invocations are pure replay.

use moat_bench::{run_sweep, PerfLab, Scale, SweepCell};
use moat_core::MoatConfig;
use moat_workloads::WorkloadProfile;

fn main() {
    let profiles: Vec<&'static WorkloadProfile> = ["cactuBSSN", "cam4", "blender"]
        .iter()
        .map(|n| WorkloadProfile::by_name(n).unwrap())
        .collect();
    let cells: Vec<SweepCell> = profiles
        .iter()
        .flat_map(|p| {
            [
                SweepCell::new(p, MoatConfig::with_ath(64)),
                SweepCell::new(p, MoatConfig::with_ath(128)),
            ]
        })
        .collect();

    // Live generation per cell: the pre-trace behaviour at --full, where
    // every cell re-runs the heap-merge generator.
    let mut live = PerfLab::new(Scale::full());
    live.set_stream_cache_budget(1);
    live.set_trace_cache_enabled(false);
    live.precompute_baselines(&profiles);
    let (_, live_stats) = run_sweep(&mut live, &cells);
    println!(
        "live regeneration : {:>5.1} M ACTs/s ({:.2}s for {} cells)",
        live_stats.acts_per_sec() / 1e6,
        live_stats.wall_seconds,
        cells.len()
    );

    // Trace-cache replay: records on the first ever run, replays the
    // mmap'd bytes afterwards.
    let mut mapped = PerfLab::new(Scale::full());
    mapped.set_stream_cache_budget(1);
    mapped.precompute_baselines(&profiles);
    let (_, map_stats) = run_sweep(&mut mapped, &cells);
    println!(
        "mmap trace replay : {:>5.1} M ACTs/s ({:.2}s for {} cells)",
        map_stats.acts_per_sec() / 1e6,
        map_stats.wall_seconds,
        cells.len()
    );
    println!(
        "speedup           : {:.1}x",
        map_stats.acts_per_sec() / live_stats.acts_per_sec().max(1e-9)
    );
}
